//! Criterion kernel for E10: the Sprinkling transformation plus the coupling
//! check on 2-level DAGs.

use criterion::{criterion_group, criterion_main, Criterion};

use bo3_bench::e10_sprinkling_figure::measure;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_sprinkling");
    group.sample_size(10);
    group.bench_function("sprinkle_and_couple_2level", |b| {
        b.iter(|| measure(8, 100, 0xB10));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
