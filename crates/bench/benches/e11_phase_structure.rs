//! Criterion kernel for E11: a traced run plus its phase segmentation.

use criterion::{criterion_group, criterion_main, Criterion};

use bo3_bench::e11_phase_structure::measure;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_phase_structure");
    group.sample_size(10);
    group.bench_function("trace_and_segment", |b| {
        b.iter(|| measure(4_000, 0.05, 0xB11));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
