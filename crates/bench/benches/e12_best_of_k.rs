//! Criterion kernel for E12: a consensus run of Best-of-k for two values of k
//! at small bias.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bo3_core::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_best_of_k");
    group.sample_size(10);
    for &k in &[3usize, 9] {
        group.bench_with_input(BenchmarkId::new("consensus_k", k), &k, |b, &k| {
            let protocol = if k == 3 {
                ProtocolSpec::BestOfThree
            } else {
                ProtocolSpec::BestOfK {
                    k,
                    tie_rule: TieRule::KeepOwn,
                }
            };
            let exp = Experiment::on(GraphSpec::RandomRegular { n: 4_000, d: 32 })
                .named(format!("bench/k={k}"))
                .protocol(protocol)
                .initial(InitialCondition::BernoulliWithBias { delta: 0.04 })
                .stopping(StoppingCondition::consensus_within(20_000))
                .replicas(1)
                .seed(0xB12)
                .threads(1);
            let graph = exp.build_graph().expect("graph");
            b.iter(|| exp.run_on(&graph).expect("run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
