//! E13: monomorphized-kernel vs `dyn`-dispatch throughput.
//!
//! Times one seeded synchronous Best-of-Three round on the complete graph
//! `K_{10000}` through both dispatch paths — the plain protocol (kernel
//! path: bit-packed snapshot, batched Lemire RNG, static dispatch) and a
//! [`DynOnly`]-wrapped copy (generic `dyn Protocol` / `dyn RngCore` path) —
//! plus the remaining built-in protocols on the kernel path for context.
//!
//! Besides the criterion group, the target writes `BENCH_kernels.json` at
//! the workspace root: an updates/sec snapshot of both paths so the perf
//! trajectory is tracked across PRs.  Set `E13_QUICK=1` (the CI bench-smoke
//! job does) to shrink the measurement to a few hundred milliseconds.

use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use bo3_core::prelude::*;

const N: usize = 10_000;
const SEED: u64 = 0xE13;

fn quick_mode() -> bool {
    std::env::var_os("E13_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn scenario() -> (CsrGraph, Configuration) {
    let graph = bo3_graph::generators::complete(N);
    let mut rng = StdRng::seed_from_u64(SEED);
    let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
        .sample(&graph, &mut rng)
        .expect("init");
    (graph, init)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_kernel_throughput");
    group.sample_size(if quick_mode() { 3 } else { 20 });
    if quick_mode() {
        group.measurement_time(Duration::from_millis(300));
    }
    let (graph, init) = scenario();
    let sim = Engine::on_graph(&graph).expect("engine");

    // The headline pair: Best-of-Three through each dispatch path.
    group.bench_with_input(BenchmarkId::new("one_round", "bo3-kernel"), &(), |b, ()| {
        let mut scratch = Vec::new();
        b.iter(|| sim.step_seeded(&BestOfThree::new(), &init, &mut scratch, SEED, 0));
    });
    group.bench_with_input(BenchmarkId::new("one_round", "bo3-dyn"), &(), |b, ()| {
        let mut scratch = Vec::new();
        b.iter(|| sim.step_seeded(&DynOnly(BestOfThree::new()), &init, &mut scratch, SEED, 0));
    });

    // The remaining built-ins on the kernel path, for cross-protocol context.
    for (label, spec) in comparison_protocols() {
        group.bench_with_input(BenchmarkId::new("kernel_round", label), &spec, |b, spec| {
            let protocol = spec.build();
            let mut scratch = Vec::new();
            b.iter(|| sim.step_seeded(protocol.as_ref(), &init, &mut scratch, SEED, 0));
        });
    }
    group.finish();
}

/// Measures whole-rounds-per-second of `step_seeded` for `protocol` and
/// returns vertex updates per second.
fn updates_per_sec(
    sim: &Engine<CsrTopology<'_>>,
    init: &Configuration,
    protocol: &dyn Protocol,
) -> f64 {
    let mut scratch = Vec::new();
    // Warm-up round (page in the graph, size the buffers).
    sim.step_seeded(protocol, init, &mut scratch, SEED, 0);
    let budget = if quick_mode() {
        Duration::from_millis(200)
    } else {
        Duration::from_secs(3)
    };
    let mut rounds = 0u64;
    let start = Instant::now();
    loop {
        sim.step_seeded(protocol, init, &mut scratch, SEED, rounds);
        rounds += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    (rounds as u128 * N as u128) as f64 / start.elapsed().as_secs_f64()
}

/// Writes the updates/sec snapshot consumed by the perf-trajectory tracking.
fn write_snapshot() {
    let (graph, init) = scenario();
    let sim = Engine::on_graph(&graph).expect("engine");
    let kernel = updates_per_sec(&sim, &init, &BestOfThree::new());
    let dynamic = updates_per_sec(&sim, &init, &DynOnly(BestOfThree::new()));
    let speedup = kernel / dynamic;
    // The vendored serde has no serializer, so the JSON is written by hand.
    let json = format!(
        "{{\n  \"experiment\": \"e13_kernel_throughput\",\n  \"protocol\": \"best-of-3\",\n  \
         \"graph\": \"complete\",\n  \"n\": {N},\n  \"quick_mode\": {quick},\n  \
         \"dyn_updates_per_sec\": {dynamic:.0},\n  \"kernel_updates_per_sec\": {kernel:.0},\n  \
         \"kernel_speedup\": {speedup:.2}\n}}\n",
        quick = quick_mode(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("snapshot ({path}):\n{json}");

    // Observed replay: the same seeded round with a MetricsObserver
    // installed must be bit-identical to the plain run — the observer
    // reads the simulation, never the other way round — and its registry
    // snapshot lands next to the BENCH file.
    let observed = Engine::on_graph(&graph)
        .expect("engine")
        .with_observer(MetricsObserver::new());
    let (mut plain, mut watched) = (Vec::new(), Vec::new());
    sim.step_seeded(&BestOfThree::new(), &init, &mut plain, SEED, 0);
    observed.step_seeded(&BestOfThree::new(), &init, &mut watched, SEED, 0);
    assert_eq!(plain, watched, "observer must not perturb the round");
    bo3_bench::obsprobe::write_metrics_snapshot(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS_kernels.json"),
        "e13_kernel_throughput",
        &observed.observer().registry().snapshot_json(),
    );
}

criterion_group!(benches, bench);

fn main() {
    benches();
    write_snapshot();
}
