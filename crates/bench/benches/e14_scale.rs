//! E14: implicit-topology scale bench.
//!
//! Times one seeded synchronous Best-of-Three round on the implicit
//! complete graph and implicit `G(n, p)` — topologies that never materialise
//! an edge — and then writes `BENCH_scale.json` at the workspace root: full
//! consensus runs at `n = 10⁶` (complete + `G(n, p)`) plus the SBM phase
//! slice, recording throughput and the topology-vs-CSR memory footprint so
//! the scale trajectory is tracked across PRs.  Set `E14_QUICK=1` (the CI
//! scale-smoke job does) to shrink the criterion measurement; the snapshot's
//! million-vertex consensus runs execute in both modes — implicit topologies
//! are what makes that CI-feasible.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use bo3_bench::e14_scale;
use bo3_bench::Scale;
use bo3_core::prelude::*;
use bo3_graph::{Complete, ImplicitGnp, Topology};

const SEED: u64 = 0xE14;

fn quick_mode() -> bool {
    std::env::var_os("E14_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn bench_one_round<T: Topology>(group: &mut criterion::BenchmarkGroup<'_>, topo: T) {
    let n = topo.n();
    let label = topo.label();
    let mut rng = StdRng::seed_from_u64(SEED);
    let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
        .sample_n(n, &mut rng)
        .expect("init");
    let sim = Engine::new(topo).expect("engine");
    group.bench_with_input(BenchmarkId::new("one_round", label), &(), |b, ()| {
        let mut scratch = Vec::new();
        b.iter(|| sim.step_seeded_kind(ProtocolKind::BestOfThree, &init, &mut scratch, SEED, 0));
    });
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_scale");
    group.sample_size(if quick_mode() { 3 } else { 10 });
    if quick_mode() {
        group.measurement_time(Duration::from_millis(500));
    }
    // The criterion timings use 10⁵ vertices in quick mode (sub-second
    // rounds) and the full million otherwise; the snapshot below always
    // runs the million-vertex consensus.
    let n = if quick_mode() { 100_000 } else { 1_000_000 };
    bench_one_round(&mut group, Complete::new(n).expect("complete"));
    bench_one_round(&mut group, ImplicitGnp::new(n, 0.5, SEED).expect("gnp"));
    group.finish();
}

/// Writes the scale snapshot consumed by the perf-trajectory tracking: the
/// quick-scale experiment rows (million-vertex headline + SBM slice) as
/// hand-rendered JSON (the vendored serde has no serializer).
fn write_snapshot() {
    let mut rows = e14_scale::headline_scenarios(e14_scale::headline_n(Scale::Quick));
    rows.extend(e14_scale::sbm_slice(Scale::Quick));
    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"n\": {}, \"topology_bytes\": {}, \
             \"csr_equivalent_bytes\": {}, \"rounds\": {}, \"stop\": \"{}\", \
             \"final_blue_fraction\": {:.6}, \"wall_seconds\": {:.3}, \
             \"updates_per_sec\": {:.0}, \"sampler_tries_per_draw\": {}}}",
            r.label,
            r.n,
            r.topology_bytes,
            r.csr_equivalent_bytes,
            r.rounds,
            r.stop,
            r.final_blue_fraction,
            r.wall_seconds,
            r.updates_per_sec,
            bo3_bench::obsprobe::json_opt(r.tries_per_draw),
        ));
    }
    // rows[0] is the complete-graph headline and rows[1] the implicit
    // G(n, 1/2) headline at the same n, so their throughput ratio tracks
    // the batched sampler's gap to the closed-form kernel PR over PR.
    let implicit_over_complete = if rows[0].updates_per_sec > 0.0 {
        rows[1].updates_per_sec / rows[0].updates_per_sec
    } else {
        0.0
    };
    let json = format!(
        "{{\n  \"experiment\": \"e14_scale\",\n  \"protocol\": \"best-of-3\",\n  \
         \"quick_mode\": {},\n  \"implicit_over_complete\": {:.3},\n  \
         \"ratio_floor\": {:.3},\n  \"rows\": [\n{}\n  ]\n}}\n",
        quick_mode(),
        implicit_over_complete,
        bo3_bench::e20_sampler::MIN_IMPLICIT_OVER_COMPLETE,
        body
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, &json).expect("write BENCH_scale.json");
    println!("snapshot ({path}):\n{json}");

    // The observer-registry snapshot of a metered probe over the headline
    // G(n, p) topology lands next to the BENCH file (schema-checked by the
    // CI scale-smoke job).
    let probe = bo3_bench::obsprobe::probe_spec(
        &TopologySpec::ImplicitGnp {
            n: if quick_mode() { 100_000 } else { 1_000_000 },
            p: 0.5,
        },
        SEED,
        2,
    );
    bo3_bench::obsprobe::write_metrics_snapshot(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS_scale.json"),
        "e14_scale",
        &probe.snapshot_json,
    );

    // The acceptance gate for the subsystem: a full million-vertex implicit
    // run must reach red consensus with a topology footprint that is
    // vanishingly small next to the CSR it replaces.
    let headline = &rows[0];
    assert!(
        headline.n >= 1_000_000 && headline.red_won(),
        "million-vertex implicit run must reach red consensus, got {headline:?}"
    );
    assert!(
        (headline.topology_bytes as u128) * 1000 < headline.csr_equivalent_bytes,
        "implicit topology must undercut CSR by >1000x, got {headline:?}"
    );
    // The batched-sampler floor (shared with the e20 regression bench):
    // the implicit headline must stay within the committed ratio of the
    // complete-graph kernel at the same n.
    assert!(
        implicit_over_complete >= bo3_bench::e20_sampler::MIN_IMPLICIT_OVER_COMPLETE,
        "implicit/complete throughput ratio {implicit_over_complete:.3} fell below the committed \
         floor {:.3} (see BENCH_scale.json)",
        bo3_bench::e20_sampler::MIN_IMPLICIT_OVER_COMPLETE
    );
}

criterion_group!(benches, bench);

fn main() {
    benches();
    write_snapshot();
}
