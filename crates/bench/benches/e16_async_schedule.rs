//! E16: asynchronous vs synchronous schedule on implicit topologies.
//!
//! The unified engine lifted the asynchronous (random sequential) schedule
//! onto `Topology`, so the ablation now runs adjacency-free.  This target
//! times one seeded round of each schedule on implicit `G(n, 1/2)` and then
//! writes `BENCH_async.json` at the workspace root: full Best-of-Three
//! consensus runs at `n = 10⁶` under both schedules — the async one
//! completing without materialising an edge is the acceptance criterion of
//! the engine unification — recording rounds and sustained updates/s so the
//! async/sync throughput ratio is tracked across PRs.  Set `E16_QUICK=1`
//! (the CI bench-smoke job does) to shrink the criterion measurement to an
//! E14-style small-n slice; the snapshot's million-vertex runs execute in
//! both modes.

use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use bo3_core::prelude::*;
use bo3_graph::ImplicitGnp;

const SEED: u64 = 0xE16;
const SNAPSHOT_N: usize = 1_000_000;
const P: f64 = 0.5;

fn quick_mode() -> bool {
    std::env::var_os("E16_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_async_schedule");
    group.sample_size(if quick_mode() { 3 } else { 10 });
    if quick_mode() {
        group.measurement_time(Duration::from_millis(500));
    }
    let n = if quick_mode() { 100_000 } else { 1_000_000 };
    let topo = ImplicitGnp::new(n, P, SEED).expect("gnp");
    let mut rng = StdRng::seed_from_u64(SEED);
    let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
        .sample_n(n, &mut rng)
        .expect("init");
    let sync_engine = Engine::new(topo).expect("engine");
    group.bench_with_input(BenchmarkId::new("one_round", "sync"), &(), |b, ()| {
        let mut scratch = Vec::new();
        b.iter(|| {
            sync_engine.step_seeded_kind(ProtocolKind::BestOfThree, &init, &mut scratch, SEED, 0)
        });
    });
    let async_engine = Engine::new(topo)
        .expect("engine")
        .with_schedule(Schedule::AsynchronousRandomOrder)
        .with_stopping(StoppingCondition::fixed_rounds(1));
    group.bench_with_input(BenchmarkId::new("one_round", "async"), &(), |b, ()| {
        b.iter(|| {
            async_engine
                .run_seeded_kind(ProtocolKind::BestOfThree, init.clone(), SEED)
                .expect("async round")
        });
    });
    group.finish();
}

/// One timed consensus run under `schedule`, end to end through the
/// Scenario API (topology build + init sampling + rounds), as everywhere
/// else in the perf snapshots.
fn consensus(spec: TopologySpec, schedule: Schedule) -> (usize, bool, f64) {
    let experiment = Experiment::on(spec)
        .named(format!("E16/{}", schedule.label()))
        .protocol(ProtocolSpec::BestOfThree)
        .initial(InitialCondition::BernoulliWithBias { delta: 0.15 })
        .schedule(schedule)
        .stopping(StoppingCondition::consensus_within(10_000))
        .replicas(1)
        .seed(SEED)
        .threads(0);
    let start = Instant::now();
    let result = experiment.run().expect("consensus run");
    let wall = start.elapsed().as_secs_f64();
    let outcome = result.report.outcomes[0];
    let updates_per_sec = if wall > 0.0 {
        (outcome.rounds as u128 * SNAPSHOT_N as u128) as f64 / wall
    } else {
        0.0
    };
    (
        outcome.rounds,
        outcome.winner == Some(Opinion::Red),
        updates_per_sec,
    )
}

/// Writes the async-vs-sync snapshot consumed by the perf-trajectory
/// tracking, asserting the acceptance criterion on the way: seeded
/// asynchronous Best-of-Three on implicit `G(10⁶, 1/2)` reaches red
/// consensus without materialising adjacency.
fn write_snapshot() {
    let gnp = TopologySpec::ImplicitGnp {
        n: SNAPSHOT_N,
        p: P,
    };
    let (sync_rounds, sync_red, sync_ups) = consensus(gnp.clone(), Schedule::Synchronous);
    let (async_rounds, async_red, async_ups) = consensus(gnp, Schedule::AsynchronousRandomOrder);
    assert!(
        sync_red && async_red,
        "million-vertex implicit G(n, 1/2) must reach red consensus under both schedules"
    );
    let ratio = async_ups / sync_ups;
    // The complete-graph async reference at the same n, for the batched-
    // sampler ratio the e20 regression bench gates on.
    let (_, complete_red, complete_async_ups) = consensus(
        TopologySpec::Complete { n: SNAPSHOT_N },
        Schedule::AsynchronousRandomOrder,
    );
    assert!(
        complete_red,
        "complete-graph async run must reach red consensus"
    );
    let implicit_over_complete = if complete_async_ups > 0.0 {
        async_ups / complete_async_ups
    } else {
        0.0
    };
    // One metered probe pins the G(n, 1/2) rejection sampler's try rate —
    // the schedule doesn't change the sampler, so one figure covers both.
    let probe = bo3_bench::obsprobe::probe_spec(
        &TopologySpec::ImplicitGnp {
            n: SNAPSHOT_N,
            p: P,
        },
        SEED,
        1,
    );
    let tries_per_draw = bo3_bench::obsprobe::json_opt(probe.tries_per_draw());
    // The vendored serde has no serializer, so the JSON is written by hand.
    let json = format!(
        "{{\n  \"experiment\": \"e16_async_schedule\",\n  \"protocol\": \"best-of-3\",\n  \
         \"topology\": \"implicit_gnp\",\n  \"n\": {SNAPSHOT_N},\n  \"p\": {P},\n  \
         \"quick_mode\": {quick},\n  \"sync_rounds\": {sync_rounds},\n  \
         \"async_rounds\": {async_rounds},\n  \"sync_updates_per_sec\": {sync_ups:.0},\n  \
         \"async_updates_per_sec\": {async_ups:.0},\n  \"async_over_sync\": {ratio:.3},\n  \
         \"complete_async_updates_per_sec\": {complete_async_ups:.0},\n  \
         \"implicit_over_complete_async\": {implicit_over_complete:.3},\n  \
         \"ratio_floor\": {floor:.3},\n  \
         \"sampler_tries_per_draw\": {tries_per_draw}\n}}\n",
        quick = quick_mode(),
        floor = bo3_bench::e20_sampler::MIN_IMPLICIT_OVER_COMPLETE,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_async.json");
    std::fs::write(path, &json).expect("write BENCH_async.json");
    println!("snapshot ({path}):\n{json}");
    bo3_bench::obsprobe::write_metrics_snapshot(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS_async.json"),
        "e16_async_schedule",
        &probe.snapshot_json,
    );
    // The batched-sampler floor (shared with e20): the async schedule's
    // round-scoped lane must keep the implicit topology within the
    // committed ratio of the complete-graph kernel.
    assert!(
        implicit_over_complete >= bo3_bench::e20_sampler::MIN_IMPLICIT_OVER_COMPLETE,
        "implicit/complete async throughput ratio {implicit_over_complete:.3} fell below the \
         committed floor {:.3} (see BENCH_async.json)",
        bo3_bench::e20_sampler::MIN_IMPLICIT_OVER_COMPLETE
    );
}

criterion_group!(benches, bench);

fn main() {
    benches();
    write_snapshot();
}
