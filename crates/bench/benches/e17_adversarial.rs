//! E17: adversarial Best-of-Three — zealot tipping point and lossy SBM.
//!
//! Two questions from the adversary layer, answered at paper scale and
//! written to `BENCH_adversarial.json` at the workspace root:
//!
//! 1. **How many zealots flip the outcome on `K_n` at `n = 10⁵`?**  A
//!    prefix of `z` vertices is frozen blue (`ZealotIds`) while everyone
//!    else starts red; binary search finds the smallest `z` whose pull
//!    drags the red majority to blue.  Mean-field, the update map becomes
//!    `x ↦ ζ + (1 − ζ)(3x² − 2x³)`, whose low fixed point disappears at
//!    `ζ* ≈ 0.109` — the measured tipping point should land near `0.109 n`.
//! 2. **Does 10 % message drop move the SBM polarisation at `n = 10⁶`?**
//!    Two planted blocks start in opposing unanimity; after a fixed round
//!    budget the polarisation `|blue₀ − blue₁|` (per-block blue fractions)
//!    is compared between the honest run and `Drop { q: 0.1 }`.  The block
//!    structure must be assortative enough for the polarised state to be
//!    stable at all — mean-field, the own-block sample weight
//!    `p_in / (p_in + p_out)` has to exceed `5/6`, hence `0.6 / 0.08` here.
//!    Dropped samples fall back to self-opinion, so drop *reinforces* the
//!    local echo chamber — the snapshot tracks the ratio across PRs.
//!
//! The criterion slice times one adversarial synchronous round against the
//! honest kernel at the same size, pinning the wrapper's overhead.  Set
//! `E17_QUICK=1` (the CI bench-smoke job does) to shrink every size.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};

use bo3_core::prelude::*;
use bo3_graph::{Complete, ImplicitSbm};

const SEED: u64 = 0xE17;

fn quick_mode() -> bool {
    std::env::var_os("E17_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn prefix_blue(n: usize, blue: usize) -> Configuration {
    let mut config = Configuration::all_red(n);
    for v in 0..blue {
        config.set(v, Opinion::Blue);
    }
    config
}

// --- criterion slice: wrapper overhead on one synchronous round -----------

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_adversarial");
    group.sample_size(if quick_mode() { 3 } else { 10 });
    if quick_mode() {
        group.measurement_time(Duration::from_millis(500));
    }
    let n = if quick_mode() { 20_000 } else { 100_000 };
    let init = prefix_blue(n, n / 3);
    let honest = Engine::new(Complete::new(n).expect("complete")).expect("engine");
    group.bench_with_input(BenchmarkId::new("one_round", "honest"), &(), |b, ()| {
        let mut scratch = Vec::new();
        b.iter(|| honest.step_seeded_kind(ProtocolKind::BestOfThree, &init, &mut scratch, SEED, 0));
    });
    let specs = [
        AdversarySpec::Zealots { fraction: 0.05 },
        AdversarySpec::Byzantine { fraction: 0.05 },
        AdversarySpec::Drop { q: 0.1 },
    ];
    let adversarial = Engine::new(Complete::new(n).expect("complete"))
        .expect("engine")
        .with_adversary(Adversary::build(&specs, n, SEED).expect("adversary"));
    group.bench_with_input(
        BenchmarkId::new("one_round", "adversarial"),
        &(),
        |b, ()| {
            let mut scratch = Vec::new();
            b.iter(|| {
                adversarial.step_seeded_kind(
                    ProtocolKind::BestOfThree,
                    &init,
                    &mut scratch,
                    SEED,
                    0,
                )
            });
        },
    );
    group.finish();
}

// --- snapshot 1: zealot tipping point on K_n ------------------------------

/// Runs frozen-blue-prefix zealots against an otherwise all-red `K_n` and
/// reports whether blue ends up with the majority after `rounds`.
fn zealots_flip(n: usize, z: usize, rounds: usize) -> bool {
    let adv = Adversary::build(
        &[AdversarySpec::ZealotIds {
            vertices: (0..z).collect(),
        }],
        n,
        SEED,
    )
    .expect("adversary");
    let result = Engine::new(Complete::new(n).expect("complete"))
        .expect("engine")
        .with_stopping(StoppingCondition::fixed_rounds(rounds))
        .with_adversary(adv)
        .run_seeded_kind(ProtocolKind::BestOfThree, prefix_blue(n, z), SEED)
        .expect("zealot run");
    result.final_blue_fraction > 0.5
}

/// Binary search for the smallest zealot count that flips `K_n` to blue.
fn zealot_tipping_point(n: usize, rounds: usize) -> usize {
    let (mut lo, mut hi) = (0usize, n / 2);
    debug_assert!(zealots_flip(n, hi, rounds), "n/2 zealots must flip");
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if zealots_flip(n, mid, rounds) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

// --- snapshot 2: SBM polarisation under message drop ----------------------

/// Steps Best-of-Three on a two-block planted partition from opposing
/// unanimity and returns the polarisation `|blue₀ − blue₁|` after `rounds`
/// (per-block blue fractions; `1.0` = perfectly polarised, `0.0` = mixed).
fn sbm_polarisation(n: usize, rounds: usize, drop_q: Option<f64>) -> f64 {
    let topo = ImplicitSbm::new(n, 2, 0.6, 0.08, SEED).expect("sbm");
    let mut engine = Engine::new(topo).expect("engine");
    if let Some(q) = drop_q {
        let adv = Adversary::build(&[AdversarySpec::Drop { q }], n, SEED).expect("adversary");
        engine = engine.with_adversary(adv);
    }
    let mut current = prefix_blue(n, n / 2);
    let mut next: Vec<Opinion> = Vec::new();
    for round in 0..rounds as u64 {
        engine.step_seeded_kind(ProtocolKind::BestOfThree, &current, &mut next, SEED, round);
        current.overwrite_from(&next);
    }
    let half = n / 2;
    let blue0 = (0..half).filter(|&v| current.get(v).is_blue()).count() as f64 / half as f64;
    let blue1 = (half..n).filter(|&v| current.get(v).is_blue()).count() as f64 / half as f64;
    (blue0 - blue1).abs()
}

fn write_snapshot() {
    let quick = quick_mode();
    let (kn_n, kn_rounds) = if quick { (10_000, 100) } else { (100_000, 200) };
    let tipping = zealot_tipping_point(kn_n, kn_rounds);
    let tipping_fraction = tipping as f64 / kn_n as f64;
    // Mean-field predicts ζ* ≈ 0.109; give finite-size effects a wide berth
    // but catch an order-of-magnitude regression.
    assert!(
        (0.02..=0.30).contains(&tipping_fraction),
        "zealot tipping fraction {tipping_fraction} implausibly far from the mean-field 0.109"
    );

    let (sbm_n, sbm_rounds) = if quick {
        (100_000, 10)
    } else {
        (1_000_000, 20)
    };
    let honest = sbm_polarisation(sbm_n, sbm_rounds, None);
    let lossy = sbm_polarisation(sbm_n, sbm_rounds, Some(0.1));
    assert!(
        honest > 0.5,
        "opposing-unanimity SBM blocks must stay polarised honestly, got {honest}"
    );
    assert!(
        lossy > 0.0,
        "10% drop must not erase the polarisation outright, got {lossy}"
    );
    let ratio = lossy / honest;

    // The vendored serde has no serializer, so the JSON is written by hand.
    let json = format!(
        "{{\n  \"experiment\": \"e17_adversarial\",\n  \"protocol\": \"best-of-3\",\n  \
         \"quick_mode\": {quick},\n  \"zealot_flip\": {{\n    \"topology\": \"complete\",\n    \
         \"n\": {kn_n},\n    \"rounds\": {kn_rounds},\n    \
         \"min_zealots_to_flip\": {tipping},\n    \
         \"tipping_fraction\": {tipping_fraction:.5},\n    \
         \"mean_field_prediction\": 0.109\n  }},\n  \"sbm_drop\": {{\n    \
         \"topology\": \"implicit_sbm\",\n    \"n\": {sbm_n},\n    \"blocks\": 2,\n    \
         \"p_in\": 0.6,\n    \"p_out\": 0.08,\n    \"rounds\": {sbm_rounds},\n    \
         \"drop_q\": 0.1,\n    \"polarisation_honest\": {honest:.6},\n    \
         \"polarisation_dropped\": {lossy:.6},\n    \
         \"dropped_over_honest\": {ratio:.4}\n  }}\n}}\n",
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adversarial.json");
    std::fs::write(path, &json).expect("write BENCH_adversarial.json");
    println!("snapshot ({path}):\n{json}");
}

criterion_group!(benches, bench);

fn main() {
    benches();
    write_snapshot();
}
