//! Criterion kernel for E1: a full Best-of-Three consensus run on a dense
//! G(n, p) graph in the Theorem 1 regime, at two sizes so the double-log
//! scaling is visible in the timing report as well.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bo3_core::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_consensus_scaling");
    group.sample_size(10);
    for &n in &[2_000usize, 8_000] {
        group.bench_with_input(
            BenchmarkId::new("best_of_three_consensus", n),
            &n,
            |b, &n| {
                let exp = Experiment::theorem_one(
                    format!("bench/n={n}"),
                    GraphSpec::DenseForAlpha { n, alpha: 0.7 },
                    0.05,
                    1,
                    0xB1,
                );
                let graph = exp.build_graph().expect("graph");
                b.iter(|| exp.run_on(&graph).expect("run"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
