//! Criterion kernel for E2: consensus runs at a large and a small initial
//! bias on the same complete graph — the timing gap is the O(log 1/delta)
//! additive term.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bo3_core::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_delta_sweep");
    group.sample_size(10);
    for &delta in &[0.2f64, 0.0125] {
        group.bench_with_input(
            BenchmarkId::new("consensus_at_delta", format!("{delta}")),
            &delta,
            |b, &delta| {
                let exp = Experiment::theorem_one(
                    format!("bench/delta={delta}"),
                    GraphSpec::Complete { n: 5_000 },
                    delta,
                    1,
                    0xB2,
                );
                let graph = exp.build_graph().expect("graph");
                b.iter(|| exp.run_on(&graph).expect("run"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
