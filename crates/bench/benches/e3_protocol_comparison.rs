//! Criterion kernel for E3: one synchronous round of each protocol on the
//! same dense graph (the per-round cost is what makes the voter model's
//! larger round count so expensive end to end).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use bo3_core::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_protocol_round");
    group.sample_size(20);
    let graph = GraphSpec::DenseForAlpha {
        n: 10_000,
        alpha: 0.75,
    }
    .generate(&mut StdRng::seed_from_u64(0xB3))
    .expect("graph");
    let sim = Engine::on_graph(&graph).expect("engine");
    let mut rng = StdRng::seed_from_u64(0xB3);
    let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
        .sample(&graph, &mut rng)
        .expect("init");
    for (label, spec) in comparison_protocols() {
        group.bench_with_input(BenchmarkId::new("one_round", label), &spec, |b, spec| {
            let protocol = spec.build();
            let mut scratch = Vec::new();
            let mut rng = StdRng::seed_from_u64(0xB3 + 1);
            b.iter(|| sim.step_synchronous(protocol.as_ref(), &init, &mut scratch, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
