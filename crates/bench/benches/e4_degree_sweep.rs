//! Criterion kernel for E4: random regular graph generation plus a consensus
//! run at two degrees, matching the degree sweep's cost profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bo3_bench::e04_degree_sweep::degree_for;
use bo3_core::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_degree_sweep");
    group.sample_size(10);
    let n = 4_000usize;
    for &alpha in &[0.4f64, 0.8] {
        let d = degree_for(n, alpha);
        group.bench_with_input(BenchmarkId::new("regular_consensus", d), &d, |b, &d| {
            let exp = Experiment::theorem_one(
                format!("bench/d={d}"),
                GraphSpec::RandomRegular { n, d },
                0.1,
                1,
                0xB4,
            );
            let graph = exp.build_graph().expect("graph");
            b.iter(|| exp.run_on(&graph).expect("run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
