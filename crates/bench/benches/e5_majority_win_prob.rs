//! Criterion kernel for E5: a single replica of the majority-win estimate for
//! both protocols on the small complete graph used by the experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bo3_core::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_majority_win_prob");
    group.sample_size(10);
    for (label, protocol, cap) in [
        ("voter", ProtocolSpec::Voter, 2_000_000usize),
        ("best_of_three", ProtocolSpec::BestOfThree, 50_000),
    ] {
        group.bench_function(BenchmarkId::new("single_replica", label), |b| {
            let exp = Experiment::on(GraphSpec::Complete { n: 80 })
                .named("bench/e5")
                .protocol(protocol)
                .initial(InitialCondition::ExactCount { blue: 32 })
                .stopping(StoppingCondition::consensus_within(cap))
                .replicas(1)
                .seed(0xB5)
                .threads(1);
            let graph = exp.build_graph().expect("graph");
            b.iter(|| exp.run_on(&graph).expect("run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
