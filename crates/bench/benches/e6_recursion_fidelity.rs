//! Criterion kernel for E6: a traced trajectory plus its comparison against
//! the equation (1) recursion.

use criterion::{criterion_group, criterion_main, Criterion};

use bo3_bench::e06_recursion_fidelity::max_gap;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_recursion_fidelity");
    group.sample_size(10);
    group.bench_function("traced_run_vs_eq1", |b| {
        b.iter(|| max_gap(10_000, 0.1, 0.01, 0xB6));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
