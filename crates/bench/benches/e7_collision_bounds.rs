//! Criterion kernel for E7: voting-DAG sampling plus collision accounting on
//! a random regular graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bo3_bench::e07_collision_bounds::measure;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_collision_bounds");
    group.sample_size(10);
    for &d in &[32usize, 256] {
        group.bench_with_input(BenchmarkId::new("dag_collision_stats", d), &d, |b, &d| {
            b.iter(|| measure(d, 20, 0xB7));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
