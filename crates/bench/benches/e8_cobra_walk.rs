//! Criterion kernel for E8: cover-time estimation of the k = 3 COBRA walk on
//! the hypercube.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use bo3_dag::cobra::estimate_cover_time;
use bo3_graph::generators;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_cobra_walk");
    group.sample_size(10);
    let graph = generators::hypercube(9).expect("graph");
    group.bench_function("k3_cover_hypercube_512", |b| {
        let mut rng = StdRng::seed_from_u64(0xB8);
        b.iter(|| estimate_cover_time(&graph, 0, 3, 50_000, 3, &mut rng).expect("cover"));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
