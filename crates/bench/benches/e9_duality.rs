//! Criterion kernel for E9: one duality check (forward process vs voting-DAG
//! colouring) at a reduced trial budget.

use criterion::{criterion_group, criterion_main, Criterion};

use bo3_core::prelude::*;
use bo3_graph::generators;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_duality");
    group.sample_size(10);
    let graph = generators::complete(40);
    group.bench_function("duality_check_500_trials", |b| {
        let check = DualityCheck {
            vertex: 0,
            rounds: 3,
            p_blue: 0.4,
            trials: 500,
            seed: 0xB9,
        };
        b.iter(|| check.run(&graph).expect("duality"));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
