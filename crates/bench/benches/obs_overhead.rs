//! Observer-overhead micro-bench: the Noop path must cost nothing.
//!
//! `Engine<T>` defaults its observer parameter to `NoopObserver`, whose
//! `enabled()` returns `false` as an `#[inline(always)]` constant — every
//! timing guard and hook folds away at monomorphization, so the default
//! engine *is* the pre-observability baseline, instruction for
//! instruction.  This target pins that claim two ways:
//!
//! * the criterion group times one seeded round through the default
//!   (Noop) engine and through the same engine with a [`MetricsObserver`]
//!   installed, on implicit `G(n, 1/2)` where the metered
//!   rejection-sampling path is actually exercised;
//! * `main` asserts the two engines produce bit-identical opinion buffers
//!   over several rounds, then writes `BENCH_obs_overhead.json` (both
//!   throughputs and their ratio, tracked across PRs) and the
//!   `METRICS_obs_overhead.json` registry snapshot.
//!
//! Set `OBS_QUICK=1` (the CI bench-smoke job does) to shrink the
//! measurement to a few hundred milliseconds.

use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use bo3_core::prelude::*;
use bo3_graph::ImplicitGnp;

const N: usize = 100_000;
const P: f64 = 0.5;
const SEED: u64 = 0x0B5;

fn quick_mode() -> bool {
    std::env::var_os("OBS_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn scenario() -> (ImplicitGnp, Configuration) {
    let topo = ImplicitGnp::new(N, P, SEED).expect("gnp");
    let mut rng = StdRng::seed_from_u64(SEED);
    let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
        .sample_n(N, &mut rng)
        .expect("init");
    (topo, init)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(if quick_mode() { 3 } else { 20 });
    if quick_mode() {
        group.measurement_time(Duration::from_millis(300));
    }
    let (topo, init) = scenario();
    let noop = Engine::new(topo).expect("engine");
    let metrics = Engine::new(topo)
        .expect("engine")
        .with_observer(MetricsObserver::new());
    group.bench_with_input(BenchmarkId::new("one_round", "noop"), &(), |b, ()| {
        let mut scratch = Vec::new();
        b.iter(|| noop.step_seeded_kind(ProtocolKind::BestOfThree, &init, &mut scratch, SEED, 0));
    });
    group.bench_with_input(BenchmarkId::new("one_round", "metrics"), &(), |b, ()| {
        let mut scratch = Vec::new();
        b.iter(|| {
            metrics.step_seeded_kind(ProtocolKind::BestOfThree, &init, &mut scratch, SEED, 0)
        });
    });
    group.finish();
}

/// Rounds/sec of `step_seeded_kind` through `engine`, as updates/sec.
fn updates_per_sec<O: Observer>(engine: &Engine<ImplicitGnp, O>, init: &Configuration) -> f64 {
    let mut scratch = Vec::new();
    engine.step_seeded_kind(ProtocolKind::BestOfThree, init, &mut scratch, SEED, 0);
    let budget = if quick_mode() {
        Duration::from_millis(200)
    } else {
        Duration::from_secs(2)
    };
    let mut rounds = 0u64;
    let start = Instant::now();
    loop {
        engine.step_seeded_kind(ProtocolKind::BestOfThree, init, &mut scratch, SEED, rounds);
        rounds += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    (rounds as u128 * N as u128) as f64 / start.elapsed().as_secs_f64()
}

fn write_snapshot() {
    let (topo, init) = scenario();
    let noop = Engine::new(topo).expect("engine");
    let metrics = Engine::new(topo)
        .expect("engine")
        .with_observer(MetricsObserver::new());

    // The hard guarantee first: observation must not perturb the rounds.
    let (mut plain, mut watched) = (Vec::new(), Vec::new());
    for round in 0..4 {
        noop.step_seeded_kind(ProtocolKind::BestOfThree, &init, &mut plain, SEED, round);
        metrics.step_seeded_kind(ProtocolKind::BestOfThree, &init, &mut watched, SEED, round);
        assert_eq!(plain, watched, "observer must not perturb round {round}");
    }
    assert!(
        metrics.observer().meter().tries() >= metrics.observer().meter().accepts(),
        "metered path must have recorded the rejection sampler"
    );

    let noop_ups = updates_per_sec(&noop, &init);
    let metrics_ups = updates_per_sec(&metrics, &init);
    let ratio = metrics_ups / noop_ups;
    // The vendored serde has no serializer, so the JSON is written by hand.
    let json = format!(
        "{{\n  \"experiment\": \"obs_overhead\",\n  \"protocol\": \"best-of-3\",\n  \
         \"topology\": \"implicit_gnp\",\n  \"n\": {N},\n  \"p\": {P},\n  \
         \"quick_mode\": {quick},\n  \"noop_updates_per_sec\": {noop_ups:.0},\n  \
         \"metrics_updates_per_sec\": {metrics_ups:.0},\n  \
         \"metrics_over_noop\": {ratio:.3}\n}}\n",
        quick = quick_mode(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs_overhead.json");
    std::fs::write(path, &json).expect("write BENCH_obs_overhead.json");
    println!("snapshot ({path}):\n{json}");
    bo3_bench::obsprobe::write_metrics_snapshot(
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../METRICS_obs_overhead.json"
        ),
        "obs_overhead",
        &metrics.observer().registry().snapshot_json(),
    );
}

criterion_group!(benches, bench);

fn main() {
    benches();
    write_snapshot();
}
