//! E10: the Sprinkling process on 2-level DAGs (Figure 1)
//!
//! Usage: `cargo run --release -p bo3-bench --bin e10_sprinkling_figure -- [--scale quick|paper] [--csv out.csv]`

fn main() {
    let (scale, csv) = bo3_bench::scale_and_csv_from_args();
    let table = bo3_bench::e10_sprinkling_figure::run(scale);
    bo3_bench::emit(&table, csv.as_deref());
}
