//! E11: the three-phase structure of Lemma 4 in measured trajectories
//!
//! Usage: `cargo run --release -p bo3-bench --bin e11_phase_structure -- [--scale quick|paper] [--csv out.csv]`

fn main() {
    let (scale, csv) = bo3_bench::scale_and_csv_from_args();
    let table = bo3_bench::e11_phase_structure::run(scale);
    bo3_bench::emit(&table, csv.as_deref());
}
