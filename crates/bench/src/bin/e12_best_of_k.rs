//! E12: Best-of-3 vs Best-of-k (odd k >= 5) at small bias
//!
//! Usage: `cargo run --release -p bo3-bench --bin e12_best_of_k -- [--scale quick|paper] [--csv out.csv]`

fn main() {
    let (scale, csv) = bo3_bench::scale_and_csv_from_args();
    let table = bo3_bench::e12_best_of_k::run(scale);
    bo3_bench::emit(&table, csv.as_deref());
}
