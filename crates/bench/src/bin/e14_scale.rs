//! E14: million-node Best-of-Three on implicit topologies (complete,
//! G(n,p), SBM phase slice) with topology-vs-CSR memory reporting
//!
//! Usage: `cargo run --release -p bo3-bench --bin e14_scale -- [--scale quick|paper] [--csv out.csv]`

fn main() {
    let (scale, csv) = bo3_bench::scale_and_csv_from_args();
    let table = bo3_bench::e14_scale::run(scale);
    bo3_bench::emit(&table, csv.as_deref());
}
