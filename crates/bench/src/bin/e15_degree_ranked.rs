//! E15: degree-ranked (adversarial, oracle-placed) vs uniform initial
//! conditions on the implicit SBM — consensus-round comparison at scale
//!
//! Usage: `cargo run --release -p bo3-bench --bin e15_degree_ranked -- [--scale quick|paper] [--csv out.csv]`

fn main() {
    let (scale, csv) = bo3_bench::scale_and_csv_from_args();
    let table = bo3_bench::e15_degree_ranked::run(scale);
    bo3_bench::emit(&table, csv.as_deref());
}
