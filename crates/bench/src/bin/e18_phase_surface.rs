//! E18: crash-safe SBM phase-surface campaign — polarisation thresholds
//! vs mean-field theory, resumable after SIGINT/SIGTERM/SIGKILL.
//!
//! Usage:
//! ```text
//! cargo run --release -p bo3-bench --bin e18_phase_surface -- \
//!     [--scale quick|paper] [--dir <campaign-dir>] [--slice <rounds>] [--status]
//! ```
//!
//! `E18_QUICK=1` forces the quick grid whatever `--scale` says (CI uses
//! this).  The campaign directory (default `e18_campaign`) holds the
//! manifest, per-cell results and checkpoints; when the sweep completes the
//! `BENCH_surface*.json` artefacts are written there too.  Interrupt with
//! Ctrl-C (or SIGTERM) and the current cell is checkpointed at the next
//! round boundary; re-running the same command resumes where it stopped and
//! produces byte-identical artefacts.
//!
//! `--status` prints the grid's progress (per-cell status, attempts,
//! resumes, accumulated wall time) from `manifest.json` and exits without
//! touching the campaign — safe to run while another process drives it.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use bo3_bench::e18_phase_surface as e18;
use bo3_bench::Scale;

/// The cancel flag the signal handler flips (a C signal handler cannot
/// capture an `Arc`, so the flag is parked in a static).
static CANCEL: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
mod signals {
    use super::{Ordering, CANCEL};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.  The campaign runner
        // polls the flag at every round boundary and flushes a checkpoint
        // before returning.
        if let Some(flag) = CANCEL.get() {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Installs the SIGINT/SIGTERM handlers (after `CANCEL` is set).
    #[allow(unsafe_code)]
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod signals {
    /// No signal wiring off Unix — the campaign still resumes after any
    /// kill thanks to its atomic-write discipline.
    pub fn install() {}
}

fn parse_args() -> (Scale, PathBuf, usize, bool) {
    let mut scale = Scale::Quick;
    let mut dir = PathBuf::from("e18_campaign");
    let mut slice = 64usize;
    let mut status = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                if let Some(v) = args.next() {
                    scale = v.parse().unwrap_or(Scale::Quick);
                }
            }
            "--dir" => {
                if let Some(v) = args.next() {
                    dir = PathBuf::from(v);
                }
            }
            "--slice" => {
                if let Some(v) = args.next() {
                    slice = v.parse().unwrap_or(slice);
                }
            }
            "--status" => status = true,
            other => eprintln!("ignoring unknown argument '{other}'"),
        }
    }
    if std::env::var("E18_QUICK").as_deref() == Ok("1") {
        scale = Scale::Quick;
    }
    (scale, dir, slice, status)
}

fn main() {
    let (scale, dir, slice, status_only) = parse_args();
    if status_only {
        // Read-only: report grid progress from the manifest and exit
        // without creating, locking or writing anything.
        match e18::status(scale, &dir) {
            Ok(status) => {
                println!("{}", status.table().to_pretty_string());
                println!("{}", status.summary());
            }
            Err(e) => {
                eprintln!("status failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let cancel = CANCEL
        .get_or_init(|| Arc::new(AtomicBool::new(false)))
        .clone();
    signals::install();
    match e18::run_campaign(scale, &dir, cancel, slice) {
        Ok(Some(sheets)) => {
            println!("{}", e18::thresholds_table(&sheets).to_pretty_string());
            println!(
                "campaign complete — artefacts in {} (BENCH_surface*.json)",
                dir.display()
            );
        }
        Ok(None) => {
            // Interrupted: the checkpoint is flushed and every artefact on
            // disk is whole — resuming is always safe.
            println!(
                "campaign interrupted — state saved in {}; resume with the same command",
                dir.display()
            );
        }
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    }
}
