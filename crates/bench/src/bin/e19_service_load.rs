//! E19: load-generate against an in-process `bo3-serve` daemon and write
//! `BENCH_service.json` (+ `METRICS_service.json`) at the workspace root.
//!
//! Usage:
//! ```text
//! cargo run --release -p bo3-bench --bin e19_service_load -- [--scale quick|paper]
//! ```
//!
//! `E19_QUICK=1` forces the quick workload whatever `--scale` says (CI uses
//! this).  The run fails loudly if any served report differs from its
//! in-process twin — throughput numbers from a non-deterministic service
//! would be meaningless.

use bo3_bench::{e19_service_load as e19, Scale};

fn main() {
    let (mut scale, _csv) = bo3_bench::scale_and_csv_from_args();
    if std::env::var("E19_QUICK").as_deref() == Ok("1") {
        scale = Scale::Quick;
    }
    let quick = scale == Scale::Quick;
    let report = match e19::run(scale) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("service load failed: {e}");
            std::process::exit(1);
        }
    };
    if report.deterministic != report.jobs {
        eprintln!(
            "determinism violation: only {}/{} served reports matched their in-process runs",
            report.deterministic, report.jobs
        );
        std::process::exit(1);
    }
    println!("{}", e19::table(&report).to_pretty_string());

    let json = e19::bench_json(&report, quick);
    let bench_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    if let Err(e) = std::fs::write(bench_path, &json) {
        eprintln!("failed to write {bench_path}: {e}");
        std::process::exit(1);
    }
    println!("snapshot ({bench_path}):\n{json}");

    let metrics = format!(
        "{{\n  \"experiment\": \"e19_service_load\",\n  \"metrics\": {}\n}}\n",
        report.metrics_snapshot.trim_end()
    );
    let metrics_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS_service.json");
    if let Err(e) = std::fs::write(metrics_path, &metrics) {
        eprintln!("failed to write {metrics_path}: {e}");
        std::process::exit(1);
    }
    println!("(metrics snapshot written to {metrics_path})");
}
