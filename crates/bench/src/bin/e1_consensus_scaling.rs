//! E1: consensus time vs n at fixed delta (Theorem 1's O(log log n) term)
//!
//! Usage: `cargo run --release -p bo3-bench --bin e1_consensus_scaling -- [--scale quick|paper] [--csv out.csv]`

fn main() {
    let (scale, csv) = bo3_bench::scale_and_csv_from_args();
    let table = bo3_bench::e01_consensus_scaling::run(scale);
    bo3_bench::emit(&table, csv.as_deref());
}
