//! E20: batched-sampler throughput regression — writes `BENCH_sampler.json`
//! (+ `METRICS_sampler.json`) at the workspace root and **fails** when the
//! implicit/complete throughput ratio regresses below the committed floor.
//!
//! Usage:
//! ```text
//! cargo run --release -p bo3-bench --bin e20_sampler -- [--scale quick|paper]
//! ```
//!
//! `E20_QUICK=1` forces the quick workload whatever `--scale` says (the CI
//! bench-smoke job uses this).  The snapshot records the active
//! group-evaluation backend and the lane occupancy next to the ratios, so
//! a silent fall-back to the portable scalar path is visible in review
//! even when the ratio floor still holds.

use bo3_bench::{e20_sampler as e20, Scale};
use bo3_core::prelude::*;

fn main() {
    let (mut scale, _csv) = bo3_bench::scale_and_csv_from_args();
    if std::env::var("E20_QUICK").as_deref() == Ok("1") {
        scale = Scale::Quick;
    }
    let quick = scale == Scale::Quick;

    let rows = e20::measure_all(scale);
    println!(
        "{}",
        e20::results_table(
            &format!(
                "E20: batched-sampler regression (backend = {})",
                bo3_graph::lane::simd_backend()
            ),
            &rows
        )
        .to_pretty_string()
    );
    let sync_ratio = e20::ratio(&rows[0], &rows[1]);
    let async_ratio = e20::ratio(&rows[2], &rows[3]);
    let speedup = e20::ratio(&rows[4], &rows[1]);

    // One short metered probe carries the full registry snapshot (lane
    // counters included) into METRICS_sampler.json.
    let probe = bo3_bench::obsprobe::probe_spec(
        &TopologySpec::ImplicitGnp {
            n: e20::measure_n(scale),
            p: 0.5,
        },
        0xE20,
        1,
    );

    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"schedule\": \"{}\", \"n\": {}, \"rounds\": {}, \
             \"wall_seconds\": {:.3}, \"updates_per_sec\": {:.0}, \
             \"sampler_tries_per_draw\": {}, \"lane_occupancy\": {}}}",
            r.label,
            r.schedule,
            r.n,
            r.rounds,
            r.wall_seconds,
            r.updates_per_sec,
            bo3_bench::obsprobe::json_opt(r.tries_per_draw),
            bo3_bench::obsprobe::json_opt(r.lane_occupancy),
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"e20_sampler\",\n  \"protocol\": \"best-of-3\",\n  \
         \"quick_mode\": {quick},\n  \"simd_backend\": \"{backend}\",\n  \
         \"implicit_over_complete_sync\": {sync_ratio:.3},\n  \
         \"implicit_over_complete_async\": {async_ratio:.3},\n  \
         \"ratio_floor\": {floor:.3},\n  \
         \"batched_over_scalar_sync\": {speedup:.3},\n  \
         \"speedup_floor\": {speedup_floor:.3},\n  \"rows\": [\n{body}\n  ]\n}}\n",
        backend = bo3_graph::lane::simd_backend(),
        floor = e20::MIN_IMPLICIT_OVER_COMPLETE,
        speedup_floor = e20::MIN_BATCHED_OVER_SCALAR,
    );
    let bench_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sampler.json");
    std::fs::write(bench_path, &json).expect("write BENCH_sampler.json");
    println!("snapshot ({bench_path}):\n{json}");

    bo3_bench::obsprobe::write_metrics_snapshot(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS_sampler.json"),
        "e20_sampler",
        &probe.snapshot_json,
    );

    // Two committed regression floors.  The machine-independent one is the
    // self-relative speedup: the batched lane vs the strict scalar sampler
    // on the *same* implicit G(n, 1/2), same seeds, same engine — losing
    // the lane routing shows up here no matter how fast the box is.  The
    // cross-kernel ratio floor is looser (see MIN_IMPLICIT_OVER_COMPLETE's
    // docs for why the kernels' per-update budgets differ by nature).  The
    // asynchronous ratio is recorded but not gated — its sequential sweep
    // has different bottlenecks (the per-round shuffle dominates at small
    // n) and the sync ratio is the one the lane was built to close.
    assert!(
        speedup >= e20::MIN_BATCHED_OVER_SCALAR,
        "sampler regression: batched/scalar sync speedup {speedup:.3}x fell below the committed \
         floor {:.3}x (see BENCH_sampler.json)",
        e20::MIN_BATCHED_OVER_SCALAR
    );
    assert!(
        sync_ratio >= e20::MIN_IMPLICIT_OVER_COMPLETE,
        "sampler regression: implicit/complete sync throughput ratio {sync_ratio:.3} fell below \
         the committed floor {:.3} (see BENCH_sampler.json)",
        e20::MIN_IMPLICIT_OVER_COMPLETE
    );
    println!(
        "floors hold: batched/scalar {speedup:.3}x >= {:.3}x, implicit/complete sync \
         {sync_ratio:.3} >= {:.3} (async {async_ratio:.3}, backend {})",
        e20::MIN_BATCHED_OVER_SCALAR,
        e20::MIN_IMPLICIT_OVER_COMPLETE,
        bo3_graph::lane::simd_backend(),
    );
}
