//! E2: consensus time vs the initial bias delta (the O(log 1/delta) term)
//!
//! Usage: `cargo run --release -p bo3-bench --bin e2_delta_sweep -- [--scale quick|paper] [--csv out.csv]`

fn main() {
    let (scale, csv) = bo3_bench::scale_and_csv_from_args();
    let table = bo3_bench::e02_delta_sweep::run(scale);
    bo3_bench::emit(&table, csv.as_deref());
}
