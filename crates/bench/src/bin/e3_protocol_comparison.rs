//! E3: Best-of-3 against the voter model, Best-of-2/5 and local majority
//!
//! Usage: `cargo run --release -p bo3-bench --bin e3_protocol_comparison -- [--scale quick|paper] [--csv out.csv]`

fn main() {
    let (scale, csv) = bo3_bench::scale_and_csv_from_args();
    let table = bo3_bench::e03_protocol_comparison::run(scale);
    bo3_bench::emit(&table, csv.as_deref());
}
