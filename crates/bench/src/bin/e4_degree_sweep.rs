//! E4: the minimum-degree condition d = n^alpha on random regular graphs
//!
//! Usage: `cargo run --release -p bo3-bench --bin e4_degree_sweep -- [--scale quick|paper] [--csv out.csv]`

fn main() {
    let (scale, csv) = bo3_bench::scale_and_csv_from_args();
    let table = bo3_bench::e04_degree_sweep::run(scale);
    bo3_bench::emit(&table, csv.as_deref());
}
