//! E5: probability the initial majority wins, Best-of-3 vs the voter model
//!
//! Usage: `cargo run --release -p bo3-bench --bin e5_majority_win_prob -- [--scale quick|paper] [--csv out.csv]`

fn main() {
    let (scale, csv) = bo3_bench::scale_and_csv_from_args();
    let table = bo3_bench::e05_majority_win_prob::run(scale);
    bo3_bench::emit(&table, csv.as_deref());
}
