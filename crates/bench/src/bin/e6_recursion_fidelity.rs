//! E6: equation (1) against the measured blue-fraction trajectory
//!
//! Usage: `cargo run --release -p bo3-bench --bin e6_recursion_fidelity -- [--scale quick|paper] [--csv out.csv]`

fn main() {
    let (scale, csv) = bo3_bench::scale_and_csv_from_args();
    let table = bo3_bench::e06_recursion_fidelity::run(scale);
    bo3_bench::emit(&table, csv.as_deref());
}
