//! E7: voting-DAG collision statistics vs the Lemma 7 bounds
//!
//! Usage: `cargo run --release -p bo3-bench --bin e7_collision_bounds -- [--scale quick|paper] [--csv out.csv]`

fn main() {
    let (scale, csv) = bo3_bench::scale_and_csv_from_args();
    let table = bo3_bench::e07_collision_bounds::run(scale);
    bo3_bench::emit(&table, csv.as_deref());
}
