//! E8: COBRA-walk occupancy growth and cover times (Remark 2)
//!
//! Usage: `cargo run --release -p bo3-bench --bin e8_cobra_walk -- [--scale quick|paper] [--csv out.csv]`

fn main() {
    let (scale, csv) = bo3_bench::scale_and_csv_from_args();
    let table = bo3_bench::e08_cobra_walk::run(scale);
    bo3_bench::emit(&table, csv.as_deref());
}
