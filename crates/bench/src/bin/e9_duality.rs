//! E9: the time-reversal duality between the forward process and the voting-DAG
//!
//! Usage: `cargo run --release -p bo3-bench --bin e9_duality -- [--scale quick|paper] [--csv out.csv]`

fn main() {
    let (scale, csv) = bo3_bench::scale_and_csv_from_args();
    let table = bo3_bench::e09_duality::run(scale);
    bo3_bench::emit(&table, csv.as_deref());
}
