//! E1 — consensus time vs. `n` at fixed `δ` (Theorem 1's `O(log log n)` term).
//!
//! Best-of-Three on dense `G(n, p)` graphs with `p = n^{α−1}` (α = 0.7) and
//! `δ = 0.05`.  The paper predicts the consensus time grows doubly
//! logarithmically in `n`: the measured column should be nearly flat while
//! `n` grows by orders of magnitude, and red must win every replica.

use bo3_core::prelude::*;
use bo3_core::report::Table;

use crate::Scale;

/// The `n` values swept at each scale.
pub fn sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1_000, 4_000, 16_000],
        Scale::Paper => vec![1_000, 4_000, 16_000, 64_000, 128_000],
    }
}

fn replicas(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 5,
        Scale::Paper => 30,
    }
}

/// Runs the sweep and returns one row per `n`.
pub fn run(scale: Scale) -> Table {
    let alpha = 0.7;
    let delta = 0.05;
    let results: Vec<ExperimentResult> = sizes(scale)
        .into_iter()
        .map(|n| {
            Experiment::theorem_one(
                format!("E1/n={n}"),
                GraphSpec::DenseForAlpha { n, alpha },
                delta,
                replicas(scale),
                0xE1 + n as u64,
            )
            .run()
            .expect("E1 experiment failed")
        })
        .collect();
    results_table(
        "E1: consensus time vs n (alpha = 0.7, delta = 0.05)",
        &results,
    )
}

/// The headline check used by tests: consensus time grows sub-logarithmically
/// and red sweeps.
pub fn verify(scale: Scale) -> bool {
    let alpha = 0.7;
    let delta = 0.05;
    let mut means = Vec::new();
    for n in sizes(scale) {
        let r = Experiment::theorem_one(
            format!("E1v/n={n}"),
            GraphSpec::DenseForAlpha { n, alpha },
            delta,
            replicas(scale),
            0xE1 + n as u64,
        )
        .run()
        .expect("E1 experiment failed");
        // Theorem 1 is asymptotic: at the smallest sizes the initial-draw and
        // per-round sampling noise (~1/√n) are comparable to the drift 0.5·δ,
        // so occasional blue wins are legitimate finite-size behaviour (the
        // E1 table reports the raw win rates). Demand a clean sweep only once
        // n is comfortably past that regime, and a red majority of replicas
        // below it.
        if n >= 4_000 && !r.red_swept() {
            return false;
        }
        if r.red_win_rate().unwrap_or(0.0) < 0.5 {
            return false;
        }
        means.push(r.mean_rounds().expect("consensus reached"));
    }
    // The largest instance is 16x (or 500x) bigger than the smallest but the
    // consensus time may grow only by a few rounds.
    let first = means.first().copied().unwrap_or(0.0);
    let last = means.last().copied().unwrap_or(0.0);
    last <= first + 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_table_has_one_row_per_size() {
        let table = run(Scale::Quick);
        assert_eq!(table.num_rows(), sizes(Scale::Quick).len());
        assert!(table.to_csv().contains("E1/n=1000"));
    }

    #[test]
    fn consensus_time_is_nearly_flat_in_n() {
        assert!(verify(Scale::Quick));
    }
}
