//! E2 — consensus time vs. the initial bias `δ` (the `O(log δ⁻¹)` term).
//!
//! On a fixed dense graph, halving `δ` repeatedly should add roughly a
//! constant number of rounds each time (logarithmic dependence), and red must
//! keep winning even for very small `δ` — the regime where the Best-of-k
//! (k ≥ 5) analysis of reference \[1] does not apply but the paper's does.
//!
//! The sweep runs on the *implicit* complete topology
//! (`TopologySpec::Complete`): `K_n` is the same graph either way, but the
//! adjacency-free representation shrinks the working set from `Θ(n²)` CSR
//! arcs to a few machine words, so the paper-scale sweep no longer spends
//! half a gigabyte per point.

use bo3_core::prelude::*;
use bo3_core::report::Table;

use crate::Scale;

/// The δ values swept.
pub fn deltas(scale: Scale) -> Vec<f64> {
    match scale {
        // The smallest quick-scale delta keeps the initial bias at ~4.5
        // sigma for the quick-scale n, so the red sweep the test asserts is
        // a concentration certainty rather than a coin toss; the
        // paper-scale sweep probes the genuinely small-delta regime.
        Scale::Quick => vec![0.2, 0.05, 0.025],
        Scale::Paper => vec![0.2, 0.1, 0.05, 0.025, 0.0125, 0.00625, 0.003125, 0.001],
    }
}

fn graph_size(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 8_000,
        Scale::Paper => 20_000,
    }
}

fn replicas(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 5,
        Scale::Paper => 50,
    }
}

/// Runs the sweep; one row per δ.
pub fn run(scale: Scale) -> Table {
    let n = graph_size(scale);
    let results: Vec<ExperimentResult> = deltas(scale)
        .into_iter()
        .map(|delta| {
            Experiment::theorem_one(
                format!("E2/delta={delta}"),
                TopologySpec::Complete { n },
                delta,
                replicas(scale),
                0xE2,
            )
            .run()
            .expect("E2 experiment failed")
        })
        .collect();
    results_table("E2: consensus time vs delta (complete graph)", &results)
}

/// Check: consensus time grows as δ shrinks, but only additively (log δ⁻¹).
pub fn verify(scale: Scale) -> bool {
    let n = graph_size(scale);
    let ds = deltas(scale);
    let mut means = Vec::new();
    for &delta in &ds {
        let r = Experiment::theorem_one(
            format!("E2v/delta={delta}"),
            TopologySpec::Complete { n },
            delta,
            replicas(scale),
            0xE2,
        )
        .run()
        .expect("E2 experiment failed");
        if !r.red_swept() {
            return false;
        }
        means.push(r.mean_rounds().expect("consensus reached"));
    }
    // Monotone-ish growth, with only additive (logarithmic) cost: each
    // halving of delta costs roughly log_{5/4}(2) ≈ 3 rounds, so budget 4
    // rounds per halving in the sweep plus constant slack (quick: 8x shrink
    // → 16 rounds; paper: 200x shrink → ~35 rounds).
    let first = means.first().copied().unwrap_or(0.0);
    let last = means.last().copied().unwrap_or(0.0);
    let halvings = (ds[0] / ds[ds.len() - 1]).log2();
    last >= first && (last - first) <= 4.0 * halvings + 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_table_shape() {
        let table = run(Scale::Quick);
        assert_eq!(table.num_rows(), deltas(Scale::Quick).len());
    }

    #[test]
    fn smaller_delta_costs_only_additive_rounds() {
        assert!(verify(Scale::Quick));
    }
}
