//! E3 — protocol comparison: Best-of-3 against the baselines of §1.
//!
//! Same dense graph, same initial bias, five protocols.  The qualitative
//! shape the paper's introduction describes: the voter model is orders of
//! magnitude slower (and does not amplify the majority), Best-of-2 and
//! Best-of-3 are both double-logarithmic with Best-of-3 marginally faster,
//! larger odd `k` is faster still, and full local majority is the (more
//! expensive) speed limit.

use bo3_core::prelude::*;
use bo3_core::report::Table;

use crate::Scale;

fn graph_size(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 3_000,
        Scale::Paper => 50_000,
    }
}

fn replicas(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 4,
        Scale::Paper => 30,
    }
}

/// Runs every protocol of the comparison set on the same graph.
pub fn run(scale: Scale) -> Table {
    let n = graph_size(scale);
    let delta = 0.08;
    let mut results = Vec::new();
    for (label, protocol) in comparison_protocols() {
        let is_voter = matches!(protocol, ProtocolSpec::Voter);
        let experiment = Experiment::on(GraphSpec::DenseForAlpha { n, alpha: 0.75 })
            .named(format!("E3/{label}"))
            .protocol(protocol)
            .initial(InitialCondition::BernoulliWithBias { delta })
            .stopping(StoppingCondition::consensus_within(if is_voter {
                3_000_000
            } else {
                20_000
            }))
            .replicas(if is_voter {
                2.min(replicas(scale))
            } else {
                replicas(scale)
            })
            .seed(0xE3);
        results.push(experiment.run().expect("E3 experiment failed"));
    }
    results_table("E3: protocol comparison on a dense graph", &results)
}

/// Check the ordering the paper describes: voter ≫ best-of-2 ≥ best-of-3 ≥
/// best-of-5 ≥ local-majority in consensus time.
pub fn verify(scale: Scale) -> bool {
    let table_rows: Vec<(String, f64)> = {
        let n = graph_size(scale);
        let delta = 0.08;
        comparison_protocols()
            .into_iter()
            .map(|(label, protocol)| {
                let is_voter = matches!(protocol, ProtocolSpec::Voter);
                let experiment = Experiment::on(GraphSpec::DenseForAlpha { n, alpha: 0.75 })
                    .named(format!("E3v/{label}"))
                    .protocol(protocol)
                    .initial(InitialCondition::BernoulliWithBias { delta })
                    .stopping(StoppingCondition::consensus_within(if is_voter {
                        3_000_000
                    } else {
                        20_000
                    }))
                    .replicas(if is_voter { 2 } else { replicas(scale) })
                    .seed(0xE3);
                let r = experiment.run().expect("E3 experiment failed");
                (label.to_string(), r.mean_rounds().unwrap_or(f64::INFINITY))
            })
            .collect()
    };
    let get = |name: &str| {
        table_rows
            .iter()
            .find(|(l, _)| l == name)
            .map(|(_, m)| *m)
            .unwrap_or(f64::INFINITY)
    };
    let voter = get("voter");
    let bo2 = get("best-of-2");
    let bo3 = get("best-of-3");
    let bo5 = get("best-of-5");
    let majority = get("local-majority");
    // Voter is at least an order of magnitude slower than Best-of-3.
    voter > 10.0 * bo3 && bo2 + 1.0 >= bo3 && bo3 + 1.0 >= bo5 && bo5 + 0.5 >= majority
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_five_protocol_rows() {
        let table = run(Scale::Quick);
        assert_eq!(table.num_rows(), 5);
        let csv = table.to_csv();
        assert!(csv.contains("E3/voter"));
        assert!(csv.contains("E3/best-of-3"));
    }

    #[test]
    fn protocol_ordering_matches_the_paper() {
        assert!(verify(Scale::Quick));
    }
}
