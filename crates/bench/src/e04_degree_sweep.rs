//! E4 — the minimum-degree condition: sweep `α` in `d = n^α`.
//!
//! Theorem 1 needs `α = Ω(1/ log log n)`.  Random `d`-regular graphs let us
//! dial the degree exactly; the sweep goes from clearly-outside (constant
//! degree) to clearly-inside (`α` close to 1).  The expected shape: inside
//! the regime the consensus time is flat and red always wins; as the degree
//! drops the consensus time climbs and eventually the minority occasionally
//! survives locally for a long time.

use bo3_core::prelude::*;
use bo3_core::report::Table;

use crate::Scale;

/// The α exponents swept (the first entry deliberately violates the
/// density condition with a constant degree).
pub fn alphas(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![0.25, 0.5, 0.8],
        Scale::Paper => vec![0.15, 0.25, 0.35, 0.5, 0.65, 0.8, 0.95],
    }
}

fn graph_size(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 4_000,
        Scale::Paper => 20_000,
    }
}

fn replicas(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 4,
        Scale::Paper => 30,
    }
}

/// Degree used for a given `(n, alpha)`, rounded to an even number so that
/// `n·d` is always even (a requirement of the pairing model).
pub fn degree_for(n: usize, alpha: f64) -> usize {
    ((((n as f64).powf(alpha)).round() as usize) & !1usize).clamp(2, n - 1)
}

/// Runs the sweep; one row per α.
pub fn run(scale: Scale) -> Table {
    let n = graph_size(scale);
    let delta = 0.1;
    let results: Vec<ExperimentResult> = alphas(scale)
        .into_iter()
        .map(|alpha| {
            let d = degree_for(n, alpha);
            Experiment::theorem_one(
                format!("E4/alpha={alpha}"),
                GraphSpec::RandomRegular { n, d },
                delta,
                replicas(scale),
                0xE4,
            )
            .run()
            .expect("E4 experiment failed")
        })
        .collect();
    results_table(
        "E4: degree sweep d = n^alpha on random regular graphs",
        &results,
    )
}

/// Check: in the dense part of the sweep red sweeps and consensus is fast;
/// consensus time does not increase as the degree grows.
pub fn verify(scale: Scale) -> bool {
    let n = graph_size(scale);
    let delta = 0.1;
    let mut means = Vec::new();
    for alpha in alphas(scale) {
        let d = degree_for(n, alpha);
        let r = Experiment::theorem_one(
            format!("E4v/alpha={alpha}"),
            GraphSpec::RandomRegular { n, d },
            delta,
            replicas(scale),
            0xE4,
        )
        .run()
        .expect("E4 experiment failed");
        if alpha >= 0.5 && !r.red_swept() {
            return false;
        }
        means.push(r.mean_rounds().unwrap_or(f64::INFINITY));
    }
    // Consensus time is (weakly) non-increasing as the degree grows.
    means.windows(2).all(|w| w[1] <= w[0] + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_helper_is_even_and_in_range() {
        assert_eq!(degree_for(4000, 0.5) % 2, 0);
        assert!(degree_for(4000, 0.25) >= 2);
        assert!(degree_for(100, 0.999) < 100);
    }

    #[test]
    fn table_has_one_row_per_alpha() {
        let table = run(Scale::Quick);
        assert_eq!(table.num_rows(), alphas(Scale::Quick).len());
    }

    #[test]
    fn denser_graphs_are_no_slower() {
        assert!(verify(Scale::Quick));
    }
}
