//! E5 — probability that the initial majority wins, Best-of-3 vs. the voter
//! model.
//!
//! The voter model's winner is proportional to the initial share (a 40% blue
//! start wins ≈ 40% of the time), whereas Best-of-Three drives the majority's
//! win probability to 1 even for small biases — the property that makes it a
//! *majority-consensus* protocol rather than merely a consensus protocol.

use bo3_core::prelude::*;
use bo3_core::report::{fmt_f64, Table};

use crate::Scale;

/// The initial blue shares swept (all below 1/2; red is the majority).
pub fn blue_shares(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![0.45, 0.40, 0.30],
        Scale::Paper => vec![0.49, 0.475, 0.45, 0.40, 0.35, 0.30, 0.20],
    }
}

fn graph_size(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 80,
        Scale::Paper => 1_000,
    }
}

fn replicas(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 40,
        Scale::Paper => 200,
    }
}

fn win_rate(
    protocol: ProtocolSpec,
    n: usize,
    blue: usize,
    replicas: usize,
    cap: usize,
    seed: u64,
) -> f64 {
    let experiment = Experiment::on(GraphSpec::Complete { n })
        .named("E5")
        .protocol(protocol)
        .initial(InitialCondition::ExactCount { blue })
        .stopping(StoppingCondition::consensus_within(cap))
        .replicas(replicas)
        .seed(seed);
    experiment
        .run()
        .expect("E5 experiment failed")
        .red_win_rate()
        .unwrap_or(0.0)
}

/// Runs the sweep; one row per initial share with both protocols' win rates
/// and the voter model's theoretical share-proportional prediction.
pub fn run(scale: Scale) -> Table {
    let n = graph_size(scale);
    let mut table = Table::new(
        "E5: probability the initial majority (red) wins",
        &[
            "initial_blue_share",
            "voter_red_win_rate",
            "voter_theory (1 - share)",
            "best_of_3_red_win_rate",
        ],
    );
    for share in blue_shares(scale) {
        let blue = (share * n as f64).round() as usize;
        let voter = win_rate(
            ProtocolSpec::Voter,
            n,
            blue,
            replicas(scale),
            3_000_000,
            0xE5,
        );
        let bo3 = win_rate(
            ProtocolSpec::BestOfThree,
            n,
            blue,
            replicas(scale),
            50_000,
            0xE5 + 1,
        );
        table.push_row(vec![
            fmt_f64(share),
            fmt_f64(voter),
            fmt_f64(1.0 - share),
            fmt_f64(bo3),
        ]);
    }
    table
}

/// Check: Best-of-3 beats the voter model's majority win rate at every share,
/// and the voter model's rate is close to the share-proportional law.
pub fn verify(scale: Scale) -> bool {
    let n = graph_size(scale);
    for share in blue_shares(scale) {
        let blue = (share * n as f64).round() as usize;
        let voter = win_rate(
            ProtocolSpec::Voter,
            n,
            blue,
            replicas(scale),
            3_000_000,
            0xE5,
        );
        let bo3 = win_rate(
            ProtocolSpec::BestOfThree,
            n,
            blue,
            replicas(scale),
            50_000,
            0xE5 + 1,
        );
        let share_law = 1.0 - share;
        // Monte-Carlo tolerance: generous at Quick scale.
        if (voter - share_law).abs() > 0.2 {
            return false;
        }
        if bo3 + 1e-9 < voter {
            return false;
        }
        // Away from the dead heat the amplification should be decisive.
        if share <= 0.40 && bo3 < 0.9 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape() {
        let table = run(Scale::Quick);
        assert_eq!(table.num_rows(), blue_shares(Scale::Quick).len());
        assert_eq!(table.num_columns(), 4);
    }

    #[test]
    fn best_of_three_amplifies_the_majority() {
        assert!(verify(Scale::Quick));
    }
}
