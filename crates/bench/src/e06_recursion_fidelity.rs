//! E6 — equation (1) against the measured blue-fraction trajectory.
//!
//! On the complete graph the voting-DAG is (essentially) a ternary tree, so
//! the blue fraction should follow the recursion `b_{t+1} = 3b_t² − 2b_t³`
//! round by round until finite-size fluctuations take over.  The table prints
//! the two trajectories side by side; the verification computes the maximum
//! absolute gap over the rounds where the blue fraction is still macroscopic.

use bo3_core::prelude::*;
use bo3_core::report::Table;
use bo3_theory::recursion::ideal_trajectory;
use rand::SeedableRng;

use crate::Scale;

fn graph_size(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 6_000,
        Scale::Paper => 20_000,
    }
}

/// The δ values whose trajectories are tabulated.
pub fn deltas(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![0.1],
        Scale::Paper => vec![0.3, 0.1, 0.02],
    }
}

fn measured_trajectory(n: usize, delta: f64, seed: u64) -> Vec<f64> {
    let graph = GraphSpec::Complete { n }
        .generate(&mut rand::rngs::StdRng::seed_from_u64(seed))
        .expect("graph");
    let sim = Engine::on_graph(&graph).expect("engine").with_trace(true);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let init = InitialCondition::BernoulliWithBias { delta }
        .sample(&graph, &mut rng)
        .expect("init");
    let run = sim.run(&BestOfThree::new(), init, &mut rng).expect("run");
    run.trace.expect("trace").blue_fractions()
}

/// Builds the side-by-side trajectory table for the first δ in the sweep.
pub fn run(scale: Scale) -> Table {
    let n = graph_size(scale);
    let delta = deltas(scale)[0];
    let measured = measured_trajectory(n, delta, 0xE6);
    let ideal = ideal_trajectory(0.5 - delta, measured.len().saturating_sub(1));
    trajectory_table(
        &format!("E6: measured vs eq.(1) trajectory (complete graph, n = {n}, delta = {delta})"),
        &measured,
        &ideal,
        "eq(1)",
    )
}

/// Maximum pointwise gap between the measured and predicted blue fractions,
/// over rounds where the predicted fraction is at least `floor`.
pub fn max_gap(n: usize, delta: f64, floor: f64, seed: u64) -> f64 {
    let measured = measured_trajectory(n, delta, seed);
    let ideal = ideal_trajectory(0.5 - delta, measured.len().saturating_sub(1));
    measured
        .iter()
        .zip(ideal.iter())
        .filter(|(_, &p)| p >= floor)
        .map(|(&m, &p)| (m - p).abs())
        .fold(0.0, f64::max)
}

/// Check: the trajectories agree to within a few times `1/√n` while the blue
/// fraction is macroscopic.
pub fn verify(scale: Scale) -> bool {
    let n = graph_size(scale);
    deltas(scale).into_iter().all(|delta| {
        let gap = max_gap(n, delta, 0.01, 0xE6);
        gap < 6.0 / (n as f64).sqrt() + 0.01
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_both_columns() {
        let table = run(Scale::Quick);
        assert!(table.num_rows() >= 3);
        assert!(table.to_csv().contains("eq(1)"));
    }

    #[test]
    fn measured_trajectory_follows_equation_one() {
        assert!(verify(Scale::Quick));
    }
}
