//! E7 — collision statistics of the voting-DAG vs. the bounds of Lemma 7
//! and equation (2).
//!
//! For complete graphs `K_{d+1}` over a range of `d` (minimum degree exactly
//! `d`), the experiment samples voting-DAGs of a fixed height and measures
//! (a) the per-reveal collision
//! rate at each level against `ε_t = 3^{T−t+1}/d`, and (b) the number of
//! collision levels against the mean of the dominating `Bin(h, 9^h/d)`.

use bo3_core::report::{fmt_f64, Table};
use bo3_dag::collisions::{collision_stats, per_reveal_collision_rate};
use bo3_dag::voting_dag::VotingDag;
use bo3_graph::generators;
use bo3_theory::recursion::epsilon;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Scale;

/// Degrees swept.
pub fn degrees(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![32, 128, 512],
        Scale::Paper => vec![32, 64, 128, 256, 512, 1024, 4096],
    }
}

fn trials(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 60,
        Scale::Paper => 500,
    }
}

/// DAG height used throughout E7.
pub const HEIGHT: usize = 4;

/// Measured collision behaviour for one degree.
pub struct CollisionRow {
    /// The graph's degree `d`.
    pub d: usize,
    /// Mean (over trials and levels) per-reveal collision rate.
    pub mean_reveal_rate: f64,
    /// The paper's worst-level bound `ε₁ = 3^T/d` (clamped to 1).
    pub epsilon_bound: f64,
    /// Mean number of collision levels per DAG.
    pub mean_collision_levels: f64,
    /// Mean of the dominating binomial `Bin(h, 9^h/d)` from Lemma 7.
    pub binomial_mean: f64,
}

/// Measures one degree value.
///
/// The graph is the complete graph on `d + 1` vertices, which has minimum
/// degree exactly `d`; Lemma 7's bounds depend only on that minimum degree,
/// and the complete graph is the worst case for neighbourhood overlap, so it
/// stresses the bound hardest.
pub fn measure(d: usize, n_trials: usize, seed: u64) -> CollisionRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::complete(d + 1);
    let mut rate_sum = 0.0;
    let mut rate_count = 0usize;
    let mut levels_sum = 0usize;
    for _ in 0..n_trials {
        let dag = VotingDag::sample(&graph, 0, HEIGHT, &mut rng).expect("dag");
        let stats = collision_stats(&dag);
        levels_sum += stats.collision_levels;
        for t in 1..=HEIGHT {
            rate_sum += per_reveal_collision_rate(&stats, &dag, t);
            rate_count += 1;
        }
    }
    let nine_h = 9f64.powi(HEIGHT as i32);
    CollisionRow {
        d,
        mean_reveal_rate: rate_sum / rate_count.max(1) as f64,
        epsilon_bound: epsilon(HEIGHT, 1, d as f64).min(1.0),
        mean_collision_levels: levels_sum as f64 / n_trials.max(1) as f64,
        binomial_mean: (HEIGHT as f64) * (nine_h / d as f64).min(1.0),
    }
}

/// Runs the sweep; one row per degree.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "E7: voting-DAG collision statistics vs Lemma 7 bounds (height = 4)",
        &[
            "d",
            "mean_per_reveal_collision_rate",
            "epsilon_bound (3^T/d)",
            "mean_collision_levels",
            "Bin(h, 9^h/d) mean",
        ],
    );
    for (i, d) in degrees(scale).into_iter().enumerate() {
        let row = measure(d, trials(scale), 0xE7 + i as u64);
        table.push_row(vec![
            row.d.to_string(),
            fmt_f64(row.mean_reveal_rate),
            fmt_f64(row.epsilon_bound),
            fmt_f64(row.mean_collision_levels),
            fmt_f64(row.binomial_mean),
        ]);
    }
    table
}

/// Check: measured collision rates and collision-level counts never exceed
/// the paper's bounds, and both decrease as `d` grows.
pub fn verify(scale: Scale) -> bool {
    let mut last_rate = f64::INFINITY;
    for (i, d) in degrees(scale).into_iter().enumerate() {
        let row = measure(d, trials(scale), 0xE7 + i as u64);
        if row.mean_reveal_rate > row.epsilon_bound + 1e-9 {
            return false;
        }
        if row.mean_collision_levels > row.binomial_mean.min(HEIGHT as f64) + 1e-9 {
            return false;
        }
        if row.mean_reveal_rate > last_rate + 0.01 {
            return false;
        }
        last_rate = row.mean_reveal_rate;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_one_row_per_degree() {
        let table = run(Scale::Quick);
        assert_eq!(table.num_rows(), degrees(Scale::Quick).len());
    }

    #[test]
    fn collision_rates_respect_the_bounds() {
        assert!(verify(Scale::Quick));
    }
}
