//! E8 — the COBRA-walk view (Remark 2): occupancy growth and cover time.
//!
//! A `k = 3` COBRA walk is the paper's voting-DAG read root-to-leaves.  On
//! good expanders the occupied set triples until it saturates, giving an
//! `O(log n)` cover time — compared against the single random walk's
//! `Θ(n log n)`.  The table reports both on random regular graphs and the
//! hypercube, the two families studied by the COBRA-walk literature the
//! paper cites (references \[3], \[6], \[9]).

use bo3_core::report::{fmt_f64, fmt_opt_f64, Table};
use bo3_dag::cobra::estimate_cover_time;
use bo3_graph::generators;
use bo3_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Scale;

fn trials(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 5,
        Scale::Paper => 30,
    }
}

/// The graphs used at the given scale, as `(label, graph)` pairs.
pub fn graphs(scale: Scale) -> Vec<(String, CsrGraph)> {
    let mut rng = StdRng::seed_from_u64(0xE8);
    match scale {
        Scale::Quick => vec![
            (
                "random-regular(n=512,d=8)".into(),
                generators::random_regular(512, 8, &mut rng).expect("graph"),
            ),
            (
                "hypercube(dim=9)".into(),
                generators::hypercube(9).expect("graph"),
            ),
        ],
        Scale::Paper => vec![
            (
                "random-regular(n=16384,d=16)".into(),
                generators::random_regular(16_384, 16, &mut rng).expect("graph"),
            ),
            (
                "hypercube(dim=14)".into(),
                generators::hypercube(14).expect("graph"),
            ),
            ("complete(n=4096)".into(), generators::complete(4096)),
        ],
    }
}

/// Runs the comparison; one row per graph.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "E8: COBRA walk cover times (k = 3 vs single random walk)",
        &[
            "graph",
            "n",
            "k3_mean_cover",
            "k1_mean_cover",
            "k1_covered_fraction",
            "log2(n)",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0xE8 + 1);
    for (label, graph) in graphs(scale) {
        let n = graph.num_vertices();
        let k3 = estimate_cover_time(&graph, 0, 3, 50_000, trials(scale), &mut rng).expect("cobra");
        // Budget the single walk generously but finitely.
        let k1_budget = 40 * n;
        let k1 = estimate_cover_time(&graph, 0, 1, k1_budget, trials(scale).min(3), &mut rng)
            .expect("walk");
        table.push_row(vec![
            label,
            n.to_string(),
            fmt_opt_f64(k3.mean_cover_time),
            fmt_opt_f64(k1.mean_cover_time),
            fmt_f64(k1.covered as f64 / k1.trials.max(1) as f64),
            fmt_f64((n as f64).log2()),
        ]);
    }
    table
}

/// Check: the k = 3 COBRA walk covers every graph within a small multiple of
/// `log₂ n` steps, and the single walk (k = 1) is at least an order of
/// magnitude slower whenever it covers at all.
pub fn verify(scale: Scale) -> bool {
    let mut rng = StdRng::seed_from_u64(0xE8 + 2);
    for (_, graph) in graphs(scale) {
        let n = graph.num_vertices();
        let k3 = estimate_cover_time(&graph, 0, 3, 50_000, trials(scale), &mut rng).expect("cobra");
        let Some(c3) = k3.mean_cover_time else {
            return false;
        };
        if c3 > 12.0 * (n as f64).log2() {
            return false;
        }
        let k1 = estimate_cover_time(&graph, 0, 1, 40 * n, 2, &mut rng).expect("walk");
        if let Some(c1) = k1.mean_cover_time {
            if c1 < 5.0 * c3 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_one_row_per_graph() {
        let table = run(Scale::Quick);
        assert_eq!(table.num_rows(), graphs(Scale::Quick).len());
    }

    #[test]
    fn cobra_walk_covers_logarithmically_and_beats_the_single_walk() {
        assert!(verify(Scale::Quick));
    }
}
