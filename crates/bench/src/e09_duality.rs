//! E9 — the time-reversal duality `P(ξ_T(v) = B) = P(X_H(v, T) = B)`.
//!
//! The duality is the paper's foundational identity (Section 2).  The
//! experiment estimates both sides by Monte Carlo on several graph families
//! — including sparse ones where the DAG coalesces heavily — and reports the
//! gap relative to the sampling noise.

use bo3_core::prelude::*;
use bo3_core::report::{fmt_f64, Table};
use rand::SeedableRng;

use crate::Scale;

fn trials(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 2_000,
        Scale::Paper => 40_000,
    }
}

/// The `(label, graph spec, rounds, p_blue)` cases checked.
pub fn cases(scale: Scale) -> Vec<(String, GraphSpec, usize, f64)> {
    let base = vec![
        (
            "complete(n=40)".to_string(),
            GraphSpec::Complete { n: 40 },
            3,
            0.4,
        ),
        (
            "cycle(n=16)".to_string(),
            GraphSpec::Cycle { n: 16 },
            4,
            0.45,
        ),
        (
            "gnp(n=60,p=0.2)".to_string(),
            GraphSpec::ErdosRenyiGnp { n: 60, p: 0.2 },
            3,
            0.35,
        ),
    ];
    match scale {
        Scale::Quick => base,
        Scale::Paper => {
            let mut all = base;
            all.push((
                "random-regular(n=200,d=6)".to_string(),
                GraphSpec::RandomRegular { n: 200, d: 6 },
                5,
                0.42,
            ));
            all.push((
                "hypercube(dim=7)".to_string(),
                GraphSpec::Hypercube { dim: 7 },
                5,
                0.45,
            ));
            all
        }
    }
}

/// Runs every case; one row per graph.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "E9: time-reversal duality — forward process vs voting-DAG colouring",
        &[
            "graph",
            "rounds",
            "p_blue",
            "forward_estimate",
            "dag_estimate",
            "difference",
            "noise_scale",
            "consistent",
        ],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE9);
    for (label, spec, rounds, p_blue) in cases(scale) {
        let graph = spec.generate(&mut rng).expect("graph");
        let check = DualityCheck {
            vertex: 0,
            rounds,
            p_blue,
            trials: trials(scale),
            seed: 0xE9,
        };
        let report = check.run(&graph).expect("duality check");
        table.push_row(vec![
            label,
            rounds.to_string(),
            fmt_f64(p_blue),
            fmt_f64(report.forward_estimate),
            fmt_f64(report.dag_estimate),
            fmt_f64(report.difference),
            fmt_f64(report.noise_scale),
            report.consistent().to_string(),
        ]);
    }
    table
}

/// Check: every case is consistent within Monte-Carlo noise.
pub fn verify(scale: Scale) -> bool {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE9);
    cases(scale).into_iter().all(|(_, spec, rounds, p_blue)| {
        let graph = spec.generate(&mut rng).expect("graph");
        let check = DualityCheck {
            vertex: 0,
            rounds,
            p_blue,
            trials: trials(scale),
            seed: 0xE9,
        };
        check.run(&graph).expect("duality check").consistent()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_one_row_per_case() {
        let table = run(Scale::Quick);
        assert_eq!(table.num_rows(), cases(Scale::Quick).len());
    }

    #[test]
    fn duality_is_consistent_on_all_quick_cases() {
        assert!(verify(Scale::Quick));
    }
}
