//! E10 — Figure 1: the Sprinkling process on small voting-DAGs.
//!
//! The paper's only figure illustrates the Sprinkling process on a 2-level
//! DAG: colliding reveals are redirected to fresh, deterministically blue
//! leaves, leaving a collision-free DAG.  This experiment reproduces the
//! figure quantitatively: it samples 2-level DAGs on small graphs, applies
//! the transformation, and reports how many forced-blue leaves were added,
//! that the result is collision-free, and that the monotone coupling
//! `X_H ≤ X_{H′}` holds on every node.

use bo3_core::report::{fmt_f64, Table};
use bo3_dag::colouring::colour_dag;
use bo3_dag::sprinkling::sprinkle;
use bo3_dag::voting_dag::VotingDag;
use bo3_dynamics::opinion::Opinion;
use bo3_graph::generators;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Scale;

fn trials(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 200,
        Scale::Paper => 5_000,
    }
}

/// Graph sizes on which the 2-level DAGs are sampled (small sizes collide a
/// lot, like the paper's illustration; the large one almost never does).
pub fn graph_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![4, 8, 64],
        Scale::Paper => vec![4, 8, 16, 64, 256, 4096],
    }
}

/// Aggregated outcome of the Figure-1 reproduction on one graph size.
pub struct SprinklingRow {
    /// Number of vertices of the complete graph used.
    pub n: usize,
    /// Fraction of sampled DAGs that had at least one collision.
    pub collision_fraction: f64,
    /// Mean number of forced-blue nodes added per DAG.
    pub mean_forced_blue: f64,
    /// Fraction of sprinkled DAGs that are collision-free (must be 1).
    pub collision_free_fraction: f64,
    /// Fraction of (DAG, colouring) pairs where the coupling held on every
    /// node (must be 1).
    pub coupling_fraction: f64,
}

/// Measures one graph size.
pub fn measure(n: usize, n_trials: usize, seed: u64) -> SprinklingRow {
    let graph = generators::complete(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut with_collision = 0usize;
    let mut forced_total = 0usize;
    let mut collision_free = 0usize;
    let mut coupling_ok = 0usize;
    for _ in 0..n_trials {
        let dag = VotingDag::sample(&graph, 0, 2, &mut rng).expect("dag");
        if !dag.is_ternary_tree() {
            with_collision += 1;
        }
        let sprinkled = sprinkle(&dag, 2).expect("sprinkle");
        forced_total += sprinkled.forced_blue_added();
        if sprinkled.is_collision_free() {
            collision_free += 1;
        }
        let leaves: Vec<Opinion> = (0..dag.num_leaves())
            .map(|_| {
                if rng.gen::<f64>() < 0.4 {
                    Opinion::Blue
                } else {
                    Opinion::Red
                }
            })
            .collect();
        let base = colour_dag(&dag, &leaves).expect("colouring");
        let prime = sprinkled.colour(&leaves).expect("sprinkled colouring");
        let mut ok = true;
        for t in 0..=dag.height() {
            for i in 0..dag.level(t).len() {
                if base.colours[t][i].as_value() > prime.colours[t][i].as_value() {
                    ok = false;
                }
            }
        }
        if ok {
            coupling_ok += 1;
        }
    }
    SprinklingRow {
        n,
        collision_fraction: with_collision as f64 / n_trials as f64,
        mean_forced_blue: forced_total as f64 / n_trials as f64,
        collision_free_fraction: collision_free as f64 / n_trials as f64,
        coupling_fraction: coupling_ok as f64 / n_trials as f64,
    }
}

/// Runs the reproduction; one row per graph size.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "E10: Sprinkling process on 2-level DAGs (Figure 1)",
        &[
            "n (complete graph)",
            "dag_collision_fraction",
            "mean_forced_blue_added",
            "sprinkled_collision_free",
            "coupling_holds",
        ],
    );
    for (i, n) in graph_sizes(scale).into_iter().enumerate() {
        let row = measure(n, trials(scale), 0xE10 + i as u64);
        table.push_row(vec![
            row.n.to_string(),
            fmt_f64(row.collision_fraction),
            fmt_f64(row.mean_forced_blue),
            fmt_f64(row.collision_free_fraction),
            fmt_f64(row.coupling_fraction),
        ]);
    }
    table
}

/// Check: sprinkling always removes every collision, the coupling always
/// holds, and small graphs do exhibit collisions (so the test is not vacuous).
pub fn verify(scale: Scale) -> bool {
    let mut saw_collisions = false;
    for (i, n) in graph_sizes(scale).into_iter().enumerate() {
        let row = measure(n, trials(scale), 0xE10 + i as u64);
        if row.collision_free_fraction < 1.0 || row.coupling_fraction < 1.0 {
            return false;
        }
        if n <= 8 && row.collision_fraction > 0.2 {
            saw_collisions = true;
        }
    }
    saw_collisions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_one_row_per_size() {
        let table = run(Scale::Quick);
        assert_eq!(table.num_rows(), graph_sizes(Scale::Quick).len());
    }

    #[test]
    fn sprinkling_reproduces_figure_one_properties() {
        assert!(verify(Scale::Quick));
    }
}
