//! E11 — the three-phase structure of Lemma 4 in measured trajectories.
//!
//! For several `(n, δ)` points, run one traced trajectory, segment it into
//! the bias-amplification and decay phases, and print the observed lengths
//! and growth rate next to the proof's planned `T₃`, `T₂` and the ≥ 5/4
//! growth-rate guarantee.

use bo3_core::prelude::*;
use bo3_core::report::{fmt_f64, fmt_opt_f64, Table};
use bo3_theory::phases::phase_plan;
use rand::SeedableRng;

use crate::Scale;

/// The `(n, delta)` points analysed.
pub fn points(scale: Scale) -> Vec<(usize, f64)> {
    match scale {
        Scale::Quick => vec![(4_000, 0.05), (4_000, 0.2)],
        Scale::Paper => vec![
            (20_000, 0.02),
            (20_000, 0.05),
            (20_000, 0.2),
            (40_000, 0.05),
        ],
    }
}

/// Observed and planned phases for one point.
pub fn measure(
    n: usize,
    delta: f64,
    seed: u64,
) -> (ObservedPhases, Option<bo3_theory::phases::PhasePlan>) {
    let graph = GraphSpec::Complete { n }
        .generate(&mut rand::rngs::StdRng::seed_from_u64(seed))
        .expect("graph");
    let sim = Engine::on_graph(&graph).expect("engine").with_trace(true);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let init = InitialCondition::BernoulliWithBias { delta }
        .sample(&graph, &mut rng)
        .expect("init");
    let run = sim.run(&BestOfThree::new(), init, &mut rng).expect("run");
    let observed = segment_trace(run.trace.as_ref().expect("trace"), n);
    let planned = phase_plan((n - 1) as f64, delta, 2.0);
    (observed, planned)
}

/// Runs the analysis; one row per point.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "E11: observed vs planned phase structure (Lemma 4)",
        &[
            "n",
            "delta",
            "observed_amplification_rounds",
            "planned_T3",
            "observed_bias_growth_rate",
            "guaranteed_rate (5/4)",
            "observed_decay_rounds",
            "planned_T2+1",
            "observed_total",
        ],
    );
    for (i, (n, delta)) in points(scale).into_iter().enumerate() {
        let (obs, plan) = measure(n, delta, 0xE11 + i as u64);
        let (t3, t2) = plan
            .as_ref()
            .map(|p| {
                (
                    p.t3_bias_amplification as f64,
                    (p.t2_quadratic_decay + 1) as f64,
                )
            })
            .unwrap_or((f64::NAN, f64::NAN));
        table.push_row(vec![
            n.to_string(),
            fmt_f64(delta),
            obs.bias_amplification_rounds.to_string(),
            fmt_f64(t3),
            fmt_opt_f64(obs.measured_bias_growth_rate),
            "1.25".into(),
            obs.decay_rounds
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
            fmt_f64(t2),
            obs.total_rounds.to_string(),
        ]);
    }
    table
}

/// Check: the measured bias growth beats the proven 5/4 rate and the
/// observed phases are no longer than the proof's plan.
pub fn verify(scale: Scale) -> bool {
    for (i, (n, delta)) in points(scale).into_iter().enumerate() {
        let (obs, plan) = measure(n, delta, 0xE11 + i as u64);
        let Some(plan) = plan else { return false };
        match obs.measured_bias_growth_rate {
            Some(rate) if rate >= 1.25 => {}
            // A very large delta can start beyond the hand-over point, in
            // which case there is no amplification phase to measure.
            None if delta >= 0.28 => {}
            _ => return false,
        }
        if obs.bias_amplification_rounds > plan.t3_bias_amplification + 2 {
            return false;
        }
        if let Some(decay) = obs.decay_rounds {
            if decay > plan.t2_quadratic_decay + plan.t1_final_step + 4 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_one_row_per_point() {
        let table = run(Scale::Quick);
        assert_eq!(table.num_rows(), points(Scale::Quick).len());
    }

    #[test]
    fn observed_phases_match_lemma_four() {
        assert!(verify(Scale::Quick));
    }
}
