//! E12 — Best-of-3 vs Best-of-k (odd k ≥ 5) at small bias on modest-degree
//! graphs.
//!
//! The comparison the paper draws with Abdullah & Draief \[1]: their analysis
//! of Best-of-k needs `k ≤ d̂_min` and a *large* initial gap, while the
//! paper's Best-of-3 tolerates a bias `δ` that shrinks with `n`.  The
//! experiment measures the majority win rate and the consensus time of
//! `k ∈ {3, 5, 7, 9}` on random regular graphs at a small bias: all of them
//! amplify the majority (larger `k` slightly faster), which is exactly why
//! the interesting question — answered by the theory, not the simulation —
//! is how small `δ` may be, not which `k` is faster at fixed `δ`.

use bo3_core::prelude::*;
use bo3_core::report::Table;

use crate::Scale;

/// The sample sizes `k` compared.
pub const KS: [usize; 4] = [3, 5, 7, 9];

fn graph(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Quick => (4_000, 32),
        Scale::Paper => (100_000, 64),
    }
}

fn replicas(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 5,
        Scale::Paper => 50,
    }
}

/// The small bias used throughout E12.
pub fn delta(scale: Scale) -> f64 {
    match scale {
        Scale::Quick => 0.04,
        Scale::Paper => 0.02,
    }
}

/// Runs the comparison; one row per `k`.
pub fn run(scale: Scale) -> Table {
    let (n, d) = graph(scale);
    let results: Vec<ExperimentResult> = KS
        .iter()
        .map(|&k| {
            let protocol = if k == 3 {
                ProtocolSpec::BestOfThree
            } else {
                ProtocolSpec::BestOfK {
                    k,
                    tie_rule: TieRule::KeepOwn,
                }
            };
            Experiment::on(GraphSpec::RandomRegular { n, d })
                .named(format!("E12/k={k}"))
                .protocol(protocol)
                .initial(InitialCondition::BernoulliWithBias {
                    delta: delta(scale),
                })
                .stopping(StoppingCondition::consensus_within(20_000))
                .replicas(replicas(scale))
                .seed(0xE12)
                .run()
                .expect("E12 experiment failed")
        })
        .collect();
    results_table(
        "E12: Best-of-k at small bias on random regular graphs",
        &results,
    )
}

/// Check: every k amplifies the small bias into a red sweep, and consensus
/// time does not increase with k.
pub fn verify(scale: Scale) -> bool {
    let (n, d) = graph(scale);
    let mut last = f64::INFINITY;
    for &k in &KS {
        let protocol = if k == 3 {
            ProtocolSpec::BestOfThree
        } else {
            ProtocolSpec::BestOfK {
                k,
                tie_rule: TieRule::KeepOwn,
            }
        };
        let r = Experiment::on(GraphSpec::RandomRegular { n, d })
            .named(format!("E12v/k={k}"))
            .protocol(protocol)
            .initial(InitialCondition::BernoulliWithBias {
                delta: delta(scale),
            })
            .stopping(StoppingCondition::consensus_within(20_000))
            .replicas(replicas(scale))
            .seed(0xE12)
            .run()
            .expect("E12 experiment failed");
        if !r.red_swept() {
            return false;
        }
        let mean = r.mean_rounds().unwrap_or(f64::INFINITY);
        if mean > last + 1.0 {
            return false;
        }
        last = mean;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_one_row_per_k() {
        let table = run(Scale::Quick);
        assert_eq!(table.num_rows(), KS.len());
    }

    #[test]
    fn every_k_amplifies_a_small_bias() {
        assert!(verify(Scale::Quick));
    }
}
