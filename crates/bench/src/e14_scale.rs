//! E14 — million-node Best-of-Three on implicit topologies.
//!
//! The paper's regime is *dense* graphs, exactly where materialised CSR
//! adjacency is most wasteful: `Θ(n²)` memory caps every materialised
//! experiment near `n ≈ 10⁴–10⁵`.  This experiment runs Best-of-Three to
//! consensus on the implicit topology layer (`bo3_graph::topology`) at
//! `n = 10⁶` — complete graph, `G(n, p)` and an SBM phase-transition slice —
//! where the whole topology is a few machine words and the working set is
//! the `O(n)` opinion buffers.  Each row reports the topology's actual
//! memory footprint next to the bytes a CSR of the same graph would need,
//! plus consensus rounds and sustained vertex-updates/second.
//!
//! The SBM slice sweeps assortativity at fixed average degree with one
//! community initially all blue: with `p_in ≈ p_out` the graph behaves like
//! `G(n, p)` and reaches global consensus fast; as `p_in / p_out` grows the
//! communities decouple and the dynamics polarise (each block keeps its
//! colour until the round cap) — the phase structure of Shimizu–Shiraga's
//! Best-of-Two/Three SBM analysis, resolvable sharply only at large `n`.

use std::time::Instant;

use bo3_core::prelude::*;
use bo3_core::report::Table;

use crate::Scale;

/// Master seed for the whole experiment.
const SEED: u64 = 0xE14;

/// The `n` used for the headline implicit scenarios at each scale.  Quick
/// mode already runs a full million vertices — the implicit layer makes
/// that CI-feasible — and paper mode doubles down.
pub fn headline_n(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 1_000_000,
        Scale::Paper => 4_000_000,
    }
}

/// Outcome of one timed consensus run on a topology.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Topology label.
    pub label: String,
    /// Number of vertices.
    pub n: usize,
    /// Bytes the topology representation actually uses.
    pub topology_bytes: usize,
    /// Bytes a materialised CSR of the same (expected) graph would need.
    pub csr_equivalent_bytes: u128,
    /// Rounds executed.
    pub rounds: usize,
    /// Consensus winner (`None` when a non-consensus stop fired first).
    pub winner: Option<Opinion>,
    /// Short stop label for tables and snapshots: `"red"`, `"blue"`,
    /// `"floor"` (blue-fraction floor) or `"cap"` (round limit).
    pub stop: &'static str,
    /// Final blue fraction.
    pub final_blue_fraction: f64,
    /// Wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Sustained vertex updates per second (`n · rounds / wall`).
    pub updates_per_sec: f64,
    /// Mean rejection-sampler tries per accepted neighbour draw, measured
    /// by a short metered probe on the same topology (`None` when the
    /// topology runs the unmetered CSR kernel path).
    pub tries_per_draw: Option<f64>,
}

impl ScenarioResult {
    /// `true` when the run ended in red consensus.
    pub fn red_won(&self) -> bool {
        self.winner == Some(Opinion::Red)
    }
}

/// Runs Best-of-Three on `spec` from `initial` until `stopping` fires,
/// timed, as one single-replica [`Experiment`] using every available core
/// — since PR 3 this experiment had to hand-roll its own driver around
/// `TopologySimulator`; the Scenario API now covers it.
///
/// [`TopologySpec::expected_degree`] sizes the CSR-equivalent footprint
/// (`(n + 1)` offsets plus `n·d̄` directed arcs, one machine word each).
/// The wall clock covers the whole experiment — topology build,
/// initial-condition sampling and all rounds — so `updates_per_sec` is
/// end-to-end scenario throughput, a few percent below the engine-only
/// figure the pre-Scenario-API snapshots reported.
pub fn run_consensus(
    spec: TopologySpec,
    initial: &InitialCondition,
    stopping: StoppingCondition,
    seed: u64,
) -> ScenarioResult {
    let label = spec.label();
    let n = spec.num_vertices();
    let expected_degree = spec
        .expected_degree()
        .expect("E14 runs implicit topologies, whose mean degree is closed-form");
    // One metered round pins the sampler's try rate (a property of the
    // topology, not of run length) before the unobserved timed run.
    let tries_per_draw = crate::obsprobe::probe_spec(&spec, seed, 1).tries_per_draw();
    let experiment = Experiment::on(spec)
        .named(format!("E14/{label}"))
        .protocol(ProtocolSpec::BestOfThree)
        .initial(initial.clone())
        .stopping(stopping)
        .replicas(1)
        .seed(seed)
        .threads(0);
    let start = Instant::now();
    let result = experiment.run().expect("scale run");
    let wall = start.elapsed().as_secs_f64();
    let outcome = result.report.outcomes[0];
    let word = std::mem::size_of::<usize>() as u128;
    let arcs = (n as f64 * expected_degree).round() as u128;
    let stop = match outcome.winner {
        Some(Opinion::Red) => "red",
        Some(Opinion::Blue) => "blue",
        // `should_stop` checks the floor before the round cap, so a
        // winner-less run with the final fraction at or below a configured
        // floor stopped there, not at the cap.
        None => match stopping.blue_fraction_floor {
            Some(floor) if outcome.final_blue_fraction <= floor => "floor",
            _ => "cap",
        },
    };
    ScenarioResult {
        label,
        n,
        topology_bytes: result.topology_memory_bytes,
        csr_equivalent_bytes: (n as u128 + 1 + arcs) * word,
        rounds: outcome.rounds,
        winner: outcome.winner,
        stop,
        final_blue_fraction: outcome.final_blue_fraction,
        wall_seconds: wall,
        updates_per_sec: if wall > 0.0 {
            (outcome.rounds as u128 * n as u128) as f64 / wall
        } else {
            0.0
        },
        tries_per_draw,
    }
}

/// The headline scenarios (implicit complete and `G(n, p)`) at size `n`:
/// the paper's initial condition, run to consensus.
pub fn headline_scenarios(n: usize) -> Vec<ScenarioResult> {
    let delta = 0.15;
    let initial = InitialCondition::BernoulliWithBias { delta };
    let stopping = StoppingCondition::consensus_within(10_000);
    vec![
        run_consensus(TopologySpec::Complete { n }, &initial, stopping, SEED),
        run_consensus(
            TopologySpec::ImplicitGnp { n, p: 0.5 },
            &initial,
            stopping,
            SEED + 1,
        ),
    ]
}

/// The assortativity ratios `p_in / p_out` swept by the SBM slice (average
/// degree held fixed across the slice).
///
/// The two-community mean-field map `b_i ← g(α·b_i + (1−α)·b_j)` with
/// `g(p) = 3p² − 2p³` and own-block sample fraction `α = p_in/(p_in+p_out)`
/// has a stable polarized fixed point only for `α ≳ 0.83` (ratio ≳ 5), so
/// the sweep straddles that transition: the low end reaches global
/// consensus like `G(n, p)`, the high end locks into polarisation.
pub fn sbm_ratios(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![1.0, 3.0, 9.0],
        Scale::Paper => vec![1.0, 2.0, 3.0, 4.5, 6.0, 9.0],
    }
}

/// One point of the SBM phase slice: two blocks of `n / 2`, average edge
/// probability `p_avg` split by `ratio = p_in / p_out`, one block initially
/// all blue, capped at `max_rounds`.
pub fn sbm_point(n: usize, p_avg: f64, ratio: f64, max_rounds: usize) -> ScenarioResult {
    // p_avg is the mean of p_in and p_out, so degree stays ~constant as the
    // ratio varies and only the community structure changes.  Probabilities
    // are rounded to 1e-9 so labels and CSV stay readable.
    let p_out = (2.0e9 * p_avg / (1.0 + ratio)).round() / 1e9;
    let p_in = (1e9 * ratio * p_out).round() / 1e9;
    run_consensus(
        TopologySpec::ImplicitSbm {
            n,
            blocks: 2,
            p_in,
            p_out,
        },
        &InitialCondition::PrefixBlue { blue: n / 2 },
        StoppingCondition::consensus_within(max_rounds),
        SEED + (ratio * 1000.0) as u64,
    )
}

/// The SBM phase-transition slice at each scale.
pub fn sbm_slice(scale: Scale) -> Vec<ScenarioResult> {
    let n = match scale {
        Scale::Quick => 100_000,
        Scale::Paper => 1_000_000,
    };
    sbm_ratios(scale)
        .into_iter()
        .map(|ratio| sbm_point(n, 0.4, ratio, 64))
        .collect()
}

/// Formats scenario results as the experiment table.
pub fn results_table(title: &str, results: &[ScenarioResult]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "scenario",
            "n",
            "topo_bytes",
            "csr_bytes",
            "rounds",
            "stop",
            "blue_end",
            "wall_s",
            "updates/s",
            "tries/draw",
        ],
    );
    for r in results {
        table.push_row(vec![
            r.label.clone(),
            r.n.to_string(),
            r.topology_bytes.to_string(),
            r.csr_equivalent_bytes.to_string(),
            r.rounds.to_string(),
            r.stop.to_string(),
            format!("{:.4}", r.final_blue_fraction),
            format!("{:.2}", r.wall_seconds),
            format!("{:.0}", r.updates_per_sec),
            fmt_opt_f64(r.tries_per_draw),
        ]);
    }
    table
}

/// Runs the full experiment at `scale` and returns the table.
pub fn run(scale: Scale) -> Table {
    let mut results = headline_scenarios(headline_n(scale));
    results.extend(sbm_slice(scale));
    results_table(
        &format!(
            "E14: implicit-topology scale (Best-of-3, n = {})",
            headline_n(scale)
        ),
        &results,
    )
}

/// The headline checks, parameterised by `n` so tests can run a smaller
/// instance in debug builds while the bench asserts the full million:
/// red sweeps both headline scenarios, the SBM slice polarises only at the
/// assortative end, and no topology uses more than a kilobyte.
pub fn verify(n: usize, sbm_n: usize) -> bool {
    for r in headline_scenarios(n) {
        if !r.red_won() || r.topology_bytes > 1024 {
            return false;
        }
        // The implicit representation must undercut the CSR equivalent by
        // orders of magnitude — the entire point of the subsystem.
        if (r.topology_bytes as u128) * 1000 > r.csr_equivalent_bytes {
            return false;
        }
    }
    let uniform = sbm_point(sbm_n, 0.4, 1.0, 64);
    let assortative = sbm_point(sbm_n, 0.4, 9.0, 64);
    // Uniform mixing: global consensus well before the cap.  Strong
    // communities: the blue block holds, so the cap fires with blue alive.
    uniform.winner.is_some()
        && assortative.winner.is_none()
        && assortative.final_blue_fraction > 0.25
}

#[cfg(test)]
mod tests {
    use super::*;

    // Debug-build sizes: big enough to span many 4096-vertex kernel chunks
    // and make the memory comparison meaningful, small enough for `cargo
    // test`.  The release-build bench (`benches/e14_scale.rs`, run by the
    // CI scale-smoke job) executes the real n = 10⁶ quick mode.
    const TEST_N: usize = 100_000;
    const TEST_SBM_N: usize = 20_000;

    #[test]
    fn headline_and_sbm_slice_behave_as_predicted() {
        assert!(verify(TEST_N, TEST_SBM_N));
    }

    #[test]
    fn table_has_one_row_per_scenario() {
        let results = [
            headline_scenarios(TEST_N),
            vec![sbm_point(TEST_SBM_N, 0.4, 2.0, 16)],
        ]
        .concat();
        let table = results_table("E14 smoke", &results);
        assert_eq!(table.num_rows(), 3);
        let csv = table.to_csv();
        assert!(csv.contains("implicit_complete"));
        assert!(csv.contains("implicit_gnp"));
        assert!(csv.contains("implicit_sbm"));
    }

    #[test]
    fn consensus_throughput_is_recorded() {
        let r = run_consensus(
            TopologySpec::Complete { n: TEST_N },
            &InitialCondition::BernoulliWithBias { delta: 0.2 },
            StoppingCondition::consensus_within(1_000),
            1,
        );
        assert!(r.red_won());
        assert!(r.rounds > 0);
        assert!(r.updates_per_sec > 0.0);
        assert_eq!(r.n, TEST_N);
    }
}
