//! E15 — degree-ranked (adversarial) initial conditions on the implicit SBM.
//!
//! Theorem 1's proof exploits the i.i.d. `Bernoulli(1/2 − δ)` start; the
//! expander-based analyses it cites work in an *adversarial-placement*
//! setting, and the Best-of-Two/Three SBM literature (Shimizu–Shiraga)
//! probes exactly the regime where placement aligns with community
//! structure.  This experiment runs that adversarial regime at scale: the
//! same blue mass, placed either i.i.d. (the paper's model) or degree-ranked
//! through the topology's **degree oracle** — on an implicit SBM the oracle
//! certifies one concentration window for every degree, so the canonical
//! ranked placement is the community-aligned prefix, the worst case the SBM
//! analyses care about — and compares consensus rounds against the
//! uniform-δ baseline.
//!
//! Everything runs adjacency-free on the unified engine: no `Θ(n)` degree
//! scan is performed anywhere (the pre-oracle code path would have needed
//! `Θ(n²)` hash evaluations just to *rank* a million-vertex SBM).

use bo3_core::prelude::*;
use bo3_core::report::Table;

use crate::Scale;

/// Master seed for the whole experiment.
const SEED: u64 = 0xE15;

/// The red bias shared by both placements.
const DELTA: f64 = 0.15;

/// Vertices at each scale.  The implicit SBM makes the million-vertex
/// adversarial runs routine — quick mode already runs the full `n = 10⁶`
/// regime (as E14 does); tests use a smaller `n` through the parameterised
/// entry points.
pub fn headline_n(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 1_000_000,
        Scale::Paper => 4_000_000,
    }
}

/// The assortativity ratios `p_in / p_out` compared at each scale — all
/// below the mean-field polarisation threshold (ratio ≈ 5 at this average
/// degree), so red consensus is the expected outcome and the interesting
/// signal is the *slowdown* the adversarial placement causes.
pub fn ratios(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![1.0, 3.0],
        Scale::Paper => vec![1.0, 2.0, 3.0, 4.0],
    }
}

/// One comparison row: the same blue mass placed two ways on one SBM.
#[derive(Debug, Clone)]
pub struct ComparisonPoint {
    /// Topology label.
    pub label: String,
    /// Assortativity ratio `p_in / p_out`.
    pub ratio: f64,
    /// Rounds to consensus from the uniform `Bernoulli(1/2 − δ)` start.
    pub uniform_rounds: usize,
    /// Whether red won from the uniform start.
    pub uniform_red: bool,
    /// Rounds to consensus from the degree-ranked (oracle prefix) start.
    pub ranked_rounds: usize,
    /// Whether red won from the degree-ranked start.
    pub ranked_red: bool,
    /// Blue fraction the ranked placement actually realised.
    pub ranked_initial_blue: f64,
}

/// Runs one `(n, ratio)` point: uniform-δ baseline vs degree-ranked worst
/// case, both through the one engine on the implicit SBM.
pub fn compare(n: usize, ratio: f64, max_rounds: usize) -> ComparisonPoint {
    // Two equal communities at average edge probability 0.4, split by the
    // ratio — the same parameterisation as E14's phase slice.
    let p_avg = 0.4;
    let p_out = (2.0e9 * p_avg / (1.0 + ratio)).round() / 1e9;
    let p_in = (1e9 * ratio * p_out).round() / 1e9;
    let spec = TopologySpec::ImplicitSbm {
        n,
        blocks: 2,
        p_in,
        p_out,
    };
    let blue = ((0.5 - DELTA) * n as f64).round() as usize;
    let run = |initial: InitialCondition, salt: u64| {
        Experiment::on(spec.clone())
            .named(format!("E15/{}/{}", spec.label(), initial.label()))
            .protocol(ProtocolSpec::BestOfThree)
            .initial(initial)
            .stopping(StoppingCondition::consensus_within(max_rounds))
            .replicas(1)
            .seed(SEED ^ salt)
            .threads(0)
            .run()
            .expect("E15 run")
    };
    let uniform = run(InitialCondition::BernoulliWithBias { delta: DELTA }, 0);
    // HighestDegreeBlue resolves through the degree oracle: on the
    // equal-block SBM every degree shares one concentration window, so the
    // certified worst case is the community-aligned prefix placement.
    let ranked = run(InitialCondition::HighestDegreeBlue { blue }, 1);
    let outcome = |r: &ExperimentResult| r.report.outcomes[0];
    ComparisonPoint {
        label: spec.label(),
        ratio,
        uniform_rounds: outcome(&uniform).rounds,
        uniform_red: outcome(&uniform).winner == Some(Opinion::Red),
        ranked_rounds: outcome(&ranked).rounds,
        ranked_red: outcome(&ranked).winner == Some(Opinion::Red),
        ranked_initial_blue: outcome(&ranked).initial_blue_fraction,
    }
}

/// All comparison points at `n`.
pub fn comparison_points(n: usize, scale: Scale) -> Vec<ComparisonPoint> {
    ratios(scale)
        .into_iter()
        .map(|ratio| compare(n, ratio, 256))
        .collect()
}

/// Formats the comparison as the experiment table.
pub fn results_table(title: &str, points: &[ComparisonPoint]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "scenario",
            "ratio",
            "uniform_rounds",
            "uniform_winner",
            "ranked_rounds",
            "ranked_winner",
            "ranked_blue0",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.label.clone(),
            format!("{:.1}", p.ratio),
            p.uniform_rounds.to_string(),
            if p.uniform_red { "red" } else { "other" }.to_string(),
            p.ranked_rounds.to_string(),
            if p.ranked_red { "red" } else { "other" }.to_string(),
            format!("{:.4}", p.ranked_initial_blue),
        ]);
    }
    table
}

/// Runs the full experiment at `scale` and returns the table.
pub fn run(scale: Scale) -> Table {
    let n = headline_n(scale);
    results_table(
        &format!("E15: degree-ranked vs uniform initial conditions (implicit SBM, n = {n})"),
        &comparison_points(n, scale),
    )
}

/// The headline checks, parameterised by `n` so tests can run a smaller
/// instance in debug builds: red wins every point under both placements
/// (the ratios stay below the polarisation threshold), the ranked placement
/// realises exactly the requested blue mass, and — at the assortative end —
/// the community-aligned adversarial start is no faster than the uniform
/// one.
pub fn verify(n: usize, scale: Scale) -> bool {
    let points = comparison_points(n, scale);
    for p in &points {
        if !p.uniform_red || !p.ranked_red {
            return false;
        }
        if (p.ranked_initial_blue - (0.5 - DELTA)).abs() > 1.0 / n as f64 {
            return false;
        }
    }
    let Some(assortative) = points.iter().max_by(|a, b| a.ratio.total_cmp(&b.ratio)) else {
        return false;
    };
    assortative.ranked_rounds >= assortative.uniform_rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    // Debug-build size: spans many kernel chunks, seconds under `cargo
    // test`; the release bin runs the headline sizes.
    const TEST_N: usize = 20_000;

    #[test]
    fn adversarial_placement_slows_but_does_not_flip_consensus() {
        assert!(verify(TEST_N, Scale::Quick));
    }

    #[test]
    fn table_has_one_row_per_ratio() {
        let points = comparison_points(TEST_N, Scale::Quick);
        let table = results_table("E15 smoke", &points);
        assert_eq!(table.num_rows(), ratios(Scale::Quick).len());
        assert!(table.to_csv().contains("implicit_sbm"));
    }
}
