//! E18 — the phase-surface campaign: polarisation thresholds on two-block
//! SBMs, measured against the mean-field predictions of `bo3_theory::sbm`.
//!
//! The paper's Best-of-Three theorem covers dense graphs where red sweeps;
//! two-block SBMs are the simplest graphs where it *doesn't* — past a
//! critical assortativity `ratio = p_in / p_out` the blocks decouple and
//! the dynamics lock into polarisation.  Mean-field theory predicts two
//! thresholds (see `bo3_theory::sbm`): a pitchfork at `ratio = 5` on the
//! balanced manifold and full two-dimensional stability at `ratio = 7`,
//! with a placement-dependent basin in between.  This experiment sweeps
//! the `(ratio, δ)` surface for each (schedule × placement) combination
//! and records where the measured polarisation rate crosses ½ next to the
//! theory columns.
//!
//! The sweep runs as a crash-safe [`Campaign`]: every `(schedule,
//! placement, δ, ratio)` cell is one [`Experiment`] with a seed derived
//! from `(campaign seed, cell index)`, results land atomically in the
//! campaign directory, and a killed sweep resumes from its manifest and
//! checkpoints — see the `e18_phase_surface` binary for the SIGINT/SIGTERM
//! wiring.  Because every cell is deterministic, an interrupted-and-resumed
//! campaign produces byte-identical `BENCH_surface*.json` artefacts.
//!
//! Scales: quick mode (`--scale quick`, or forced by `E18_QUICK=1`) runs
//! `n = 20 000` over a coarse grid in seconds; paper mode is the full
//! `n = 10⁶` surface — 2 schedules × 2 placements × 15 ratios × 6 biases ×
//! 8 replicas, hours of compute and precisely the workload the campaign
//! runner's checkpointing exists for.

use bo3_core::bo3_theory::sbm;
use bo3_core::configio::Json;
use bo3_core::prelude::*;
use bo3_core::report::Table;

use crate::Scale;

/// Campaign seed for the whole surface.
pub const SEED: u64 = 0xE18;

/// Average edge probability held fixed as the assortativity ratio varies,
/// so degree stays constant and only community structure changes.
pub const P_AVG: f64 = 0.5;

/// Where the initial blue mass sits relative to the blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Blue i.i.d. with probability `1/2 − δ` everywhere — both blocks
    /// start on the symmetric manifold, which mean-field predicts decays
    /// to consensus at *every* ratio (polarisation needs asymmetry).
    Uniform,
    /// All `(1/2 − δ)·n` blue vertices in block 0 — block fractions
    /// `(1 − 2δ, 0)`, the maximally polarised start whose threshold
    /// `sbm::prefix_threshold_ratio` predicts.
    Prefix,
}

impl Placement {
    /// Label used in cell names, artefact files and tables.
    pub fn label(&self) -> &'static str {
        match self {
            Placement::Uniform => "uniform",
            Placement::Prefix => "prefix",
        }
    }

    /// The initial condition this placement induces at bias `delta`.
    pub fn initial(&self, n: usize, delta: f64) -> InitialCondition {
        match self {
            Placement::Uniform => InitialCondition::BernoulliWithBias { delta },
            Placement::Prefix => InitialCondition::PrefixBlue {
                blue: ((0.5 - delta) * n as f64).round() as usize,
            },
        }
    }
}

/// The schedules swept (labels for names and artefacts).
pub fn schedules() -> Vec<(Schedule, &'static str)> {
    vec![
        (Schedule::Synchronous, "sync"),
        (Schedule::AsynchronousRandomOrder, "async"),
    ]
}

/// The placements swept.
pub fn placements() -> Vec<Placement> {
    vec![Placement::Uniform, Placement::Prefix]
}

/// Grid dimensions of the surface at one scale.
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceParams {
    /// Vertices per cell.
    pub n: usize,
    /// Assortativity ratios `p_in / p_out`, ascending.
    pub ratios: Vec<f64>,
    /// Initial biases `δ` (blue fraction `1/2 − δ`).
    pub deltas: Vec<f64>,
    /// Replicas per cell.
    pub replicas: usize,
    /// Round cap per replica (a capped, split run counts as polarised).
    pub max_rounds: usize,
}

/// The grid at each scale.  Quick straddles both predicted thresholds
/// (5 and 7) with a coarse grid CI can run in seconds; paper resolves the
/// surface at `n = 10⁶` with the full ratio ladder.
pub fn params(scale: Scale) -> SurfaceParams {
    match scale {
        Scale::Quick => SurfaceParams {
            n: 20_000,
            ratios: vec![2.0, 4.0, 6.0, 8.0],
            deltas: vec![0.05, 0.15],
            replicas: 2,
            max_rounds: 30,
        },
        Scale::Paper => SurfaceParams {
            n: 1_000_000,
            ratios: vec![
                1.0, 2.0, 3.0, 4.0, 4.5, 5.0, 5.5, 6.0, 6.5, 7.0, 7.5, 8.0, 9.0, 10.0, 12.0,
            ],
            deltas: vec![0.0, 0.05, 0.1, 0.15, 0.2, 0.25],
            replicas: 8,
            max_rounds: 200,
        },
    }
}

/// One grid cell's coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct CellCoord {
    /// The engine schedule.
    pub schedule: Schedule,
    /// Schedule label.
    pub schedule_label: &'static str,
    /// Blue-mass placement.
    pub placement: Placement,
    /// Initial bias.
    pub delta: f64,
    /// Assortativity ratio.
    pub ratio: f64,
}

/// The full grid in campaign-cell order: schedule → placement → δ → ratio
/// (ratio innermost and ascending, so threshold scans read consecutive
/// cells).
pub fn grid(params: &SurfaceParams) -> Vec<CellCoord> {
    let mut cells = Vec::new();
    for (schedule, schedule_label) in schedules() {
        for placement in placements() {
            for &delta in &params.deltas {
                for &ratio in &params.ratios {
                    cells.push(CellCoord {
                        schedule,
                        schedule_label,
                        placement,
                        delta,
                        ratio,
                    });
                }
            }
        }
    }
    cells
}

/// The SBM spec at one ratio: two blocks of `n / 2`, probabilities rounded
/// to 1e-9 (matching E14) so labels and JSON stay readable.
pub fn sbm_spec(n: usize, ratio: f64) -> TopologySpec {
    let p_out = (2.0e9 * P_AVG / (1.0 + ratio)).round() / 1e9;
    let p_in = (1e9 * ratio * p_out).round() / 1e9;
    TopologySpec::ImplicitSbm {
        n,
        blocks: 2,
        p_in,
        p_out,
    }
}

/// The experiment one cell runs (seed is stamped by the campaign).
pub fn cell_experiment(params: &SurfaceParams, coord: &CellCoord) -> Experiment {
    Experiment::on(sbm_spec(params.n, coord.ratio))
        .named(format!(
            "e18/{}/{}/d{:.2}/r{:.1}",
            coord.schedule_label,
            coord.placement.label(),
            coord.delta,
            coord.ratio
        ))
        .protocol(ProtocolSpec::BestOfThree)
        .initial(coord.placement.initial(params.n, coord.delta))
        .schedule(coord.schedule)
        .stopping(StoppingCondition::consensus_within(params.max_rounds))
        .replicas(params.replicas)
        .threads(0)
}

/// The whole surface as one crash-safe campaign.
pub fn build_campaign(name: &str, params: &SurfaceParams) -> Campaign {
    grid(params)
        .iter()
        .fold(Campaign::new(name, SEED), |campaign, coord| {
            campaign.add_cell(cell_experiment(params, coord))
        })
}

/// One measured point of a surface (`None` fields when the cell was
/// skipped).
#[derive(Debug, Clone, PartialEq)]
pub struct SurfacePoint {
    /// Assortativity ratio.
    pub ratio: f64,
    /// Initial bias.
    pub delta: f64,
    /// Fraction of replicas that ended polarised.
    pub polarisation_rate: Option<f64>,
    /// Fraction of replicas that reached consensus.
    pub consensus_rate: Option<f64>,
    /// Mean final blue fraction.
    pub mean_final_blue: Option<f64>,
}

/// Measured-vs-theory threshold comparison for one `δ` row of a surface.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdRow {
    /// Initial bias.
    pub delta: f64,
    /// Smallest swept ratio with polarisation rate ≥ ½ (`None` when no
    /// swept ratio polarises — expected for the uniform placement).
    pub measured_ratio: Option<f64>,
    /// Mean-field pitchfork on the balanced manifold (`ratio = 5`).
    pub pitchfork_ratio: f64,
    /// Full two-dimensional stability threshold (`ratio = 7`).
    pub stable_ratio: f64,
    /// Basin threshold for the prefix start at this `δ` (`None` for the
    /// uniform placement, or when no ratio up to the scan cap polarises).
    pub prefix_ratio: Option<f64>,
}

/// One (schedule × placement) sheet of the surface.
#[derive(Debug, Clone, PartialEq)]
pub struct Surface {
    /// Schedule label (`"sync"` / `"async"`).
    pub schedule: &'static str,
    /// Placement label (`"uniform"` / `"prefix"`).
    pub placement: &'static str,
    /// Vertices per cell.
    pub n: usize,
    /// Replicas per cell.
    pub replicas: usize,
    /// Measured grid points, in grid order.
    pub points: Vec<SurfacePoint>,
    /// One threshold comparison per `δ`.
    pub thresholds: Vec<ThresholdRow>,
}

/// Assembles the per-(schedule × placement) surfaces from the campaign's
/// cell results (`results[i]` pairs with `grid(params)[i]`; `None` =
/// skipped cell).
pub fn surfaces(params: &SurfaceParams, results: &[Option<CellResult>]) -> Vec<Surface> {
    let coords = grid(params);
    assert_eq!(coords.len(), results.len(), "grid/results length mismatch");
    let mut sheets = Vec::new();
    for (_, schedule_label) in schedules() {
        for placement in placements() {
            let sheet: Vec<(&CellCoord, &Option<CellResult>)> = coords
                .iter()
                .zip(results)
                .filter(|(c, _)| c.schedule_label == schedule_label && c.placement == placement)
                .collect();
            let points = sheet
                .iter()
                .map(|(c, r)| SurfacePoint {
                    ratio: c.ratio,
                    delta: c.delta,
                    polarisation_rate: r.as_ref().map(|r| r.polarisation_rate),
                    consensus_rate: r.as_ref().map(|r| r.consensus_rate),
                    mean_final_blue: r.as_ref().map(|r| r.mean_final_blue),
                })
                .collect();
            let thresholds = params
                .deltas
                .iter()
                .map(|&delta| {
                    let measured_ratio = sheet
                        .iter()
                        .filter(|(c, _)| c.delta == delta)
                        .find(|(_, r)| r.as_ref().is_some_and(|r| r.polarisation_rate >= 0.5))
                        .map(|(c, _)| c.ratio);
                    ThresholdRow {
                        delta,
                        measured_ratio,
                        pitchfork_ratio: sbm::critical_ratio(),
                        stable_ratio: sbm::stable_polarisation_ratio(),
                        prefix_ratio: match placement {
                            Placement::Uniform => None,
                            Placement::Prefix => sbm::prefix_threshold_ratio(delta, 30.0, 0.25),
                        },
                    }
                })
                .collect();
            sheets.push(Surface {
                schedule: schedule_label,
                placement: placement.label(),
                n: params.n,
                replicas: params.replicas,
                points,
                thresholds,
            });
        }
    }
    sheets
}

fn opt_float(value: Option<f64>) -> Json {
    match value {
        Some(v) => Json::Float(v),
        None => Json::Null,
    }
}

/// A surface as deterministic JSON — grid coordinates, measured rates and
/// theory columns only, never wall-clock, so interrupted-and-resumed
/// campaigns regenerate identical artefacts.
pub fn surface_json(surface: &Surface) -> Json {
    Json::Obj(vec![
        ("schedule".into(), Json::Str(surface.schedule.into())),
        ("placement".into(), Json::Str(surface.placement.into())),
        ("n".into(), Json::UInt(surface.n as u64)),
        ("replicas".into(), Json::UInt(surface.replicas as u64)),
        (
            "points".into(),
            Json::Arr(
                surface
                    .points
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("ratio".into(), Json::Float(p.ratio)),
                            ("delta".into(), Json::Float(p.delta)),
                            ("polarisation_rate".into(), opt_float(p.polarisation_rate)),
                            ("consensus_rate".into(), opt_float(p.consensus_rate)),
                            ("mean_final_blue".into(), opt_float(p.mean_final_blue)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "thresholds".into(),
            Json::Arr(
                surface
                    .thresholds
                    .iter()
                    .map(|t| {
                        Json::Obj(vec![
                            ("delta".into(), Json::Float(t.delta)),
                            ("measured_ratio".into(), opt_float(t.measured_ratio)),
                            ("pitchfork_ratio".into(), Json::Float(t.pitchfork_ratio)),
                            ("stable_ratio".into(), Json::Float(t.stable_ratio)),
                            ("prefix_ratio".into(), opt_float(t.prefix_ratio)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The combined artefact: every sheet under one `surfaces` array.
pub fn combined_json(sheets: &[Surface]) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str("e18_phase_surface".into())),
        ("campaign_seed".into(), Json::UInt(SEED)),
        (
            "surfaces".into(),
            Json::Arr(sheets.iter().map(surface_json).collect()),
        ),
    ])
}

/// Writes the artefacts into `dir` (atomically, like every campaign file):
/// `BENCH_surface_<schedule>_<placement>.json` per sheet plus the combined
/// `BENCH_surface.json`.  Returns the file names written.
pub fn write_artefacts(dir: &std::path::Path, sheets: &[Surface]) -> Result<Vec<String>> {
    std::fs::create_dir_all(dir).map_err(CoreError::from)?;
    let mut written = Vec::new();
    for sheet in sheets {
        let name = format!("BENCH_surface_{}_{}.json", sheet.schedule, sheet.placement);
        atomic_write(&dir.join(&name), &surface_json(sheet).to_json_string())?;
        written.push(name);
    }
    let combined = "BENCH_surface.json".to_string();
    atomic_write(
        &dir.join(&combined),
        &combined_json(sheets).to_json_string(),
    )?;
    written.push(combined);
    Ok(written)
}

/// Formats the threshold comparison as the experiment table.
pub fn thresholds_table(sheets: &[Surface]) -> Table {
    let mut table = Table::new(
        "E18: SBM polarisation thresholds — measured vs mean-field",
        &[
            "schedule",
            "placement",
            "delta",
            "measured",
            "pitchfork",
            "stable",
            "prefix_theory",
        ],
    );
    for sheet in sheets {
        for t in &sheet.thresholds {
            table.push_row(vec![
                sheet.schedule.to_string(),
                sheet.placement.to_string(),
                format!("{:.2}", t.delta),
                fmt_opt_f64(t.measured_ratio),
                format!("{:.1}", t.pitchfork_ratio),
                format!("{:.1}", t.stable_ratio),
                fmt_opt_f64(t.prefix_ratio),
            ]);
        }
    }
    table
}

/// Runs the whole campaign in `dir` (resuming whatever is already there)
/// and, when it completes, writes the artefacts and returns the sheets.
/// Returns `Ok(None)` when the cancel flag interrupted the run — the
/// directory is resumable by calling again.
pub fn run_campaign(
    scale: Scale,
    dir: &std::path::Path,
    cancel: std::sync::Arc<std::sync::atomic::AtomicBool>,
    rounds_per_slice: usize,
) -> Result<Option<Vec<Surface>>> {
    let params = params(scale);
    let campaign = build_campaign("e18/phase-surface", &params);
    let runner = CampaignRunner::new(campaign, dir)
        .rounds_per_slice(rounds_per_slice)
        .with_cancel_flag(cancel);
    match runner.run()? {
        CampaignOutcome::Interrupted => Ok(None),
        CampaignOutcome::Completed => {
            let results = runner.load_results()?;
            let sheets = surfaces(&params, &results);
            write_artefacts(dir, &sheets)?;
            Ok(Some(sheets))
        }
    }
}

/// One row of the read-only `--status` view: a cell's manifest state.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusRow {
    /// Cell index within the grid.
    pub index: usize,
    /// The cell experiment's name.
    pub name: String,
    /// Status label: `"pending"`, `"in-flight"`, `"done"` or `"skipped"`.
    pub status: &'static str,
    /// Attempts started so far (manifest v2 meta).
    pub attempts: u32,
    /// Checkpoint resumes so far.
    pub resumes: u32,
    /// Accumulated wall time driving the cell, in milliseconds.
    pub wall_ms: u64,
}

/// Grid progress assembled from `manifest.json` without touching the
/// campaign: no directory is created, no file is written, no cell runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStatus {
    /// Cells never started.
    pub pending: usize,
    /// Cells started but not finished (what a kill leaves behind).
    pub in_flight: usize,
    /// Cells completed.
    pub done: usize,
    /// Cells abandoned after the retry budget.
    pub skipped: usize,
    /// Per-cell rows, in grid order.
    pub rows: Vec<StatusRow>,
}

impl CampaignStatus {
    /// Total cells in the grid.
    pub fn total(&self) -> usize {
        self.pending + self.in_flight + self.done + self.skipped
    }

    /// Accumulated wall time across every cell, in milliseconds.
    pub fn total_wall_ms(&self) -> u64 {
        self.rows.iter().map(|r| r.wall_ms).sum()
    }

    /// One-line progress summary for the binary.
    pub fn summary(&self) -> String {
        format!(
            "{}/{} done, {} in flight, {} pending, {} skipped — {:.1}s wall so far",
            self.done,
            self.total(),
            self.in_flight,
            self.pending,
            self.skipped,
            self.total_wall_ms() as f64 / 1000.0
        )
    }

    /// The per-cell progress table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "E18 campaign status",
            &["cell", "name", "status", "attempts", "resumes", "wall_ms"],
        );
        for r in &self.rows {
            table.push_row(vec![
                r.index.to_string(),
                r.name.clone(),
                r.status.to_string(),
                r.attempts.to_string(),
                r.resumes.to_string(),
                r.wall_ms.to_string(),
            ]);
        }
        table
    }
}

/// Reads the campaign's grid progress from `dir` (read-only — safe to run
/// while another process drives the campaign, thanks to the atomic-write
/// discipline: `manifest.json` is always whole).  A directory with no
/// manifest reports every cell pending.
pub fn status(scale: Scale, dir: &std::path::Path) -> Result<CampaignStatus> {
    let params = params(scale);
    status_of(build_campaign("e18/phase-surface", &params), dir)
}

/// [`status`] for an explicit campaign — the testable core (the surface
/// campaign is just one caller).
pub fn status_of(campaign: Campaign, dir: &std::path::Path) -> Result<CampaignStatus> {
    let runner = CampaignRunner::new(campaign, dir);
    let manifest = runner.load_manifest()?;
    let mut counts = [0usize; 4];
    let rows = manifest
        .statuses
        .iter()
        .zip(&manifest.cells)
        .enumerate()
        .map(|(index, (status, meta))| {
            let (slot, label) = match status {
                CellStatus::Pending => (0, "pending"),
                CellStatus::InFlight { .. } => (1, "in-flight"),
                CellStatus::Done => (2, "done"),
                CellStatus::Skipped { .. } => (3, "skipped"),
            };
            counts[slot] += 1;
            StatusRow {
                index,
                name: runner.campaign().cells[index].name.clone(),
                status: label,
                attempts: meta.attempts,
                resumes: meta.resumes,
                wall_ms: meta.wall_ms,
            }
        })
        .collect();
    Ok(CampaignStatus {
        pending: counts[0],
        in_flight: counts[1],
        done: counts[2],
        skipped: counts[3],
        rows,
    })
}

/// Runs the campaign in a scale-named subdirectory of `target/` and
/// returns the threshold table — the uninterruptible entry point used by
/// `run(scale)`/tests; the binary drives `run_campaign` directly so it can
/// wire up signals.
pub fn run(scale: Scale) -> Table {
    let scale = if std::env::var("E18_QUICK").as_deref() == Ok("1") {
        Scale::Quick
    } else {
        scale
    };
    let dir = std::env::temp_dir().join(format!(
        "bo3_e18_{}_{}",
        match scale {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        },
        std::process::id()
    ));
    let sheets = run_campaign(
        scale,
        &dir,
        std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false)),
        64,
    )
    .expect("e18 campaign")
    .expect("no cancel flag was set");
    let table = thresholds_table(&sheets);
    let _ = std::fs::remove_dir_all(&dir);
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Debug-build grid: one δ, the two extreme ratios, tiny n — enough to
    /// exercise the campaign plumbing and the physics sign (nothing
    /// polarises at ratio 2; the prefix start at ratio 8 keeps blue alive).
    fn tiny_params() -> SurfaceParams {
        SurfaceParams {
            n: 4_000,
            ratios: vec![2.0, 8.0],
            deltas: vec![0.05],
            replicas: 2,
            max_rounds: 24,
        }
    }

    fn run_tiny(dir: &std::path::Path) -> Vec<Surface> {
        let params = tiny_params();
        let campaign = build_campaign("e18/tiny", &params);
        let runner = CampaignRunner::new(campaign, dir).rounds_per_slice(8);
        assert_eq!(runner.run().unwrap(), CampaignOutcome::Completed);
        let results = runner.load_results().unwrap();
        surfaces(&params, &results)
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bo3_e18_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn grid_covers_every_combination_in_order() {
        let params = params(Scale::Quick);
        let cells = grid(&params);
        assert_eq!(cells.len(), 2 * 2 * 2 * 4);
        // Ratio is innermost and ascending.
        assert_eq!(cells[0].ratio, 2.0);
        assert_eq!(cells[3].ratio, 8.0);
        assert_eq!(cells[0].delta, cells[3].delta);
        let campaign = build_campaign("e18/check", &params);
        assert_eq!(campaign.cells.len(), cells.len());
    }

    #[test]
    fn sbm_spec_holds_average_degree_fixed() {
        for ratio in [1.0, 5.0, 9.0] {
            if let TopologySpec::ImplicitSbm { p_in, p_out, .. } = sbm_spec(10_000, ratio) {
                assert!((0.5 * (p_in + p_out) - P_AVG).abs() < 1e-6, "ratio {ratio}");
                assert!((p_in / p_out - ratio).abs() < 1e-6, "ratio {ratio}");
            } else {
                panic!("sbm_spec must build an implicit SBM");
            }
        }
    }

    #[test]
    fn tiny_surface_matches_the_mean_field_signs() {
        let dir = temp_dir("signs");
        let sheets = run_tiny(&dir);
        assert_eq!(sheets.len(), 4);
        for sheet in &sheets {
            for point in &sheet.points {
                let rate = point.polarisation_rate.expect("no cell skipped");
                if point.ratio < sbm::critical_ratio() {
                    // Below the pitchfork nothing polarises, whatever the
                    // schedule or placement.
                    assert_eq!(rate, 0.0, "{}/{}", sheet.schedule, sheet.placement);
                }
                if sheet.placement == "uniform" {
                    // The symmetric start decays to consensus at any ratio.
                    assert_eq!(rate, 0.0, "uniform must not polarise");
                }
            }
            for t in &sheet.thresholds {
                assert_eq!(t.pitchfork_ratio, 5.0);
                assert_eq!(t.stable_ratio, 7.0);
                if let Some(measured) = t.measured_ratio {
                    assert!(
                        measured >= t.pitchfork_ratio,
                        "measured threshold below the pitchfork"
                    );
                }
            }
        }
        // The prefix start at ratio 8 (above both thresholds) keeps blue
        // alive on at least one schedule.
        let polarised_prefix = sheets
            .iter()
            .filter(|s| s.placement == "prefix")
            .flat_map(|s| &s.points)
            .any(|p| p.ratio == 8.0 && p.polarisation_rate == Some(1.0));
        assert!(polarised_prefix, "prefix start must polarise at ratio 8");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn artefacts_are_deterministic_across_interrupted_resume() {
        let params = tiny_params();

        // One-shot run.
        let dir_a = temp_dir("oneshot");
        let sheets_a = run_tiny(&dir_a);
        write_artefacts(&dir_a, &sheets_a).unwrap();

        // Interrupted run: cancel after the first checkpoint flush, then
        // resume with a fresh runner (as a restarted process would).
        let dir_b = temp_dir("resumed");
        let campaign = build_campaign("e18/tiny", &params);
        let runner = CampaignRunner::new(campaign, &dir_b).rounds_per_slice(3);
        runner.cancel_flag().store(true, Ordering::SeqCst);
        assert_eq!(runner.run().unwrap(), CampaignOutcome::Interrupted);
        let sheets_b = run_tiny(&dir_b);
        write_artefacts(&dir_b, &sheets_b).unwrap();

        assert_eq!(sheets_a, sheets_b);
        for name in [
            "BENCH_surface_sync_uniform.json",
            "BENCH_surface_sync_prefix.json",
            "BENCH_surface_async_uniform.json",
            "BENCH_surface_async_prefix.json",
            "BENCH_surface.json",
        ] {
            assert_eq!(
                std::fs::read_to_string(dir_a.join(name)).unwrap(),
                std::fs::read_to_string(dir_b.join(name)).unwrap(),
                "{name}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn run_campaign_reports_interruption_and_resumes() {
        let dir = temp_dir("cancelled");
        let cancel = Arc::new(AtomicBool::new(true));
        // Already-cancelled: pauses before any cell, writes no artefacts.
        let paused = run_campaign(Scale::Quick, &dir, cancel, 8).unwrap();
        assert!(paused.is_none());
        assert!(!dir.join("BENCH_surface.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_reports_pending_before_and_done_after_a_run() {
        let dir = temp_dir("status");
        let params = tiny_params();

        // Before anything runs: no manifest, every cell pending, and the
        // read is genuinely read-only (the directory stays absent).
        let fresh = status_of(build_campaign("e18/tiny", &params), &dir).unwrap();
        assert_eq!(fresh.pending, 8);
        assert_eq!((fresh.done, fresh.in_flight, fresh.skipped), (0, 0, 0));
        assert!(!dir.exists(), "--status must not create the directory");

        run_tiny(&dir);
        let manifest_bytes = std::fs::read(dir.join("manifest.json")).unwrap();
        let after = status_of(build_campaign("e18/tiny", &params), &dir).unwrap();
        assert_eq!(after.done, 8);
        assert_eq!(after.total(), 8);
        assert!(after.rows.iter().all(|r| r.attempts >= 1));
        assert!(after.summary().starts_with("8/8 done"));
        assert_eq!(after.table().num_rows(), 8);
        // Still read-only after the campaign completed.
        assert_eq!(
            std::fs::read(dir.join("manifest.json")).unwrap(),
            manifest_bytes
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn surface_json_is_parseable_and_complete() {
        let sheet = Surface {
            schedule: "sync",
            placement: "prefix",
            n: 1_000,
            replicas: 2,
            points: vec![SurfacePoint {
                ratio: 8.0,
                delta: 0.05,
                polarisation_rate: Some(1.0),
                consensus_rate: Some(0.0),
                mean_final_blue: Some(0.5),
            }],
            thresholds: vec![ThresholdRow {
                delta: 0.05,
                measured_ratio: Some(8.0),
                pitchfork_ratio: 5.0,
                stable_ratio: 7.0,
                prefix_ratio: Some(7.25),
            }],
        };
        let text = combined_json(&[sheet]).to_json_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("experiment").and_then(|j| j.as_str()),
            Some("e18_phase_surface")
        );
        let surfaces = parsed.get("surfaces").and_then(|j| j.as_array()).unwrap();
        assert_eq!(surfaces.len(), 1);
        assert!(text.contains("\"pitchfork_ratio\":5.0"));
        assert!(text.contains("\"stable_ratio\":7.0"));
    }
}
