//! E19: service load generator — throughput and stream latency of the
//! `bo3-serve` daemon under concurrent mixed submissions.
//!
//! Starts an in-process daemon on an ephemeral port, fans a mixed batch of
//! experiments (implicit complete, implicit `G(n, p)`, bipartite) at it
//! from several client connections at once, streams every job to its
//! terminal line, and measures:
//!
//! * **jobs/s** — accepted-to-done throughput over the whole batch;
//! * **stream latency** — p50/p99 of the inter-arrival gaps between a
//!   job's streamed round updates (how fresh a subscriber's view is);
//! * **queue depth** — the deepest backlog the scheduler saw, sampled from
//!   the daemon's own `service_queue_depth` gauge;
//! * **determinism** — every served report is compared (`==`, which for
//!   the config-IO float layout means bit-identical) against an in-process
//!   [`Experiment::run`] of the same config.
//!
//! The binary writes `BENCH_service.json` at the workspace root so the
//! service's performance trajectory is tracked across PRs, alongside
//! `METRICS_service.json` with the daemon's own registry snapshot.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bo3_core::prelude::*;
use bo3_core::report::Table;
use bo3_serve::{Client, Service, ServiceConfig, ServiceHandle};

use crate::Scale;

/// One measured load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Jobs submitted (= jobs finished; determinism checks all of them).
    pub jobs: usize,
    /// Concurrent client connections used to submit and stream.
    pub clients: usize,
    /// Daemon worker threads.
    pub workers: usize,
    /// Wall time for the whole batch, seconds.
    pub wall_seconds: f64,
    /// Accepted-to-done throughput.
    pub jobs_per_sec: f64,
    /// Median gap between consecutive streamed updates of a job, ms.
    pub p50_update_gap_ms: f64,
    /// 99th-percentile gap, ms.
    pub p99_update_gap_ms: f64,
    /// Total streamed round updates observed.
    pub updates: usize,
    /// Deepest queue backlog sampled during the run.
    pub max_queue_depth: i64,
    /// Served reports that compared `==` against the in-process run.
    pub deterministic: usize,
    /// The daemon's registry snapshot after the run.
    pub metrics_snapshot: String,
}

/// The mixed workload: small enough for CI, varied enough to exercise the
/// implicit samplers and the materialised path side by side.
fn workload(scale: Scale) -> Vec<Experiment> {
    let (reps, copies) = match scale {
        Scale::Quick => (2usize, 2usize),
        Scale::Paper => (8, 8),
    };
    let n_scale = match scale {
        Scale::Quick => 1usize,
        Scale::Paper => 10,
    };
    let shapes: Vec<(&str, TopologySpec)> = vec![
        (
            "complete",
            TopologySpec::Complete {
                n: 30_000 * n_scale,
            },
        ),
        (
            "gnp",
            TopologySpec::ImplicitGnp {
                n: 20_000 * n_scale,
                p: 0.2,
            },
        ),
        (
            "bipartite",
            TopologySpec::CompleteBipartite {
                a: 10_000 * n_scale,
                b: 10_000 * n_scale,
            },
        ),
    ];
    let mut jobs = Vec::new();
    for copy in 0..copies {
        for (tag, spec) in &shapes {
            let idx = jobs.len();
            jobs.push(
                Experiment::on(spec.clone())
                    .named(format!("e19/{tag}/{copy}"))
                    .initial(InitialCondition::BernoulliWithBias { delta: 0.15 })
                    .replicas(reps)
                    .seed(0xE19_0000 + idx as u64),
            );
        }
    }
    jobs
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let pos = (q * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[pos.min(sorted_ms.len() - 1)]
}

/// Runs the load against `handle`, returning the measured report.
fn drive(handle: &ServiceHandle, scale: Scale, clients: usize) -> Result<LoadReport> {
    let jobs = workload(scale);
    let total = jobs.len();
    let addr = handle.local_addr();
    let max_depth = Arc::new(AtomicI64::new(0));
    let depth_gauge = handle.metrics().queue_depth.clone();

    let started = Instant::now();
    let mut threads = Vec::new();
    for (worker_idx, chunk) in jobs.chunks(total.div_ceil(clients)).enumerate() {
        let chunk: Vec<Experiment> = chunk.to_vec();
        let max_depth = Arc::clone(&max_depth);
        let depth_gauge = Arc::clone(&depth_gauge);
        threads.push(std::thread::spawn(
            move || -> Result<(Vec<f64>, usize, usize)> {
                let mut client = Client::connect(addr)?;
                let mut gaps_ms = Vec::new();
                let mut deterministic = 0usize;
                let mut updates = 0usize;
                // Submit the whole chunk first so the queue actually backs up…
                let mut ids = Vec::new();
                for experiment in &chunk {
                    ids.push(client.submit(experiment)?);
                    max_depth.fetch_max(depth_gauge.get(), Ordering::SeqCst);
                }
                // …then stream every job to its terminal line.
                for (experiment, job) in chunk.iter().zip(ids) {
                    let mut stream = Client::connect(addr)?;
                    stream.send(&Request::Stream { job })?;
                    let mut last = Instant::now();
                    let report = loop {
                        max_depth.fetch_max(depth_gauge.get(), Ordering::SeqCst);
                        match stream.recv()? {
                            Response::Update(_) => {
                                let now = Instant::now();
                                gaps_ms.push(now.duration_since(last).as_secs_f64() * 1e3);
                                last = now;
                                updates += 1;
                            }
                            Response::Done { result, .. } => break result,
                            other => {
                                return Err(CoreError::Report {
                                    reason: format!(
                                        "job {job} ({}) ended abnormally: {}",
                                        experiment.name,
                                        other.to_json_string()
                                    ),
                                })
                            }
                        }
                    };
                    let direct = experiment.run()?;
                    if report.report == direct.report {
                        deterministic += 1;
                    }
                }
                let _ = worker_idx;
                Ok((gaps_ms, deterministic, updates))
            },
        ));
    }
    let mut gaps_ms: Vec<f64> = Vec::new();
    let mut deterministic = 0usize;
    let mut updates = 0usize;
    for thread in threads {
        let (gaps, det, ups) = thread.join().expect("load client thread")?;
        gaps_ms.extend(gaps);
        deterministic += det;
        updates += ups;
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    gaps_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite gaps"));
    Ok(LoadReport {
        jobs: total,
        clients,
        workers: 0, // stamped by the caller
        wall_seconds,
        jobs_per_sec: total as f64 / wall_seconds.max(1e-9),
        p50_update_gap_ms: percentile(&gaps_ms, 0.50),
        p99_update_gap_ms: percentile(&gaps_ms, 0.99),
        updates,
        max_queue_depth: max_depth.load(Ordering::SeqCst),
        deterministic,
        metrics_snapshot: String::new(), // stamped by the caller
    })
}

/// Starts a daemon, runs the load, drains, and returns the report.
pub fn run(scale: Scale) -> Result<LoadReport> {
    let workers = match scale {
        Scale::Quick => 4,
        Scale::Paper => 8,
    };
    let clients = workers;
    // Slice of one round: every round boundary publishes an update, so the
    // p50/p99 gaps below measure genuine per-round stream latency.
    let handle = Service::start(ServiceConfig {
        workers,
        rounds_per_slice: 1,
        ..ServiceConfig::default()
    })
    .map_err(CoreError::from)?;
    let mut report = drive(&handle, scale, clients)?;
    report.workers = workers;
    report.metrics_snapshot = handle.registry().snapshot_json();
    handle.drain_and_join();
    Ok(report)
}

/// The report as a one-row table.
pub fn table(report: &LoadReport) -> Table {
    let mut table = Table::new(
        "E19: service load (bo3-serve daemon)",
        &[
            "jobs",
            "clients",
            "workers",
            "wall_s",
            "jobs_per_s",
            "p50_gap_ms",
            "p99_gap_ms",
            "updates",
            "max_queue",
            "bit_identical",
        ],
    );
    table.push_row(vec![
        report.jobs.to_string(),
        report.clients.to_string(),
        report.workers.to_string(),
        format!("{:.3}", report.wall_seconds),
        format!("{:.2}", report.jobs_per_sec),
        format!("{:.3}", report.p50_update_gap_ms),
        format!("{:.3}", report.p99_update_gap_ms),
        report.updates.to_string(),
        report.max_queue_depth.to_string(),
        format!("{}/{}", report.deterministic, report.jobs),
    ]);
    table
}

/// The `BENCH_service.json` body (hand-rendered; the vendored serde has no
/// serializer).
pub fn bench_json(report: &LoadReport, quick_mode: bool) -> String {
    format!(
        "{{\n  \"experiment\": \"e19_service_load\",\n  \"quick_mode\": {quick_mode},\n  \
         \"jobs\": {},\n  \"clients\": {},\n  \"workers\": {},\n  \
         \"wall_seconds\": {:.3},\n  \"jobs_per_sec\": {:.3},\n  \
         \"p50_update_gap_ms\": {:.3},\n  \"p99_update_gap_ms\": {:.3},\n  \
         \"updates\": {},\n  \"max_queue_depth\": {},\n  \
         \"bit_identical_jobs\": {},\n  \"total_jobs\": {}\n}}\n",
        report.jobs,
        report.clients,
        report.workers,
        report.wall_seconds,
        report.jobs_per_sec,
        report.p50_update_gap_ms,
        report.p99_update_gap_ms,
        report.updates,
        report.max_queue_depth,
        report.deterministic,
        report.jobs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_load_is_deterministic_and_measured() {
        let report = run(Scale::Quick).unwrap();
        assert_eq!(report.deterministic, report.jobs, "served != in-process");
        assert!(report.jobs_per_sec > 0.0);
        assert!(report.updates > 0);
        assert!(report.metrics_snapshot.contains("service_jobs_done_total"));
        let json = bench_json(&report, true);
        assert!(json.contains("\"experiment\": \"e19_service_load\""));
        assert_eq!(table(&report).num_rows(), 1);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&sorted, 0.5), 3.0);
        assert_eq!(percentile(&sorted, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
