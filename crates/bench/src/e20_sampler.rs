//! E20 — batched-sampler throughput regression (kernel vs implicit).
//!
//! The complete-graph kernel samples neighbours in one closed-form try;
//! the hash-defined topologies rejection-sample, which historically left
//! implicit `G(n, 1/2)` an order of magnitude behind the kernel.  The
//! draw-ahead lane (`bo3_graph::lane`) closes that gap without changing a
//! single accepted draw; this experiment is the tracked regression that
//! keeps it closed:
//!
//! * times seeded Best-of-Three rounds — engine-only, no scenario
//!   scaffolding — on the complete graph and on implicit `G(n, 1/2)`,
//!   under both schedules, plus the implicit sync cell re-run with the
//!   lane disabled ([`ScalarSampled`]) as the pre-lane baseline;
//! * reports the implicit/complete throughput **ratio** per schedule
//!   (gated by [`MIN_IMPLICIT_OVER_COMPLETE`]) and the batched/scalar
//!   **speedup** on the identical topology (gated by
//!   [`MIN_BATCHED_OVER_SCALAR`] — self-relative, so it holds on any
//!   machine) in the `e20_sampler` binary, which writes
//!   `BENCH_sampler.json` and `METRICS_sampler.json` at the workspace
//!   root;
//! * records the lane's batch occupancy (candidates consumed vs drawn)
//!   and the active group-evaluation backend (`avx2` or `scalar`), so a
//!   silent backend switch shows up in the snapshot.
//!
//! The CI bench-smoke job runs the binary in quick mode (`E20_QUICK=1`)
//! and fails when either gate regresses below its floor.

use std::time::Instant;

use bo3_core::prelude::*;
use bo3_core::report::Table;
use bo3_graph::{BuiltTopology, ScalarSampled, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Scale;

/// Master seed for the whole experiment.
const SEED: u64 = 0xE20;

/// `G(n, p)` edge probability of the implicit scenario — the paper's dense
/// headline and the rejection sampler's worst-friendly case (every other
/// candidate misses).
const P: f64 = 0.5;

/// Committed floor for the implicit `G(n, 1/2)` over complete-graph
/// throughput ratio under the synchronous schedule.
///
/// This ratio is a cross-kernel comparison, so it is machine-sensitive:
/// the complete-graph kernel is pure RNG + bit ops (~7 ns/update here)
/// while the implicit sampler must also evaluate a 128-bit-mixing pair
/// hash per candidate by construction — at `p = 1/2` that is six tries
/// (six hashes, six Lemire reductions) per Best-of-Three update, an
/// irreducible ~35 ns of work the complete kernel simply does not do.
/// Measured 0.07–0.12 sync on the reference shared-vCPU box (complete
/// kernel 90–145M updates/s unobserved, batched implicit 10.5–14M); the
/// floor sits below the worst observed run so steal noise does not flap
/// CI.  This gate catches catastrophic sampler regressions (a hash or
/// dispatch blow-up); the *lane-specific* guarantee is
/// [`MIN_BATCHED_OVER_SCALAR`], which compares the same topology to
/// itself and is machine-independent.
pub const MIN_IMPLICIT_OVER_COMPLETE: f64 = 0.05;

/// Committed floor for the batched-lane over strict-scalar sampling
/// throughput ratio on implicit `G(n, 1/2)` under the synchronous
/// schedule — the self-relative speedup gate.
///
/// Both measurements run the identical seeded engine on the identical
/// frozen edge set (the baseline hides the pair-hash spec behind
/// [`ScalarSampled`], forcing the pre-lane rejection sampler), so this
/// ratio cancels machine speed and RNG cost: it is the lane's genuine
/// contribution.  Measured ~1.1x end-to-end on the reference box (the
/// sampler-only gap is ~1.4x; per-update engine work common to both
/// paths dilutes it); the floor keeps headroom for noise while still
/// failing if the lane routing regresses to a wash.
pub const MIN_BATCHED_OVER_SCALAR: f64 = 1.05;

/// Rounds timed per measurement (after one untimed warm-up round).
fn timed_rounds(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 4,
        Scale::Paper => 16,
    }
}

/// Timed repetitions per cell; the row keeps the **fastest** repetition.
/// Shared-vCPU steal only ever makes a run look slower, so best-of-N is
/// the estimator that converges on the machine's true throughput (and on
/// the noisy boxes this bench gates CI on, single-shot wall clock swings
/// by ±30%).
const TIMED_REPS: usize = 3;

/// Vertices per measurement.
pub fn measure_n(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 1_000_000,
        Scale::Paper => 4_000_000,
    }
}

/// One timed measurement: a topology × schedule cell.
#[derive(Debug, Clone)]
pub struct SamplerRow {
    /// Topology label.
    pub label: String,
    /// Schedule label (`"sync"` / `"async"`).
    pub schedule: &'static str,
    /// Number of vertices.
    pub n: usize,
    /// Rounds timed.
    pub rounds: u64,
    /// Wall-clock seconds over the timed rounds.
    pub wall_seconds: f64,
    /// Sustained vertex updates per second.
    pub updates_per_sec: f64,
    /// Mean sampler tries per accepted draw (`None` on the unmetered
    /// closed-form kernel path).
    pub tries_per_draw: Option<f64>,
    /// Lane batch occupancy — candidates consumed as tries over candidates
    /// pre-drawn (`None` when the run never took the lane path).
    pub lane_occupancy: Option<f64>,
}

/// Times `rounds` seeded Best-of-Three rounds of `schedule` on the
/// topology `spec` builds, after one untimed warm-up round.
///
/// The timed engine runs **unobserved**: the sampler meter costs two
/// atomic counter bumps per scalar draw, which at the complete-graph
/// kernel's per-update budget (a handful of nanoseconds) would swamp the
/// quantity under measurement — while the lane path meters once per
/// chunk, so observing the timed run would bias the ratio in the lane's
/// favour.  The sampler statistics (tries per draw, lane occupancy) come
/// from a separate short metered run of the same seeded rounds, whose
/// draws are bit-identical by the observer contract.
///
/// Synchronous rounds step the same initial configuration repeatedly
/// (round timing, not trajectory); asynchronous rounds run one seeded
/// fixed-round slice per measurement, matching how each schedule is
/// driven end to end.
pub fn measure(spec: &TopologySpec, schedule: Schedule, rounds: u64, seed: u64) -> SamplerRow {
    measure_wrapped(spec, schedule, rounds, seed, |t| t)
}

/// [`measure`] with the topology forced onto the strict scalar rejection
/// sampler via [`ScalarSampled`] — the pre-lane baseline, measured under
/// the identical engine, schedule and seeds.  The lane/scalar throughput
/// ratio of the two rows is the self-relative speedup
/// [`MIN_BATCHED_OVER_SCALAR`] gates on.
pub fn measure_scalar_baseline(
    spec: &TopologySpec,
    schedule: Schedule,
    rounds: u64,
    seed: u64,
) -> SamplerRow {
    measure_wrapped(spec, schedule, rounds, seed, ScalarSampled)
}

fn measure_wrapped<T, W>(
    spec: &TopologySpec,
    schedule: Schedule,
    rounds: u64,
    seed: u64,
    wrap: W,
) -> SamplerRow
where
    T: Topology,
    W: Fn(BuiltTopology) -> T,
{
    let topo = spec.build(seed).expect("e20 topology");
    let n = topo.n();
    let label = wrap(topo).label();
    let mut rng = StdRng::seed_from_u64(seed);
    let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
        .sample_n(n, &mut rng)
        .expect("e20 init");
    let engine = build_engine(spec, schedule, rounds, seed, &wrap);
    let wall = match schedule {
        Schedule::Synchronous => {
            let mut scratch = Vec::new();
            engine.step_seeded_kind(
                ProtocolKind::BestOfThree,
                &init,
                &mut scratch,
                seed,
                u64::MAX,
            );
            let mut best = f64::INFINITY;
            for _ in 0..TIMED_REPS {
                let start = Instant::now();
                for round in 0..rounds {
                    engine.step_seeded_kind(
                        ProtocolKind::BestOfThree,
                        &init,
                        &mut scratch,
                        seed,
                        round,
                    );
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            best
        }
        Schedule::AsynchronousRandomOrder => {
            engine
                .run_seeded_kind(ProtocolKind::BestOfThree, init.clone(), seed ^ 1)
                .expect("e20 warm-up");
            let mut best = f64::INFINITY;
            for _ in 0..TIMED_REPS {
                let start = Instant::now();
                engine
                    .run_seeded_kind(ProtocolKind::BestOfThree, init.clone(), seed)
                    .expect("e20 async slice");
                best = best.min(start.elapsed().as_secs_f64());
            }
            best
        }
    };
    // The metered twin: one seeded round with the observer installed, for
    // the sampler statistics the timed run deliberately skipped.
    let metered =
        build_engine(spec, schedule, 1, seed, &wrap).with_observer(MetricsObserver::new());
    match schedule {
        Schedule::Synchronous => {
            let mut scratch = Vec::new();
            metered.step_seeded_kind(ProtocolKind::BestOfThree, &init, &mut scratch, seed, 0);
        }
        Schedule::AsynchronousRandomOrder => {
            metered
                .run_seeded_kind(ProtocolKind::BestOfThree, init, seed)
                .expect("e20 metered round");
        }
    }
    let meter = metered.observer().meter();
    SamplerRow {
        label,
        schedule: match schedule {
            Schedule::Synchronous => "sync",
            Schedule::AsynchronousRandomOrder => "async",
        },
        n,
        rounds,
        wall_seconds: wall,
        updates_per_sec: if wall > 0.0 {
            (rounds as u128 * n as u128) as f64 / wall
        } else {
            0.0
        },
        tries_per_draw: (meter.accepts() > 0)
            .then(|| meter.tries() as f64 / meter.accepts() as f64),
        lane_occupancy: meter.lane_occupancy(),
    }
}

/// An unobserved engine on the (wrapped) topology `spec` builds, under
/// `schedule`, capped at `rounds` rounds, all cores.
fn build_engine<T, W>(
    spec: &TopologySpec,
    schedule: Schedule,
    rounds: u64,
    seed: u64,
    wrap: &W,
) -> Engine<T>
where
    T: Topology,
    W: Fn(BuiltTopology) -> T,
{
    Engine::new(wrap(spec.build(seed).expect("e20 topology")))
        .expect("e20 engine")
        .with_schedule(schedule)
        .with_stopping(StoppingCondition::fixed_rounds(rounds as usize))
        .with_threads(0)
}

/// The five measurement cells: {complete, implicit `G(n, 1/2)`} × {sync,
/// async} at `n = measure_n(scale)`, plus the strict-scalar baseline of
/// the implicit sync cell (rows `[4]`) for the self-relative speedup.
pub fn measure_all(scale: Scale) -> Vec<SamplerRow> {
    let n = measure_n(scale);
    let rounds = timed_rounds(scale);
    let complete = TopologySpec::Complete { n };
    let gnp = TopologySpec::ImplicitGnp { n, p: P };
    vec![
        measure(&complete, Schedule::Synchronous, rounds, SEED),
        measure(&gnp, Schedule::Synchronous, rounds, SEED),
        measure(&complete, Schedule::AsynchronousRandomOrder, rounds, SEED),
        measure(&gnp, Schedule::AsynchronousRandomOrder, rounds, SEED),
        measure_scalar_baseline(&gnp, Schedule::Synchronous, rounds, SEED),
    ]
}

/// The implicit-over-complete throughput ratio of one schedule's row pair.
pub fn ratio(complete: &SamplerRow, implicit: &SamplerRow) -> f64 {
    if complete.updates_per_sec > 0.0 {
        implicit.updates_per_sec / complete.updates_per_sec
    } else {
        0.0
    }
}

/// Formats measurement rows as the experiment table.
pub fn results_table(title: &str, rows: &[SamplerRow]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "scenario",
            "schedule",
            "n",
            "rounds",
            "wall_s",
            "updates/s",
            "tries/draw",
            "lane_occupancy",
        ],
    );
    for r in rows {
        table.push_row(vec![
            r.label.clone(),
            r.schedule.to_string(),
            r.n.to_string(),
            r.rounds.to_string(),
            format!("{:.3}", r.wall_seconds),
            format!("{:.0}", r.updates_per_sec),
            crate::obsprobe::json_opt(r.tries_per_draw),
            crate::obsprobe::json_opt(r.lane_occupancy),
        ]);
    }
    table
}

/// Runs the full experiment at `scale` and returns the table.
pub fn run(scale: Scale) -> Table {
    let rows = measure_all(scale);
    let sync_ratio = ratio(&rows[0], &rows[1]);
    let async_ratio = ratio(&rows[2], &rows[3]);
    let speedup = ratio(&rows[4], &rows[1]);
    results_table(
        &format!(
            "E20: batched-sampler regression (backend = {}, implicit/complete sync = {:.3}, \
             async = {:.3}, batched/scalar = {:.2}x)",
            bo3_graph::lane::simd_backend(),
            sync_ratio,
            async_ratio,
            speedup,
        ),
        &rows,
    )
}

/// The regression checks, parameterised by `n` so debug-build tests can run
/// a smaller instance: the implicit rows must have taken the lane path
/// (occupancy reported, in `(0, 1]`), the complete rows must not, and try
/// counts must match the scalar sampler's `≈ 1/p` expectation.
pub fn verify(n: usize, rounds: u64) -> bool {
    let complete = measure(
        &TopologySpec::Complete { n },
        Schedule::Synchronous,
        rounds,
        SEED,
    );
    let implicit = measure(
        &TopologySpec::ImplicitGnp { n, p: P },
        Schedule::Synchronous,
        rounds,
        SEED,
    );
    let scalar = measure_scalar_baseline(
        &TopologySpec::ImplicitGnp { n, p: P },
        Schedule::Synchronous,
        rounds,
        SEED,
    );
    let occupancy_ok = match implicit.lane_occupancy {
        Some(occ) => occ > 0.0 && occ <= 1.0,
        None => false,
    };
    let tries_ok = match implicit.tries_per_draw {
        Some(rate) => (1.5..3.0).contains(&rate),
        None => false,
    };
    // The scalar baseline rejects at the same ≈ 1/p rate but must never
    // take the lane (that is the wrapper's contract).
    let scalar_ok = scalar.lane_occupancy.is_none()
        && scalar
            .tries_per_draw
            .is_some_and(|rate| (1.5..3.0).contains(&rate));
    occupancy_ok && tries_ok && scalar_ok && complete.lane_occupancy.is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Debug-build size: spans many 4096-vertex chunks; the release-mode
    // binary (CI bench-smoke) measures the real million-vertex ratio.
    const TEST_N: usize = 50_000;

    #[test]
    fn implicit_rows_take_the_lane_path_and_complete_rows_do_not() {
        assert!(verify(TEST_N, 2));
    }

    #[test]
    fn table_has_one_row_per_cell() {
        let rows = vec![
            measure(
                &TopologySpec::Complete { n: TEST_N },
                Schedule::Synchronous,
                1,
                SEED,
            ),
            measure(
                &TopologySpec::ImplicitGnp { n: TEST_N, p: P },
                Schedule::AsynchronousRandomOrder,
                1,
                SEED,
            ),
        ];
        let table = results_table("E20 smoke", &rows);
        assert_eq!(table.num_rows(), 2);
        let csv = table.to_csv();
        assert!(csv.contains("implicit_complete"));
        assert!(csv.contains("implicit_gnp"));
        assert!(csv.contains("sync"));
        assert!(csv.contains("async"));
    }

    #[test]
    fn async_implicit_measurement_reports_lane_occupancy() {
        let row = measure(
            &TopologySpec::ImplicitGnp { n: TEST_N, p: P },
            Schedule::AsynchronousRandomOrder,
            2,
            SEED,
        );
        let occ = row
            .lane_occupancy
            .expect("async seeded rounds take the lane");
        assert!(occ > 0.0 && occ <= 1.0, "occupancy {occ}");
        assert!(row.updates_per_sec > 0.0);
    }
}
