//! # bo3-bench
//!
//! The experiment harness that regenerates every quantitative claim of the
//! paper (experiments E1–E12 of `DESIGN.md` / `EXPERIMENTS.md`), plus the
//! scale experiment E14 (million-node Best-of-Three on the implicit
//! topology layer) and the crash-safe E18 phase-surface campaign (SBM
//! polarisation thresholds vs mean-field theory, resumable after any kill).
//!
//! Each experiment lives in its own module with a single entry point
//! `run(scale)` returning a [`bo3_core::report::Table`]; the binaries in
//! `src/bin/` print that table (and write CSV next to it), the Criterion
//! benches in `benches/` time the computational kernel of the same
//! experiment, and the unit tests run the `Quick` scale so the whole harness
//! is exercised by `cargo test`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod e01_consensus_scaling;
pub mod e02_delta_sweep;
pub mod e03_protocol_comparison;
pub mod e04_degree_sweep;
pub mod e05_majority_win_prob;
pub mod e06_recursion_fidelity;
pub mod e07_collision_bounds;
pub mod e08_cobra_walk;
pub mod e09_duality;
pub mod e10_sprinkling_figure;
pub mod e11_phase_structure;
pub mod e12_best_of_k;
pub mod e14_scale;
pub mod e15_degree_ranked;
pub mod e18_phase_surface;
pub mod e19_service_load;
pub mod e20_sampler;
pub mod obsprobe;

use bo3_core::report::Table;

/// How big an experiment should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale parameters, used by `cargo test` and the Criterion benches.
    Quick,
    /// The parameters quoted in `EXPERIMENTS.md`; minutes-scale on a laptop.
    Paper,
}

impl std::str::FromStr for Scale {
    type Err = std::convert::Infallible;

    /// Parses `--scale quick|paper` style values; unrecognised values fall
    /// back to [`Scale::Quick`], so parsing never fails.
    fn from_str(s: &str) -> Result<Scale, Self::Err> {
        Ok(match s.trim().to_ascii_lowercase().as_str() {
            "paper" | "full" => Scale::Paper,
            _ => Scale::Quick,
        })
    }
}

/// Shared entry point used by the experiment binaries: print the table to
/// stdout and, when `csv_path` is given, also write it as CSV.
pub fn emit(table: &Table, csv_path: Option<&str>) {
    println!("{}", table.to_pretty_string());
    if let Some(path) = csv_path {
        match table.write_csv(path) {
            Ok(()) => println!("(CSV written to {path})"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Standard argument handling for the experiment binaries:
/// `--scale quick|paper` and `--csv <path>`.
pub fn scale_and_csv_from_args() -> (Scale, Option<String>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut csv = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().unwrap_or(Scale::Quick);
                i += 2;
            }
            "--csv" if i + 1 < args.len() => {
                csv = Some(args[i + 1].clone());
                i += 2;
            }
            _ => i += 1,
        }
    }
    (scale, csv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!("paper".parse(), Ok(Scale::Paper));
        assert_eq!("FULL".parse(), Ok(Scale::Paper));
        assert_eq!("quick".parse(), Ok(Scale::Quick));
        assert_eq!("anything-else".parse(), Ok(Scale::Quick));
    }
}
