//! Shared observability probe for the perf-snapshot benches.
//!
//! The PR 8 observability layer threads a [`MetricsObserver`] through the
//! engine; this module packages the two ways the benches consume it:
//!
//! * [`probe_spec`] — a short, seeded, fully deterministic engine run with
//!   the observer installed, returning the rejection-sampling tally
//!   (tries vs accepted draws) plus the whole registry snapshot.  The
//!   observer contract guarantees the probe *reads* the simulation without
//!   perturbing it, so the numbers describe exactly the draws an
//!   unobserved run would have made.
//! * [`write_metrics_snapshot`] — lands a registry snapshot as a
//!   `METRICS_*.json` file next to the corresponding `BENCH_*.json`, in the
//!   uniform envelope the CI bench-smoke job schema-checks:
//!   `{"experiment": ..., "metrics": {"counters": ..., "gauges": ...,
//!   "histograms": ...}}`.
//!
//! Tries-per-accepted-draw is a property of the topology's neighbour
//! sampler, not of run length: closed-form topologies (complete, bipartite,
//! multipartite, CSR rows) draw in one try by construction, while the
//! frozen-hash `G(n, p)` / SBM samplers rejection-sample and land near the
//! geometric mean `1/p̄` of their row densities.  A couple of rounds is
//! therefore enough to pin the statistic.

use bo3_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// What a probe run measured: the rejection-sampling tally and the full
/// registry snapshot of the observed engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Probe {
    /// Candidate draws attempted by the neighbour sampler.
    pub tries: u64,
    /// Draws accepted (one per returned neighbour).
    pub accepts: u64,
    /// The observer registry's JSON snapshot (counters, gauges, histograms).
    pub snapshot_json: String,
}

impl Probe {
    /// Mean tries per accepted draw, `None` when nothing was metered (the
    /// CSR kernel path draws row-uniformly and never rejects, so it runs
    /// unmetered).
    pub fn tries_per_draw(&self) -> Option<f64> {
        (self.accepts > 0).then(|| self.tries as f64 / self.accepts as f64)
    }
}

/// Runs `rounds` seeded synchronous Best-of-Three rounds on `spec` with a
/// [`MetricsObserver`] installed and returns the [`Probe`].
///
/// Deterministic in `(spec, seed, rounds)`: the topology is built from
/// `seed`, the initial condition is the paper's `δ = 0.1` Bernoulli start
/// sampled from `seed`, and every round draws from the engine's
/// `(seed, round, chunk)` streams.
pub fn probe_spec(spec: &TopologySpec, seed: u64, rounds: u64) -> Probe {
    let topo = spec.build(seed).expect("probe topology");
    let n = topo.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
        .sample_n(n, &mut rng)
        .expect("probe init");
    let sim = Engine::new(topo)
        .expect("probe engine")
        .with_observer(MetricsObserver::new());
    let mut scratch = Vec::new();
    for round in 0..rounds {
        sim.step_seeded_kind(ProtocolKind::BestOfThree, &init, &mut scratch, seed, round);
    }
    let meter = sim.observer().meter();
    Probe {
        tries: meter.tries(),
        accepts: meter.accepts(),
        snapshot_json: sim.observer().registry().snapshot_json(),
    }
}

/// Renders the uniform `METRICS_*.json` envelope around a registry
/// snapshot.
pub fn metrics_envelope(experiment: &str, snapshot_json: &str) -> String {
    format!("{{\"experiment\":\"{experiment}\",\"metrics\":{snapshot_json}}}\n")
}

/// Writes a registry snapshot as `METRICS_*.json` next to a bench's
/// `BENCH_*.json` artefact.
pub fn write_metrics_snapshot(path: &str, experiment: &str, snapshot_json: &str) {
    let json = metrics_envelope(experiment, snapshot_json);
    std::fs::write(path, &json).expect("write metrics snapshot");
    println!("metrics snapshot written to {path}");
}

/// Formats an optional statistic for hand-rendered JSON (`null` when the
/// path is unmetered).
pub fn json_opt(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.3}"),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_core::configio::Json;

    #[test]
    fn closed_form_topologies_probe_at_one_try_per_draw() {
        let probe = probe_spec(&TopologySpec::Complete { n: 512 }, 7, 2);
        assert_eq!(probe.tries, probe.accepts);
        assert_eq!(probe.tries_per_draw(), Some(1.0));
        // Two rounds of Best-of-Three: three draws per vertex per round.
        assert_eq!(probe.accepts, 2 * 3 * 512);
    }

    #[test]
    fn rejection_sampling_probes_above_one_try_per_draw() {
        let probe = probe_spec(&TopologySpec::ImplicitGnp { n: 512, p: 0.5 }, 7, 2);
        assert!(probe.tries > probe.accepts);
        let rate = probe.tries_per_draw().unwrap();
        // p = 1/2 rejects roughly every other candidate.
        assert!((1.5..3.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn sampler_tallies_are_deterministic() {
        // The draw counts replay exactly; the chunk wall-time histogram in
        // the snapshot is the one legitimately non-deterministic part.
        let spec = TopologySpec::ImplicitSbm {
            n: 400,
            blocks: 2,
            p_in: 0.7,
            p_out: 0.2,
        };
        let (a, b) = (probe_spec(&spec, 11, 3), probe_spec(&spec, 11, 3));
        assert_eq!((a.tries, a.accepts), (b.tries, b.accepts));
        assert_eq!(a.tries_per_draw(), b.tries_per_draw());
    }

    #[test]
    fn envelope_parses_with_the_schema_ci_checks() {
        let probe = probe_spec(&TopologySpec::Complete { n: 64 }, 3, 1);
        let text = metrics_envelope("e99_test", &probe.snapshot_json);
        let parsed = Json::parse(text.trim()).unwrap();
        assert_eq!(
            parsed.get("experiment").and_then(|j| j.as_str()),
            Some("e99_test")
        );
        let metrics = parsed.get("metrics").unwrap();
        for key in ["counters", "gauges", "histograms"] {
            assert!(metrics.get(key).is_some(), "missing {key}");
        }
        assert_eq!(json_opt(None), "null");
        assert_eq!(json_opt(Some(1.25)), "1.250");
    }
}
