//! Crash-safe campaign runner: a supervised grid of [`Experiment`] cells
//! with checkpoint/resume, per-cell retry, and atomic on-disk artefacts.
//!
//! A campaign at `n = 10⁶` — hundreds of grid cells × replicas — is hours of
//! compute; it is only runnable if a kill at any instant (SIGKILL included)
//! leaves a directory from which the *same* results are reproduced.  Three
//! mechanisms compose to guarantee that:
//!
//! 1. **Determinism** — every cell's seed is a pure function of
//!    `(campaign_seed, cell_index)` ([`cell_seed`]), and the engine's runs
//!    are bit-identical at any thread count, so re-running a cell from
//!    scratch produces byte-identical artefacts.  Checkpoints are therefore
//!    an *optimisation* (bounding lost work), never a correctness
//!    requirement.
//! 2. **Atomic writes** — every artefact (manifest, cell result, cell
//!    checkpoint) is written write-tmp → fsync → atomic-rename → fsync-dir
//!    ([`atomic_write`]); a reader never observes partial JSON.
//! 3. **Supervision** — on restart the runner skips `Done`/`Skipped` cells,
//!    resumes `InFlight` cells from their checkpoint (or their seed when no
//!    checkpoint was flushed before the kill), and retries failing cells
//!    with capped exponential backoff before recording a typed
//!    [`CellStatus::Skipped`] — graceful degradation, never a crashed
//!    campaign.
//!
//! # On-disk layout (all JSON; manifest version 2)
//!
//! ```text
//! <dir>/manifest.json        CampaignManifest — per-cell statuses + meta
//! <dir>/cell_0007.json       CellResult — summary of a Done cell
//! <dir>/cell_0007.ckpt.json  BatchCheckpoint — mid-flight state (deleted
//!                            when the cell completes)
//! <dir>/metrics.json         MetricsRegistry JSON snapshot (observability)
//! <dir>/metrics.prom         The same registry as Prometheus text
//! <dir>/events.jsonl         Structured runner event log
//! ```
//!
//! The JSON forms are pinned by golden snapshot tests below; future format
//! changes must bump the version constants and show up as compat breaks
//! here.  Version-1 manifests (no per-cell meta) are read transparently —
//! the missing meta is zero-filled and the manifest upgrades to v2 on its
//! next write.
//!
//! # Observability
//!
//! The runner records campaign-level metrics (cells done/skipped, attempts,
//! retries, resumes-from-checkpoint, checkpoint flush latency, per-cell
//! wall time) into a [`bo3_obs::MetricsRegistry`] and a structured
//! [`bo3_obs::EventLog`]; both are flushed atomically to the artefacts
//! above whenever `run` returns.  Deterministic outputs (cell results) are
//! unaffected: wall-clock lives only in the manifest meta and the metrics
//! artefacts, which are exactly the files the byte-diff CI jobs exclude.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bo3_obs::{Counter, EventLog, Field, Gauge, Log2Histogram, MetricsRegistry};

use bo3_dynamics::checkpoint::{RunBudget, RunCheckpoint, RUN_CHECKPOINT_VERSION};
use bo3_dynamics::montecarlo::{BatchCheckpoint, BatchOutcome, BATCH_CHECKPOINT_VERSION};
use bo3_dynamics::prelude::{
    AdversaryCounters, MonteCarloReport, Opinion, ProtocolKind, ProtocolSpec, ReplicaOutcome,
    RoundRecord, Schedule, StoppingCondition, Trace,
};

use crate::configio::{
    float, invalid, need, need_f64, need_u64, need_usize, obj, tagged, uint, unit, FromJson, Json,
    ToJson,
};
use crate::error::Result;
use crate::experiment::Experiment;
use bo3_graph::Topology;

/// Version of the [`CampaignManifest`] layout (bumped on incompatible
/// change; the golden snapshot tests below pin the JSON form).  Version 2
/// added the per-cell [`CellMeta`] array; version-1 manifests still parse
/// (meta zero-filled).
pub const CAMPAIGN_MANIFEST_VERSION: u32 = 2;

/// Derives the seed of cell `index` from the campaign seed — a splitmix64
/// mix, so neighbouring cells share no stream structure and a cell re-run
/// in isolation reproduces its in-campaign results exactly.
pub fn cell_seed(campaign_seed: u64, index: usize) -> u64 {
    splitmix64(campaign_seed.wrapping_add(splitmix64(index as u64 + 1)))
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Capped exponential backoff for failing cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts before a cell is recorded as [`CellStatus::Skipped`].
    pub max_attempts: u32,
    /// Delay before the second attempt (doubles per retry).
    pub base_delay_ms: u64,
    /// Ceiling on the delay.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 100,
            max_delay_ms: 5_000,
        }
    }
}

impl RetryPolicy {
    /// The delay before attempt `attempt` (0-based; attempt 0 has none).
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let exp = attempt.saturating_sub(1).min(20);
        self.base_delay_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_delay_ms)
    }
}

/// Lifecycle of one campaign cell, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum CellStatus {
    /// Never started.
    Pending,
    /// Started (and possibly checkpointed) but not finished — the state a
    /// SIGKILL leaves behind; `attempts` counts failed tries so far.
    InFlight {
        /// Failed attempts so far.
        attempts: u32,
    },
    /// Completed; its [`CellResult`] is on disk.
    Done,
    /// Gave up after the retry budget; the campaign continued without it.
    Skipped {
        /// The last attempt's error.
        reason: String,
    },
}

/// Observability meta recorded per cell in the manifest (v2): attempt /
/// resume counts and accumulated wall time.
///
/// Unlike the statuses and cell results, none of this participates in the
/// determinism story — wall time differs run to run by nature, which is why
/// `manifest.json` is deliberately **not** part of the byte-diffed artefact
/// set (the cell result files are).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellMeta {
    /// Attempts started (first try included), across every process that
    /// touched this directory.
    pub attempts: u32,
    /// Times the cell was resumed from an on-disk checkpoint.
    pub resumes: u32,
    /// Accumulated wall time spent driving this cell, in milliseconds.
    pub wall_ms: u64,
}

/// The campaign's persistent ledger: one status per cell plus enough
/// identity to refuse resuming into a different campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignManifest {
    /// Layout version ([`CAMPAIGN_MANIFEST_VERSION`]).
    pub version: u32,
    /// Campaign name (must match on resume).
    pub name: String,
    /// Campaign seed (must match on resume).
    pub campaign_seed: u64,
    /// Per-cell statuses, indexed like `Campaign::cells`.
    pub statuses: Vec<CellStatus>,
    /// Per-cell observability meta, indexed like `statuses` (zero-filled
    /// when a version-1 manifest is read).
    pub cells: Vec<CellMeta>,
}

/// Deterministic summary of one completed cell — exactly the quantities the
/// phase-surface artefact needs, all pure functions of the cell's
/// Monte-Carlo report (no wall-clock, no host data), so a resumed campaign
/// writes byte-identical cell files.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Cell index within the campaign grid.
    pub index: usize,
    /// The cell experiment's name.
    pub name: String,
    /// Replicas run.
    pub replicas: usize,
    /// Fraction of replicas that reached consensus.
    pub consensus_rate: f64,
    /// Red's win rate over converged replicas (`None` when none converged).
    pub red_win_rate: Option<f64>,
    /// Mean rounds to consensus (`None` when none converged).
    pub mean_rounds: Option<f64>,
    /// Mean final blue fraction over all replicas.
    pub mean_final_blue: f64,
    /// Fraction of replicas that ended polarised ([`is_polarised`]).
    pub polarisation_rate: f64,
}

/// The polarisation proxy used by the phase-surface campaign: a replica is
/// polarised when it hit the round cap with the blocks still split — no
/// winner and a final blue fraction away from both consensus corners.
pub fn is_polarised(outcome: &ReplicaOutcome) -> bool {
    outcome.winner.is_none()
        && outcome.final_blue_fraction > 0.25
        && outcome.final_blue_fraction < 0.75
}

impl CellResult {
    /// Summarises a completed cell's Monte-Carlo report.
    pub fn of(index: usize, name: &str, report: &MonteCarloReport) -> Self {
        let total = report.outcomes.len();
        let mean_final_blue = if total == 0 {
            0.0
        } else {
            report
                .outcomes
                .iter()
                .map(|o| o.final_blue_fraction)
                .sum::<f64>()
                / total as f64
        };
        let polarised = report.outcomes.iter().filter(|o| is_polarised(o)).count();
        let polarisation_rate = if total == 0 {
            0.0
        } else {
            polarised as f64 / total as f64
        };
        CellResult {
            index,
            name: name.to_string(),
            replicas: total,
            consensus_rate: report.consensus_rate,
            red_win_rate: report.red_win.map(|p| p.estimate),
            mean_rounds: report.mean_rounds(),
            mean_final_blue,
            polarisation_rate,
        }
    }
}

/// A grid of cells run under one supervisor.
///
/// Build with [`Campaign::new`] and [`Campaign::add_cell`], which stamps
/// each cell's seed from `(campaign_seed, cell_index)` — the property that
/// makes every cell independently re-runnable.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Campaign name (recorded in the manifest).
    pub name: String,
    /// Campaign seed; cells derive theirs via [`cell_seed`].
    pub seed: u64,
    /// Retry policy for failing cells.
    pub retry: RetryPolicy,
    /// The cells, in run order.
    pub cells: Vec<Experiment>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Campaign {
            name: name.into(),
            seed,
            retry: RetryPolicy::default(),
            cells: Vec::new(),
        }
    }

    /// Appends a cell, overriding its seed with
    /// `cell_seed(self.seed, index)`.
    pub fn add_cell(mut self, cell: Experiment) -> Self {
        let index = self.cells.len();
        self.cells.push(cell.seed(cell_seed(self.seed, index)));
        self
    }

    /// Sets the retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// A fresh manifest with every cell pending.
    pub fn fresh_manifest(&self) -> CampaignManifest {
        CampaignManifest {
            version: CAMPAIGN_MANIFEST_VERSION,
            name: self.name.clone(),
            campaign_seed: self.seed,
            statuses: vec![CellStatus::Pending; self.cells.len()],
            cells: vec![CellMeta::default(); self.cells.len()],
        }
    }
}

/// How a [`CampaignRunner::run`] call ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignOutcome {
    /// Every cell is `Done` or `Skipped`.
    Completed,
    /// The cancel flag fired; the directory is resumable with the same
    /// command.
    Interrupted,
}

/// The runner's campaign-wide instruments: registered once at construction,
/// hammered (relaxed atomics only) while cells run, flushed to
/// `metrics.json` / `metrics.prom` / `events.jsonl` whenever a run returns.
struct RunnerMetrics {
    registry: MetricsRegistry,
    events: EventLog,
    cells_total: Arc<Gauge>,
    cells_done: Arc<Counter>,
    cells_skipped: Arc<Counter>,
    attempts_total: Arc<Counter>,
    retries_total: Arc<Counter>,
    resumes_total: Arc<Counter>,
    checkpoint_flush_ns: Arc<Log2Histogram>,
    cell_wall_ns: Arc<Log2Histogram>,
}

impl RunnerMetrics {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        let cells_total = registry.gauge("campaign_cells", "Cells in the campaign grid");
        let cells_done = registry.counter("campaign_cells_done_total", "Cells completed");
        let cells_skipped = registry.counter(
            "campaign_cells_skipped_total",
            "Cells abandoned after the retry budget",
        );
        let attempts_total =
            registry.counter("campaign_cell_attempts_total", "Cell attempts started");
        let retries_total = registry.counter(
            "campaign_cell_retries_total",
            "Failed cell attempts that were retried with backoff",
        );
        let resumes_total = registry.counter(
            "campaign_cell_resumes_total",
            "Cell attempts resumed from an on-disk checkpoint",
        );
        let checkpoint_flush_ns = registry.histogram(
            "campaign_checkpoint_flush_ns",
            "Checkpoint atomic-write latency (ns)",
        );
        let cell_wall_ns =
            registry.histogram("campaign_cell_wall_ns", "Per-cell-attempt wall time (ns)");
        RunnerMetrics {
            registry,
            events: EventLog::default(),
            cells_total,
            cells_done,
            cells_skipped,
            attempts_total,
            retries_total,
            resumes_total,
            checkpoint_flush_ns,
            cell_wall_ns,
        }
    }
}

/// Supervises a [`Campaign`] against an on-disk directory.
pub struct CampaignRunner {
    campaign: Campaign,
    dir: PathBuf,
    cancel: Arc<AtomicBool>,
    rounds_per_slice: Option<usize>,
    metrics: RunnerMetrics,
}

impl std::fmt::Debug for CampaignRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignRunner")
            .field("campaign", &self.campaign)
            .field("dir", &self.dir)
            .field("rounds_per_slice", &self.rounds_per_slice)
            .finish_non_exhaustive()
    }
}

impl CampaignRunner {
    /// A runner for `campaign` persisting into `dir` (created on first run).
    pub fn new(campaign: Campaign, dir: impl Into<PathBuf>) -> Self {
        CampaignRunner {
            campaign,
            dir: dir.into(),
            cancel: Arc::new(AtomicBool::new(false)),
            rounds_per_slice: None,
            metrics: RunnerMetrics::new(),
        }
    }

    /// Checkpoint the in-flight cell every `rounds` engine rounds, bounding
    /// the work a SIGKILL can lose (`None` = only on cancellation).
    pub fn rounds_per_slice(mut self, rounds: usize) -> Self {
        self.rounds_per_slice = Some(rounds);
        self
    }

    /// Uses `flag` as the cancel flag instead of the runner's own — lets a
    /// signal handler own the flag (a handler can reach a `static` but not
    /// a runner field).
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = flag;
        self
    }

    /// The cancel flag: set it (e.g. from a SIGINT/SIGTERM handler) and the
    /// runner flushes the current checkpoint at the next round boundary and
    /// returns [`CampaignOutcome::Interrupted`].
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        self.cancel.clone()
    }

    /// The campaign being run.
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// The campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    /// Path of cell `index`'s result file.
    pub fn cell_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("cell_{index:04}.json"))
    }

    fn checkpoint_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("cell_{index:04}.ckpt.json"))
    }

    /// Path of the campaign-wide metrics JSON snapshot.
    pub fn metrics_json_path(&self) -> PathBuf {
        self.dir.join("metrics.json")
    }

    /// Path of the campaign-wide Prometheus-text exposition.
    pub fn metrics_prom_path(&self) -> PathBuf {
        self.dir.join("metrics.prom")
    }

    /// Path of the structured runner event log.
    pub fn events_path(&self) -> PathBuf {
        self.dir.join("events.jsonl")
    }

    /// The runner's metrics registry — campaign counters, retry/resume
    /// tallies, checkpoint-flush and cell-wall-time histograms.  Callers may
    /// register further instruments alongside; everything lands in the same
    /// `metrics.json` / `metrics.prom` artefacts.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics.registry
    }

    /// The runner's structured event log (flushed to `events.jsonl`).
    pub fn events(&self) -> &EventLog {
        &self.metrics.events
    }

    /// Atomically writes the three observability artefacts.  Called on
    /// every [`CampaignRunner::run`] return; also callable mid-campaign
    /// (the instruments are cumulative).
    pub fn flush_observability(&self) -> Result<()> {
        atomic_write(
            &self.metrics_json_path(),
            &self.metrics.registry.snapshot_json(),
        )?;
        atomic_write(
            &self.metrics_prom_path(),
            &self.metrics.registry.render_prometheus(),
        )?;
        atomic_write(&self.events_path(), &self.metrics.events.to_jsonl())
    }

    fn write_manifest(&self, manifest: &CampaignManifest) -> Result<()> {
        atomic_write(&self.manifest_path(), &manifest.to_json_string())
    }

    /// Loads the manifest, validating it against this campaign; a fresh one
    /// when the directory has none yet.
    pub fn load_manifest(&self) -> Result<CampaignManifest> {
        let path = self.manifest_path();
        if !path.exists() {
            return Ok(self.campaign.fresh_manifest());
        }
        let manifest = CampaignManifest::from_json_str(&fs::read_to_string(&path)?)?;
        if manifest.version != CAMPAIGN_MANIFEST_VERSION {
            return Err(invalid(format!(
                "manifest version {} does not match {}",
                manifest.version, CAMPAIGN_MANIFEST_VERSION
            )));
        }
        if manifest.name != self.campaign.name
            || manifest.campaign_seed != self.campaign.seed
            || manifest.statuses.len() != self.campaign.cells.len()
        {
            return Err(invalid(format!(
                "directory {} holds campaign '{}' (seed {}, {} cells), not '{}' (seed {}, {} \
                 cells)",
                self.dir.display(),
                manifest.name,
                manifest.campaign_seed,
                manifest.statuses.len(),
                self.campaign.name,
                self.campaign.seed,
                self.campaign.cells.len()
            )));
        }
        Ok(manifest)
    }

    /// Runs (or resumes) the campaign until every cell is `Done`/`Skipped`
    /// or the cancel flag fires.
    pub fn run(&self) -> Result<CampaignOutcome> {
        fs::create_dir_all(&self.dir)?;
        let mut manifest = self.load_manifest()?;
        self.metrics
            .cells_total
            .set(self.campaign.cells.len() as i64);
        for index in 0..self.campaign.cells.len() {
            loop {
                match manifest.statuses[index].clone() {
                    CellStatus::Done | CellStatus::Skipped { .. } => break,
                    CellStatus::Pending | CellStatus::InFlight { .. } => {
                        if self.cancel.load(Ordering::SeqCst) {
                            self.write_manifest(&manifest)?;
                            self.metrics.events.event("campaign_interrupted", &[]);
                            self.flush_observability()?;
                            return Ok(CampaignOutcome::Interrupted);
                        }
                        let attempts = match &manifest.statuses[index] {
                            CellStatus::InFlight { attempts } => *attempts,
                            _ => 0,
                        };
                        let resuming = self.checkpoint_path(index).exists();
                        manifest.statuses[index] = CellStatus::InFlight { attempts };
                        manifest.cells[index].attempts += 1;
                        if resuming {
                            manifest.cells[index].resumes += 1;
                            self.metrics.resumes_total.inc();
                            self.metrics
                                .events
                                .event("cell_resume", &[("cell", Field::U64(index as u64))]);
                        }
                        self.write_manifest(&manifest)?;
                        self.metrics.attempts_total.inc();
                        self.metrics.events.event(
                            "cell_start",
                            &[
                                ("cell", Field::U64(index as u64)),
                                ("attempt", Field::U64(u64::from(attempts) + 1)),
                            ],
                        );
                        let started = Instant::now();
                        let outcome = self.drive_cell(index);
                        let wall_ns = started.elapsed().as_nanos() as u64;
                        self.metrics.cell_wall_ns.record(wall_ns);
                        manifest.cells[index].wall_ms += wall_ns / 1_000_000;
                        match outcome {
                            Ok(CampaignOutcome::Interrupted) => {
                                self.write_manifest(&manifest)?;
                                self.metrics.events.event("campaign_interrupted", &[]);
                                self.flush_observability()?;
                                return Ok(CampaignOutcome::Interrupted);
                            }
                            Ok(CampaignOutcome::Completed) => {
                                manifest.statuses[index] = CellStatus::Done;
                                self.write_manifest(&manifest)?;
                                self.metrics.cells_done.inc();
                                self.metrics.events.event(
                                    "cell_done",
                                    &[
                                        ("cell", Field::U64(index as u64)),
                                        ("wall_ns", Field::U64(wall_ns)),
                                    ],
                                );
                            }
                            Err(error) => {
                                // A failed attempt's checkpoint is not
                                // trustworthy — retry from the cell seed.
                                let _ = fs::remove_file(self.checkpoint_path(index));
                                let attempts = attempts + 1;
                                if attempts >= self.campaign.retry.max_attempts {
                                    manifest.statuses[index] = CellStatus::Skipped {
                                        reason: error.to_string(),
                                    };
                                    self.write_manifest(&manifest)?;
                                    self.metrics.cells_skipped.inc();
                                    self.metrics.events.event(
                                        "cell_skipped",
                                        &[
                                            ("cell", Field::U64(index as u64)),
                                            ("reason", Field::Str(&error.to_string())),
                                        ],
                                    );
                                } else {
                                    manifest.statuses[index] = CellStatus::InFlight { attempts };
                                    self.write_manifest(&manifest)?;
                                    self.metrics.retries_total.inc();
                                    let backoff_ms = self.campaign.retry.delay_ms(attempts);
                                    self.metrics.events.event(
                                        "cell_retry",
                                        &[
                                            ("cell", Field::U64(index as u64)),
                                            ("attempt", Field::U64(u64::from(attempts))),
                                            ("backoff_ms", Field::U64(backoff_ms)),
                                            ("reason", Field::Str(&error.to_string())),
                                        ],
                                    );
                                    std::thread::sleep(std::time::Duration::from_millis(
                                        backoff_ms,
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
        self.metrics.events.event("campaign_completed", &[]);
        self.flush_observability()?;
        Ok(CampaignOutcome::Completed)
    }

    /// Runs one cell to completion or interruption, checkpointing at every
    /// slice boundary.  `Ok(Completed)` means the cell's result file is on
    /// disk and its checkpoint removed.
    fn drive_cell(&self, index: usize) -> Result<CampaignOutcome> {
        let cell = &self.campaign.cells[index];
        cell.validate()?;
        let built = cell.build_topology()?;
        match built.as_graph() {
            Some(graph) => cell.validate_graph(graph)?,
            None => cell.validate_implicit_regime(built.n())?,
        }
        let mc = cell.monte_carlo();
        let budget = RunBudget {
            max_rounds_per_slice: self.rounds_per_slice,
            cancel_flag: Some(self.cancel.clone()),
            ..RunBudget::default()
        };
        let ckpt_path = self.checkpoint_path(index);
        let mut resume = if ckpt_path.exists() {
            Some(BatchCheckpoint::from_json_str(&fs::read_to_string(
                &ckpt_path,
            )?)?)
        } else {
            None
        };
        loop {
            match mc.run_on_topology_resumable(&built, resume.take(), &budget)? {
                BatchOutcome::Completed(report) => {
                    let result = CellResult::of(index, &cell.name, &report);
                    atomic_write(&self.cell_path(index), &result.to_json_string())?;
                    let _ = fs::remove_file(&ckpt_path);
                    return Ok(CampaignOutcome::Completed);
                }
                BatchOutcome::Paused(checkpoint) => {
                    let flush_started = Instant::now();
                    atomic_write(&ckpt_path, &checkpoint.to_json_string())?;
                    self.metrics
                        .checkpoint_flush_ns
                        .record(flush_started.elapsed().as_nanos() as u64);
                    if self.cancel.load(Ordering::SeqCst) {
                        return Ok(CampaignOutcome::Interrupted);
                    }
                    resume = Some(checkpoint);
                }
            }
        }
    }

    /// Loads every completed cell's result (`None` for skipped or
    /// unfinished cells), indexed like the campaign's cells.
    pub fn load_results(&self) -> Result<Vec<Option<CellResult>>> {
        let mut results = Vec::with_capacity(self.campaign.cells.len());
        for index in 0..self.campaign.cells.len() {
            let path = self.cell_path(index);
            results.push(if path.exists() {
                Some(CellResult::from_json_str(&fs::read_to_string(&path)?)?)
            } else {
                None
            });
        }
        Ok(results)
    }
}

/// Writes `text` to `path` crash-safely: write to `<path>.tmp`, fsync,
/// atomically rename over `path`, then fsync the directory so the rename
/// itself is durable.  A kill at any instant leaves either the old file,
/// the new file, or a stray `.tmp` — never a partial `path`.
pub fn atomic_write(path: &Path, text: &str) -> Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        // Directory fsync is what makes the rename durable on POSIX; best
        // effort elsewhere (opening a directory read-only can fail on
        // non-POSIX platforms, and the rename is already atomic there).
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

// --- JSON: campaign types -----------------------------------------------

impl ToJson for RetryPolicy {
    fn to_json(&self) -> Json {
        obj(vec![
            ("max_attempts", Json::UInt(self.max_attempts as u64)),
            ("base_delay_ms", Json::UInt(self.base_delay_ms)),
            ("max_delay_ms", Json::UInt(self.max_delay_ms)),
        ])
    }
}

impl FromJson for RetryPolicy {
    fn from_json(json: &Json) -> Result<Self> {
        Ok(RetryPolicy {
            max_attempts: need_u64(json, "max_attempts", "RetryPolicy")? as u32,
            base_delay_ms: need_u64(json, "base_delay_ms", "RetryPolicy")?,
            max_delay_ms: need_u64(json, "max_delay_ms", "RetryPolicy")?,
        })
    }
}

impl ToJson for CellStatus {
    fn to_json(&self) -> Json {
        match self {
            CellStatus::Pending => unit("Pending"),
            CellStatus::InFlight { attempts } => tagged(
                "InFlight",
                obj(vec![("attempts", Json::UInt(*attempts as u64))]),
            ),
            CellStatus::Done => unit("Done"),
            CellStatus::Skipped { reason } => {
                tagged("Skipped", obj(vec![("reason", Json::Str(reason.clone()))]))
            }
        }
    }
}

impl FromJson for CellStatus {
    fn from_json(json: &Json) -> Result<Self> {
        let (tag, body) = json.as_variant()?;
        match tag {
            "Pending" => Ok(CellStatus::Pending),
            "Done" => Ok(CellStatus::Done),
            "InFlight" => {
                let body = body.ok_or_else(|| invalid("InFlight requires a payload"))?;
                Ok(CellStatus::InFlight {
                    attempts: need_u64(body, "attempts", "InFlight")? as u32,
                })
            }
            "Skipped" => {
                let body = body.ok_or_else(|| invalid("Skipped requires a payload"))?;
                Ok(CellStatus::Skipped {
                    reason: need(body, "reason", "Skipped")?
                        .as_str()
                        .ok_or_else(|| invalid("Skipped.reason must be a string"))?
                        .to_string(),
                })
            }
            other => Err(invalid(format!("unknown CellStatus variant '{other}'"))),
        }
    }
}

impl ToJson for CellMeta {
    fn to_json(&self) -> Json {
        obj(vec![
            ("attempts", Json::UInt(self.attempts as u64)),
            ("resumes", Json::UInt(self.resumes as u64)),
            ("wall_ms", Json::UInt(self.wall_ms)),
        ])
    }
}

impl FromJson for CellMeta {
    fn from_json(json: &Json) -> Result<Self> {
        Ok(CellMeta {
            attempts: need_u64(json, "attempts", "CellMeta")? as u32,
            resumes: need_u64(json, "resumes", "CellMeta")? as u32,
            wall_ms: need_u64(json, "wall_ms", "CellMeta")?,
        })
    }
}

impl ToJson for CampaignManifest {
    fn to_json(&self) -> Json {
        obj(vec![
            ("version", Json::UInt(self.version as u64)),
            ("name", Json::Str(self.name.clone())),
            ("campaign_seed", Json::UInt(self.campaign_seed)),
            (
                "statuses",
                Json::Arr(self.statuses.iter().map(|s| s.to_json()).collect()),
            ),
            (
                "cells",
                Json::Arr(self.cells.iter().map(|m| m.to_json()).collect()),
            ),
        ])
    }
}

impl FromJson for CampaignManifest {
    fn from_json(json: &Json) -> Result<Self> {
        let version = need_u64(json, "version", "CampaignManifest")? as u32;
        if version == 0 || version > CAMPAIGN_MANIFEST_VERSION {
            return Err(invalid(format!(
                "CampaignManifest version {version} is not supported (newest is \
                 {CAMPAIGN_MANIFEST_VERSION})"
            )));
        }
        let statuses = need(json, "statuses", "CampaignManifest")?
            .as_array()
            .ok_or_else(|| invalid("CampaignManifest.statuses must be an array"))?
            .iter()
            .map(CellStatus::from_json)
            .collect::<Result<Vec<_>>>()?;
        // Version 1 predates the per-cell meta array: zero-fill and upgrade,
        // so the next write persists as v2.
        let cells = match json.get("cells") {
            None | Some(Json::Null) => vec![CellMeta::default(); statuses.len()],
            Some(array) => {
                let metas = array
                    .as_array()
                    .ok_or_else(|| invalid("CampaignManifest.cells must be an array"))?
                    .iter()
                    .map(CellMeta::from_json)
                    .collect::<Result<Vec<_>>>()?;
                if metas.len() != statuses.len() {
                    return Err(invalid(format!(
                        "CampaignManifest.cells has {} entries but statuses has {}",
                        metas.len(),
                        statuses.len()
                    )));
                }
                metas
            }
        };
        Ok(CampaignManifest {
            version: CAMPAIGN_MANIFEST_VERSION,
            name: need(json, "name", "CampaignManifest")?
                .as_str()
                .ok_or_else(|| invalid("CampaignManifest.name must be a string"))?
                .to_string(),
            campaign_seed: need_u64(json, "campaign_seed", "CampaignManifest")?,
            statuses,
            cells,
        })
    }
}

fn opt_float(value: Option<f64>) -> Json {
    match value {
        Some(v) => float(v),
        None => Json::Null,
    }
}

fn opt_f64(json: &Json, key: &str, ty: &str) -> Result<Option<f64>> {
    match need(json, key, ty)? {
        Json::Null => Ok(None),
        other => other
            .as_f64()
            .map(Some)
            .ok_or_else(|| invalid(format!("{ty}.{key} must be a number or null"))),
    }
}

impl ToJson for CellResult {
    fn to_json(&self) -> Json {
        obj(vec![
            ("index", uint(self.index)),
            ("name", Json::Str(self.name.clone())),
            ("replicas", uint(self.replicas)),
            ("consensus_rate", float(self.consensus_rate)),
            ("red_win_rate", opt_float(self.red_win_rate)),
            ("mean_rounds", opt_float(self.mean_rounds)),
            ("mean_final_blue", float(self.mean_final_blue)),
            ("polarisation_rate", float(self.polarisation_rate)),
        ])
    }
}

impl FromJson for CellResult {
    fn from_json(json: &Json) -> Result<Self> {
        Ok(CellResult {
            index: need_usize(json, "index", "CellResult")?,
            name: need(json, "name", "CellResult")?
                .as_str()
                .ok_or_else(|| invalid("CellResult.name must be a string"))?
                .to_string(),
            replicas: need_usize(json, "replicas", "CellResult")?,
            consensus_rate: need_f64(json, "consensus_rate", "CellResult")?,
            red_win_rate: opt_f64(json, "red_win_rate", "CellResult")?,
            mean_rounds: opt_f64(json, "mean_rounds", "CellResult")?,
            mean_final_blue: need_f64(json, "mean_final_blue", "CellResult")?,
            polarisation_rate: need_f64(json, "polarisation_rate", "CellResult")?,
        })
    }
}

impl ToJson for Campaign {
    fn to_json(&self) -> Json {
        obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("seed", Json::UInt(self.seed)),
            ("retry", self.retry.to_json()),
            (
                "cells",
                Json::Arr(self.cells.iter().map(|c| c.to_json()).collect()),
            ),
        ])
    }
}

impl FromJson for Campaign {
    fn from_json(json: &Json) -> Result<Self> {
        Ok(Campaign {
            name: need(json, "name", "Campaign")?
                .as_str()
                .ok_or_else(|| invalid("Campaign.name must be a string"))?
                .to_string(),
            seed: need_u64(json, "seed", "Campaign")?,
            retry: RetryPolicy::from_json(need(json, "retry", "Campaign")?)?,
            cells: need(json, "cells", "Campaign")?
                .as_array()
                .ok_or_else(|| invalid("Campaign.cells must be an array"))?
                .iter()
                .map(Experiment::from_json)
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

// --- JSON: checkpoint types ---------------------------------------------
//
// `ProtocolKind` serialises through the existing `ProtocolSpec` impl —
// `ProtocolSpec::kind` is total and `kind_to_spec` below inverts it, so the
// checkpoint's protocol field reads exactly like a config file's.

fn kind_to_spec(kind: ProtocolKind) -> ProtocolSpec {
    match kind {
        ProtocolKind::Voter => ProtocolSpec::Voter,
        ProtocolKind::BestOfTwo(tie_rule) => ProtocolSpec::BestOfTwo { tie_rule },
        ProtocolKind::BestOfThree => ProtocolSpec::BestOfThree,
        ProtocolKind::BestOfK { k, tie_rule } => ProtocolSpec::BestOfK { k, tie_rule },
        ProtocolKind::LocalMajority(tie_rule) => ProtocolSpec::LocalMajority { tie_rule },
    }
}

fn opinion_json(winner: Option<Opinion>) -> Json {
    match winner {
        Some(Opinion::Red) => Json::Str("Red".to_string()),
        Some(Opinion::Blue) => Json::Str("Blue".to_string()),
        None => Json::Null,
    }
}

fn opinion_from(json: &Json) -> Result<Option<Opinion>> {
    match json {
        Json::Null => Ok(None),
        Json::Str(s) if s == "Red" => Ok(Some(Opinion::Red)),
        Json::Str(s) if s == "Blue" => Ok(Some(Opinion::Blue)),
        other => Err(invalid(format!(
            "winner must be \"Red\", \"Blue\" or null, got {}",
            other.to_json_string()
        ))),
    }
}

impl ToJson for AdversaryCounters {
    fn to_json(&self) -> Json {
        obj(vec![
            ("zealots", uint(self.zealots)),
            ("byzantine", uint(self.byzantine)),
            ("dropped_samples", Json::UInt(self.dropped_samples)),
            ("partition_rounds", Json::UInt(self.partition_rounds)),
        ])
    }
}

impl FromJson for AdversaryCounters {
    fn from_json(json: &Json) -> Result<Self> {
        Ok(AdversaryCounters {
            zealots: need_usize(json, "zealots", "AdversaryCounters")?,
            byzantine: need_usize(json, "byzantine", "AdversaryCounters")?,
            dropped_samples: need_u64(json, "dropped_samples", "AdversaryCounters")?,
            partition_rounds: need_u64(json, "partition_rounds", "AdversaryCounters")?,
        })
    }
}

impl ToJson for ReplicaOutcome {
    fn to_json(&self) -> Json {
        obj(vec![
            ("replica", uint(self.replica)),
            ("winner", opinion_json(self.winner)),
            ("rounds", uint(self.rounds)),
            ("initial_blue_fraction", float(self.initial_blue_fraction)),
            ("final_blue_fraction", float(self.final_blue_fraction)),
            (
                "adversary",
                match &self.adversary {
                    Some(counters) => counters.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl FromJson for ReplicaOutcome {
    fn from_json(json: &Json) -> Result<Self> {
        Ok(ReplicaOutcome {
            replica: need_usize(json, "replica", "ReplicaOutcome")?,
            winner: opinion_from(need(json, "winner", "ReplicaOutcome")?)?,
            rounds: need_usize(json, "rounds", "ReplicaOutcome")?,
            initial_blue_fraction: need_f64(json, "initial_blue_fraction", "ReplicaOutcome")?,
            final_blue_fraction: need_f64(json, "final_blue_fraction", "ReplicaOutcome")?,
            adversary: match need(json, "adversary", "ReplicaOutcome")? {
                Json::Null => None,
                counters => Some(AdversaryCounters::from_json(counters)?),
            },
        })
    }
}

impl ToJson for RoundRecord {
    fn to_json(&self) -> Json {
        obj(vec![
            ("round", uint(self.round)),
            ("blue_count", uint(self.blue_count)),
            ("red_count", uint(self.red_count)),
            ("blue_fraction", float(self.blue_fraction)),
            ("red_bias", float(self.red_bias)),
        ])
    }
}

impl FromJson for RoundRecord {
    fn from_json(json: &Json) -> Result<Self> {
        Ok(RoundRecord {
            round: need_usize(json, "round", "RoundRecord")?,
            blue_count: need_usize(json, "blue_count", "RoundRecord")?,
            red_count: need_usize(json, "red_count", "RoundRecord")?,
            blue_fraction: need_f64(json, "blue_fraction", "RoundRecord")?,
            red_bias: need_f64(json, "red_bias", "RoundRecord")?,
        })
    }
}

impl ToJson for RunCheckpoint {
    fn to_json(&self) -> Json {
        obj(vec![
            ("version", Json::UInt(self.version as u64)),
            ("protocol", kind_to_spec(self.protocol).to_json()),
            ("schedule", self.schedule.to_json()),
            ("stopping", self.stopping.to_json()),
            ("master_seed", Json::UInt(self.master_seed)),
            ("round", uint(self.round)),
            ("n", uint(self.n)),
            (
                "opinion_words",
                Json::Arr(self.opinion_words.iter().map(|&w| Json::UInt(w)).collect()),
            ),
            ("initial_blue_fraction", float(self.initial_blue_fraction)),
            ("dropped_samples", Json::UInt(self.dropped_samples)),
            (
                "trace",
                match &self.trace {
                    Some(trace) => Json::Arr(trace.records().iter().map(|r| r.to_json()).collect()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl FromJson for RunCheckpoint {
    fn from_json(json: &Json) -> Result<Self> {
        let version = need_u64(json, "version", "RunCheckpoint")? as u32;
        if version != RUN_CHECKPOINT_VERSION {
            return Err(invalid(format!(
                "RunCheckpoint version {version} does not match {RUN_CHECKPOINT_VERSION}"
            )));
        }
        Ok(RunCheckpoint {
            version,
            protocol: ProtocolSpec::from_json(need(json, "protocol", "RunCheckpoint")?)?.kind(),
            schedule: Schedule::from_json(need(json, "schedule", "RunCheckpoint")?)?,
            stopping: StoppingCondition::from_json(need(json, "stopping", "RunCheckpoint")?)?,
            master_seed: need_u64(json, "master_seed", "RunCheckpoint")?,
            round: need_usize(json, "round", "RunCheckpoint")?,
            n: need_usize(json, "n", "RunCheckpoint")?,
            opinion_words: need(json, "opinion_words", "RunCheckpoint")?
                .as_array()
                .ok_or_else(|| invalid("RunCheckpoint.opinion_words must be an array"))?
                .iter()
                .map(|w| {
                    w.as_u64()
                        .ok_or_else(|| invalid("RunCheckpoint.opinion_words must hold u64 words"))
                })
                .collect::<Result<Vec<u64>>>()?,
            initial_blue_fraction: need_f64(json, "initial_blue_fraction", "RunCheckpoint")?,
            dropped_samples: need_u64(json, "dropped_samples", "RunCheckpoint")?,
            trace: match need(json, "trace", "RunCheckpoint")? {
                Json::Null => None,
                records => Some(Trace::from_records(
                    records
                        .as_array()
                        .ok_or_else(|| invalid("RunCheckpoint.trace must be an array or null"))?
                        .iter()
                        .map(RoundRecord::from_json)
                        .collect::<Result<Vec<_>>>()?,
                )),
            },
        })
    }
}

impl ToJson for BatchCheckpoint {
    fn to_json(&self) -> Json {
        obj(vec![
            ("version", Json::UInt(self.version as u64)),
            (
                "completed",
                Json::Arr(self.completed.iter().map(|o| o.to_json()).collect()),
            ),
            (
                "current",
                match &self.current {
                    Some(checkpoint) => checkpoint.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl FromJson for BatchCheckpoint {
    fn from_json(json: &Json) -> Result<Self> {
        let version = need_u64(json, "version", "BatchCheckpoint")? as u32;
        if version != BATCH_CHECKPOINT_VERSION {
            return Err(invalid(format!(
                "BatchCheckpoint version {version} does not match {BATCH_CHECKPOINT_VERSION}"
            )));
        }
        Ok(BatchCheckpoint {
            version,
            completed: need(json, "completed", "BatchCheckpoint")?
                .as_array()
                .ok_or_else(|| invalid("BatchCheckpoint.completed must be an array"))?
                .iter()
                .map(ReplicaOutcome::from_json)
                .collect::<Result<Vec<_>>>()?,
            current: match need(json, "current", "BatchCheckpoint")? {
                Json::Null => None,
                checkpoint => Some(RunCheckpoint::from_json(checkpoint)?),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use bo3_dynamics::prelude::TieRule;
    use bo3_graph::TopologySpec;

    fn quick_cell(name: &str, n: usize) -> Experiment {
        Experiment::on(TopologySpec::Complete { n })
            .named(name)
            .initial(bo3_dynamics::prelude::InitialCondition::BernoulliWithBias { delta: 0.15 })
            .replicas(3)
            .threads(1)
    }

    fn quick_campaign(name: &str) -> Campaign {
        Campaign::new(name, 99)
            .add_cell(quick_cell("cell/a", 400))
            .add_cell(quick_cell("cell/b", 500))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bo3_campaign_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let a = cell_seed(7, 0);
        assert_eq!(a, cell_seed(7, 0));
        let seeds: Vec<u64> = (0..50).map(|i| cell_seed(7, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "cell seeds must not collide");
        assert_ne!(cell_seed(7, 0), cell_seed(8, 0));
    }

    #[test]
    fn retry_policy_backoff_is_capped_exponential() {
        let retry = RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 100,
            max_delay_ms: 450,
        };
        assert_eq!(retry.delay_ms(0), 0);
        assert_eq!(retry.delay_ms(1), 100);
        assert_eq!(retry.delay_ms(2), 200);
        assert_eq!(retry.delay_ms(3), 400);
        assert_eq!(retry.delay_ms(4), 450);
        assert_eq!(retry.delay_ms(30), 450);
    }

    #[test]
    fn campaign_runs_to_completion_and_is_idempotent() {
        let dir = temp_dir("complete");
        let runner = CampaignRunner::new(quick_campaign("unit/complete"), &dir);
        assert_eq!(runner.run().unwrap(), CampaignOutcome::Completed);
        let manifest = runner.load_manifest().unwrap();
        assert!(manifest.statuses.iter().all(|s| *s == CellStatus::Done));
        let results = runner.load_results().unwrap();
        assert_eq!(results.len(), 2);
        let first = results[0].clone().unwrap();
        assert_eq!(first.replicas, 3);
        assert!((first.consensus_rate - 1.0).abs() < 1e-12);

        // Re-running skips every Done cell and leaves the artefacts
        // byte-identical.
        let before = fs::read_to_string(runner.cell_path(0)).unwrap();
        assert_eq!(runner.run().unwrap(), CampaignOutcome::Completed);
        assert_eq!(fs::read_to_string(runner.cell_path(0)).unwrap(), before);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_cell_retries_then_skips_and_the_campaign_continues() {
        let dir = temp_dir("skip");
        // replicas(0) fails validation on every attempt.
        let campaign = Campaign::new("unit/skip", 5)
            .add_cell(quick_cell("cell/bad", 300).replicas(0))
            .add_cell(quick_cell("cell/good", 300))
            .retry(RetryPolicy {
                max_attempts: 3,
                base_delay_ms: 0,
                max_delay_ms: 0,
            });
        let runner = CampaignRunner::new(campaign, &dir);
        assert_eq!(runner.run().unwrap(), CampaignOutcome::Completed);
        let manifest = runner.load_manifest().unwrap();
        match &manifest.statuses[0] {
            CellStatus::Skipped { reason } => assert!(reason.contains("replica"), "{reason}"),
            other => panic!("expected Skipped, got {other:?}"),
        }
        assert_eq!(manifest.statuses[1], CellStatus::Done);
        let results = runner.load_results().unwrap();
        assert!(results[0].is_none());
        assert!(results[1].is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupting_between_cells_resumes_to_identical_artefacts() {
        let dir_oneshot = temp_dir("oneshot");
        let runner = CampaignRunner::new(quick_campaign("unit/resume"), &dir_oneshot);
        assert_eq!(runner.run().unwrap(), CampaignOutcome::Completed);

        // Interrupted run: cancel immediately (pauses before any cell), then
        // clear and resume — a fresh runner, as a restarted process would.
        let dir_resumed = temp_dir("resumed");
        let interrupted = CampaignRunner::new(quick_campaign("unit/resume"), &dir_resumed);
        interrupted.cancel_flag().store(true, Ordering::SeqCst);
        assert_eq!(interrupted.run().unwrap(), CampaignOutcome::Interrupted);
        let resumed = CampaignRunner::new(quick_campaign("unit/resume"), &dir_resumed);
        assert_eq!(resumed.run().unwrap(), CampaignOutcome::Completed);

        for index in 0..2 {
            assert_eq!(
                fs::read_to_string(runner.cell_path(index)).unwrap(),
                fs::read_to_string(resumed.cell_path(index)).unwrap(),
                "cell {index}"
            );
        }
        let _ = fs::remove_dir_all(&dir_oneshot);
        let _ = fs::remove_dir_all(&dir_resumed);
    }

    #[test]
    fn completed_campaign_writes_observability_artefacts_and_cell_meta() {
        let dir = temp_dir("obs");
        let runner = CampaignRunner::new(quick_campaign("unit/obs"), &dir);
        assert_eq!(runner.run().unwrap(), CampaignOutcome::Completed);

        let manifest = runner.load_manifest().unwrap();
        assert_eq!(manifest.version, CAMPAIGN_MANIFEST_VERSION);
        assert_eq!(manifest.cells.len(), 2);
        for meta in &manifest.cells {
            assert_eq!(meta.attempts, 1);
            assert_eq!(meta.resumes, 0);
        }

        let json = fs::read_to_string(runner.metrics_json_path()).unwrap();
        assert!(json.contains("\"campaign_cells_done_total\":2"));
        assert!(json.contains("\"campaign_cell_attempts_total\":2"));
        assert!(json.contains("\"counters\""));
        let prom = fs::read_to_string(runner.metrics_prom_path()).unwrap();
        assert!(prom.contains("# TYPE campaign_cells_done_total counter"));
        assert!(prom.contains("campaign_cell_wall_ns_count 2"));
        let events = fs::read_to_string(runner.events_path()).unwrap();
        assert_eq!(
            events
                .lines()
                .filter(|l| l.contains("\"event\":\"cell_done\""))
                .count(),
            2
        );
        assert!(events.ends_with('\n'));
        assert!(events.contains("\"event\":\"campaign_completed\""));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_attempts_are_counted_in_cell_meta_and_events() {
        let dir = temp_dir("obs_retry");
        let campaign = Campaign::new("unit/obs_retry", 5)
            .add_cell(quick_cell("cell/bad", 300).replicas(0))
            .retry(RetryPolicy {
                max_attempts: 2,
                base_delay_ms: 0,
                max_delay_ms: 0,
            });
        let runner = CampaignRunner::new(campaign, &dir);
        assert_eq!(runner.run().unwrap(), CampaignOutcome::Completed);
        let manifest = runner.load_manifest().unwrap();
        assert_eq!(manifest.cells[0].attempts, 2);
        let json = fs::read_to_string(runner.metrics_json_path()).unwrap();
        assert!(json.contains("\"campaign_cell_retries_total\":1"));
        assert!(json.contains("\"campaign_cells_skipped_total\":1"));
        let events = fs::read_to_string(runner.events_path()).unwrap();
        assert!(events.contains("\"event\":\"cell_retry\""));
        assert!(events.contains("\"event\":\"cell_skipped\""));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_refuses_a_different_campaign() {
        let dir = temp_dir("mismatch");
        let runner = CampaignRunner::new(quick_campaign("unit/mismatch"), &dir);
        assert_eq!(runner.run().unwrap(), CampaignOutcome::Completed);
        let other = CampaignRunner::new(Campaign::new("unit/other", 99), &dir);
        assert!(matches!(other.run(), Err(CoreError::InvalidConfig { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_without_leaving_tmp() {
        let dir = temp_dir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.json");
        atomic_write(&path, "{\"a\":1}").unwrap();
        atomic_write(&path, "{\"a\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\":2}");
        assert!(!path.with_extension("tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    // --- golden snapshots -----------------------------------------------

    #[test]
    fn golden_v2_manifest_snapshot() {
        let manifest = CampaignManifest {
            version: 2,
            name: "e18/quick".to_string(),
            campaign_seed: 42,
            statuses: vec![
                CellStatus::Done,
                CellStatus::InFlight { attempts: 1 },
                CellStatus::Pending,
                CellStatus::Skipped {
                    reason: "boom".to_string(),
                },
            ],
            cells: vec![
                CellMeta {
                    attempts: 1,
                    resumes: 0,
                    wall_ms: 12,
                },
                CellMeta {
                    attempts: 2,
                    resumes: 1,
                    wall_ms: 7,
                },
                CellMeta::default(),
                CellMeta {
                    attempts: 3,
                    resumes: 0,
                    wall_ms: 4,
                },
            ],
        };
        let expected = "{\"version\":2,\"name\":\"e18/quick\",\"campaign_seed\":42,\
                        \"statuses\":[\"Done\",{\"InFlight\":{\"attempts\":1}},\"Pending\",\
                        {\"Skipped\":{\"reason\":\"boom\"}}],\
                        \"cells\":[{\"attempts\":1,\"resumes\":0,\"wall_ms\":12},\
                        {\"attempts\":2,\"resumes\":1,\"wall_ms\":7},\
                        {\"attempts\":0,\"resumes\":0,\"wall_ms\":0},\
                        {\"attempts\":3,\"resumes\":0,\"wall_ms\":4}]}";
        assert_eq!(manifest.to_json_string(), expected);
        assert_eq!(CampaignManifest::from_json_str(expected).unwrap(), manifest);
    }

    #[test]
    fn v1_manifest_upgrades_with_zeroed_meta() {
        let v1 = "{\"version\":1,\"name\":\"e18/quick\",\"campaign_seed\":42,\
                  \"statuses\":[\"Done\",\"Pending\"]}";
        let manifest = CampaignManifest::from_json_str(v1).unwrap();
        assert_eq!(manifest.version, CAMPAIGN_MANIFEST_VERSION);
        assert_eq!(manifest.statuses.len(), 2);
        assert_eq!(manifest.cells, vec![CellMeta::default(); 2]);
        // A future (unknown) version is a typed error, not a zero-fill.
        let v9 = "{\"version\":9,\"name\":\"x\",\"campaign_seed\":0,\"statuses\":[]}";
        assert!(matches!(
            CampaignManifest::from_json_str(v9),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn golden_v1_cell_result_snapshot() {
        let result = CellResult {
            index: 7,
            name: "sync/uniform/r5/d0.1".to_string(),
            replicas: 8,
            consensus_rate: 0.75,
            red_win_rate: Some(1.0),
            mean_rounds: None,
            mean_final_blue: 0.25,
            polarisation_rate: 0.125,
        };
        let expected = "{\"index\":7,\"name\":\"sync/uniform/r5/d0.1\",\"replicas\":8,\
                        \"consensus_rate\":0.75,\"red_win_rate\":1.0,\"mean_rounds\":null,\
                        \"mean_final_blue\":0.25,\"polarisation_rate\":0.125}";
        assert_eq!(result.to_json_string(), expected);
        assert_eq!(CellResult::from_json_str(expected).unwrap(), result);
    }

    #[test]
    fn golden_v1_checkpoint_snapshot() {
        let checkpoint = BatchCheckpoint {
            version: 1,
            completed: vec![ReplicaOutcome {
                replica: 0,
                winner: Some(Opinion::Red),
                rounds: 9,
                initial_blue_fraction: 0.375,
                final_blue_fraction: 0.0,
                adversary: Some(AdversaryCounters {
                    zealots: 4,
                    byzantine: 0,
                    dropped_samples: 17,
                    partition_rounds: 0,
                }),
            }],
            current: Some(RunCheckpoint {
                version: 1,
                protocol: ProtocolKind::BestOfThree,
                schedule: Schedule::Synchronous,
                stopping: StoppingCondition::consensus_within(100),
                master_seed: 123456789,
                round: 3,
                n: 70,
                opinion_words: vec![0xDEAD_BEEF, 0x3F],
                initial_blue_fraction: 0.4,
                dropped_samples: 2,
                trace: None,
            }),
        };
        let expected = "{\"version\":1,\"completed\":[{\"replica\":0,\"winner\":\"Red\",\
                        \"rounds\":9,\"initial_blue_fraction\":0.375,\"final_blue_fraction\":0.0,\
                        \"adversary\":{\"zealots\":4,\"byzantine\":0,\"dropped_samples\":17,\
                        \"partition_rounds\":0}}],\"current\":{\"version\":1,\
                        \"protocol\":\"BestOfThree\",\"schedule\":\"Synchronous\",\
                        \"stopping\":{\"max_rounds\":100,\"stop_on_consensus\":true,\
                        \"blue_fraction_floor\":null},\"master_seed\":123456789,\"round\":3,\
                        \"n\":70,\"opinion_words\":[3735928559,63],\
                        \"initial_blue_fraction\":0.4,\"dropped_samples\":2,\"trace\":null}}";
        assert_eq!(checkpoint.to_json_string(), expected);
        assert_eq!(
            BatchCheckpoint::from_json_str(expected).unwrap(),
            checkpoint
        );
    }

    #[test]
    fn checkpoint_with_trace_round_trips() {
        let checkpoint = RunCheckpoint {
            version: 1,
            protocol: ProtocolKind::BestOfTwo(TieRule::Random),
            schedule: Schedule::AsynchronousRandomOrder,
            stopping: StoppingCondition::fixed_rounds(5),
            master_seed: u64::MAX,
            round: 2,
            n: 4,
            opinion_words: vec![0b1010],
            initial_blue_fraction: 0.5,
            dropped_samples: 0,
            trace: Some(Trace::from_records(vec![
                RoundRecord {
                    round: 0,
                    blue_count: 2,
                    red_count: 2,
                    blue_fraction: 0.5,
                    red_bias: 0.0,
                },
                RoundRecord {
                    round: 1,
                    blue_count: 1,
                    red_count: 3,
                    blue_fraction: 0.25,
                    red_bias: 0.25,
                },
            ])),
        };
        let text = checkpoint.to_json_string();
        assert_eq!(RunCheckpoint::from_json_str(&text).unwrap(), checkpoint);
        // The 64-bit extremes survive (no float round-trip for seeds).
        assert!(text.contains(&u64::MAX.to_string()));
    }

    #[test]
    fn version_mismatches_are_typed_errors() {
        assert!(CampaignManifest::from_json_str(
            "{\"version\":1,\"name\":\"x\",\"campaign_seed\":0,\"statuses\":[]}"
        )
        .is_ok());
        let bumped = "{\"version\":2,\"completed\":[],\"current\":null}";
        assert!(matches!(
            BatchCheckpoint::from_json_str(bumped),
            Err(CoreError::InvalidConfig { .. })
        ));
        let bad_run = "{\"version\":9,\"protocol\":\"BestOfThree\",\
                       \"schedule\":\"Synchronous\",\"stopping\":{\"max_rounds\":1,\
                       \"stop_on_consensus\":true,\"blue_fraction_floor\":null},\
                       \"master_seed\":0,\"round\":0,\"n\":0,\"opinion_words\":[],\
                       \"initial_blue_fraction\":0.5,\"dropped_samples\":0,\"trace\":null}";
        assert!(matches!(
            RunCheckpoint::from_json_str(bad_run),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn campaign_config_round_trips_through_json() {
        let campaign = quick_campaign("unit/json").retry(RetryPolicy {
            max_attempts: 7,
            base_delay_ms: 10,
            max_delay_ms: 100,
        });
        let text = campaign.to_json_string();
        assert_eq!(Campaign::from_json_str(&text).unwrap(), campaign);
    }
}
