//! Self-contained JSON (de)serialisation for experiment configurations.
//!
//! The workspace's serde stack is a vendored no-op stand-in (see
//! `vendor/serde`), so configuration persistence cannot rely on
//! `serde_json`.  This module provides the small, dependency-free JSON layer
//! the configuration types need: a [`Json`] value, a strict parser, a
//! writer, and [`ToJson`] / [`FromJson`] implementations for every type an
//! [`Experiment`] contains.
//!
//! The encoding mirrors serde's default externally-tagged layout — unit
//! variants as strings, struct variants as single-key objects — so that
//! swapping the vendored stand-ins for the real serde stack later produces
//! the same documents these functions read and write.
//!
//! # Backwards compatibility
//!
//! Pre-redesign binaries wrote experiments with a `graph` key holding a bare
//! `GraphSpec`.  [`FromJson`] for [`Experiment`] accepts both layouts: a
//! `topology` key holding a [`TopologySpec`], or a legacy `graph` key whose
//! value is wrapped into [`TopologySpec::Materialised`] — the golden tests
//! below pin that old configs keep deserialising.
//!
//! Scenario API v3 adds an optional `adversary` key (an array of
//! [`AdversarySpec`]s).  Honest experiments omit the key entirely, so the v2
//! layout is unchanged byte for byte, and v2 documents (no adversary key)
//! parse to an empty adversary list.

use bo3_dynamics::prelude::{
    AdversarySpec, InitialCondition, ProtocolSpec, Schedule, StoppingCondition, TieRule,
};
use bo3_graph::generators::GraphSpec;
use bo3_graph::TopologySpec;

use crate::error::{CoreError, Result};
use crate::experiment::Experiment;

/// A JSON value.
///
/// Numbers keep their parsed shape (`UInt` / `Int` / `Float`) so 64-bit
/// seeds survive the round trip without passing through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (covers `usize` and `u64` seeds exactly).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (kept stable for golden snapshots).
    Obj(Vec<(String, Json)>),
}

pub(crate) fn invalid(reason: impl Into<String>) -> CoreError {
    CoreError::InvalidConfig {
        reason: reason.into(),
    }
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as a `usize`, when it is a non-negative integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(u) => Some(u as f64),
            Json::Int(i) => Some(i as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Interprets the value as an externally-tagged enum: a bare string is a
    /// unit variant, a single-key object is a variant with payload.
    pub fn as_variant(&self) -> Result<(&str, Option<&Json>)> {
        match self {
            Json::Str(tag) => Ok((tag, None)),
            Json::Obj(fields) if fields.len() == 1 => {
                Ok((fields[0].0.as_str(), Some(&fields[0].1)))
            }
            other => Err(invalid(format!(
                "expected an enum variant (string or single-key object), got {}",
                other.to_json_string()
            ))),
        }
    }

    /// Serialises the value as compact JSON.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Rust's shortest-round-trip float formatting; force a
                    // fractional marker so the value re-parses as a float.
                    let s = f.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/inf; configs never contain them.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing non-whitespace is an error).
    pub fn parse(input: &str) -> Result<Json> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(invalid(format!(
                "trailing characters at byte {} of JSON document",
                parser.pos
            )));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(invalid(format!(
                "expected '{}' at byte {} of JSON document",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(invalid(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(invalid(format!(
                "unexpected character at byte {} of JSON document",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(invalid("unterminated JSON string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| invalid("unterminated escape in JSON string"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| invalid("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| invalid("invalid \\u escape"))?;
                            // Config strings are labels; surrogate pairs are
                            // out of scope for this minimal layer.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| invalid("non-scalar \\u escape"))?,
                            );
                            self.pos = end;
                        }
                        other => {
                            return Err(invalid(format!(
                                "unsupported escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| invalid("invalid UTF-8 in JSON string"))?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| invalid(format!("invalid number '{text}'")))
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(invalid("expected ',' or ']' in JSON array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(invalid("expected ',' or '}' in JSON object")),
            }
        }
    }
}

/// Serialisation into the [`Json`] model.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;

    /// Compact JSON text of `self`.
    fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }
}

/// Deserialisation from the [`Json`] model.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, with a typed error naming what was wrong.
    fn from_json(json: &Json) -> Result<Self>;

    /// Parses JSON text and reconstructs `Self`.
    fn from_json_str(text: &str) -> Result<Self> {
        Self::from_json(&Json::parse(text)?)
    }
}

// --- small construction helpers ----------------------------------------

pub(crate) fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

pub(crate) fn unit(tag: &str) -> Json {
    Json::Str(tag.to_string())
}

pub(crate) fn tagged(tag: &str, payload: Json) -> Json {
    Json::Obj(vec![(tag.to_string(), payload)])
}

pub(crate) fn uint(u: usize) -> Json {
    Json::UInt(u as u64)
}

pub(crate) fn float(f: f64) -> Json {
    Json::Float(f)
}

pub(crate) fn need<'j>(json: &'j Json, key: &str, ty: &str) -> Result<&'j Json> {
    json.get(key)
        .ok_or_else(|| invalid(format!("{ty} is missing field '{key}'")))
}

pub(crate) fn need_usize(json: &Json, key: &str, ty: &str) -> Result<usize> {
    need(json, key, ty)?
        .as_usize()
        .ok_or_else(|| invalid(format!("{ty}.{key} must be a non-negative integer")))
}

pub(crate) fn need_f64(json: &Json, key: &str, ty: &str) -> Result<f64> {
    need(json, key, ty)?
        .as_f64()
        .ok_or_else(|| invalid(format!("{ty}.{key} must be a number")))
}

pub(crate) fn need_u64(json: &Json, key: &str, ty: &str) -> Result<u64> {
    need(json, key, ty)?
        .as_u64()
        .ok_or_else(|| invalid(format!("{ty}.{key} must be a non-negative integer")))
}

pub(crate) fn payload<'j>(payload: Option<&'j Json>, tag: &str) -> Result<&'j Json> {
    payload.ok_or_else(|| invalid(format!("variant '{tag}' requires a payload object")))
}

// --- TieRule ------------------------------------------------------------

impl ToJson for TieRule {
    fn to_json(&self) -> Json {
        match self {
            TieRule::KeepOwn => unit("KeepOwn"),
            TieRule::Random => unit("Random"),
        }
    }
}

impl FromJson for TieRule {
    fn from_json(json: &Json) -> Result<Self> {
        match json.as_variant()? {
            ("KeepOwn", None) => Ok(TieRule::KeepOwn),
            ("Random", None) => Ok(TieRule::Random),
            (other, _) => Err(invalid(format!("unknown TieRule variant '{other}'"))),
        }
    }
}

// --- ProtocolSpec -------------------------------------------------------

impl ToJson for ProtocolSpec {
    fn to_json(&self) -> Json {
        match *self {
            ProtocolSpec::Voter => unit("Voter"),
            ProtocolSpec::BestOfTwo { tie_rule } => {
                tagged("BestOfTwo", obj(vec![("tie_rule", tie_rule.to_json())]))
            }
            ProtocolSpec::BestOfThree => unit("BestOfThree"),
            ProtocolSpec::BestOfK { k, tie_rule } => tagged(
                "BestOfK",
                obj(vec![("k", uint(k)), ("tie_rule", tie_rule.to_json())]),
            ),
            ProtocolSpec::LocalMajority { tie_rule } => {
                tagged("LocalMajority", obj(vec![("tie_rule", tie_rule.to_json())]))
            }
        }
    }
}

impl FromJson for ProtocolSpec {
    fn from_json(json: &Json) -> Result<Self> {
        let (tag, body) = json.as_variant()?;
        match tag {
            "Voter" => Ok(ProtocolSpec::Voter),
            "BestOfThree" => Ok(ProtocolSpec::BestOfThree),
            "BestOfTwo" => Ok(ProtocolSpec::BestOfTwo {
                tie_rule: TieRule::from_json(need(payload(body, tag)?, "tie_rule", tag)?)?,
            }),
            "BestOfK" => {
                let body = payload(body, tag)?;
                Ok(ProtocolSpec::BestOfK {
                    k: need_usize(body, "k", tag)?,
                    tie_rule: TieRule::from_json(need(body, "tie_rule", tag)?)?,
                })
            }
            "LocalMajority" => Ok(ProtocolSpec::LocalMajority {
                tie_rule: TieRule::from_json(need(payload(body, tag)?, "tie_rule", tag)?)?,
            }),
            other => Err(invalid(format!("unknown ProtocolSpec variant '{other}'"))),
        }
    }
}

// --- GraphSpec ----------------------------------------------------------

impl ToJson for GraphSpec {
    fn to_json(&self) -> Json {
        match *self {
            GraphSpec::Complete { n } => tagged("Complete", obj(vec![("n", uint(n))])),
            GraphSpec::Cycle { n } => tagged("Cycle", obj(vec![("n", uint(n))])),
            GraphSpec::Path { n } => tagged("Path", obj(vec![("n", uint(n))])),
            GraphSpec::Star { n } => tagged("Star", obj(vec![("n", uint(n))])),
            GraphSpec::Wheel { n } => tagged("Wheel", obj(vec![("n", uint(n))])),
            GraphSpec::CompleteBipartite { a, b } => tagged(
                "CompleteBipartite",
                obj(vec![("a", uint(a)), ("b", uint(b))]),
            ),
            GraphSpec::ErdosRenyiGnp { n, p } => {
                tagged("ErdosRenyiGnp", obj(vec![("n", uint(n)), ("p", float(p))]))
            }
            GraphSpec::ErdosRenyiGnm { n, m } => {
                tagged("ErdosRenyiGnm", obj(vec![("n", uint(n)), ("m", uint(m))]))
            }
            GraphSpec::DenseForAlpha { n, alpha } => tagged(
                "DenseForAlpha",
                obj(vec![("n", uint(n)), ("alpha", float(alpha))]),
            ),
            GraphSpec::RandomRegular { n, d } => {
                tagged("RandomRegular", obj(vec![("n", uint(n)), ("d", uint(d))]))
            }
            GraphSpec::ChungLuPowerLaw {
                n,
                exponent,
                min_weight,
                max_weight,
            } => tagged(
                "ChungLuPowerLaw",
                obj(vec![
                    ("n", uint(n)),
                    ("exponent", float(exponent)),
                    ("min_weight", float(min_weight)),
                    ("max_weight", float(max_weight)),
                ]),
            ),
            GraphSpec::Hypercube { dim } => tagged("Hypercube", obj(vec![("dim", uint(dim))])),
            GraphSpec::Torus2d { rows, cols } => tagged(
                "Torus2d",
                obj(vec![("rows", uint(rows)), ("cols", uint(cols))]),
            ),
            GraphSpec::Grid2d { rows, cols } => tagged(
                "Grid2d",
                obj(vec![("rows", uint(rows)), ("cols", uint(cols))]),
            ),
            GraphSpec::PlantedPartition {
                n,
                blocks,
                p_in,
                p_out,
            } => tagged(
                "PlantedPartition",
                obj(vec![
                    ("n", uint(n)),
                    ("blocks", uint(blocks)),
                    ("p_in", float(p_in)),
                    ("p_out", float(p_out)),
                ]),
            ),
            GraphSpec::Barbell { clique, bridge } => tagged(
                "Barbell",
                obj(vec![("clique", uint(clique)), ("bridge", uint(bridge))]),
            ),
            GraphSpec::CorePeriphery {
                core,
                periphery,
                attach,
            } => tagged(
                "CorePeriphery",
                obj(vec![
                    ("core", uint(core)),
                    ("periphery", uint(periphery)),
                    ("attach", uint(attach)),
                ]),
            ),
        }
    }
}

impl FromJson for GraphSpec {
    fn from_json(json: &Json) -> Result<Self> {
        let (tag, body) = json.as_variant()?;
        let body = payload(body, tag)?;
        match tag {
            "Complete" => Ok(GraphSpec::Complete {
                n: need_usize(body, "n", tag)?,
            }),
            "Cycle" => Ok(GraphSpec::Cycle {
                n: need_usize(body, "n", tag)?,
            }),
            "Path" => Ok(GraphSpec::Path {
                n: need_usize(body, "n", tag)?,
            }),
            "Star" => Ok(GraphSpec::Star {
                n: need_usize(body, "n", tag)?,
            }),
            "Wheel" => Ok(GraphSpec::Wheel {
                n: need_usize(body, "n", tag)?,
            }),
            "CompleteBipartite" => Ok(GraphSpec::CompleteBipartite {
                a: need_usize(body, "a", tag)?,
                b: need_usize(body, "b", tag)?,
            }),
            "ErdosRenyiGnp" => Ok(GraphSpec::ErdosRenyiGnp {
                n: need_usize(body, "n", tag)?,
                p: need_f64(body, "p", tag)?,
            }),
            "ErdosRenyiGnm" => Ok(GraphSpec::ErdosRenyiGnm {
                n: need_usize(body, "n", tag)?,
                m: need_usize(body, "m", tag)?,
            }),
            "DenseForAlpha" => Ok(GraphSpec::DenseForAlpha {
                n: need_usize(body, "n", tag)?,
                alpha: need_f64(body, "alpha", tag)?,
            }),
            "RandomRegular" => Ok(GraphSpec::RandomRegular {
                n: need_usize(body, "n", tag)?,
                d: need_usize(body, "d", tag)?,
            }),
            "ChungLuPowerLaw" => Ok(GraphSpec::ChungLuPowerLaw {
                n: need_usize(body, "n", tag)?,
                exponent: need_f64(body, "exponent", tag)?,
                min_weight: need_f64(body, "min_weight", tag)?,
                max_weight: need_f64(body, "max_weight", tag)?,
            }),
            "Hypercube" => Ok(GraphSpec::Hypercube {
                dim: need_usize(body, "dim", tag)?,
            }),
            "Torus2d" => Ok(GraphSpec::Torus2d {
                rows: need_usize(body, "rows", tag)?,
                cols: need_usize(body, "cols", tag)?,
            }),
            "Grid2d" => Ok(GraphSpec::Grid2d {
                rows: need_usize(body, "rows", tag)?,
                cols: need_usize(body, "cols", tag)?,
            }),
            "PlantedPartition" => Ok(GraphSpec::PlantedPartition {
                n: need_usize(body, "n", tag)?,
                blocks: need_usize(body, "blocks", tag)?,
                p_in: need_f64(body, "p_in", tag)?,
                p_out: need_f64(body, "p_out", tag)?,
            }),
            "Barbell" => Ok(GraphSpec::Barbell {
                clique: need_usize(body, "clique", tag)?,
                bridge: need_usize(body, "bridge", tag)?,
            }),
            "CorePeriphery" => Ok(GraphSpec::CorePeriphery {
                core: need_usize(body, "core", tag)?,
                periphery: need_usize(body, "periphery", tag)?,
                attach: need_usize(body, "attach", tag)?,
            }),
            other => Err(invalid(format!("unknown GraphSpec variant '{other}'"))),
        }
    }
}

// --- TopologySpec -------------------------------------------------------

impl ToJson for TopologySpec {
    fn to_json(&self) -> Json {
        match self {
            TopologySpec::Complete { n } => tagged("Complete", obj(vec![("n", uint(*n))])),
            TopologySpec::CompleteBipartite { a, b } => tagged(
                "CompleteBipartite",
                obj(vec![("a", uint(*a)), ("b", uint(*b))]),
            ),
            TopologySpec::CompleteMultipartite { blocks } => tagged(
                "CompleteMultipartite",
                obj(vec![(
                    "blocks",
                    Json::Arr(blocks.iter().map(|&s| uint(s)).collect()),
                )]),
            ),
            TopologySpec::ImplicitGnp { n, p } => {
                tagged("ImplicitGnp", obj(vec![("n", uint(*n)), ("p", float(*p))]))
            }
            TopologySpec::ImplicitSbm {
                n,
                blocks,
                p_in,
                p_out,
            } => tagged(
                "ImplicitSbm",
                obj(vec![
                    ("n", uint(*n)),
                    ("blocks", uint(*blocks)),
                    ("p_in", float(*p_in)),
                    ("p_out", float(*p_out)),
                ]),
            ),
            TopologySpec::Materialised(graph) => tagged("Materialised", graph.to_json()),
        }
    }
}

impl FromJson for TopologySpec {
    fn from_json(json: &Json) -> Result<Self> {
        let (tag, body) = json.as_variant()?;
        match tag {
            "Complete" => Ok(TopologySpec::Complete {
                n: need_usize(payload(body, tag)?, "n", tag)?,
            }),
            "CompleteBipartite" => {
                let body = payload(body, tag)?;
                Ok(TopologySpec::CompleteBipartite {
                    a: need_usize(body, "a", tag)?,
                    b: need_usize(body, "b", tag)?,
                })
            }
            "CompleteMultipartite" => {
                let body = payload(body, tag)?;
                let blocks = need(body, "blocks", tag)?
                    .as_array()
                    .ok_or_else(|| invalid("CompleteMultipartite.blocks must be an array"))?
                    .iter()
                    .map(|item| {
                        item.as_usize().ok_or_else(|| {
                            invalid("CompleteMultipartite.blocks must hold integers")
                        })
                    })
                    .collect::<Result<Vec<usize>>>()?;
                Ok(TopologySpec::CompleteMultipartite { blocks })
            }
            "ImplicitGnp" => {
                let body = payload(body, tag)?;
                Ok(TopologySpec::ImplicitGnp {
                    n: need_usize(body, "n", tag)?,
                    p: need_f64(body, "p", tag)?,
                })
            }
            "ImplicitSbm" => {
                let body = payload(body, tag)?;
                Ok(TopologySpec::ImplicitSbm {
                    n: need_usize(body, "n", tag)?,
                    blocks: need_usize(body, "blocks", tag)?,
                    p_in: need_f64(body, "p_in", tag)?,
                    p_out: need_f64(body, "p_out", tag)?,
                })
            }
            "Materialised" => Ok(TopologySpec::Materialised(GraphSpec::from_json(payload(
                body, tag,
            )?)?)),
            other => Err(invalid(format!("unknown TopologySpec variant '{other}'"))),
        }
    }
}

// --- InitialCondition ---------------------------------------------------

impl ToJson for InitialCondition {
    fn to_json(&self) -> Json {
        match self {
            InitialCondition::BernoulliWithBias { delta } => {
                tagged("BernoulliWithBias", obj(vec![("delta", float(*delta))]))
            }
            InitialCondition::Bernoulli { blue_probability } => tagged(
                "Bernoulli",
                obj(vec![("blue_probability", float(*blue_probability))]),
            ),
            InitialCondition::ExactCount { blue } => {
                tagged("ExactCount", obj(vec![("blue", uint(*blue))]))
            }
            InitialCondition::AllRed => unit("AllRed"),
            InitialCondition::AllBlue => unit("AllBlue"),
            InitialCondition::HighestDegreeBlue { blue } => {
                tagged("HighestDegreeBlue", obj(vec![("blue", uint(*blue))]))
            }
            InitialCondition::LowestDegreeBlue { blue } => {
                tagged("LowestDegreeBlue", obj(vec![("blue", uint(*blue))]))
            }
            InitialCondition::ExplicitBlue { vertices } => tagged(
                "ExplicitBlue",
                obj(vec![(
                    "vertices",
                    Json::Arr(vertices.iter().map(|&v| uint(v)).collect()),
                )]),
            ),
            InitialCondition::PrefixBlue { blue } => {
                tagged("PrefixBlue", obj(vec![("blue", uint(*blue))]))
            }
        }
    }
}

impl FromJson for InitialCondition {
    fn from_json(json: &Json) -> Result<Self> {
        let (tag, body) = json.as_variant()?;
        match tag {
            "AllRed" => Ok(InitialCondition::AllRed),
            "AllBlue" => Ok(InitialCondition::AllBlue),
            "BernoulliWithBias" => Ok(InitialCondition::BernoulliWithBias {
                delta: need_f64(payload(body, tag)?, "delta", tag)?,
            }),
            "Bernoulli" => Ok(InitialCondition::Bernoulli {
                blue_probability: need_f64(payload(body, tag)?, "blue_probability", tag)?,
            }),
            "ExactCount" => Ok(InitialCondition::ExactCount {
                blue: need_usize(payload(body, tag)?, "blue", tag)?,
            }),
            "HighestDegreeBlue" => Ok(InitialCondition::HighestDegreeBlue {
                blue: need_usize(payload(body, tag)?, "blue", tag)?,
            }),
            "LowestDegreeBlue" => Ok(InitialCondition::LowestDegreeBlue {
                blue: need_usize(payload(body, tag)?, "blue", tag)?,
            }),
            "PrefixBlue" => Ok(InitialCondition::PrefixBlue {
                blue: need_usize(payload(body, tag)?, "blue", tag)?,
            }),
            "ExplicitBlue" => {
                let vertices = need(payload(body, tag)?, "vertices", tag)?
                    .as_array()
                    .ok_or_else(|| invalid("ExplicitBlue.vertices must be an array"))?
                    .iter()
                    .map(|item| {
                        item.as_usize()
                            .ok_or_else(|| invalid("ExplicitBlue.vertices must hold integers"))
                    })
                    .collect::<Result<Vec<usize>>>()?;
                Ok(InitialCondition::ExplicitBlue { vertices })
            }
            other => Err(invalid(format!(
                "unknown InitialCondition variant '{other}'"
            ))),
        }
    }
}

// --- AdversarySpec (Scenario API v3) ------------------------------------

impl ToJson for AdversarySpec {
    fn to_json(&self) -> Json {
        match self {
            AdversarySpec::Zealots { fraction } => {
                tagged("Zealots", obj(vec![("fraction", float(*fraction))]))
            }
            AdversarySpec::ZealotIds { vertices } => tagged(
                "ZealotIds",
                obj(vec![(
                    "vertices",
                    Json::Arr(vertices.iter().map(|&v| uint(v)).collect()),
                )]),
            ),
            AdversarySpec::Byzantine { fraction } => {
                tagged("Byzantine", obj(vec![("fraction", float(*fraction))]))
            }
            AdversarySpec::Drop { q } => tagged("Drop", obj(vec![("q", float(*q))])),
            AdversarySpec::Partition {
                from_round,
                until_round,
                blocks,
            } => tagged(
                "Partition",
                obj(vec![
                    ("from_round", Json::UInt(*from_round)),
                    ("until_round", Json::UInt(*until_round)),
                    ("blocks", uint(*blocks)),
                ]),
            ),
        }
    }
}

impl FromJson for AdversarySpec {
    fn from_json(json: &Json) -> Result<Self> {
        let (tag, body) = json.as_variant()?;
        let body = payload(body, tag)?;
        let spec = match tag {
            "Zealots" => Ok(AdversarySpec::Zealots {
                fraction: need_f64(body, "fraction", tag)?,
            }),
            "ZealotIds" => {
                let vertices = need(body, "vertices", tag)?
                    .as_array()
                    .ok_or_else(|| invalid("ZealotIds.vertices must be an array"))?
                    .iter()
                    .map(|item| {
                        item.as_usize()
                            .ok_or_else(|| invalid("ZealotIds.vertices must hold integers"))
                    })
                    .collect::<Result<Vec<usize>>>()?;
                Ok(AdversarySpec::ZealotIds { vertices })
            }
            "Byzantine" => Ok(AdversarySpec::Byzantine {
                fraction: need_f64(body, "fraction", tag)?,
            }),
            "Drop" => Ok(AdversarySpec::Drop {
                q: need_f64(body, "q", tag)?,
            }),
            "Partition" => Ok(AdversarySpec::Partition {
                from_round: need_u64(body, "from_round", tag)?,
                until_round: need_u64(body, "until_round", tag)?,
                blocks: need_usize(body, "blocks", tag)?,
            }),
            other => Err(invalid(format!("unknown AdversarySpec variant '{other}'"))),
        }?;
        // Numeric parameters are validated at parse time, so an
        // out-of-range fraction in a config file is a typed load error here
        // rather than a failure deep inside the run.
        spec.validate()
            .map_err(|e| invalid(format!("invalid AdversarySpec: {e}")))?;
        Ok(spec)
    }
}

// --- Schedule & StoppingCondition --------------------------------------

impl ToJson for Schedule {
    fn to_json(&self) -> Json {
        match self {
            Schedule::Synchronous => unit("Synchronous"),
            Schedule::AsynchronousRandomOrder => unit("AsynchronousRandomOrder"),
        }
    }
}

impl FromJson for Schedule {
    fn from_json(json: &Json) -> Result<Self> {
        match json.as_variant()? {
            ("Synchronous", None) => Ok(Schedule::Synchronous),
            ("AsynchronousRandomOrder", None) => Ok(Schedule::AsynchronousRandomOrder),
            (other, _) => Err(invalid(format!("unknown Schedule variant '{other}'"))),
        }
    }
}

impl ToJson for StoppingCondition {
    fn to_json(&self) -> Json {
        obj(vec![
            ("max_rounds", uint(self.max_rounds)),
            ("stop_on_consensus", Json::Bool(self.stop_on_consensus)),
            (
                "blue_fraction_floor",
                match self.blue_fraction_floor {
                    Some(floor) => float(floor),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl FromJson for StoppingCondition {
    fn from_json(json: &Json) -> Result<Self> {
        let ty = "StoppingCondition";
        let floor = match need(json, "blue_fraction_floor", ty)? {
            Json::Null => None,
            value => Some(
                value
                    .as_f64()
                    .ok_or_else(|| invalid("blue_fraction_floor must be a number or null"))?,
            ),
        };
        Ok(StoppingCondition {
            max_rounds: need_usize(json, "max_rounds", ty)?,
            stop_on_consensus: need(json, "stop_on_consensus", ty)?
                .as_bool()
                .ok_or_else(|| invalid("stop_on_consensus must be a boolean"))?,
            blue_fraction_floor: floor,
        })
    }
}

// --- Experiment ---------------------------------------------------------

impl ToJson for Experiment {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::Str(self.name.clone())),
            ("topology", self.topology.to_json()),
        ];
        // Scenario API v3: the adversary key appears only when the list is
        // non-empty, so honest configurations keep the exact v2 layout (the
        // golden snapshot below pins both).
        if !self.adversary.is_empty() {
            fields.push((
                "adversary",
                Json::Arr(self.adversary.iter().map(|spec| spec.to_json()).collect()),
            ));
        }
        fields.extend([
            ("protocol", self.protocol.to_json()),
            ("initial", self.initial.to_json()),
            ("schedule", self.schedule.to_json()),
            ("stopping", self.stopping.to_json()),
            ("replicas", uint(self.replicas)),
            ("seed", Json::UInt(self.seed)),
            ("threads", uint(self.threads)),
        ]);
        obj(fields)
    }
}

impl FromJson for Experiment {
    fn from_json(json: &Json) -> Result<Self> {
        let ty = "Experiment";
        // v2 configs carry `topology`; pre-redesign configs carried a bare
        // `graph: GraphSpec`, which maps onto the materialised variant.
        let topology = match (json.get("topology"), json.get("graph")) {
            (Some(spec), _) => TopologySpec::from_json(spec)?,
            (None, Some(graph)) => TopologySpec::Materialised(GraphSpec::from_json(graph)?),
            (None, None) => {
                return Err(invalid(
                    "Experiment needs a 'topology' (or legacy 'graph') field",
                ))
            }
        };
        // v2 / v1 configs have no `adversary` key: absent means honest.
        let adversary = match json.get("adversary") {
            None => Vec::new(),
            Some(list) => list
                .as_array()
                .ok_or_else(|| invalid("Experiment.adversary must be an array"))?
                .iter()
                .map(AdversarySpec::from_json)
                .collect::<Result<Vec<AdversarySpec>>>()?,
        };
        Ok(Experiment {
            name: need(json, "name", ty)?
                .as_str()
                .ok_or_else(|| invalid("Experiment.name must be a string"))?
                .to_string(),
            topology,
            adversary,
            protocol: ProtocolSpec::from_json(need(json, "protocol", ty)?)?,
            initial: InitialCondition::from_json(need(json, "initial", ty)?)?,
            schedule: Schedule::from_json(need(json, "schedule", ty)?)?,
            stopping: StoppingCondition::from_json(need(json, "stopping", ty)?)?,
            replicas: need_usize(json, "replicas", ty)?,
            seed: need(json, "seed", ty)?
                .as_u64()
                .ok_or_else(|| invalid("Experiment.seed must be a non-negative integer"))?,
            threads: need_usize(json, "threads", ty)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(value: &T) {
        let text = value.to_json_string();
        let back = T::from_json_str(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(&back, value, "{text}");
    }

    #[test]
    fn json_parser_handles_the_basics() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Float(0.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\\"\"").unwrap(),
            Json::Str("a\n\"b\"".into())
        );
        assert_eq!(
            Json::parse("[1, 2, 3]").unwrap(),
            Json::Arr(vec![Json::UInt(1), Json::UInt(2), Json::UInt(3)])
        );
        let parsed = Json::parse("{\"a\": 1, \"b\": [true, null]}").unwrap();
        assert_eq!(parsed.get("a"), Some(&Json::UInt(1)));
        assert_eq!(parsed.get("missing"), None);
    }

    #[test]
    fn json_parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn u64_seeds_survive_without_float_precision_loss() {
        let seed = u64::MAX - 1;
        let text = Json::UInt(seed).to_json_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn golden_v2_experiment_round_trips() {
        let experiment = Experiment::on(TopologySpec::ImplicitSbm {
            n: 1_000_000,
            blocks: 2,
            p_in: 0.6,
            p_out: 0.2,
        })
        .named("golden/sbm")
        .protocol(ProtocolSpec::BestOfThree)
        .initial(InitialCondition::PrefixBlue { blue: 500_000 })
        .stopping(StoppingCondition::consensus_within(64))
        .replicas(3)
        .seed(0xE14)
        .threads(0);
        let text = experiment.to_json_string();
        // Golden snapshot of the v2 layout.
        assert_eq!(
            text,
            "{\"name\":\"golden/sbm\",\
             \"topology\":{\"ImplicitSbm\":{\"n\":1000000,\"blocks\":2,\"p_in\":0.6,\"p_out\":0.2}},\
             \"protocol\":\"BestOfThree\",\
             \"initial\":{\"PrefixBlue\":{\"blue\":500000}},\
             \"schedule\":\"Synchronous\",\
             \"stopping\":{\"max_rounds\":64,\"stop_on_consensus\":true,\"blue_fraction_floor\":null},\
             \"replicas\":3,\"seed\":3604,\"threads\":0}"
        );
        round_trip(&experiment);
    }

    #[test]
    fn golden_v3_adversarial_experiment_round_trips() {
        let experiment = Experiment::on(TopologySpec::Complete { n: 100_000 })
            .named("golden/adversarial")
            .protocol(ProtocolSpec::BestOfThree)
            .initial(InitialCondition::BernoulliWithBias { delta: 0.1 })
            .stopping(StoppingCondition::consensus_within(128))
            .adversary(AdversarySpec::Zealots { fraction: 0.05 })
            .adversary(AdversarySpec::Drop { q: 0.1 })
            .adversary(AdversarySpec::Partition {
                from_round: 4,
                until_round: 16,
                blocks: 2,
            })
            .replicas(5)
            .seed(0xE17)
            .threads(0);
        let text = experiment.to_json_string();
        // Golden snapshot of the v3 layout: the adversary list sits right
        // after the topology, each mechanism externally tagged.
        assert_eq!(
            text,
            "{\"name\":\"golden/adversarial\",\
             \"topology\":{\"Complete\":{\"n\":100000}},\
             \"adversary\":[{\"Zealots\":{\"fraction\":0.05}},\
             {\"Drop\":{\"q\":0.1}},\
             {\"Partition\":{\"from_round\":4,\"until_round\":16,\"blocks\":2}}],\
             \"protocol\":\"BestOfThree\",\
             \"initial\":{\"BernoulliWithBias\":{\"delta\":0.1}},\
             \"schedule\":\"Synchronous\",\
             \"stopping\":{\"max_rounds\":128,\"stop_on_consensus\":true,\"blue_fraction_floor\":null},\
             \"replicas\":5,\"seed\":3607,\"threads\":0}"
        );
        round_trip(&experiment);
    }

    #[test]
    fn v2_configs_without_an_adversary_key_parse_unchanged() {
        // The exact v2 layout (no adversary key): it must deserialise to the
        // honest experiment, and re-serialising must not invent the key.
        let v2 = "{\"name\":\"compat/v2\",\
                  \"topology\":{\"ImplicitGnp\":{\"n\":5000,\"p\":0.4}},\
                  \"protocol\":\"BestOfThree\",\
                  \"initial\":{\"BernoulliWithBias\":{\"delta\":0.1}},\
                  \"schedule\":\"Synchronous\",\
                  \"stopping\":{\"max_rounds\":10000,\"stop_on_consensus\":true,\
                  \"blue_fraction_floor\":null},\
                  \"replicas\":8,\"seed\":1,\"threads\":0}";
        let experiment = Experiment::from_json_str(v2).unwrap();
        assert!(experiment.adversary.is_empty());
        assert!(!experiment.to_json_string().contains("adversary"));
        round_trip(&experiment);
    }

    #[test]
    fn out_of_range_adversary_parameters_fail_at_parse_time() {
        // One case per spelling: the JSON load reports a typed error instead
        // of accepting a spec that would misbehave deep inside the run.
        for bad in [
            "{\"Zealots\":{\"fraction\":1.5}}",
            "{\"Zealots\":{\"fraction\":-0.1}}",
            "{\"Byzantine\":{\"fraction\":2.0}}",
            "{\"Drop\":{\"q\":1.01}}",
            "{\"Drop\":{\"q\":-0.5}}",
            "{\"Partition\":{\"from_round\":9,\"until_round\":9,\"blocks\":2}}",
            "{\"Partition\":{\"from_round\":9,\"until_round\":4,\"blocks\":2}}",
            "{\"Partition\":{\"from_round\":0,\"until_round\":5,\"blocks\":1}}",
        ] {
            let err = AdversarySpec::from_json_str(bad).unwrap_err();
            assert!(
                matches!(err, CoreError::InvalidConfig { .. }),
                "{bad}: expected InvalidConfig, got {err:?}"
            );
        }
        // In-range parameters still load.
        assert!(AdversarySpec::from_json_str("{\"Drop\":{\"q\":0.25}}").is_ok());
        // … and an experiment embedding a bad spec fails as a whole.
        let doc = "{\"name\":\"bad\",\
                  \"topology\":{\"ImplicitGnp\":{\"n\":5000,\"p\":0.4}},\
                  \"protocol\":\"BestOfThree\",\
                  \"initial\":{\"BernoulliWithBias\":{\"delta\":0.1}},\
                  \"schedule\":\"Synchronous\",\
                  \"stopping\":{\"max_rounds\":10000,\"stop_on_consensus\":true,\
                  \"blue_fraction_floor\":null},\
                  \"replicas\":8,\"seed\":1,\"threads\":0,\
                  \"adversary\":[{\"Drop\":{\"q\":7.0}}]}";
        assert!(Experiment::from_json_str(doc).is_err());
    }

    #[test]
    fn golden_v1_config_with_graph_key_still_deserialises() {
        // The exact layout a pre-redesign binary would have produced: a
        // `graph` key holding a bare GraphSpec, no `topology` key.
        let v1 = "{\"name\":\"E3/best-of-3\",\
                  \"graph\":{\"DenseForAlpha\":{\"n\":50000,\"alpha\":0.75}},\
                  \"protocol\":\"BestOfThree\",\
                  \"initial\":{\"BernoulliWithBias\":{\"delta\":0.08}},\
                  \"schedule\":\"Synchronous\",\
                  \"stopping\":{\"max_rounds\":20000,\"stop_on_consensus\":true,\
                  \"blue_fraction_floor\":null},\
                  \"replicas\":30,\"seed\":227,\"threads\":0}";
        let experiment = Experiment::from_json_str(v1).unwrap();
        assert_eq!(
            experiment.topology,
            TopologySpec::Materialised(GraphSpec::DenseForAlpha {
                n: 50_000,
                alpha: 0.75
            })
        );
        assert_eq!(experiment.name, "E3/best-of-3");
        assert_eq!(experiment.replicas, 30);
        assert_eq!(experiment.seed, 227);
        // Re-serialising upgrades to the v2 layout, which round-trips.
        round_trip(&experiment);
    }

    #[test]
    fn missing_topology_and_graph_is_a_typed_error() {
        let err = Experiment::from_json_str("{\"name\":\"x\"}").unwrap_err();
        assert!(err.to_string().contains("topology"), "{err}");
    }

    fn random_tie(rng: &mut StdRng) -> TieRule {
        if rng.gen::<bool>() {
            TieRule::KeepOwn
        } else {
            TieRule::Random
        }
    }

    fn random_protocol(rng: &mut StdRng) -> ProtocolSpec {
        match rng.gen_range(0..5usize) {
            0 => ProtocolSpec::Voter,
            1 => ProtocolSpec::BestOfTwo {
                tie_rule: random_tie(rng),
            },
            2 => ProtocolSpec::BestOfThree,
            3 => ProtocolSpec::BestOfK {
                k: rng.gen_range(1..12),
                tie_rule: random_tie(rng),
            },
            _ => ProtocolSpec::LocalMajority {
                tie_rule: random_tie(rng),
            },
        }
    }

    fn random_graph(rng: &mut StdRng) -> GraphSpec {
        let n = rng.gen_range(2..100_000usize);
        match rng.gen_range(0..7usize) {
            0 => GraphSpec::Complete { n },
            1 => GraphSpec::ErdosRenyiGnp { n, p: rng.gen() },
            2 => GraphSpec::DenseForAlpha {
                n,
                alpha: rng.gen(),
            },
            3 => GraphSpec::RandomRegular {
                n,
                d: rng.gen_range(1..n),
            },
            4 => GraphSpec::PlantedPartition {
                n,
                blocks: rng.gen_range(1..8),
                p_in: rng.gen(),
                p_out: rng.gen(),
            },
            5 => GraphSpec::Torus2d {
                rows: rng.gen_range(1..100),
                cols: rng.gen_range(1..100),
            },
            _ => GraphSpec::ChungLuPowerLaw {
                n,
                exponent: 2.0 + rng.gen::<f64>(),
                min_weight: 1.0 + rng.gen::<f64>(),
                max_weight: 10.0 + rng.gen::<f64>(),
            },
        }
    }

    fn random_topology(rng: &mut StdRng) -> TopologySpec {
        let n = rng.gen_range(2..2_000_000usize);
        match rng.gen_range(0..6usize) {
            0 => TopologySpec::Complete { n },
            1 => TopologySpec::CompleteBipartite {
                a: rng.gen_range(1..n),
                b: rng.gen_range(1..n),
            },
            2 => TopologySpec::CompleteMultipartite {
                blocks: (0..rng.gen_range(2..6usize))
                    .map(|_| rng.gen_range(1..1_000))
                    .collect(),
            },
            3 => TopologySpec::ImplicitGnp { n, p: rng.gen() },
            4 => TopologySpec::ImplicitSbm {
                n,
                blocks: rng.gen_range(1..8),
                p_in: rng.gen(),
                p_out: rng.gen(),
            },
            _ => TopologySpec::Materialised(random_graph(rng)),
        }
    }

    fn random_adversary(rng: &mut StdRng) -> AdversarySpec {
        match rng.gen_range(0..5usize) {
            0 => AdversarySpec::Zealots {
                fraction: rng.gen(),
            },
            1 => AdversarySpec::ZealotIds {
                vertices: (0..rng.gen_range(0..6usize))
                    .map(|_| rng.gen_range(0..10_000))
                    .collect(),
            },
            2 => AdversarySpec::Byzantine {
                fraction: rng.gen(),
            },
            3 => AdversarySpec::Drop { q: rng.gen() },
            _ => {
                let from = rng.gen_range(0..100u64);
                AdversarySpec::Partition {
                    from_round: from,
                    until_round: from + rng.gen_range(1..100u64),
                    blocks: rng.gen_range(2..8),
                }
            }
        }
    }

    fn random_initial(rng: &mut StdRng) -> InitialCondition {
        match rng.gen_range(0..7usize) {
            0 => InitialCondition::BernoulliWithBias { delta: rng.gen() },
            1 => InitialCondition::Bernoulli {
                blue_probability: rng.gen(),
            },
            2 => InitialCondition::ExactCount {
                blue: rng.gen_range(0..10_000),
            },
            3 => InitialCondition::AllRed,
            4 => InitialCondition::AllBlue,
            5 => InitialCondition::ExplicitBlue {
                vertices: (0..rng.gen_range(0..6usize))
                    .map(|_| rng.gen_range(0..10_000))
                    .collect(),
            },
            _ => InitialCondition::PrefixBlue {
                blue: rng.gen_range(0..10_000),
            },
        }
    }

    #[test]
    fn randomized_specs_round_trip_exactly() {
        // Property-style sweep with the workspace's deterministic RNG: every
        // randomly generated configuration must survive JSON and back
        // bit-exactly (floats use shortest-round-trip formatting).
        let mut rng = StdRng::seed_from_u64(0x00C0_FFEE);
        for _ in 0..500 {
            round_trip(&random_protocol(&mut rng));
            round_trip(&random_graph(&mut rng));
            round_trip(&random_topology(&mut rng));
            round_trip(&random_initial(&mut rng));
            round_trip(&random_adversary(&mut rng));
        }
        for _ in 0..200 {
            let experiment = Experiment {
                name: format!("rand/{}", rng.gen::<u32>()),
                topology: random_topology(&mut rng),
                protocol: random_protocol(&mut rng),
                initial: random_initial(&mut rng),
                schedule: if rng.gen::<bool>() {
                    Schedule::Synchronous
                } else {
                    Schedule::AsynchronousRandomOrder
                },
                stopping: StoppingCondition {
                    max_rounds: rng.gen_range(1..1_000_000),
                    stop_on_consensus: rng.gen(),
                    blue_fraction_floor: if rng.gen::<bool>() {
                        Some(rng.gen())
                    } else {
                        None
                    },
                },
                replicas: rng.gen_range(1..1_000),
                seed: rng.gen(),
                threads: rng.gen_range(0..64),
                adversary: (0..rng.gen_range(0..4usize))
                    .map(|_| random_adversary(&mut rng))
                    .collect(),
            };
            round_trip(&experiment);
        }
    }

    #[test]
    fn unknown_variants_are_typed_errors() {
        assert!(ProtocolSpec::from_json_str("\"BestOfTen\"").is_err());
        assert!(TopologySpec::from_json_str("{\"Toroidal\":{\"n\":5}}").is_err());
        assert!(Schedule::from_json_str("\"Eventually\"").is_err());
        assert!(InitialCondition::from_json_str("{\"ExactCount\":{}}").is_err());
        assert!(AdversarySpec::from_json_str("{\"Saboteur\":{\"fraction\":0.1}}").is_err());
        assert!(AdversarySpec::from_json_str("{\"Drop\":{}}").is_err());
        assert!(AdversarySpec::from_json_str("{\"Partition\":{\"from_round\":1}}").is_err());
    }
}
