//! Empirical verification of the time-reversal duality (Section 2).
//!
//! The paper's entire proof rests on the identity
//! `P(ξ_T(v₀) = B) = P(X_H(v₀, T) = B)`: the forward Best-of-Three process
//! observed at one vertex has exactly the law of the voting-DAG colouring.
//! [`DualityCheck`] estimates both sides by Monte Carlo on the same graph and
//! reports the difference together with the scale of Monte-Carlo noise, which
//! is experiment E9.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use bo3_dag::colouring::colour_dag_random;
use bo3_dag::voting_dag::VotingDag;
use bo3_dynamics::prelude::*;
use bo3_graph::CsrGraph;

use crate::error::{CoreError, Result};

/// Configuration of a duality check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DualityCheck {
    /// The observed vertex `v₀`.
    pub vertex: usize,
    /// Number of rounds `T` (equivalently, DAG height).
    pub rounds: usize,
    /// Blue probability of the i.i.d. initial condition.
    pub p_blue: f64,
    /// Monte-Carlo trials per side.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
}

/// The two estimates and their difference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DualityReport {
    /// Estimate of `P(ξ_T(v₀) = B)` from forward simulation.
    pub forward_estimate: f64,
    /// Estimate of `P(X_H(v₀, T) = B)` from DAG colouring.
    pub dag_estimate: f64,
    /// Absolute difference between the two estimates.
    pub difference: f64,
    /// Two standard deviations of the Monte-Carlo noise on the difference
    /// (the difference should be below this almost always if the duality holds).
    pub noise_scale: f64,
    /// Trials used per side.
    pub trials: usize,
}

impl DualityCheck {
    /// Runs both estimators on `graph`.
    pub fn run(&self, graph: &CsrGraph) -> Result<DualityReport> {
        if self.vertex >= graph.num_vertices() {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "observed vertex {} out of range for a graph with {} vertices",
                    self.vertex,
                    graph.num_vertices()
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.p_blue) || self.p_blue.is_nan() {
            return Err(CoreError::InvalidConfig {
                reason: format!("p_blue must lie in [0,1], got {}", self.p_blue),
            });
        }
        if self.trials == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "duality check needs at least one trial".into(),
            });
        }

        // Forward side: run the real dynamics for exactly `rounds` rounds and
        // look at the observed vertex.
        let simulator = Engine::on_graph(graph)?
            .with_stopping(StoppingCondition::fixed_rounds(self.rounds))
            .with_trace(false);
        let protocol = BestOfThree::new();
        let mut forward_blue = 0usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.trials {
            let initial = InitialCondition::Bernoulli {
                blue_probability: self.p_blue,
            }
            .sample(graph, &mut rng)?;
            // Run the fixed number of rounds, then inspect the vertex. We use
            // the trace-less runner and re-derive the final configuration from
            // a manual stepping loop to read a single vertex cheaply.
            let mut config = initial;
            let mut scratch = Vec::new();
            for _ in 0..self.rounds {
                simulator.step_synchronous(&protocol, &config, &mut scratch, &mut rng);
                config.overwrite_from(&scratch);
            }
            if config.get(self.vertex).is_blue() {
                forward_blue += 1;
            }
        }
        let forward_estimate = forward_blue as f64 / self.trials as f64;

        // Dual side: sample a voting-DAG of the same height and colour it.
        let mut dag_blue = 0usize;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x517C_C1B7_2722_0A95);
        for _ in 0..self.trials {
            let dag = VotingDag::sample(graph, self.vertex, self.rounds, &mut rng)?;
            let colouring = colour_dag_random(&dag, self.p_blue, &mut rng)?;
            if colouring.root_colour().is_blue() {
                dag_blue += 1;
            }
        }
        let dag_estimate = dag_blue as f64 / self.trials as f64;

        // Binomial noise: each estimate has variance p(1-p)/trials; the
        // difference has twice that. Use the pooled estimate for p.
        let p_pool = 0.5 * (forward_estimate + dag_estimate);
        let var = 2.0 * p_pool * (1.0 - p_pool) / self.trials as f64;
        let noise_scale = 2.0 * var.sqrt();

        Ok(DualityReport {
            forward_estimate,
            dag_estimate,
            difference: (forward_estimate - dag_estimate).abs(),
            noise_scale,
            trials: self.trials,
        })
    }
}

impl DualityReport {
    /// `true` when the difference is within three standard deviations of the
    /// Monte-Carlo noise (a generous acceptance band: the duality is exact,
    /// so only sampling noise separates the two estimates).
    pub fn consistent(&self) -> bool {
        self.difference <= 1.5 * self.noise_scale + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::generators;

    #[test]
    fn rejects_bad_configuration() {
        let g = generators::complete(10);
        let bad_vertex = DualityCheck {
            vertex: 99,
            rounds: 2,
            p_blue: 0.3,
            trials: 10,
            seed: 0,
        };
        assert!(bad_vertex.run(&g).is_err());
        let bad_p = DualityCheck {
            vertex: 0,
            rounds: 2,
            p_blue: 1.5,
            trials: 10,
            seed: 0,
        };
        assert!(bad_p.run(&g).is_err());
        let bad_trials = DualityCheck {
            vertex: 0,
            rounds: 2,
            p_blue: 0.3,
            trials: 0,
            seed: 0,
        };
        assert!(bad_trials.run(&g).is_err());
    }

    #[test]
    fn duality_holds_on_a_small_complete_graph() {
        let g = generators::complete(30);
        let check = DualityCheck {
            vertex: 3,
            rounds: 3,
            p_blue: 0.4,
            trials: 3000,
            seed: 42,
        };
        let report = check.run(&g).unwrap();
        assert!(
            report.consistent(),
            "difference {} exceeds noise scale {}",
            report.difference,
            report.noise_scale
        );
    }

    #[test]
    fn duality_holds_on_a_sparse_cycle() {
        // Heavy coalescence regime: the DAG is nowhere near a ternary tree,
        // yet the duality is still exact.
        let g = generators::cycle(12).unwrap();
        let check = DualityCheck {
            vertex: 0,
            rounds: 4,
            p_blue: 0.45,
            trials: 3000,
            seed: 7,
        };
        let report = check.run(&g).unwrap();
        assert!(
            report.consistent(),
            "difference {} exceeds noise scale {}",
            report.difference,
            report.noise_scale
        );
    }

    #[test]
    fn zero_rounds_reduces_to_the_initial_condition() {
        let g = generators::complete(20);
        let check = DualityCheck {
            vertex: 1,
            rounds: 0,
            p_blue: 0.25,
            trials: 4000,
            seed: 3,
        };
        let report = check.run(&g).unwrap();
        assert!((report.forward_estimate - 0.25).abs() < 0.03);
        assert!((report.dag_estimate - 0.25).abs() < 0.03);
        assert!(report.consistent());
    }

    #[test]
    fn extreme_probabilities_are_exact() {
        let g = generators::complete(15);
        for p in [0.0, 1.0] {
            let check = DualityCheck {
                vertex: 0,
                rounds: 3,
                p_blue: p,
                trials: 200,
                seed: 9,
            };
            let report = check.run(&g).unwrap();
            assert_eq!(report.forward_estimate, p);
            assert_eq!(report.dag_estimate, p);
            assert_eq!(report.difference, 0.0);
            assert!(report.consistent());
        }
    }
}
