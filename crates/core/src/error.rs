//! Error type for the top-level API.

use std::fmt;

/// Errors surfaced by the `bo3-core` API.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An error originating in the graph substrate.
    Graph(bo3_graph::GraphError),
    /// An error originating in the dynamics engine.
    Dynamics(bo3_dynamics::DynamicsError),
    /// An error originating in the voting-DAG substrate.
    Dag(bo3_dag::DagError),
    /// The experiment configuration is inconsistent.
    InvalidConfig {
        /// Description of the problem.
        reason: String,
    },
    /// Writing a report failed.
    Report {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Dynamics(e) => write!(f, "dynamics error: {e}"),
            CoreError::Dag(e) => write!(f, "voting-DAG error: {e}"),
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::Report { reason } => write!(f, "report error: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<bo3_graph::GraphError> for CoreError {
    fn from(e: bo3_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<bo3_dynamics::DynamicsError> for CoreError {
    fn from(e: bo3_dynamics::DynamicsError) -> Self {
        CoreError::Dynamics(e)
    }
}

impl From<bo3_dag::DagError> for CoreError {
    fn from(e: bo3_dag::DagError) -> Self {
        CoreError::Dag(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Report {
            reason: e.to_string(),
        }
    }
}

/// Result alias for `bo3-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = bo3_graph::GraphError::EmptyGraph.into();
        assert!(e.to_string().contains("graph error"));
        let e: CoreError = bo3_dynamics::DynamicsError::DidNotConverge { rounds: 5 }.into();
        assert!(e.to_string().contains("dynamics error"));
        let e: CoreError = bo3_dag::DagError::InvalidParameter { reason: "x".into() }.into();
        assert!(e.to_string().contains("voting-DAG error"));
        let e: CoreError = std::io::Error::other("disk").into();
        assert!(e.to_string().contains("disk"));
        let e = CoreError::InvalidConfig {
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("bad"));
    }
}
