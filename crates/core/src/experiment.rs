//! Experiment configuration and execution.
//!
//! An [`Experiment`] names everything needed to reproduce one data point of
//! an evaluation table: the graph family instance, the protocol, the initial
//! condition, the schedule, the stopping rule, and the Monte-Carlo budget.
//! Running it yields an [`ExperimentResult`] that pairs the measured
//! statistics with the graph's realised degree profile and the paper's
//! theoretical prediction for the same parameters, which is exactly the
//! "paper vs. measured" row format used in `EXPERIMENTS.md`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use bo3_dynamics::prelude::*;
use bo3_graph::degree::DegreeStats;
use bo3_graph::generators::GraphSpec;
use bo3_graph::traversal::is_connected;
use bo3_graph::CsrGraph;
use bo3_theory::prediction::{predict, Prediction};

use crate::error::{CoreError, Result};

/// A fully specified experiment (one parameter point).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Short identifier used in reports (e.g. `"E1/n=100000"`).
    pub name: String,
    /// Which graph to generate.
    pub graph: GraphSpec,
    /// Which protocol to run.
    pub protocol: ProtocolSpec,
    /// Initial condition for every replica.
    pub initial: InitialCondition,
    /// Update schedule.
    pub schedule: Schedule,
    /// Per-replica stopping rule.
    pub stopping: StoppingCondition,
    /// Number of Monte-Carlo replicas.
    pub replicas: usize,
    /// Master seed (graph generation uses `seed`, replica `i` uses a derived stream).
    pub seed: u64,
    /// Worker threads (`0` = available parallelism).
    pub threads: usize,
}

impl Experiment {
    /// The canonical Theorem-1 experiment: Best-of-3 on the given graph with
    /// the paper's `Bernoulli(1/2 − δ)` initial condition.
    pub fn theorem_one(
        name: impl Into<String>,
        graph: GraphSpec,
        delta: f64,
        replicas: usize,
        seed: u64,
    ) -> Self {
        Experiment {
            name: name.into(),
            graph,
            protocol: ProtocolSpec::BestOfThree,
            initial: InitialCondition::BernoulliWithBias { delta },
            schedule: Schedule::Synchronous,
            stopping: StoppingCondition::consensus_within(10_000),
            replicas,
            seed,
            threads: 0,
        }
    }

    /// Generates the experiment's graph (deterministic in `seed`).
    pub fn build_graph(&self) -> Result<CsrGraph> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let graph = self.graph.generate(&mut rng)?;
        Ok(graph)
    }

    /// Runs the experiment end to end.
    pub fn run(&self) -> Result<ExperimentResult> {
        let graph = self.build_graph()?;
        self.run_on(&graph)
    }

    /// Runs the experiment on an already generated graph (useful when several
    /// experiments share one expensive graph instance).
    pub fn run_on(&self, graph: &CsrGraph) -> Result<ExperimentResult> {
        if self.replicas == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "an experiment needs at least one replica".into(),
            });
        }
        if graph.num_vertices() == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "the experiment graph is empty".into(),
            });
        }
        if !is_connected(graph) {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "graph {} is disconnected; consensus experiments require a connected graph",
                    self.graph.label()
                ),
            });
        }
        let degree_stats = DegreeStats::of(graph)?;

        let mc = MonteCarlo {
            protocol: self.protocol,
            initial: self.initial.clone(),
            schedule: self.schedule,
            stopping: self.stopping,
            replicas: self.replicas,
            master_seed: self.seed,
            threads: self.threads,
        };
        let report = mc.run(graph)?;

        // Theoretical prediction for the same (n, alpha, delta) point, when the
        // initial condition is the paper's.
        let prediction = match &self.initial {
            InitialCondition::BernoulliWithBias { delta } => {
                let n = graph.num_vertices() as f64;
                degree_stats
                    .alpha()
                    .map(|alpha| predict(n, alpha, *delta, 2.0))
            }
            _ => None,
        };

        Ok(ExperimentResult {
            name: self.name.clone(),
            graph_label: self.graph.label(),
            protocol_name: self.protocol.name(),
            initial_label: self.initial.label(),
            schedule: self.schedule,
            degree_stats,
            report,
            prediction,
        })
    }
}

/// The outcome of one experiment: measurements plus the matching prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment identifier.
    pub name: String,
    /// Graph description.
    pub graph_label: String,
    /// Protocol name.
    pub protocol_name: String,
    /// Initial-condition description.
    pub initial_label: String,
    /// Schedule used.
    pub schedule: Schedule,
    /// Realised degree statistics of the generated graph.
    pub degree_stats: DegreeStats,
    /// Monte-Carlo measurements.
    pub report: MonteCarloReport,
    /// The paper's prediction for this parameter point (present when the
    /// initial condition is the paper's Bernoulli one).
    pub prediction: Option<Prediction>,
}

impl ExperimentResult {
    /// Mean rounds to consensus, when any replica converged.
    pub fn mean_rounds(&self) -> Option<f64> {
        self.report.mean_rounds()
    }

    /// Fraction of converged replicas won by red.
    pub fn red_win_rate(&self) -> Option<f64> {
        self.report.red_win.map(|p| p.estimate)
    }

    /// `true` when every converged replica ended in red consensus — the
    /// Theorem 1 outcome.
    pub fn red_swept(&self) -> bool {
        match self.report.red_win {
            Some(p) => p.successes == p.trials && p.trials > 0,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_one_experiment_runs_and_red_sweeps() {
        let exp =
            Experiment::theorem_one("unit/complete", GraphSpec::Complete { n: 300 }, 0.15, 10, 1);
        let result = exp.run().unwrap();
        assert_eq!(result.name, "unit/complete");
        assert!(result.red_swept());
        assert!(result.mean_rounds().unwrap() < 25.0);
        assert!(result.prediction.is_some());
        assert_eq!(result.degree_stats.min, 299);
        assert!(result.protocol_name.contains("best-of-3"));
    }

    #[test]
    fn rejects_zero_replicas_and_disconnected_graphs() {
        let mut exp = Experiment::theorem_one("bad", GraphSpec::Complete { n: 20 }, 0.1, 0, 1);
        assert!(matches!(exp.run(), Err(CoreError::InvalidConfig { .. })));
        exp.replicas = 3;
        // Two disjoint cliques via an SBM with zero cross probability.
        exp.graph = GraphSpec::PlantedPartition {
            n: 20,
            blocks: 2,
            p_in: 1.0,
            p_out: 0.0,
        };
        assert!(matches!(exp.run(), Err(CoreError::InvalidConfig { .. })));
    }

    #[test]
    fn graph_generation_is_deterministic_in_the_seed() {
        let exp = Experiment::theorem_one(
            "det",
            GraphSpec::ErdosRenyiGnp { n: 200, p: 0.2 },
            0.1,
            1,
            7,
        );
        let g1 = exp.build_graph().unwrap();
        let g2 = exp.build_graph().unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn run_on_shared_graph_matches_run() {
        let exp = Experiment::theorem_one("shared", GraphSpec::Complete { n: 150 }, 0.12, 5, 3);
        let direct = exp.run().unwrap();
        let graph = exp.build_graph().unwrap();
        let shared = exp.run_on(&graph).unwrap();
        assert_eq!(direct.report.outcomes, shared.report.outcomes);
    }

    #[test]
    fn non_paper_initial_conditions_have_no_prediction() {
        let exp = Experiment {
            initial: InitialCondition::ExactCount { blue: 40 },
            ..Experiment::theorem_one("nopred", GraphSpec::Complete { n: 100 }, 0.1, 3, 5)
        };
        let result = exp.run().unwrap();
        assert!(result.prediction.is_none());
        assert!(result.red_win_rate().is_some());
    }

    #[test]
    fn voter_baseline_does_not_always_sweep() {
        let exp = Experiment {
            protocol: ProtocolSpec::Voter,
            initial: InitialCondition::ExactCount { blue: 28 },
            stopping: StoppingCondition::consensus_within(200_000),
            replicas: 40,
            ..Experiment::theorem_one("voter", GraphSpec::Complete { n: 60 }, 0.1, 40, 11)
        };
        let result = exp.run().unwrap();
        assert!(!result.red_swept(), "voter unexpectedly swept for red");
    }
}
