//! Experiment configuration and execution — the Scenario API.
//!
//! An [`Experiment`] names everything needed to reproduce one data point of
//! an evaluation table: the topology, the protocol, the initial condition,
//! the schedule, the stopping rule, and the Monte-Carlo budget.  Experiments
//! are assembled builder-style from a serialisable
//! [`TopologySpec`]:
//!
//! ```
//! use bo3_core::prelude::*;
//!
//! let result = Experiment::on(TopologySpec::Complete { n: 2_000 })
//!     .protocol(ProtocolSpec::BestOfThree)
//!     .initial(InitialCondition::BernoulliWithBias { delta: 0.15 })
//!     .replicas(4)
//!     .seed(7)
//!     .run()
//!     .unwrap();
//! assert!(result.red_swept());
//! ```
//!
//! Every spec variant — materialised or implicit, synchronous or
//! asynchronous schedule — runs through the **one** topology-generic
//! engine (`bo3_dynamics::Engine`, via `MonteCarlo::run_on_topology`).
//! Materialised specs keep the pre-redesign replica-RNG plumbing, so their
//! seeded reports are bit-identical to the historical graph pipeline, while
//! the implicit families run adjacency-free, which is what lets every
//! experiment scale to `n = 10⁶` and beyond.  Dense whole-graph
//! analyses (degree statistics, the paper-prediction column) *degrade
//! gracefully* on topologies that cannot afford them: the result carries a
//! typed [`Analysis::Skipped`] with the reason instead of failing the run.

use serde::{Deserialize, Serialize};

use bo3_dynamics::prelude::*;
use bo3_graph::degree::DegreeStats;
use bo3_graph::topology::materialize;
use bo3_graph::traversal::is_connected;
use bo3_graph::{BuiltTopology, CsrGraph, Topology, TopologySpec};
use bo3_theory::prediction::{predict, Prediction};

use crate::error::{CoreError, Result};

/// A dense analysis that either ran or was skipped for a stated reason.
///
/// Implicit topologies make some whole-graph diagnostics either impossible
/// (degree-ranked placements need materialised rows) or unaffordable
/// (reading a hash-defined degree sequence is `Θ(n²)`).  Rather than failing
/// the experiment or silently omitting columns, results carry this typed
/// outcome: [`Analysis::Computed`] with the value, or [`Analysis::Skipped`]
/// with a human-readable reason that reports can print.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Analysis<T> {
    /// The analysis ran; here is its value.
    Computed(T),
    /// The analysis was intentionally not run.
    Skipped {
        /// Why the analysis was skipped (shown in reports).
        reason: String,
    },
}

impl<T> Analysis<T> {
    /// Shorthand constructor for the skipped case.
    pub fn skipped(reason: impl Into<String>) -> Self {
        Analysis::Skipped {
            reason: reason.into(),
        }
    }

    /// The computed value, when the analysis ran.
    pub fn computed(&self) -> Option<&T> {
        match self {
            Analysis::Computed(value) => Some(value),
            Analysis::Skipped { .. } => None,
        }
    }

    /// Consumes the analysis, yielding the computed value when present.
    pub fn into_computed(self) -> Option<T> {
        match self {
            Analysis::Computed(value) => Some(value),
            Analysis::Skipped { .. } => None,
        }
    }

    /// The skip reason, when the analysis was skipped.
    pub fn skipped_reason(&self) -> Option<&str> {
        match self {
            Analysis::Computed(_) => None,
            Analysis::Skipped { reason } => Some(reason),
        }
    }

    /// `true` when the analysis ran.
    pub fn is_computed(&self) -> bool {
        matches!(self, Analysis::Computed(_))
    }
}

/// A fully specified experiment (one parameter point).
///
/// Construct with [`Experiment::on`] and the builder methods; the fields
/// stay public so configurations remain plain serialisable data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Short identifier used in reports (e.g. `"E1/n=100000"`).
    pub name: String,
    /// Which topology to run on (materialised or implicit).
    pub topology: TopologySpec,
    /// Which protocol to run.
    pub protocol: ProtocolSpec,
    /// Initial condition for every replica.
    pub initial: InitialCondition,
    /// Update schedule.
    pub schedule: Schedule,
    /// Per-replica stopping rule.
    pub stopping: StoppingCondition,
    /// Number of Monte-Carlo replicas.
    pub replicas: usize,
    /// Master seed: freezes the topology (hash seed / generator stream) and
    /// derives every replica's RNG stream.
    pub seed: u64,
    /// Worker threads (`0` = available parallelism).
    pub threads: usize,
    /// Adversarial mechanisms layered over every replica (Scenario API v3;
    /// empty = the honest dynamics, exactly the v2 behaviour).
    pub adversary: Vec<AdversarySpec>,
}

impl Experiment {
    /// Starts a builder on the given topology with the defaults of the
    /// paper's setting: Best-of-Three, `Bernoulli(1/2 − 0.1)` initial
    /// opinions, synchronous rounds, stop at consensus within `10⁴` rounds,
    /// 8 replicas, seed 0, all available threads.
    ///
    /// Anything convertible into a [`TopologySpec`] is accepted — in
    /// particular a bare [`bo3_graph::generators::GraphSpec`], which maps
    /// to [`TopologySpec::Materialised`].
    pub fn on(topology: impl Into<TopologySpec>) -> Self {
        let topology = topology.into();
        Experiment {
            name: format!("experiment/{}", topology.label()),
            topology,
            protocol: ProtocolSpec::BestOfThree,
            initial: InitialCondition::BernoulliWithBias { delta: 0.1 },
            schedule: Schedule::Synchronous,
            stopping: StoppingCondition::default(),
            replicas: 8,
            seed: 0,
            threads: 0,
            adversary: Vec::new(),
        }
    }

    /// Sets the report identifier.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the protocol.
    pub fn protocol(mut self, protocol: ProtocolSpec) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the initial condition.
    pub fn initial(mut self, initial: InitialCondition) -> Self {
        self.initial = initial;
        self
    }

    /// Sets the update schedule.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the stopping rule.
    pub fn stopping(mut self, stopping: StoppingCondition) -> Self {
        self.stopping = stopping;
        self
    }

    /// Sets the Monte-Carlo replica count.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread budget (`0` = available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Adds one adversarial mechanism (call repeatedly to compose — e.g.
    /// zealots plus message drop; see
    /// [`bo3_dynamics::adversary`] for the composition rules).
    pub fn adversary(mut self, spec: AdversarySpec) -> Self {
        self.adversary.push(spec);
        self
    }

    /// The canonical Theorem-1 experiment: Best-of-3 on the given topology
    /// with the paper's `Bernoulli(1/2 − δ)` initial condition.
    pub fn theorem_one(
        name: impl Into<String>,
        topology: impl Into<TopologySpec>,
        delta: f64,
        replicas: usize,
        seed: u64,
    ) -> Self {
        Experiment::on(topology)
            .named(name)
            .initial(InitialCondition::BernoulliWithBias { delta })
            .stopping(StoppingCondition::consensus_within(10_000))
            .replicas(replicas)
            .seed(seed)
    }

    /// Builds the experiment's topology (deterministic in `seed`).
    pub fn build_topology(&self) -> Result<BuiltTopology> {
        Ok(self.topology.build(self.seed)?)
    }

    /// Generates the experiment's graph as materialised CSR adjacency
    /// (deterministic in `seed`; for materialised specs this is exactly the
    /// pre-redesign `build_graph` stream).
    ///
    /// Implicit specs are materialised through their frozen edge set, which
    /// is guarded by `DENSE_ANALYSIS_VERTEX_LIMIT` — million-vertex implicit
    /// topologies return a typed error here; run them with
    /// [`Experiment::run`] instead, which never materialises them.
    pub fn build_graph(&self) -> Result<CsrGraph> {
        match self.build_topology()? {
            BuiltTopology::Materialised(graph) => Ok(graph),
            implicit => Ok(materialize(&implicit)?),
        }
    }

    /// Runs the experiment end to end — every spec variant, either
    /// schedule, through the one topology-generic engine.
    ///
    /// Materialised specs additionally get the whole-graph validations
    /// (connectivity) and measured degree statistics the historical graph
    /// pipeline performed, and keep its replica-RNG plumbing, so their
    /// seeded reports are bit-identical across the engine unification;
    /// implicit specs run adjacency-free with the dense analyses degrading
    /// to typed [`Analysis::Skipped`] outcomes where they cannot run.
    pub fn run(&self) -> Result<ExperimentResult> {
        self.validate()?;
        let built = self.build_topology()?;
        let degree_stats = match built.as_graph() {
            Some(graph) => {
                self.validate_graph(graph)?;
                Analysis::Computed(DegreeStats::of(graph)?)
            }
            None => {
                self.validate_implicit_regime(built.n())?;
                match self.topology.closed_form_degree_stats() {
                    Some(stats) => Analysis::Computed(stats),
                    None => Analysis::skipped(format!(
                        "degree statistics of {} are hash-defined (Θ(n) per vertex to read); \
                         materialise the spec to measure them",
                        self.topology.label()
                    )),
                }
            }
        };
        let report = self.monte_carlo().run_on_topology(&built)?;
        self.assemble(built.n(), built.memory_bytes(), degree_stats, report)
    }

    /// Checks the configuration without running anything — the same
    /// validation [`Experiment::run`] performs first (parameter ranges and
    /// cross-field consistency; graph-level checks still happen at run
    /// time).  The `bo3-serve` daemon calls this at submit time so a bad
    /// configuration is refused at the socket as a typed `invalid-config`
    /// error instead of being accepted and failing later.
    pub fn validate_config(&self) -> Result<()> {
        self.validate()
    }

    /// Runs the experiment cooperatively: the [`RunBudget`]'s slice cap sets
    /// how often control returns, `on_progress` receives a
    /// [`BatchProgress`] sample at every slice boundary, and flipping the
    /// budget's cancel or drain flag interrupts the run within one slice
    /// (returning [`CooperativeOutcome::Interrupted`] with the batch
    /// checkpoint).
    ///
    /// This is the entry point a long-running service drives.  The progress
    /// callback only observes checkpoints — it never touches replica seeding
    /// or round streams — so a completed result is **bit-identical** to
    /// [`Experiment::run`], whatever the slice size, thread count, or number
    /// of pauses along the way (the service determinism contract, pinned by
    /// the wire-level tests).  Resuming an interrupted run is the caller's
    /// job: feed the checkpoint back through
    /// [`MonteCarlo::run_on_topology_cooperative`] or restart from scratch —
    /// determinism makes both equivalent.
    pub fn run_cooperative(
        &self,
        budget: &RunBudget,
        on_progress: &mut dyn FnMut(&BatchProgress),
    ) -> Result<CooperativeOutcome> {
        self.validate()?;
        let built = self.build_topology()?;
        let degree_stats = match built.as_graph() {
            Some(graph) => {
                self.validate_graph(graph)?;
                Analysis::Computed(DegreeStats::of(graph)?)
            }
            None => {
                self.validate_implicit_regime(built.n())?;
                match self.topology.closed_form_degree_stats() {
                    Some(stats) => Analysis::Computed(stats),
                    None => Analysis::skipped(format!(
                        "degree statistics of {} are hash-defined (Θ(n) per vertex to read); \
                         materialise the spec to measure them",
                        self.topology.label()
                    )),
                }
            }
        };
        let outcome =
            self.monte_carlo()
                .run_on_topology_cooperative(&built, None, budget, on_progress)?;
        match outcome {
            BatchOutcome::Completed(report) => {
                let result =
                    self.assemble(built.n(), built.memory_bytes(), degree_stats, report)?;
                Ok(CooperativeOutcome::Completed(Box::new(result)))
            }
            BatchOutcome::Paused(ckpt) => Ok(CooperativeOutcome::Interrupted(ckpt)),
        }
    }

    /// Runs the experiment on an already generated graph (useful when
    /// several experiments share one expensive graph instance), through the
    /// same unified engine as [`Experiment::run`].
    pub fn run_on(&self, graph: &CsrGraph) -> Result<ExperimentResult> {
        self.validate()?;
        self.validate_graph(graph)?;
        let degree_stats = DegreeStats::of(graph)?;
        let report = self.monte_carlo().run(graph)?;
        self.assemble(
            graph.num_vertices(),
            graph.memory_bytes(),
            Analysis::Computed(degree_stats),
            report,
        )
    }

    /// Assembles the result from the measurements and analyses.
    fn assemble(
        &self,
        n: usize,
        topology_memory_bytes: usize,
        degree_stats: Analysis<DegreeStats>,
        report: MonteCarloReport,
    ) -> Result<ExperimentResult> {
        let prediction = self.prediction_from(n, degree_stats.computed());
        Ok(ExperimentResult {
            name: self.name.clone(),
            topology_label: self.topology.label(),
            protocol_name: self.protocol.name(),
            initial_label: self.initial.label(),
            schedule: self.schedule,
            n,
            topology_memory_bytes,
            degree_stats,
            report,
            prediction,
        })
    }

    /// The whole-graph validations only a materialised graph can afford.
    pub(crate) fn validate_graph(&self, graph: &CsrGraph) -> Result<()> {
        if graph.num_vertices() == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "the experiment graph is empty".into(),
            });
        }
        if !is_connected(graph) {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "graph {} is disconnected; consensus experiments require a connected graph",
                    self.topology.label()
                ),
            });
        }
        Ok(())
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.replicas == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "an experiment needs at least one replica".into(),
            });
        }
        Ok(())
    }

    /// Guards the adjacency-free path against graphs it cannot serve.
    ///
    /// The closed-form families are connected by construction, but
    /// hash-defined topologies cannot be connectivity-checked without
    /// `Θ(n²)` work — the check the materialised path performs.  Instead the
    /// two *certain* or overwhelmingly-likely failure modes are rejected
    /// up front with the same typed error the materialised path gives:
    ///
    /// * a multi-block implicit SBM with `p_out = 0` is disconnected by
    ///   construction (disjoint communities);
    /// * an expected degree below `ln n` is the classic `G(n, p)`
    ///   disconnectivity threshold, where neighbour sampling would also
    ///   leave the rejection-sampling regime the implicit families support
    ///   (isolated vertices make sampling panic rather than loop) — sparse
    ///   graphs belong on a materialised spec.
    pub(crate) fn validate_implicit_regime(&self, n: usize) -> Result<()> {
        if let TopologySpec::ImplicitSbm { blocks, p_out, .. } = &self.topology {
            if *blocks > 1 && *p_out == 0.0 {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "{} is disconnected ({} blocks with p_out = 0); consensus \
                         experiments require a connected graph",
                        self.topology.label(),
                        blocks
                    ),
                });
            }
        }
        if self.topology.is_hash_defined() {
            let expected = self.topology.expected_degree().unwrap_or(0.0);
            let threshold = (n as f64).ln();
            if expected < threshold {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "{} has expected degree {expected:.2}, below the ln(n) ≈ \
                         {threshold:.2} connectivity threshold; the implicit families \
                         support only the dense regime — use a materialised spec for \
                         sparse graphs",
                        self.topology.label()
                    ),
                });
            }
        }
        Ok(())
    }

    pub(crate) fn monte_carlo(&self) -> MonteCarlo {
        MonteCarlo {
            protocol: self.protocol,
            initial: self.initial.clone(),
            schedule: self.schedule,
            stopping: self.stopping,
            replicas: self.replicas,
            master_seed: self.seed,
            threads: self.threads,
            adversary: self.adversary.clone(),
        }
    }

    /// The paper's prediction for this parameter point, or a typed skip.
    fn prediction_from(
        &self,
        n: usize,
        degree_stats: Option<&DegreeStats>,
    ) -> Analysis<Prediction> {
        let delta = match &self.initial {
            InitialCondition::BernoulliWithBias { delta } => *delta,
            other => {
                return Analysis::skipped(format!(
                    "the paper's prediction assumes the Bernoulli(1/2 − δ) initial \
                     condition, not {}",
                    other.label()
                ))
            }
        };
        let alpha = match degree_stats.and_then(|s| s.alpha()) {
            Some(alpha) => alpha,
            None => {
                return Analysis::skipped(format!(
                    "no degree exponent α available for {} (degree statistics skipped \
                     or degenerate)",
                    self.topology.label()
                ))
            }
        };
        Analysis::Computed(predict(n as f64, alpha, delta, 2.0))
    }
}

/// Outcome of a cooperative drive: finished, or interrupted at a yield
/// point by the budget's cancel/drain flag.
#[derive(Debug, Clone, PartialEq)]
pub enum CooperativeOutcome {
    /// The experiment ran to completion — the result is bit-identical to
    /// what [`Experiment::run`] returns.
    Completed(Box<ExperimentResult>),
    /// A cancel or drain flag fired; the batch paused here.
    Interrupted(BatchCheckpoint),
}

impl CooperativeOutcome {
    /// The completed result, when the drive finished.
    pub fn completed(self) -> Option<ExperimentResult> {
        match self {
            CooperativeOutcome::Completed(result) => Some(*result),
            CooperativeOutcome::Interrupted(_) => None,
        }
    }
}

/// The outcome of one experiment: measurements plus the matching analyses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment identifier.
    pub name: String,
    /// Topology description.
    pub topology_label: String,
    /// Protocol name.
    pub protocol_name: String,
    /// Initial-condition description.
    pub initial_label: String,
    /// Schedule used.
    pub schedule: Schedule,
    /// Number of vertices.
    pub n: usize,
    /// Bytes used to represent the topology (a CSR's adjacency for
    /// materialised specs, a few machine words for implicit ones).
    pub topology_memory_bytes: usize,
    /// Realised degree statistics — computed for materialised and
    /// closed-form topologies, skipped (with the reason) for hash-defined
    /// ones.
    pub degree_stats: Analysis<DegreeStats>,
    /// Monte-Carlo measurements.
    pub report: MonteCarloReport,
    /// The paper's prediction for this parameter point — computed when the
    /// initial condition is the paper's and a degree exponent is available.
    pub prediction: Analysis<Prediction>,
}

impl ExperimentResult {
    /// Mean rounds to consensus, when any replica converged.
    pub fn mean_rounds(&self) -> Option<f64> {
        self.report.mean_rounds()
    }

    /// Fraction of converged replicas won by red.
    pub fn red_win_rate(&self) -> Option<f64> {
        self.report.red_win.map(|p| p.estimate)
    }

    /// Typed adversary counters aggregated over the batch — `Some` exactly
    /// when the experiment declared an adversary (Scenario API v3).
    pub fn adversary_counters(&self) -> Option<AdversaryCounters> {
        self.report.adversary
    }

    /// The degree exponent `α` (`d_min = n^α`), when degree statistics ran.
    pub fn alpha(&self) -> Option<f64> {
        self.degree_stats.computed().and_then(|s| s.alpha())
    }

    /// `true` when every converged replica ended in red consensus — the
    /// Theorem 1 outcome.
    pub fn red_swept(&self) -> bool {
        match self.report.red_win {
            Some(p) => p.successes == p.trials && p.trials > 0,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::generators::GraphSpec;

    #[test]
    fn theorem_one_experiment_runs_and_red_sweeps() {
        let exp =
            Experiment::theorem_one("unit/complete", GraphSpec::Complete { n: 300 }, 0.15, 10, 1);
        let result = exp.run().unwrap();
        assert_eq!(result.name, "unit/complete");
        assert!(result.red_swept());
        assert!(result.mean_rounds().unwrap() < 25.0);
        assert!(result.prediction.is_computed());
        assert_eq!(result.degree_stats.computed().unwrap().min, 299);
        assert!(result.protocol_name.contains("best-of-3"));
    }

    #[test]
    fn builder_defaults_and_setters_cover_every_field() {
        let exp = Experiment::on(TopologySpec::Complete { n: 64 })
            .named("builder/check")
            .protocol(ProtocolSpec::Voter)
            .initial(InitialCondition::ExactCount { blue: 10 })
            .schedule(Schedule::Synchronous)
            .stopping(StoppingCondition::fixed_rounds(3))
            .replicas(2)
            .seed(9)
            .threads(1);
        assert_eq!(exp.name, "builder/check");
        assert_eq!(exp.protocol, ProtocolSpec::Voter);
        assert_eq!(exp.initial, InitialCondition::ExactCount { blue: 10 });
        assert_eq!(exp.stopping, StoppingCondition::fixed_rounds(3));
        assert_eq!(exp.replicas, 2);
        assert_eq!(exp.seed, 9);
        assert_eq!(exp.threads, 1);
        let result = exp.run().unwrap();
        assert_eq!(result.n, 64);
        for outcome in &result.report.outcomes {
            assert!(outcome.rounds <= 3);
        }
    }

    #[test]
    fn implicit_complete_runs_adjacency_free_with_exact_stats() {
        let result = Experiment::on(TopologySpec::Complete { n: 2_000 })
            .named("implicit/complete")
            .initial(InitialCondition::BernoulliWithBias { delta: 0.15 })
            .replicas(6)
            .seed(3)
            .run()
            .unwrap();
        assert!(result.red_swept());
        // Exact closed-form degree stats, no adjacency anywhere.
        assert_eq!(result.degree_stats.computed().unwrap().min, 1_999);
        assert!(result.topology_memory_bytes < 1_024);
        assert!(result.prediction.is_computed());
    }

    #[test]
    fn hash_defined_topologies_skip_dense_analyses_gracefully() {
        let result = Experiment::on(TopologySpec::ImplicitGnp { n: 1_500, p: 0.5 })
            .named("implicit/gnp")
            .initial(InitialCondition::BernoulliWithBias { delta: 0.15 })
            .replicas(4)
            .seed(5)
            .run()
            .unwrap();
        assert!(result.red_swept());
        let reason = result.degree_stats.skipped_reason().unwrap();
        assert!(reason.contains("hash-defined"), "{reason}");
        // No alpha, so the prediction degrades too — with a reason, not an error.
        assert!(result.prediction.skipped_reason().is_some());
        assert!(result.alpha().is_none());
    }

    #[test]
    fn rejects_zero_replicas_and_disconnected_graphs() {
        let exp = Experiment::theorem_one("bad", GraphSpec::Complete { n: 20 }, 0.1, 0, 1);
        assert!(matches!(exp.run(), Err(CoreError::InvalidConfig { .. })));
        // Two disjoint cliques via an SBM with zero cross probability.
        let exp = Experiment::theorem_one(
            "bad2",
            GraphSpec::PlantedPartition {
                n: 20,
                blocks: 2,
                p_in: 1.0,
                p_out: 0.0,
            },
            0.1,
            3,
            1,
        );
        assert!(matches!(exp.run(), Err(CoreError::InvalidConfig { .. })));
    }

    #[test]
    fn implicit_path_rejects_certainly_disconnected_and_sparse_specs() {
        // Disjoint communities: the materialised PlantedPartition equivalent
        // errors on the connectivity check; the implicit path must match.
        let disconnected = Experiment::on(TopologySpec::ImplicitSbm {
            n: 1_000,
            blocks: 2,
            p_in: 0.5,
            p_out: 0.0,
        })
        .replicas(1);
        assert!(matches!(
            disconnected.run(),
            Err(CoreError::InvalidConfig { .. })
        ));
        // Sparse G(n, p) below the ln(n) connectivity threshold would panic
        // inside neighbour sampling; it must be a typed error instead.
        let sparse = Experiment::on(TopologySpec::ImplicitGnp {
            n: 100_000,
            p: 1e-5,
        })
        .replicas(1);
        match sparse.run() {
            Err(CoreError::InvalidConfig { reason }) => {
                assert!(reason.contains("dense regime"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // A dense spec at the same n sails through the guard.
        assert!(
            Experiment::on(TopologySpec::ImplicitGnp { n: 2_000, p: 0.3 })
                .initial(InitialCondition::BernoulliWithBias { delta: 0.2 })
                .replicas(1)
                .run()
                .is_ok()
        );
    }

    #[test]
    fn asynchronous_schedule_runs_on_every_spec_kind() {
        // Historically `schedule(AsynchronousRandomOrder)` on an implicit
        // spec returned a typed rejection; the unified engine runs it.
        let implicit = Experiment::on(TopologySpec::Complete { n: 100 })
            .schedule(Schedule::AsynchronousRandomOrder)
            .initial(InitialCondition::BernoulliWithBias { delta: 0.2 })
            .replicas(1);
        assert!(implicit.run().unwrap().red_swept());
        // Materialised specs keep supporting it, as before.
        let materialised = Experiment::on(GraphSpec::Complete { n: 100 })
            .schedule(Schedule::AsynchronousRandomOrder)
            .initial(InitialCondition::BernoulliWithBias { delta: 0.2 })
            .replicas(1);
        assert!(materialised.run().unwrap().red_swept());
    }

    #[test]
    fn graph_generation_is_deterministic_in_the_seed() {
        let exp = Experiment::theorem_one(
            "det",
            GraphSpec::ErdosRenyiGnp { n: 200, p: 0.2 },
            0.1,
            1,
            7,
        );
        let g1 = exp.build_graph().unwrap();
        let g2 = exp.build_graph().unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn build_graph_materialises_small_implicit_topologies() {
        let exp = Experiment::on(TopologySpec::Complete { n: 30 });
        let g = exp.build_graph().unwrap();
        assert_eq!(g.num_vertices(), 30);
        assert_eq!(g.num_edges(), 30 * 29 / 2);
        // ...but refuses past the dense-analysis limit, with a typed error.
        let huge = Experiment::on(TopologySpec::ImplicitGnp {
            n: 1_000_000,
            p: 0.5,
        });
        assert!(matches!(huge.build_graph(), Err(CoreError::Graph(_))));
    }

    #[test]
    fn run_on_shared_graph_matches_run() {
        let exp = Experiment::theorem_one("shared", GraphSpec::Complete { n: 150 }, 0.12, 5, 3);
        let direct = exp.run().unwrap();
        let graph = exp.build_graph().unwrap();
        let shared = exp.run_on(&graph).unwrap();
        assert_eq!(direct.report.outcomes, shared.report.outcomes);
    }

    #[test]
    fn non_paper_initial_conditions_have_no_prediction() {
        let exp = Experiment::theorem_one("nopred", GraphSpec::Complete { n: 100 }, 0.1, 3, 5)
            .initial(InitialCondition::ExactCount { blue: 40 });
        let result = exp.run().unwrap();
        assert!(result
            .prediction
            .skipped_reason()
            .unwrap()
            .contains("initial"));
        assert!(result.red_win_rate().is_some());
    }

    #[test]
    fn voter_baseline_does_not_always_sweep() {
        let exp = Experiment::theorem_one("voter", GraphSpec::Complete { n: 60 }, 0.1, 40, 11)
            .protocol(ProtocolSpec::Voter)
            .initial(InitialCondition::ExactCount { blue: 28 })
            .stopping(StoppingCondition::consensus_within(200_000));
        let result = exp.run().unwrap();
        assert!(!result.red_swept(), "voter unexpectedly swept for red");
    }

    #[test]
    fn cooperative_run_is_bit_identical_to_run_and_streams_progress() {
        let exp = Experiment::on(TopologySpec::ImplicitGnp { n: 1_200, p: 0.4 })
            .named("coop/gnp")
            .initial(InitialCondition::BernoulliWithBias { delta: 0.12 })
            .replicas(4)
            .seed(19)
            .threads(1);
        let direct = exp.run().unwrap();
        let mut samples = 0usize;
        let coop = exp
            .run_cooperative(&RunBudget::rounds_per_slice(1), &mut |_| samples += 1)
            .unwrap()
            .completed()
            .expect("uninterrupted drive completes");
        assert_eq!(direct, coop);
        assert!(samples > exp.replicas, "{samples} progress samples");
    }

    #[test]
    fn cooperative_run_pauses_when_the_drain_flag_fires() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let exp = Experiment::on(TopologySpec::ImplicitGnp { n: 1_200, p: 0.4 })
            .named("coop/drain")
            .initial(InitialCondition::BernoulliWithBias { delta: 0.12 })
            .replicas(4)
            .seed(19)
            .threads(1);
        let drain = Arc::new(AtomicBool::new(false));
        let budget = RunBudget::rounds_per_slice(1).with_drain_flag(drain.clone());
        let setter = drain.clone();
        let outcome = exp
            .run_cooperative(&budget, &mut |_| setter.store(true, Ordering::SeqCst))
            .unwrap();
        match outcome {
            CooperativeOutcome::Interrupted(ckpt) => {
                assert!(ckpt.completed.len() < exp.replicas || ckpt.current.is_some());
            }
            CooperativeOutcome::Completed(_) => panic!("drain flag must interrupt the drive"),
        }
    }

    #[test]
    fn analysis_accessors() {
        let computed: Analysis<usize> = Analysis::Computed(7);
        assert_eq!(computed.computed(), Some(&7));
        assert!(computed.is_computed());
        assert_eq!(computed.skipped_reason(), None);
        assert_eq!(computed.into_computed(), Some(7));
        let skipped: Analysis<usize> = Analysis::skipped("too big");
        assert_eq!(skipped.computed(), None);
        assert_eq!(skipped.skipped_reason(), Some("too big"));
        assert_eq!(skipped.into_computed(), None);
    }
}
