//! # bo3-core — Best-of-Three Voting on Dense Graphs
//!
//! Top-level API of the reproduction of *“Best-of-Three Voting on Dense
//! Graphs”* (Nan Kang & Nicolás Rivera, SPAA 2019, arXiv:1903.09524).
//!
//! The paper proves that on any `n`-vertex graph with minimum degree
//! `d = n^α`, `α = Ω(1/ log log n)`, if every vertex is independently blue
//! with probability `1/2 − δ` (red otherwise, `δ ≥ (log d)^{−C}`), then the
//! synchronous Best-of-Three dynamics reaches **red** consensus w.h.p. within
//! `O(log log n) + O(log δ⁻¹)` rounds.  This crate packages the simulator,
//! the proof's combinatorial machinery and the theory-side predictions behind
//! one experiment-oriented API:
//!
//! * [`experiment`] — describe a parameter point builder-style on one
//!   serialisable `TopologySpec` (materialised *or* implicit topology,
//!   protocol, initial condition, Monte-Carlo budget), run it, and get
//!   measurements paired with the paper's prediction;
//! * [`campaign`] — crash-safe grids of experiments: per-cell seeds,
//!   checkpoint/resume at round boundaries, atomic on-disk artefacts, and
//!   retry-with-backoff supervision (the phase-surface campaign driver);
//! * [`configio`] — self-contained JSON (de)serialisation for experiment
//!   configurations, including the pre-redesign `graph:` layout;
//! * [`duality`] — verify the time-reversal duality between the forward
//!   process and the voting-DAG colouring (experiment E9);
//! * [`phases`] — segment measured trajectories into the three phases of
//!   Lemma 4 (experiment E11);
//! * [`registry`] — resolve protocol names and enumerate the comparison set;
//! * [`wire`] — the newline-delimited JSON protocol the `bo3-serve` daemon
//!   speaks (requests, responses, streamed round updates, typed errors);
//! * [`report`] / [`summary`] — plain-text, CSV and markdown tables.
//!
//! The heavy lifting lives in the substrate crates re-exported below:
//! [`bo3_graph`], [`bo3_dynamics`], [`bo3_dag`] and [`bo3_theory`].
//!
//! ## Quickstart
//!
//! ```
//! use bo3_core::prelude::*;
//!
//! // An implicit complete graph: no adjacency is ever materialised, so the
//! // same five lines scale to n = 10⁶ and beyond.
//! let result = Experiment::on(TopologySpec::Complete { n: 2_000 })
//!     .named("doc/quickstart")
//!     .initial(InitialCondition::BernoulliWithBias { delta: 0.1 })
//!     .replicas(8)
//!     .seed(42)
//!     .run()
//!     .unwrap();
//! assert!(result.red_swept());
//! println!("consensus in {:.1} rounds on average", result.mean_rounds().unwrap());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod campaign;
pub mod configio;
pub mod duality;
pub mod error;
pub mod experiment;
pub mod phases;
pub mod registry;
pub mod report;
pub mod summary;
pub mod wire;

// Re-export the substrate crates so downstream users need only one dependency.
pub use bo3_dag;
pub use bo3_dynamics;
pub use bo3_graph;
pub use bo3_theory;

/// One-stop imports for examples, benches and integration tests.
pub mod prelude {
    pub use crate::campaign::{
        atomic_write, cell_seed, is_polarised, Campaign, CampaignManifest, CampaignOutcome,
        CampaignRunner, CellMeta, CellResult, CellStatus, RetryPolicy, CAMPAIGN_MANIFEST_VERSION,
    };
    pub use crate::configio::{FromJson, ToJson};
    pub use crate::duality::{DualityCheck, DualityReport};
    pub use crate::error::{CoreError, Result};
    pub use crate::experiment::{Analysis, CooperativeOutcome, Experiment, ExperimentResult};
    pub use crate::phases::{segment_trace, ObservedPhases, PhaseComparison};
    pub use crate::registry::{
        comparison_protocols, resolve_adversary, resolve_protocol, resolve_topology,
        ADVERSARY_NAMES, TOPOLOGY_NAMES,
    };
    pub use crate::report::{fmt_f64, fmt_opt_f64, Table};
    pub use crate::summary::{results_table, trajectory_table};
    pub use crate::wire::{
        ErrorCode, JobReport, JobState, JobView, Request, Response, RunUpdate, WireError,
    };

    pub use bo3_dynamics::prelude::*;
    pub use bo3_graph::degree::DegreeStats;
    pub use bo3_graph::generators::GraphSpec;
    pub use bo3_graph::{
        BuiltTopology, Complete, CompleteBipartite, CompleteMultipartite, CsrGraph, CsrTopology,
        GraphBuilder, ImplicitGnp, ImplicitSbm, NeighbourSampler, Topology, TopologySpec,
    };
    pub use bo3_theory::prediction::{predict, Prediction};
}
