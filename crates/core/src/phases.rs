//! Segmentation of a measured trajectory into the phases of Lemma 4.
//!
//! Lemma 4 predicts that the bias trajectory `δ_t = 1/2 − b_t` of the
//! Best-of-Three process has three regimes: geometric amplification of the
//! bias (rate ≥ 5/4) while `δ_t < 1/(2√3)`, quadratic decay of the blue
//! fraction (`b_t ≲ 4 b_{t−1}²`) once the bias is constant, and a final
//! plunge to extinction.  [`segment_trace`] finds those regimes in a measured
//! [`Trace`] so experiment E11 can print observed-vs-predicted phase lengths.

use serde::{Deserialize, Serialize};

use bo3_dynamics::trace::Trace;
use bo3_theory::phases::{phase_one_bias_target, PhasePlan};

/// Observed phase lengths of one trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservedPhases {
    /// Rounds spent with bias below the `1/(2√3)` hand-over point
    /// (phase i of Lemma 4).
    pub bias_amplification_rounds: usize,
    /// Rounds from the hand-over point until the blue fraction first drops
    /// below `1/n` (phase ii + iii; on a finite graph this is "blue extinct
    /// or nearly so").
    pub decay_rounds: Option<usize>,
    /// Total rounds recorded in the trace (excluding round 0).
    pub total_rounds: usize,
    /// Geometric growth rate of the bias measured over the amplification
    /// phase (the paper proves ≥ 5/4 per round in expectation).
    pub measured_bias_growth_rate: Option<f64>,
}

/// Segments a measured trace into the Lemma 4 phases.
///
/// `n` is the number of vertices of the underlying graph, used for the
/// extinction threshold `1/n`.
pub fn segment_trace(trace: &Trace, n: usize) -> ObservedPhases {
    let biases = trace.red_biases();
    let fractions = trace.blue_fractions();
    let total_rounds = trace.len().saturating_sub(1);
    let target = phase_one_bias_target();

    // Phase i: rounds until the bias first reaches the hand-over point.
    let handover = biases.iter().position(|&d| d >= target);
    let bias_amplification_rounds = handover.unwrap_or(total_rounds);

    // Growth rate over phase i: geometric mean of per-round ratios of the
    // bias, over the rounds where both endpoints are positive.
    let mut ratios: Vec<f64> = Vec::new();
    let limit = handover.unwrap_or(biases.len().saturating_sub(1));
    for t in 0..limit.min(biases.len().saturating_sub(1)) {
        if biases[t] > 0.0 && biases[t + 1] > 0.0 {
            ratios.push(biases[t + 1] / biases[t]);
        }
    }
    let measured_bias_growth_rate = if ratios.is_empty() {
        None
    } else {
        let log_mean = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
        Some(log_mean.exp())
    };

    // Phase ii+iii: rounds from hand-over until the blue fraction drops below 1/n.
    let threshold = 1.0 / n.max(1) as f64;
    let decay_rounds =
        handover.and_then(|start| fractions[start..].iter().position(|&b| b < threshold));

    ObservedPhases {
        bias_amplification_rounds,
        decay_rounds,
        total_rounds,
        measured_bias_growth_rate,
    }
}

/// Side-by-side comparison of an observed trajectory and the paper's plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseComparison {
    /// Phases observed in the measured trace.
    pub observed: ObservedPhases,
    /// The paper's planned phase lengths for the same `(d, δ)`.
    pub planned: PhasePlan,
}

impl PhaseComparison {
    /// Builds the comparison.
    pub fn new(observed: ObservedPhases, planned: PhasePlan) -> Self {
        PhaseComparison { observed, planned }
    }

    /// Ratio of observed to planned total length (values well below 1 are the
    /// norm: the plan carries the proof's conservative constants).
    pub fn total_ratio(&self) -> f64 {
        self.observed.total_rounds as f64 / self.planned.total_levels().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_dynamics::prelude::*;
    use bo3_graph::generators;
    use bo3_theory::phases::phase_plan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_trace(n: usize, delta: f64, seed: u64) -> Trace {
        let g = generators::complete(n);
        let sim = Engine::on_graph(&g).unwrap().with_trace(true);
        let mut rng = StdRng::seed_from_u64(seed);
        let init = InitialCondition::BernoulliWithBias { delta }
            .sample(&g, &mut rng)
            .unwrap();
        sim.run(&BestOfThree::new(), init, &mut rng)
            .unwrap()
            .trace
            .unwrap()
    }

    #[test]
    fn phases_of_a_real_run_look_like_lemma_four() {
        let n = 4000;
        let delta = 0.05;
        let trace = run_trace(n, delta, 1);
        let observed = segment_trace(&trace, n);
        // The bias amplification phase exists and ends before the run does.
        assert!(observed.bias_amplification_rounds >= 1);
        assert!(observed.bias_amplification_rounds < observed.total_rounds);
        // The measured growth rate should be at least the paper's 5/4 on a
        // complete graph (it is ≈ 3/2 − o(1) there).
        let rate = observed.measured_bias_growth_rate.unwrap();
        assert!(rate >= 1.2, "measured bias growth rate {rate}");
        // After hand-over the blue fraction collapses within a few rounds.
        let decay = observed.decay_rounds.expect("blue should go extinct");
        assert!(decay <= 10, "decay took {decay} rounds");
    }

    #[test]
    fn larger_delta_shortens_the_amplification_phase() {
        let n = 3000;
        let small = segment_trace(&run_trace(n, 0.02, 2), n);
        let large = segment_trace(&run_trace(n, 0.2, 2), n);
        assert!(large.bias_amplification_rounds <= small.bias_amplification_rounds);
    }

    #[test]
    fn comparison_against_the_plan_is_conservative() {
        let n = 4000usize;
        let delta = 0.05;
        let trace = run_trace(n, delta, 3);
        let observed = segment_trace(&trace, n);
        let planned = phase_plan((n - 1) as f64, delta, 2.0).unwrap();
        let cmp = PhaseComparison::new(observed, planned);
        // The proof's constants are loose, so the observed run is shorter
        // than (or at most comparable to) the plan.
        assert!(cmp.total_ratio() <= 1.5, "ratio {}", cmp.total_ratio());
    }

    #[test]
    fn degenerate_traces_do_not_panic() {
        let empty = Trace::new();
        let obs = segment_trace(&empty, 100);
        assert_eq!(obs.total_rounds, 0);
        assert_eq!(obs.bias_amplification_rounds, 0);
        assert!(obs.measured_bias_growth_rate.is_none());
        assert!(obs.decay_rounds.is_none());
    }

    #[test]
    fn blue_majority_run_never_reaches_the_handover_point() {
        // Start from a blue majority: the bias is negative throughout and the
        // amplification phase never completes.
        let g = generators::complete(500);
        let sim = Engine::on_graph(&g).unwrap().with_trace(true);
        let mut rng = StdRng::seed_from_u64(4);
        let init = InitialCondition::Bernoulli {
            blue_probability: 0.7,
        }
        .sample(&g, &mut rng)
        .unwrap();
        let trace = sim
            .run(&BestOfThree::new(), init, &mut rng)
            .unwrap()
            .trace
            .unwrap();
        let obs = segment_trace(&trace, 500);
        assert_eq!(obs.bias_amplification_rounds, obs.total_rounds);
        assert!(obs.decay_rounds.is_none());
    }
}
