//! A small named registry of protocols, topologies and standard experiment
//! presets.
//!
//! Benchmark binaries and examples refer to protocols by the short names used
//! in the paper's discussion ("voter", "best-of-2", "best-of-3", …) and to
//! topology families by parameterised short names ("complete", "gnp:0.5",
//! "sbm:2:0.6:0.2", …); the registry resolves both and enumerates the
//! canonical comparison set.

use bo3_dynamics::prelude::{AdversarySpec, ProtocolSpec, TieRule};
use bo3_graph::generators::GraphSpec;
use bo3_graph::TopologySpec;

use crate::error::CoreError;

/// All protocol names understood by [`resolve_protocol`].
pub const PROTOCOL_NAMES: &[&str] = &[
    "voter",
    "best-of-1",
    "best-of-2",
    "best-of-2-random",
    "best-of-3",
    "best-of-5",
    "best-of-7",
    "best-of-9",
    "local-majority",
];

/// Resolves a short protocol name to its specification.
///
/// Returns `None` for unknown names; `best-of-<k>` is accepted for any
/// `k ≥ 1` beyond the listed presets.
pub fn resolve_protocol(name: &str) -> Option<ProtocolSpec> {
    let lower = name.trim().to_ascii_lowercase();
    match lower.as_str() {
        "voter" | "best-of-1" | "bo1" => Some(ProtocolSpec::Voter),
        "best-of-2" | "bo2" => Some(ProtocolSpec::BestOfTwo {
            tie_rule: TieRule::KeepOwn,
        }),
        "best-of-2-random" => Some(ProtocolSpec::BestOfTwo {
            tie_rule: TieRule::Random,
        }),
        "best-of-3" | "bo3" => Some(ProtocolSpec::BestOfThree),
        "local-majority" | "majority" => Some(ProtocolSpec::LocalMajority {
            tie_rule: TieRule::KeepOwn,
        }),
        other => {
            let k: usize = other.strip_prefix("best-of-")?.parse().ok()?;
            if k == 0 {
                None
            } else if k == 3 {
                Some(ProtocolSpec::BestOfThree)
            } else {
                Some(ProtocolSpec::BestOfK {
                    k,
                    tie_rule: TieRule::KeepOwn,
                })
            }
        }
    }
}

/// Representative topology names understood by [`resolve_topology`]
/// (parameterised forms accept any valid value, mirroring `best-of-<k>`).
pub const TOPOLOGY_NAMES: &[&str] = &[
    "complete",
    "bipartite",
    "multipartite:3",
    "gnp:0.5",
    "sbm:2:0.6:0.2",
    "dense-alpha:0.7",
    "regular:8",
];

/// Resolves a short topology-family name to its specification at `n`
/// vertices, mirroring [`resolve_protocol`].
///
/// The name fixes the family *shape* and `n` scales it — the same split the
/// experiment sweeps use.  Supported forms (case-insensitive):
///
/// * `complete` — implicit `K_n`;
/// * `bipartite` — implicit balanced `K_{⌈n/2⌉,⌊n/2⌋}`;
/// * `multipartite:<k>` — implicit complete multipartite graph on `k ≥ 2`
///   near-equal blocks;
/// * `gnp:<p>` — implicit `G(n, p)`, `p ∈ (0, 1]`;
/// * `sbm:<k>:<p_in>:<p_out>` — implicit planted partition on `k` blocks
///   (`k` must divide `n` at build time);
/// * `dense-alpha:<a>` — materialised dense `G(n, p)` with expected degree
///   `n^a`;
/// * `regular:<d>` — materialised random `d`-regular graph.
///
/// Returns `None` for unknown names or unparsable parameters.
pub fn resolve_topology(name: &str, n: usize) -> Option<TopologySpec> {
    let lower = name.trim().to_ascii_lowercase();
    match lower.as_str() {
        "complete" | "k_n" | "kn" => Some(TopologySpec::Complete { n }),
        "bipartite" | "complete-bipartite" => Some(TopologySpec::CompleteBipartite {
            a: n.div_ceil(2),
            b: n / 2,
        }),
        other => {
            let (family, params) = other.split_once(':')?;
            match family {
                "multipartite" => {
                    let k: usize = params.parse().ok()?;
                    if k < 2 || n < k {
                        return None;
                    }
                    // k near-equal blocks: the first n % k blocks get the
                    // extra vertex.
                    let blocks = (0..k).map(|i| n / k + usize::from(i < n % k)).collect();
                    Some(TopologySpec::CompleteMultipartite { blocks })
                }
                "gnp" => {
                    let p: f64 = params.parse().ok()?;
                    (p > 0.0 && p <= 1.0).then_some(TopologySpec::ImplicitGnp { n, p })
                }
                "sbm" => {
                    let mut parts = params.split(':');
                    let blocks: usize = parts.next()?.parse().ok()?;
                    let p_in: f64 = parts.next()?.parse().ok()?;
                    let p_out: f64 = parts.next()?.parse().ok()?;
                    if parts.next().is_some()
                        || blocks == 0
                        || !(0.0..=1.0).contains(&p_in)
                        || !(0.0..=1.0).contains(&p_out)
                    {
                        return None;
                    }
                    Some(TopologySpec::ImplicitSbm {
                        n,
                        blocks,
                        p_in,
                        p_out,
                    })
                }
                "dense-alpha" => {
                    let alpha: f64 = params.parse().ok()?;
                    (alpha > 0.0 && alpha <= 1.0).then_some(TopologySpec::Materialised(
                        GraphSpec::DenseForAlpha { n, alpha },
                    ))
                }
                "regular" => {
                    let d: usize = params.parse().ok()?;
                    (d >= 1 && d < n).then_some(TopologySpec::Materialised(
                        GraphSpec::RandomRegular { n, d },
                    ))
                }
                _ => None,
            }
        }
    }
}

/// Representative adversary names understood by [`resolve_adversary`]
/// (parameterised forms accept any valid value, mirroring
/// [`resolve_topology`]).
pub const ADVERSARY_NAMES: &[&str] = &[
    "zealots:0.05",
    "byzantine:0.05",
    "drop:0.1",
    "partition:4:16",
];

/// Resolves a short adversary name to its specification, mirroring
/// [`resolve_topology`].  Supported forms (case-insensitive):
///
/// * `zealots:<frac>` — seed-derived zealot set, `frac ∈ [0, 1]`;
/// * `byzantine:<frac>` — seed-derived inverted reporters, `frac ∈ [0, 1]`;
/// * `drop:<q>` — per-sample message loss, `q ∈ [0, 1]`;
/// * `partition:<a>:<b>` — sever inter-block messages for rounds `[a, b)`
///   with the default two blocks (`a < b`).
///
/// Returns `None` for unknown names or unparsable / out-of-range parameters —
/// sugar over [`resolve_adversary_checked`], which says *why*.
pub fn resolve_adversary(name: &str) -> Option<AdversarySpec> {
    resolve_adversary_checked(name).ok()
}

/// [`resolve_adversary`] with typed errors: unknown families, malformed
/// numbers and out-of-range parameters (`zealots`/`byzantine`/`drop` outside
/// `[0, 1]`, empty or inverted partition windows) each surface as
/// [`CoreError::InvalidConfig`] naming the offending input.
pub fn resolve_adversary_checked(name: &str) -> Result<AdversarySpec, CoreError> {
    let bad = |reason: String| CoreError::InvalidConfig { reason };
    let lower = name.trim().to_ascii_lowercase();
    let (family, params) = lower
        .split_once(':')
        .ok_or_else(|| bad(format!("adversary '{name}' has no ':<params>' suffix")))?;
    let fraction = |what: &str| -> Result<f64, CoreError> {
        params.parse().map_err(|_| {
            bad(format!(
                "adversary '{name}': {what} '{params}' is not a number"
            ))
        })
    };
    let spec = match family {
        "zealots" => AdversarySpec::Zealots {
            fraction: fraction("fraction")?,
        },
        "byzantine" => AdversarySpec::Byzantine {
            fraction: fraction("fraction")?,
        },
        "drop" => AdversarySpec::Drop { q: fraction("q")? },
        "partition" => {
            let (from, until) = params.split_once(':').ok_or_else(|| {
                bad(format!(
                    "adversary '{name}': expected partition:<from>:<until>"
                ))
            })?;
            let round = |label: &str, text: &str| {
                text.parse::<u64>().map_err(|_| {
                    bad(format!(
                        "adversary '{name}': {label} '{text}' is not a round index"
                    ))
                })
            };
            AdversarySpec::Partition {
                from_round: round("from_round", from)?,
                until_round: round("until_round", until)?,
                blocks: 2,
            }
        }
        other => return Err(bad(format!("unknown adversary family '{other}'"))),
    };
    spec.validate()
        .map_err(|e| bad(format!("adversary '{name}': {e}")))?;
    Ok(spec)
}

/// The protocols compared in experiments E3 and E5, with their display names.
pub fn comparison_protocols() -> Vec<(&'static str, ProtocolSpec)> {
    vec![
        ("voter", ProtocolSpec::Voter),
        (
            "best-of-2",
            ProtocolSpec::BestOfTwo {
                tie_rule: TieRule::KeepOwn,
            },
        ),
        ("best-of-3", ProtocolSpec::BestOfThree),
        (
            "best-of-5",
            ProtocolSpec::BestOfK {
                k: 5,
                tie_rule: TieRule::KeepOwn,
            },
        ),
        (
            "local-majority",
            ProtocolSpec::LocalMajority {
                tie_rule: TieRule::KeepOwn,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in PROTOCOL_NAMES {
            assert!(resolve_protocol(name).is_some(), "{name} did not resolve");
        }
    }

    #[test]
    fn aliases_and_case_insensitivity() {
        assert_eq!(resolve_protocol("BO3"), Some(ProtocolSpec::BestOfThree));
        assert_eq!(resolve_protocol(" Voter "), Some(ProtocolSpec::Voter));
        assert_eq!(resolve_protocol("best-of-1"), Some(ProtocolSpec::Voter));
        assert_eq!(
            resolve_protocol("best-of-3"),
            Some(ProtocolSpec::BestOfThree)
        );
    }

    #[test]
    fn arbitrary_best_of_k_parses() {
        match resolve_protocol("best-of-11") {
            Some(ProtocolSpec::BestOfK { k: 11, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(resolve_protocol("best-of-0"), None);
    }

    #[test]
    fn unknown_names_fail() {
        assert_eq!(resolve_protocol("majority-of-all"), None);
        assert_eq!(resolve_protocol(""), None);
        assert_eq!(resolve_protocol("best-of-x"), None);
    }

    #[test]
    fn every_listed_topology_name_resolves_and_builds() {
        for name in TOPOLOGY_NAMES {
            let spec = resolve_topology(name, 24).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(spec.num_vertices(), 24, "{name}");
            assert!(spec.build(1).is_ok(), "{name} failed to build");
        }
    }

    #[test]
    fn topology_names_resolve_to_the_right_families() {
        assert_eq!(
            resolve_topology("complete", 100),
            Some(TopologySpec::Complete { n: 100 })
        );
        assert_eq!(
            resolve_topology(" Bipartite ", 9),
            Some(TopologySpec::CompleteBipartite { a: 5, b: 4 })
        );
        assert_eq!(
            resolve_topology("multipartite:3", 10),
            Some(TopologySpec::CompleteMultipartite {
                blocks: vec![4, 3, 3]
            })
        );
        assert_eq!(
            resolve_topology("gnp:0.25", 50),
            Some(TopologySpec::ImplicitGnp { n: 50, p: 0.25 })
        );
        assert_eq!(
            resolve_topology("sbm:2:0.6:0.2", 40),
            Some(TopologySpec::ImplicitSbm {
                n: 40,
                blocks: 2,
                p_in: 0.6,
                p_out: 0.2
            })
        );
        assert_eq!(
            resolve_topology("dense-alpha:0.7", 1_000),
            Some(TopologySpec::Materialised(GraphSpec::DenseForAlpha {
                n: 1_000,
                alpha: 0.7
            }))
        );
        assert_eq!(
            resolve_topology("regular:8", 100),
            Some(TopologySpec::Materialised(GraphSpec::RandomRegular {
                n: 100,
                d: 8
            }))
        );
    }

    #[test]
    fn invalid_topology_names_and_parameters_fail() {
        assert_eq!(resolve_topology("hyperbolic", 100), None);
        assert_eq!(resolve_topology("gnp:0", 100), None);
        assert_eq!(resolve_topology("gnp:1.5", 100), None);
        assert_eq!(resolve_topology("gnp:x", 100), None);
        assert_eq!(resolve_topology("multipartite:1", 100), None);
        assert_eq!(resolve_topology("multipartite:200", 100), None);
        assert_eq!(resolve_topology("sbm:2:0.6", 100), None);
        assert_eq!(resolve_topology("sbm:2:0.6:0.2:9", 100), None);
        assert_eq!(resolve_topology("sbm:0:0.6:0.2", 100), None);
        assert_eq!(resolve_topology("regular:0", 100), None);
        assert_eq!(resolve_topology("regular:100", 100), None);
        assert_eq!(resolve_topology("dense-alpha:-1", 100), None);
        assert_eq!(resolve_topology("", 100), None);
    }

    #[test]
    fn every_listed_adversary_name_resolves_and_labels_round_trip() {
        for name in ADVERSARY_NAMES {
            let spec = resolve_adversary(name).unwrap_or_else(|| panic!("{name}"));
            // The spec's own label is the registry spelling, so reports and
            // configs agree on naming.
            assert_eq!(&spec.label(), name, "{name}");
        }
    }

    #[test]
    fn adversary_names_resolve_to_the_right_mechanisms() {
        assert_eq!(
            resolve_adversary("zealots:0.1"),
            Some(AdversarySpec::Zealots { fraction: 0.1 })
        );
        assert_eq!(
            resolve_adversary(" Byzantine:0.25 "),
            Some(AdversarySpec::Byzantine { fraction: 0.25 })
        );
        assert_eq!(
            resolve_adversary("drop:0.5"),
            Some(AdversarySpec::Drop { q: 0.5 })
        );
        assert_eq!(
            resolve_adversary("partition:4:16"),
            Some(AdversarySpec::Partition {
                from_round: 4,
                until_round: 16,
                blocks: 2
            })
        );
    }

    #[test]
    fn invalid_adversary_names_and_parameters_fail() {
        assert_eq!(resolve_adversary("saboteur:0.1"), None);
        assert_eq!(resolve_adversary("zealots"), None);
        assert_eq!(resolve_adversary("zealots:1.5"), None);
        assert_eq!(resolve_adversary("zealots:-0.1"), None);
        assert_eq!(resolve_adversary("zealots:x"), None);
        assert_eq!(resolve_adversary("byzantine:2"), None);
        assert_eq!(resolve_adversary("drop:1.01"), None);
        assert_eq!(resolve_adversary("drop:"), None);
        assert_eq!(resolve_adversary("partition:4"), None);
        assert_eq!(resolve_adversary("partition:9:9"), None);
        assert_eq!(resolve_adversary("partition:9:4"), None);
        assert_eq!(resolve_adversary("partition:a:b"), None);
        assert_eq!(resolve_adversary(""), None);
    }

    #[test]
    fn checked_resolution_names_the_offence_per_spelling() {
        let reason = |name: &str| match resolve_adversary_checked(name) {
            Err(CoreError::InvalidConfig { reason }) => reason,
            other => panic!("{name}: expected InvalidConfig, got {other:?}"),
        };
        // Out-of-range numerics, one test per spelling.
        assert!(reason("zealots:1.5").contains("zealots:1.5"));
        assert!(reason("zealots:-0.1").contains("zealots:-0.1"));
        assert!(reason("byzantine:2").contains("byzantine:2"));
        assert!(reason("drop:1.01").contains("drop:1.01"));
        // Malformed numbers name the offending token.
        assert!(reason("zealots:x").contains("'x'"));
        assert!(reason("drop:").contains("not a number"));
        // Degenerate / inverted / negative partition windows.
        assert!(reason("partition:9:9").contains("partition:9:9"));
        assert!(reason("partition:9:4").contains("partition:9:4"));
        assert!(reason("partition:-1:4").contains("not a round index"));
        assert!(reason("partition:4").contains("partition:<from>:<until>"));
        // Unknown families and missing parameters.
        assert!(reason("saboteur:0.1").contains("saboteur"));
        assert!(reason("zealots").contains("no ':<params>'"));
        // Valid spellings still resolve.
        assert!(resolve_adversary_checked("drop:0.25").is_ok());
        assert!(resolve_adversary_checked("partition:0:5").is_ok());
    }

    #[test]
    fn comparison_set_is_ordered_and_contains_the_paper_protocol() {
        let set = comparison_protocols();
        assert_eq!(set.len(), 5);
        assert_eq!(set[2].1, ProtocolSpec::BestOfThree);
        assert_eq!(set[0].0, "voter");
    }
}
