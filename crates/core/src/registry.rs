//! A small named registry of protocols and standard experiment presets.
//!
//! Benchmark binaries and examples refer to protocols by the short names used
//! in the paper's discussion ("voter", "best-of-2", "best-of-3", …); the
//! registry resolves those names and enumerates the canonical comparison set.

use bo3_dynamics::prelude::{ProtocolSpec, TieRule};

/// All protocol names understood by [`resolve_protocol`].
pub const PROTOCOL_NAMES: &[&str] = &[
    "voter",
    "best-of-1",
    "best-of-2",
    "best-of-2-random",
    "best-of-3",
    "best-of-5",
    "best-of-7",
    "best-of-9",
    "local-majority",
];

/// Resolves a short protocol name to its specification.
///
/// Returns `None` for unknown names; `best-of-<k>` is accepted for any
/// `k ≥ 1` beyond the listed presets.
pub fn resolve_protocol(name: &str) -> Option<ProtocolSpec> {
    let lower = name.trim().to_ascii_lowercase();
    match lower.as_str() {
        "voter" | "best-of-1" | "bo1" => Some(ProtocolSpec::Voter),
        "best-of-2" | "bo2" => Some(ProtocolSpec::BestOfTwo {
            tie_rule: TieRule::KeepOwn,
        }),
        "best-of-2-random" => Some(ProtocolSpec::BestOfTwo {
            tie_rule: TieRule::Random,
        }),
        "best-of-3" | "bo3" => Some(ProtocolSpec::BestOfThree),
        "local-majority" | "majority" => Some(ProtocolSpec::LocalMajority {
            tie_rule: TieRule::KeepOwn,
        }),
        other => {
            let k: usize = other.strip_prefix("best-of-")?.parse().ok()?;
            if k == 0 {
                None
            } else if k == 3 {
                Some(ProtocolSpec::BestOfThree)
            } else {
                Some(ProtocolSpec::BestOfK {
                    k,
                    tie_rule: TieRule::KeepOwn,
                })
            }
        }
    }
}

/// The protocols compared in experiments E3 and E5, with their display names.
pub fn comparison_protocols() -> Vec<(&'static str, ProtocolSpec)> {
    vec![
        ("voter", ProtocolSpec::Voter),
        (
            "best-of-2",
            ProtocolSpec::BestOfTwo {
                tie_rule: TieRule::KeepOwn,
            },
        ),
        ("best-of-3", ProtocolSpec::BestOfThree),
        (
            "best-of-5",
            ProtocolSpec::BestOfK {
                k: 5,
                tie_rule: TieRule::KeepOwn,
            },
        ),
        (
            "local-majority",
            ProtocolSpec::LocalMajority {
                tie_rule: TieRule::KeepOwn,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in PROTOCOL_NAMES {
            assert!(resolve_protocol(name).is_some(), "{name} did not resolve");
        }
    }

    #[test]
    fn aliases_and_case_insensitivity() {
        assert_eq!(resolve_protocol("BO3"), Some(ProtocolSpec::BestOfThree));
        assert_eq!(resolve_protocol(" Voter "), Some(ProtocolSpec::Voter));
        assert_eq!(resolve_protocol("best-of-1"), Some(ProtocolSpec::Voter));
        assert_eq!(
            resolve_protocol("best-of-3"),
            Some(ProtocolSpec::BestOfThree)
        );
    }

    #[test]
    fn arbitrary_best_of_k_parses() {
        match resolve_protocol("best-of-11") {
            Some(ProtocolSpec::BestOfK { k: 11, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(resolve_protocol("best-of-0"), None);
    }

    #[test]
    fn unknown_names_fail() {
        assert_eq!(resolve_protocol("majority-of-all"), None);
        assert_eq!(resolve_protocol(""), None);
        assert_eq!(resolve_protocol("best-of-x"), None);
    }

    #[test]
    fn comparison_set_is_ordered_and_contains_the_paper_protocol() {
        let set = comparison_protocols();
        assert_eq!(set.len(), 5);
        assert_eq!(set[2].1, ProtocolSpec::BestOfThree);
        assert_eq!(set[0].0, "voter");
    }
}
