//! Plain-text table and CSV emission for experiment results.
//!
//! The benchmark binaries print one table per experiment in both a
//! fixed-width console form and CSV; no external serialisation crates are
//! used (the CSV writer below escapes the small character set we actually
//! emit).

use std::io::Write;
use std::path::Path;

use crate::error::Result;

/// A simple in-memory table: a header row plus data rows of equal width.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.headers.len()
    }

    /// Appends a row; panics if the width does not match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} does not match header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Convenience: appends a row of displayable items.
    pub fn push_display_row<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table as aligned plain text (the format printed by the
    /// experiment binaries).
    pub fn to_pretty_string(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting of fields containing
    /// commas, quotes or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_row(&self.headers));
        for row in &self.rows {
            out.push_str(&csv_row(row));
        }
        out
    }

    /// Renders the table as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Writes the CSV rendering to `path`.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_csv().as_bytes())?;
        Ok(())
    }
}

fn csv_row(cells: &[String]) -> String {
    let escaped: Vec<String> = cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect();
    format!("{}\n", escaped.join(","))
}

/// Formats a float with a sensible number of significant digits for tables.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else if x.abs() >= 0.001 {
        format!("{x:.4}")
    } else {
        format!("{x:.3e}")
    }
}

/// Formats an optional float, using `-` for `None`.
pub fn fmt_opt_f64(x: Option<f64>) -> String {
    x.map(fmt_f64).unwrap_or_else(|| "-".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("Consensus time", &["n", "rounds", "red wins"]);
        t.push_row(vec!["1000".into(), "7.2".into(), "1.00".into()]);
        t.push_row(vec!["10000".into(), "8.1".into(), "1.00".into()]);
        t
    }

    #[test]
    fn table_dimensions() {
        let t = sample_table();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.title(), "Consensus time");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn pretty_rendering_contains_all_cells_aligned() {
        let s = sample_table().to_pretty_string();
        assert!(s.contains("== Consensus time =="));
        assert!(s.contains("n "));
        assert!(s.contains("10000"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_rendering_and_escaping() {
        let mut t = Table::new("t", &["name", "value"]);
        t.push_row(vec!["plain".into(), "1".into()]);
        t.push_row(vec!["with,comma".into(), "quote\"inside".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"quote\"\"inside\"");
    }

    #[test]
    fn markdown_rendering() {
        let md = sample_table().to_markdown();
        assert!(md.contains("### Consensus time"));
        assert!(md.contains("| n | rounds | red wins |"));
        assert!(md.contains("| 1000 | 7.2 | 1.00 |"));
    }

    #[test]
    fn push_display_row_stringifies() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_display_row(&[1.5, 2.0]);
        assert_eq!(t.num_rows(), 1);
        assert!(t.to_csv().contains("1.5,2"));
    }

    #[test]
    fn csv_file_round_trip() {
        let dir = std::env::temp_dir().join("bo3_core_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.csv");
        sample_table().write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("n,rounds,red wins"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(123.456), "123.5");
        assert_eq!(fmt_f64(5.67891), "5.68");
        assert_eq!(fmt_f64(0.01234), "0.0123");
        assert_eq!(fmt_f64(0.000012), "1.200e-5");
        assert_eq!(fmt_opt_f64(None), "-");
        assert_eq!(fmt_opt_f64(Some(2.0)), "2.00");
    }
}
