//! Conversion of experiment results into report tables.
//!
//! Every benchmark binary ends by printing one of these tables; keeping the
//! row layout here ensures `EXPERIMENTS.md`, the console output and the CSV
//! artefacts all show the same columns.

use crate::experiment::ExperimentResult;
use crate::report::{fmt_f64, fmt_opt_f64, Table};

/// The standard per-experiment row: identification, measured consensus
/// behaviour, and the paper's prediction where available.
pub fn results_table(title: &str, results: &[ExperimentResult]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "experiment",
            "graph",
            "protocol",
            "initial",
            "n",
            "min_deg",
            "alpha",
            "replicas",
            "consensus_rate",
            "red_win_rate",
            "mean_rounds",
            "p90_rounds",
            "paper_rounds",
        ],
    );
    for r in results {
        let p90 = r.report.rounds_to_consensus.as_ref().map(|s| s.p90);
        let paper_rounds = r
            .prediction
            .computed()
            .and_then(|p| p.predicted_rounds)
            .map(|x| x as f64);
        // Skipped dense analyses show as the placeholder dash, exactly like
        // any other absent value.
        let min_deg = r
            .degree_stats
            .computed()
            .map(|s| s.min.to_string())
            .unwrap_or_else(|| "-".into());
        table.push_row(vec![
            r.name.clone(),
            r.topology_label.clone(),
            r.protocol_name.clone(),
            r.initial_label.clone(),
            r.n.to_string(),
            min_deg,
            fmt_opt_f64(r.alpha()),
            r.report.outcomes.len().to_string(),
            fmt_f64(r.report.consensus_rate),
            fmt_opt_f64(r.red_win_rate()),
            fmt_opt_f64(r.mean_rounds()),
            fmt_opt_f64(p90),
            fmt_opt_f64(paper_rounds),
        ]);
    }
    table
}

/// A compact trajectory table: one row per round with the measured blue
/// fraction next to a theoretical reference trajectory (used by E6/E11).
pub fn trajectory_table(
    title: &str,
    measured: &[f64],
    reference: &[f64],
    reference_name: &str,
) -> Table {
    let mut table = Table::new(title, &["round", "measured_blue_fraction", reference_name]);
    for (t, &m) in measured.iter().enumerate() {
        let r = reference.get(t).copied();
        table.push_row(vec![t.to_string(), fmt_f64(m), fmt_opt_f64(r)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use bo3_graph::generators::GraphSpec;

    fn small_result() -> ExperimentResult {
        Experiment::theorem_one("t/complete", GraphSpec::Complete { n: 120 }, 0.15, 4, 2)
            .run()
            .unwrap()
    }

    #[test]
    fn results_table_has_one_row_per_result() {
        let r1 = small_result();
        let table = results_table("E-test", &[r1.clone(), r1]);
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.num_columns(), 13);
        let csv = table.to_csv();
        assert!(csv.contains("t/complete"));
        assert!(csv.contains("best-of-3"));
    }

    #[test]
    fn results_table_renders_skipped_analyses_as_dashes() {
        let r = Experiment::on(bo3_graph::TopologySpec::ImplicitGnp { n: 400, p: 0.5 })
            .named("t/implicit")
            .replicas(2)
            .stopping(bo3_dynamics::prelude::StoppingCondition::fixed_rounds(2))
            .run()
            .unwrap();
        assert!(!r.degree_stats.is_computed());
        let table = results_table("E-skip", std::slice::from_ref(&r));
        // n is still reported; min_deg and alpha degrade to the dash (the
        // quoted topology label precedes them in the CSV row).
        let row = table.to_csv().lines().nth(1).unwrap().to_string();
        assert!(row.contains(",400,-,-,"), "{row}");
    }

    #[test]
    fn results_table_includes_paper_prediction_when_present() {
        let r = small_result();
        assert!(r.prediction.is_computed());
        let table = results_table("E-test", &[r]);
        let csv = table.to_csv();
        // The last column should not be the placeholder dash.
        let last_cell = csv
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .next_back()
            .unwrap()
            .to_string();
        assert_ne!(last_cell, "-");
    }

    #[test]
    fn trajectory_table_lines_up_rounds() {
        let measured = [0.4, 0.3, 0.1, 0.0];
        let reference = [0.4, 0.33, 0.12];
        let t = trajectory_table("traj", &measured, &reference, "eq1");
        assert_eq!(t.num_rows(), 4);
        let csv = t.to_csv();
        assert!(csv.lines().nth(1).unwrap().starts_with("0,"));
        // Round 3 has no reference value.
        assert!(csv.lines().nth(4).unwrap().ends_with("-"));
    }
}
