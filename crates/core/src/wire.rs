//! Wire protocol for the voting-as-a-service daemon (`bo3-serve`).
//!
//! Requests and responses travel as **newline-delimited JSON** over a plain
//! TCP stream, encoded by the same dependency-free [`crate::configio`] layer
//! every config file uses.  Payload types ([`Experiment`], [`Campaign`],
//! reports) keep their exact configio layout, so a config file pastes
//! straight into a `submit` line, and — because the float writer is
//! shortest-round-trip lossless — a [`MonteCarloReport`] read back from a
//! socket compares **bit-identical** (`==`) to the in-process run that
//! produced it.  That equality is the service determinism contract the
//! wire-level tests pin.
//!
//! # Envelope
//!
//! Every line is one JSON object with a `"type"` discriminator:
//!
//! ```json
//! {"type":"submit","experiment":{...}}
//! {"type":"accepted","job":1}
//! {"type":"update","job":1,"replicas_done":0,"replicas":4,"replica":0,"round":7,"blue_fraction":0.43,"stop_reason":null}
//! {"type":"done","job":1,"result":{...}}
//! {"type":"error","code":"bad-request","message":"..."}
//! ```
//!
//! Malformed lines never kill a connection: the daemon answers with a typed
//! [`WireError`] ([`ErrorCode::BadRequest`] for unparseable input,
//! [`ErrorCode::InvalidConfig`] for well-formed configs the engine rejects)
//! and keeps reading.

use bo3_dynamics::prelude::{MonteCarloReport, ProportionEstimate, Summary};

use crate::campaign::{Campaign, CellResult};
use crate::configio::{
    float, invalid, need, need_f64, need_u64, need_usize, obj, FromJson, Json, ToJson,
};
use crate::error::Result;
use crate::experiment::Experiment;

// --- requests ------------------------------------------------------------

/// One client request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit one experiment; answered with [`Response::Accepted`].
    Submit(Box<Experiment>),
    /// Submit a whole campaign: every cell becomes one job (per-cell seeds
    /// already stamped by [`Campaign::add_cell`]); answered with
    /// [`Response::CampaignAccepted`].
    SubmitCampaign(Box<Campaign>),
    /// Ask for the queue and job table, optionally filtered to one job.
    Status {
        /// When set, only this job's view is returned.
        job: Option<u64>,
    },
    /// Subscribe to a job's progress: the daemon streams
    /// [`Response::Update`] lines until the job's terminal response
    /// ([`Response::Done`] / [`Response::Failed`] / [`Response::Cancelled`]).
    Stream {
        /// The job to follow.
        job: u64,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// Ask for the metrics snapshot as JSON (Prometheus text lives on the
    /// `GET /metrics` HTTP path instead).
    Metrics,
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Ask the daemon to drain and exit (same path as SIGTERM).
    Shutdown,
}

// --- responses -----------------------------------------------------------

/// One server response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The experiment was enqueued under this job id.
    Accepted {
        /// The new job's id.
        job: u64,
    },
    /// The campaign was enqueued, one job per cell (in cell order).
    CampaignAccepted {
        /// The campaign's name.
        name: String,
        /// Job ids, indexed like the campaign's cells.
        jobs: Vec<u64>,
    },
    /// Queue and job-table view.
    Status {
        /// Jobs waiting for a worker.
        queue_depth: usize,
        /// Jobs currently executing.
        running: usize,
        /// Per-job views (all jobs, or the one asked for).
        jobs: Vec<JobView>,
    },
    /// A progress sample on a streamed job.
    Update(RunUpdate),
    /// The job finished; here is its full result.
    Done {
        /// The finished job.
        job: u64,
        /// The job's report (bit-identical to the in-process run).
        result: Box<JobReport>,
    },
    /// The job was cancelled before finishing.
    Cancelled {
        /// The cancelled job.
        job: u64,
    },
    /// The job's run returned an error.
    Failed {
        /// The failed job.
        job: u64,
        /// The engine's error message.
        error: String,
    },
    /// The metrics snapshot ([`bo3_obs`]'s JSON envelope, verbatim).
    Metrics {
        /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
        snapshot: Json,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Generic acknowledgement (cancel accepted, shutdown begun).
    Ok,
    /// A typed protocol error; the connection stays usable.
    Error(WireError),
}

/// A round-slice progress event streamed to subscribers.
///
/// Mid-run samples carry `stop_reason: None`; the stream's last update (sent
/// when the batch completes, before the terminal [`Response::Done`]) carries
/// the batch's stop reason: `"consensus"` when every replica converged,
/// `"round-limit"` otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct RunUpdate {
    /// The job this sample belongs to.
    pub job: u64,
    /// Replicas already finished.
    pub replicas_done: usize,
    /// Total replicas in the job.
    pub replicas: usize,
    /// Index of the in-flight replica.
    pub replica: usize,
    /// Rounds applied inside the in-flight replica.
    pub round: usize,
    /// Blue fraction of the in-flight configuration.
    pub blue_fraction: f64,
    /// Terminal updates only: why the batch stopped.
    pub stop_reason: Option<String>,
}

/// A job's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the FIFO queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished with a result.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled (by request or by daemon drain).
    Cancelled,
}

impl JobState {
    /// The wire spelling of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// `true` once the job can make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// A job-table row as the status endpoint reports it.
#[derive(Debug, Clone, PartialEq)]
pub struct JobView {
    /// The job's id.
    pub job: u64,
    /// Where the job is in its lifecycle.
    pub state: JobState,
    /// The submitted experiment's name.
    pub name: String,
    /// The failure message, when `state` is [`JobState::Failed`].
    pub error: Option<String>,
}

/// The full result of a finished job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// The submitted experiment's name.
    pub name: String,
    /// Number of vertices.
    pub n: usize,
    /// The Monte-Carlo report — compares `==` to the in-process run's.
    pub report: MonteCarloReport,
    /// For campaign-cell jobs: the cell's summary row, exactly what the
    /// on-disk campaign runner would have written for this cell.
    pub cell: Option<CellResult>,
}

/// Machine-readable protocol error categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not a well-formed request.
    BadRequest,
    /// The request parsed but its config is invalid (e.g. zero replicas).
    InvalidConfig,
    /// The named job does not exist (or was evicted).
    UnknownJob,
    /// The daemon is draining and accepts no new work.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::InvalidConfig => "invalid-config",
            ErrorCode::UnknownJob => "unknown-job",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }
}

/// A typed protocol error, sent instead of closing the connection.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error response line.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }
}

// --- JSON: requests ------------------------------------------------------

fn envelope_type<'j>(json: &'j Json, what: &str) -> Result<&'j str> {
    need(json, "type", what)?
        .as_str()
        .ok_or_else(|| invalid(format!("{what}.type must be a string")))
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Submit(experiment) => obj(vec![
                ("type", Json::Str("submit".into())),
                ("experiment", experiment.to_json()),
            ]),
            Request::SubmitCampaign(campaign) => obj(vec![
                ("type", Json::Str("submit-campaign".into())),
                ("campaign", campaign.to_json()),
            ]),
            Request::Status { job } => match job {
                Some(job) => obj(vec![
                    ("type", Json::Str("status".into())),
                    ("job", Json::UInt(*job)),
                ]),
                None => obj(vec![("type", Json::Str("status".into()))]),
            },
            Request::Stream { job } => obj(vec![
                ("type", Json::Str("stream".into())),
                ("job", Json::UInt(*job)),
            ]),
            Request::Cancel { job } => obj(vec![
                ("type", Json::Str("cancel".into())),
                ("job", Json::UInt(*job)),
            ]),
            Request::Metrics => obj(vec![("type", Json::Str("metrics".into()))]),
            Request::Ping => obj(vec![("type", Json::Str("ping".into()))]),
            Request::Shutdown => obj(vec![("type", Json::Str("shutdown".into()))]),
        }
    }
}

impl FromJson for Request {
    fn from_json(json: &Json) -> Result<Self> {
        match envelope_type(json, "Request")? {
            "submit" => Ok(Request::Submit(Box::new(Experiment::from_json(need(
                json,
                "experiment",
                "submit",
            )?)?))),
            "submit-campaign" => Ok(Request::SubmitCampaign(Box::new(Campaign::from_json(
                need(json, "campaign", "submit-campaign")?,
            )?))),
            "status" => Ok(Request::Status {
                job: match json.get("job") {
                    None | Some(Json::Null) => None,
                    Some(value) => Some(
                        value
                            .as_u64()
                            .ok_or_else(|| invalid("status.job must be a non-negative integer"))?,
                    ),
                },
            }),
            "stream" => Ok(Request::Stream {
                job: need_u64(json, "job", "stream")?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: need_u64(json, "job", "cancel")?,
            }),
            "metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(invalid(format!("unknown request type '{other}'"))),
        }
    }
}

// --- JSON: reports -------------------------------------------------------

impl ToJson for Summary {
    fn to_json(&self) -> Json {
        obj(vec![
            ("count", Json::UInt(self.count as u64)),
            ("mean", float(self.mean)),
            ("std_dev", float(self.std_dev)),
            ("min", float(self.min)),
            ("max", float(self.max)),
            ("median", float(self.median)),
            ("p10", float(self.p10)),
            ("p90", float(self.p90)),
        ])
    }
}

impl FromJson for Summary {
    fn from_json(json: &Json) -> Result<Self> {
        let ty = "Summary";
        Ok(Summary {
            count: need_usize(json, "count", ty)?,
            mean: need_f64(json, "mean", ty)?,
            std_dev: need_f64(json, "std_dev", ty)?,
            min: need_f64(json, "min", ty)?,
            max: need_f64(json, "max", ty)?,
            median: need_f64(json, "median", ty)?,
            p10: need_f64(json, "p10", ty)?,
            p90: need_f64(json, "p90", ty)?,
        })
    }
}

impl ToJson for ProportionEstimate {
    fn to_json(&self) -> Json {
        obj(vec![
            ("successes", Json::UInt(self.successes as u64)),
            ("trials", Json::UInt(self.trials as u64)),
            ("estimate", float(self.estimate)),
            ("ci_low", float(self.ci_low)),
            ("ci_high", float(self.ci_high)),
        ])
    }
}

impl FromJson for ProportionEstimate {
    fn from_json(json: &Json) -> Result<Self> {
        let ty = "ProportionEstimate";
        Ok(ProportionEstimate {
            successes: need_usize(json, "successes", ty)?,
            trials: need_usize(json, "trials", ty)?,
            estimate: need_f64(json, "estimate", ty)?,
            ci_low: need_f64(json, "ci_low", ty)?,
            ci_high: need_f64(json, "ci_high", ty)?,
        })
    }
}

fn opt_to_json<T: ToJson>(value: &Option<T>) -> Json {
    match value {
        Some(v) => v.to_json(),
        None => Json::Null,
    }
}

fn opt_from_json<T: FromJson>(json: &Json) -> Result<Option<T>> {
    match json {
        Json::Null => Ok(None),
        other => Ok(Some(T::from_json(other)?)),
    }
}

impl ToJson for MonteCarloReport {
    fn to_json(&self) -> Json {
        obj(vec![
            (
                "outcomes",
                Json::Arr(self.outcomes.iter().map(|o| o.to_json()).collect()),
            ),
            ("consensus_rate", float(self.consensus_rate)),
            ("red_win", opt_to_json(&self.red_win)),
            (
                "rounds_to_consensus",
                opt_to_json(&self.rounds_to_consensus),
            ),
            ("adversary", opt_to_json(&self.adversary)),
        ])
    }
}

impl FromJson for MonteCarloReport {
    fn from_json(json: &Json) -> Result<Self> {
        let ty = "MonteCarloReport";
        Ok(MonteCarloReport {
            outcomes: need(json, "outcomes", ty)?
                .as_array()
                .ok_or_else(|| invalid("MonteCarloReport.outcomes must be an array"))?
                .iter()
                .map(FromJson::from_json)
                .collect::<Result<Vec<_>>>()?,
            consensus_rate: need_f64(json, "consensus_rate", ty)?,
            red_win: opt_from_json(need(json, "red_win", ty)?)?,
            rounds_to_consensus: opt_from_json(need(json, "rounds_to_consensus", ty)?)?,
            adversary: opt_from_json(need(json, "adversary", ty)?)?,
        })
    }
}

impl ToJson for JobReport {
    fn to_json(&self) -> Json {
        obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("n", Json::UInt(self.n as u64)),
            ("report", self.report.to_json()),
            ("cell", opt_to_json(&self.cell)),
        ])
    }
}

impl FromJson for JobReport {
    fn from_json(json: &Json) -> Result<Self> {
        let ty = "JobReport";
        Ok(JobReport {
            name: need(json, "name", ty)?
                .as_str()
                .ok_or_else(|| invalid("JobReport.name must be a string"))?
                .to_string(),
            n: need_usize(json, "n", ty)?,
            report: MonteCarloReport::from_json(need(json, "report", ty)?)?,
            cell: opt_from_json(need(json, "cell", ty)?)?,
        })
    }
}

// --- JSON: responses -----------------------------------------------------

impl ToJson for JobState {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().into())
    }
}

impl FromJson for JobState {
    fn from_json(json: &Json) -> Result<Self> {
        match json.as_str() {
            Some("queued") => Ok(JobState::Queued),
            Some("running") => Ok(JobState::Running),
            Some("done") => Ok(JobState::Done),
            Some("failed") => Ok(JobState::Failed),
            Some("cancelled") => Ok(JobState::Cancelled),
            _ => Err(invalid(format!(
                "unknown job state {}",
                json.to_json_string()
            ))),
        }
    }
}

impl ToJson for JobView {
    fn to_json(&self) -> Json {
        obj(vec![
            ("job", Json::UInt(self.job)),
            ("state", self.state.to_json()),
            ("name", Json::Str(self.name.clone())),
            (
                "error",
                match &self.error {
                    Some(message) => Json::Str(message.clone()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl FromJson for JobView {
    fn from_json(json: &Json) -> Result<Self> {
        let ty = "JobView";
        Ok(JobView {
            job: need_u64(json, "job", ty)?,
            state: JobState::from_json(need(json, "state", ty)?)?,
            name: need(json, "name", ty)?
                .as_str()
                .ok_or_else(|| invalid("JobView.name must be a string"))?
                .to_string(),
            error: match need(json, "error", ty)? {
                Json::Null => None,
                message => Some(
                    message
                        .as_str()
                        .ok_or_else(|| invalid("JobView.error must be a string or null"))?
                        .to_string(),
                ),
            },
        })
    }
}

impl ToJson for RunUpdate {
    fn to_json(&self) -> Json {
        obj(vec![
            ("type", Json::Str("update".into())),
            ("job", Json::UInt(self.job)),
            ("replicas_done", Json::UInt(self.replicas_done as u64)),
            ("replicas", Json::UInt(self.replicas as u64)),
            ("replica", Json::UInt(self.replica as u64)),
            ("round", Json::UInt(self.round as u64)),
            ("blue_fraction", float(self.blue_fraction)),
            (
                "stop_reason",
                match &self.stop_reason {
                    Some(reason) => Json::Str(reason.clone()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl FromJson for RunUpdate {
    fn from_json(json: &Json) -> Result<Self> {
        let ty = "RunUpdate";
        Ok(RunUpdate {
            job: need_u64(json, "job", ty)?,
            replicas_done: need_usize(json, "replicas_done", ty)?,
            replicas: need_usize(json, "replicas", ty)?,
            replica: need_usize(json, "replica", ty)?,
            round: need_usize(json, "round", ty)?,
            blue_fraction: need_f64(json, "blue_fraction", ty)?,
            stop_reason: match need(json, "stop_reason", ty)? {
                Json::Null => None,
                reason => Some(
                    reason
                        .as_str()
                        .ok_or_else(|| invalid("RunUpdate.stop_reason must be a string or null"))?
                        .to_string(),
                ),
            },
        })
    }
}

impl ToJson for WireError {
    fn to_json(&self) -> Json {
        obj(vec![
            ("type", Json::Str("error".into())),
            ("code", Json::Str(self.code.as_str().into())),
            ("message", Json::Str(self.message.clone())),
        ])
    }
}

impl FromJson for WireError {
    fn from_json(json: &Json) -> Result<Self> {
        let code = match need(json, "code", "WireError")?.as_str() {
            Some("bad-request") => ErrorCode::BadRequest,
            Some("invalid-config") => ErrorCode::InvalidConfig,
            Some("unknown-job") => ErrorCode::UnknownJob,
            Some("shutting-down") => ErrorCode::ShuttingDown,
            other => return Err(invalid(format!("unknown error code {other:?}"))),
        };
        Ok(WireError {
            code,
            message: need(json, "message", "WireError")?
                .as_str()
                .ok_or_else(|| invalid("WireError.message must be a string"))?
                .to_string(),
        })
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        match self {
            Response::Accepted { job } => obj(vec![
                ("type", Json::Str("accepted".into())),
                ("job", Json::UInt(*job)),
            ]),
            Response::CampaignAccepted { name, jobs } => obj(vec![
                ("type", Json::Str("campaign-accepted".into())),
                ("name", Json::Str(name.clone())),
                (
                    "jobs",
                    Json::Arr(jobs.iter().map(|&j| Json::UInt(j)).collect()),
                ),
            ]),
            Response::Status {
                queue_depth,
                running,
                jobs,
            } => obj(vec![
                ("type", Json::Str("status".into())),
                ("queue_depth", Json::UInt(*queue_depth as u64)),
                ("running", Json::UInt(*running as u64)),
                (
                    "jobs",
                    Json::Arr(jobs.iter().map(|j| j.to_json()).collect()),
                ),
            ]),
            Response::Update(update) => update.to_json(),
            Response::Done { job, result } => obj(vec![
                ("type", Json::Str("done".into())),
                ("job", Json::UInt(*job)),
                ("result", result.to_json()),
            ]),
            Response::Cancelled { job } => obj(vec![
                ("type", Json::Str("cancelled".into())),
                ("job", Json::UInt(*job)),
            ]),
            Response::Failed { job, error } => obj(vec![
                ("type", Json::Str("failed".into())),
                ("job", Json::UInt(*job)),
                ("error", Json::Str(error.clone())),
            ]),
            Response::Metrics { snapshot } => obj(vec![
                ("type", Json::Str("metrics".into())),
                ("snapshot", snapshot.clone()),
            ]),
            Response::Pong => obj(vec![("type", Json::Str("pong".into()))]),
            Response::Ok => obj(vec![("type", Json::Str("ok".into()))]),
            Response::Error(error) => error.to_json(),
        }
    }
}

impl FromJson for Response {
    fn from_json(json: &Json) -> Result<Self> {
        match envelope_type(json, "Response")? {
            "accepted" => Ok(Response::Accepted {
                job: need_u64(json, "job", "accepted")?,
            }),
            "campaign-accepted" => Ok(Response::CampaignAccepted {
                name: need(json, "name", "campaign-accepted")?
                    .as_str()
                    .ok_or_else(|| invalid("campaign-accepted.name must be a string"))?
                    .to_string(),
                jobs: need(json, "jobs", "campaign-accepted")?
                    .as_array()
                    .ok_or_else(|| invalid("campaign-accepted.jobs must be an array"))?
                    .iter()
                    .map(|j| {
                        j.as_u64()
                            .ok_or_else(|| invalid("campaign-accepted.jobs must hold integers"))
                    })
                    .collect::<Result<Vec<u64>>>()?,
            }),
            "status" => Ok(Response::Status {
                queue_depth: need_usize(json, "queue_depth", "status")?,
                running: need_usize(json, "running", "status")?,
                jobs: need(json, "jobs", "status")?
                    .as_array()
                    .ok_or_else(|| invalid("status.jobs must be an array"))?
                    .iter()
                    .map(JobView::from_json)
                    .collect::<Result<Vec<_>>>()?,
            }),
            "update" => Ok(Response::Update(RunUpdate::from_json(json)?)),
            "done" => Ok(Response::Done {
                job: need_u64(json, "job", "done")?,
                result: Box::new(JobReport::from_json(need(json, "result", "done")?)?),
            }),
            "cancelled" => Ok(Response::Cancelled {
                job: need_u64(json, "job", "cancelled")?,
            }),
            "failed" => Ok(Response::Failed {
                job: need_u64(json, "job", "failed")?,
                error: need(json, "error", "failed")?
                    .as_str()
                    .ok_or_else(|| invalid("failed.error must be a string"))?
                    .to_string(),
            }),
            "metrics" => Ok(Response::Metrics {
                snapshot: need(json, "snapshot", "metrics")?.clone(),
            }),
            "pong" => Ok(Response::Pong),
            "ok" => Ok(Response::Ok),
            "error" => Ok(Response::Error(WireError::from_json(json)?)),
            other => Err(invalid(format!("unknown response type '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_dynamics::prelude::{InitialCondition, Opinion, ReplicaOutcome};
    use bo3_graph::TopologySpec;

    fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(value: &T) {
        let text = value.to_json_string();
        let back = T::from_json_str(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(&back, value, "{text}");
    }

    fn sample_experiment() -> Experiment {
        Experiment::on(TopologySpec::ImplicitGnp { n: 2_000, p: 0.4 })
            .named("wire/sample")
            .initial(InitialCondition::BernoulliWithBias { delta: 0.15 })
            .replicas(3)
            .seed(11)
            .threads(1)
    }

    fn sample_report() -> MonteCarloReport {
        MonteCarloReport {
            outcomes: vec![
                ReplicaOutcome {
                    replica: 0,
                    winner: Some(Opinion::Red),
                    rounds: 9,
                    initial_blue_fraction: 0.351,
                    final_blue_fraction: 0.0,
                    adversary: None,
                },
                ReplicaOutcome {
                    replica: 1,
                    winner: None,
                    rounds: 64,
                    initial_blue_fraction: 0.5,
                    final_blue_fraction: 0.493,
                    adversary: None,
                },
            ],
            consensus_rate: 0.5,
            red_win: ProportionEstimate::new(1, 1),
            rounds_to_consensus: Summary::of(&[9.0]),
            adversary: None,
        }
    }

    #[test]
    fn requests_round_trip() {
        round_trip(&Request::Submit(Box::new(sample_experiment())));
        let campaign = Campaign::new("wire/campaign", 5)
            .add_cell(sample_experiment())
            .add_cell(sample_experiment());
        round_trip(&Request::SubmitCampaign(Box::new(campaign)));
        round_trip(&Request::Status { job: None });
        round_trip(&Request::Status { job: Some(3) });
        round_trip(&Request::Stream { job: 7 });
        round_trip(&Request::Cancel { job: 7 });
        round_trip(&Request::Metrics);
        round_trip(&Request::Ping);
        round_trip(&Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        round_trip(&Response::Accepted { job: 1 });
        round_trip(&Response::CampaignAccepted {
            name: "c".into(),
            jobs: vec![1, 2, 3],
        });
        round_trip(&Response::Status {
            queue_depth: 2,
            running: 1,
            jobs: vec![
                JobView {
                    job: 1,
                    state: JobState::Running,
                    name: "a".into(),
                    error: None,
                },
                JobView {
                    job: 2,
                    state: JobState::Failed,
                    name: "b".into(),
                    error: Some("boom".into()),
                },
            ],
        });
        round_trip(&Response::Update(RunUpdate {
            job: 4,
            replicas_done: 1,
            replicas: 3,
            replica: 1,
            round: 12,
            blue_fraction: 0.25,
            stop_reason: None,
        }));
        round_trip(&Response::Update(RunUpdate {
            job: 4,
            replicas_done: 3,
            replicas: 3,
            replica: 3,
            round: 0,
            blue_fraction: 0.0,
            stop_reason: Some("consensus".into()),
        }));
        round_trip(&Response::Done {
            job: 4,
            result: Box::new(JobReport {
                name: "wire/sample".into(),
                n: 2_000,
                report: sample_report(),
                cell: Some(CellResult {
                    index: 0,
                    name: "wire/sample".into(),
                    replicas: 2,
                    consensus_rate: 0.5,
                    red_win_rate: Some(1.0),
                    mean_rounds: Some(9.0),
                    mean_final_blue: 0.2465,
                    polarisation_rate: 0.0,
                }),
            }),
        });
        round_trip(&Response::Cancelled { job: 4 });
        round_trip(&Response::Failed {
            job: 5,
            error: "validate: zero replicas".into(),
        });
        round_trip(&Response::Metrics {
            snapshot: Json::parse("{\"counters\":{\"a\":1}}").unwrap(),
        });
        round_trip(&Response::Pong);
        round_trip(&Response::Ok);
        round_trip(&Response::Error(WireError::new(
            ErrorCode::UnknownJob,
            "job 9 does not exist",
        )));
    }

    #[test]
    fn reports_round_trip_bit_exactly() {
        // The determinism contract end to end in miniature: a real report
        // through JSON text and back compares equal, floats included.
        let report = sample_report();
        round_trip(&report);
        round_trip(&Summary::of(&[1.0, 2.5, 9.125, 4.0 / 3.0]).unwrap());
        round_trip(&ProportionEstimate::new(7, 13).unwrap());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::from_json_str("garbage").is_err());
        assert!(Request::from_json_str("{}").is_err());
        assert!(Request::from_json_str("{\"type\":\"launch\"}").is_err());
        assert!(Request::from_json_str("{\"type\":\"submit\"}").is_err());
        assert!(Request::from_json_str("{\"type\":\"stream\"}").is_err());
        assert!(Request::from_json_str("{\"type\":\"cancel\",\"job\":-1}").is_err());
    }

    #[test]
    fn golden_submit_line() {
        // Pins the envelope layout the README documents.
        let line = Request::Stream { job: 2 }.to_json_string();
        assert_eq!(line, "{\"type\":\"stream\",\"job\":2}");
        let error = WireError::new(ErrorCode::BadRequest, "not JSON").to_json_string();
        assert_eq!(
            error,
            "{\"type\":\"error\",\"code\":\"bad-request\",\"message\":\"not JSON\"}"
        );
    }
}
