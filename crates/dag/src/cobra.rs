//! COBRA walks (Coalescing–Branching random walks), Remark 2 of the paper.
//!
//! A COBRA walk with branching factor `k` starts with particles on a set of
//! vertices; every step, each particle makes `k − 1` copies of itself and all
//! particles independently move to a uniformly random neighbour; particles
//! meeting at a vertex coalesce into one.  The trajectory of a `k = 3` COBRA
//! walk started at `v₀` is exactly the level structure of the random
//! voting-DAG `H_{v₀}` (read root-to-leaves), which is how the paper connects
//! the two objects.  Experiment E8 reproduces the occupancy growth and the
//! cover time on regular graphs studied in the COBRA-walk literature
//! (references \[3], \[6], \[9]).

use rand::Rng;
use serde::{Deserialize, Serialize};

use bo3_graph::{CsrGraph, VertexId};

use crate::error::{DagError, Result};

/// The per-step trajectory of one COBRA walk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CobraTrajectory {
    /// Branching factor used.
    pub branching: usize,
    /// Number of occupied vertices after each step (`occupancy[0]` is the
    /// initial set size).
    pub occupancy: Vec<usize>,
    /// The first step at which every vertex had been visited at least once,
    /// if coverage was achieved within the step budget.
    pub cover_time: Option<usize>,
}

impl CobraTrajectory {
    /// Number of steps actually simulated.
    pub fn steps(&self) -> usize {
        self.occupancy.len() - 1
    }

    /// Largest occupied-set size observed.
    pub fn peak_occupancy(&self) -> usize {
        self.occupancy.iter().copied().max().unwrap_or(0)
    }
}

/// Runs a COBRA walk with the given `branching` factor (`k ≥ 1`; `k = 1` is
/// the classical coalescing random walk, `k = 3` the paper's dual process).
///
/// The walk starts from `start`, runs for at most `max_steps` steps, and
/// stops early once every vertex has been visited (cover) when
/// `stop_at_cover` is set.
pub fn cobra_walk<R: Rng + ?Sized>(
    graph: &CsrGraph,
    start: VertexId,
    branching: usize,
    max_steps: usize,
    stop_at_cover: bool,
    rng: &mut R,
) -> Result<CobraTrajectory> {
    let n = graph.num_vertices();
    if start >= n {
        return Err(DagError::RootOutOfRange { root: start, n });
    }
    if branching == 0 {
        return Err(DagError::InvalidParameter {
            reason: "branching factor must be at least 1".into(),
        });
    }

    let mut occupied = vec![false; n];
    let mut visited = vec![false; n];
    let mut current: Vec<VertexId> = vec![start];
    occupied[start] = true;
    visited[start] = true;
    let mut visited_count = 1usize;

    let mut occupancy = Vec::with_capacity(max_steps + 1);
    occupancy.push(1);
    let mut cover_time = if visited_count == n { Some(0) } else { None };

    let mut next: Vec<VertexId> = Vec::new();
    for step in 1..=max_steps {
        if cover_time.is_some() && stop_at_cover {
            break;
        }
        next.clear();
        // Each occupied vertex emits `branching` independent moves.
        for &v in &current {
            occupied[v] = false;
            let deg = graph.degree(v);
            if deg == 0 {
                return Err(DagError::InvalidGraph {
                    reason: format!("vertex {v} has no neighbours"),
                });
            }
            for _ in 0..branching {
                let w = graph.neighbour_at(v, rng.gen_range(0..deg));
                next.push(w);
            }
        }
        // Coalesce.
        current.clear();
        for &w in &next {
            if !occupied[w] {
                occupied[w] = true;
                current.push(w);
                if !visited[w] {
                    visited[w] = true;
                    visited_count += 1;
                }
            }
        }
        occupancy.push(current.len());
        if cover_time.is_none() && visited_count == n {
            cover_time = Some(step);
        }
    }

    Ok(CobraTrajectory {
        branching,
        occupancy,
        cover_time,
    })
}

/// Monte-Carlo estimate of the mean cover time of a COBRA walk; walks that do
/// not cover within `max_steps` are excluded and reported separately.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverTimeEstimate {
    /// Mean cover time over the covering walks.
    pub mean_cover_time: Option<f64>,
    /// Number of walks that covered the graph within the budget.
    pub covered: usize,
    /// Total number of walks simulated.
    pub trials: usize,
}

/// Estimates the cover time of a `branching`-COBRA walk from `start`.
pub fn estimate_cover_time<R: Rng + ?Sized>(
    graph: &CsrGraph,
    start: VertexId,
    branching: usize,
    max_steps: usize,
    trials: usize,
    rng: &mut R,
) -> Result<CoverTimeEstimate> {
    let mut times = Vec::new();
    for _ in 0..trials {
        let traj = cobra_walk(graph, start, branching, max_steps, true, rng)?;
        if let Some(t) = traj.cover_time {
            times.push(t as f64);
        }
    }
    let covered = times.len();
    let mean = if covered > 0 {
        Some(times.iter().sum::<f64>() / covered as f64)
    } else {
        None
    };
    Ok(CoverTimeEstimate {
        mean_cover_time: mean,
        covered,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        let g = generators::complete(5);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(cobra_walk(&g, 10, 3, 5, true, &mut rng).is_err());
        assert!(cobra_walk(&g, 0, 0, 5, true, &mut rng).is_err());
    }

    #[test]
    fn trajectory_bookkeeping() {
        let g = generators::complete(30);
        let mut rng = StdRng::seed_from_u64(1);
        let traj = cobra_walk(&g, 0, 3, 10, false, &mut rng).unwrap();
        assert_eq!(traj.branching, 3);
        assert_eq!(traj.steps(), 10);
        assert_eq!(traj.occupancy[0], 1);
        assert!(traj.peak_occupancy() <= 30);
        // Occupancy can at most triple per step.
        for w in traj.occupancy.windows(2) {
            assert!(w[1] <= 3 * w[0]);
        }
    }

    #[test]
    fn k3_cobra_walk_covers_dense_graphs_quickly() {
        let g = generators::complete(200);
        let mut rng = StdRng::seed_from_u64(2);
        let traj = cobra_walk(&g, 0, 3, 100, true, &mut rng).unwrap();
        let cover = traj.cover_time.expect("should cover K_200 easily");
        // log_3(200) ≈ 4.8; coupon-collector effects add a few more rounds.
        assert!(cover < 40, "cover time {cover}");
    }

    #[test]
    fn k1_is_a_single_random_walk() {
        let g = generators::cycle(20).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let traj = cobra_walk(&g, 0, 1, 50, false, &mut rng).unwrap();
        // With branching 1 there is exactly one particle forever.
        assert!(traj.occupancy.iter().all(|&c| c == 1));
    }

    #[test]
    fn branching_speeds_up_covering() {
        let g = generators::hypercube(7).unwrap(); // 128 vertices, degree 7
        let mut rng = StdRng::seed_from_u64(4);
        let est1 = estimate_cover_time(&g, 0, 1, 20_000, 5, &mut rng).unwrap();
        let est3 = estimate_cover_time(&g, 0, 3, 20_000, 5, &mut rng).unwrap();
        assert_eq!(est3.covered, 5);
        let c3 = est3.mean_cover_time.unwrap();
        // The single random walk needs Θ(n log n) steps; the 3-COBRA walk
        // covers in O(log n)-ish time on good expanders. Either the single
        // walk failed to cover within the budget or it was much slower.
        if let Some(c1) = est1.mean_cover_time {
            assert!(c1 > 5.0 * c3, "c1 = {c1}, c3 = {c3}");
        } else {
            assert!(est1.covered < 5);
        }
        assert!(c3 < 200.0, "c3 = {c3}");
    }

    #[test]
    fn cover_time_zero_on_single_vertex_start_when_graph_is_covered() {
        // A complete graph on 1 vertex is not valid for dynamics; use K_2:
        // starting at 0, after one step the particle triples onto vertex 1,
        // covering the graph.
        let g = generators::complete(2);
        let mut rng = StdRng::seed_from_u64(5);
        let traj = cobra_walk(&g, 0, 3, 10, true, &mut rng).unwrap();
        assert_eq!(traj.cover_time, Some(1));
    }

    #[test]
    fn estimate_reports_non_covering_walks() {
        // With a budget of 0 steps nothing ever covers.
        let g = generators::complete(10);
        let mut rng = StdRng::seed_from_u64(6);
        let est = estimate_cover_time(&g, 0, 3, 0, 4, &mut rng).unwrap();
        assert_eq!(est.covered, 0);
        assert_eq!(est.trials, 4);
        assert!(est.mean_cover_time.is_none());
    }

    #[test]
    fn occupancy_matches_voting_dag_levels_in_distribution() {
        // Remark 2: the level sizes of the voting-DAG (from the root down)
        // have the same distribution as the COBRA occupancy sequence. Compare
        // the means of the first few steps on the same graph.
        let g = generators::complete(300);
        let mut rng = StdRng::seed_from_u64(7);
        let steps = 4usize;
        let trials = 300usize;
        let mut dag_means = vec![0.0f64; steps + 1];
        let mut cobra_means = vec![0.0f64; steps + 1];
        for _ in 0..trials {
            let dag = crate::voting_dag::VotingDag::sample(&g, 0, steps, &mut rng).unwrap();
            for (t, mean) in dag_means.iter_mut().enumerate() {
                // Level height-t of the DAG corresponds to COBRA step t.
                *mean += dag.level(steps - t).len() as f64;
            }
            let traj = cobra_walk(&g, 0, 3, steps, false, &mut rng).unwrap();
            for (mean, occupancy) in cobra_means.iter_mut().zip(&traj.occupancy) {
                *mean += *occupancy as f64;
            }
        }
        for t in 0..=steps {
            let a = dag_means[t] / trials as f64;
            let b = cobra_means[t] / trials as f64;
            assert!(
                (a - b).abs() <= 0.15 * a.max(1.0),
                "step {t}: DAG mean {a}, COBRA mean {b}"
            );
        }
    }
}
