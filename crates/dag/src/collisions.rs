//! Collision accounting (Section 4, Lemma 7).
//!
//! Level `t ≥ 1` of a voting-DAG *involves a collision* when, revealing the
//! samples of its nodes one by one, some sample hits a vertex at level
//! `t − 1` that was already revealed (by an earlier node at level `t`, or by
//! the same node's earlier sample).  Lemma 7 bounds the number of such
//! levels by a `Bin(h, 9^h/d)` variable; these counters produce the measured
//! side of that comparison (experiment E7).

use serde::{Deserialize, Serialize};

use crate::voting_dag::VotingDag;

/// Collision statistics of one voting-DAG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollisionStats {
    /// For each level `t ≥ 1` (index `t − 1` in this vector): the number of
    /// sample reveals at that level that hit an already-revealed vertex.
    pub collisions_per_level: Vec<usize>,
    /// Number of levels with at least one collision — the paper's `C`.
    pub collision_levels: usize,
}

impl CollisionStats {
    /// Total number of colliding reveals across all levels.
    pub fn total_collisions(&self) -> usize {
        self.collisions_per_level.iter().sum()
    }

    /// Number of levels analysed (the DAG height).
    pub fn levels(&self) -> usize {
        self.collisions_per_level.len()
    }
}

/// Counts collisions in a realised voting-DAG, revealing samples in node
/// order within each level (the order the paper fixes for the Sprinkling
/// process; the *count of colliding reveals* is order-independent, only the
/// attribution of which reveal "caused" the collision depends on it).
pub fn collision_stats(dag: &VotingDag) -> CollisionStats {
    let mut per_level = Vec::with_capacity(dag.height());
    for t in 1..=dag.height() {
        let level = dag.level(t);
        let below_len = dag.level(t - 1).len();
        let mut revealed = vec![false; below_len];
        let mut collisions = 0usize;
        for sample in &level.samples {
            for &idx in sample {
                if revealed[idx] {
                    collisions += 1;
                } else {
                    revealed[idx] = true;
                }
            }
        }
        per_level.push(collisions);
    }
    let collision_levels = per_level.iter().filter(|&&c| c > 0).count();
    CollisionStats {
        collisions_per_level: per_level,
        collision_levels,
    }
}

/// The empirical probability that a *single* reveal at the given level
/// collides, for comparison with the paper's per-reveal bound
/// `ε = 3^{T−t+1}/d` (equation (2)).
pub fn per_reveal_collision_rate(stats: &CollisionStats, dag: &VotingDag, t: usize) -> f64 {
    assert!(t >= 1 && t <= dag.height());
    let reveals = dag.level(t).len() * crate::voting_dag::BRANCHING;
    if reveals == 0 {
        0.0
    } else {
        stats.collisions_per_level[t - 1] as f64 / reveals as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ternary_tree_has_no_collisions() {
        let g = generators::complete(5000);
        let mut rng = StdRng::seed_from_u64(0);
        let dag = VotingDag::sample(&g, 0, 2, &mut rng).unwrap();
        assert!(dag.is_ternary_tree());
        let stats = collision_stats(&dag);
        assert_eq!(stats.collision_levels, 0);
        assert_eq!(stats.total_collisions(), 0);
        assert_eq!(stats.levels(), 2);
    }

    #[test]
    fn collision_levels_consistent_with_is_ternary_tree() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [3usize, 10, 50, 500] {
            let g = generators::complete(n);
            let dag = VotingDag::sample(&g, 0, 5, &mut rng).unwrap();
            let stats = collision_stats(&dag);
            assert_eq!(
                stats.collision_levels == 0,
                dag.is_ternary_tree(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn tiny_graphs_collide_at_every_deep_level() {
        // On a triangle each level has at most 3 nodes but 3·|level| reveals,
        // so every level beyond the first must involve collisions.
        let g = generators::complete(3);
        let mut rng = StdRng::seed_from_u64(2);
        let dag = VotingDag::sample(&g, 0, 6, &mut rng).unwrap();
        let stats = collision_stats(&dag);
        assert!(
            stats.collision_levels >= 4,
            "levels {:?}",
            stats.collisions_per_level
        );
    }

    #[test]
    fn collision_count_bounded_by_reveals() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::erdos_renyi_gnp(100, 0.3, &mut rng).unwrap();
        let dag = VotingDag::sample(&g, 0, 6, &mut rng).unwrap();
        let stats = collision_stats(&dag);
        for t in 1..=dag.height() {
            let reveals = dag.level(t).len() * 3;
            assert!(stats.collisions_per_level[t - 1] <= reveals);
            let rate = per_reveal_collision_rate(&stats, &dag, t);
            assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn denser_graphs_have_fewer_collision_levels() {
        let mut rng = StdRng::seed_from_u64(4);
        let height = 6;
        let mut rates = Vec::new();
        for n in [20usize, 200, 2000] {
            let g = generators::complete(n);
            // Average over several DAGs to make the comparison stable.
            let mut total = 0usize;
            for _ in 0..20 {
                let dag = VotingDag::sample(&g, 0, height, &mut rng).unwrap();
                total += collision_stats(&dag).collision_levels;
            }
            rates.push(total as f64 / 20.0);
        }
        assert!(rates[0] > rates[1], "rates {rates:?}");
        assert!(rates[1] > rates[2], "rates {rates:?}");
    }

    #[test]
    fn per_reveal_rate_respects_paper_epsilon_on_average() {
        // ε_t = 3^{T−t+1}/d bounds the *conditional* collision probability of
        // one reveal; the empirical per-reveal rate, averaged over many DAGs,
        // must not exceed it (it is usually far smaller).
        let d = 499usize; // complete graph on 500 vertices
        let g = generators::complete(d + 1);
        let height = 4;
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 200;
        let mut total_rate = vec![0.0f64; height];
        for _ in 0..trials {
            let dag = VotingDag::sample(&g, 0, height, &mut rng).unwrap();
            let stats = collision_stats(&dag);
            for t in 1..=height {
                total_rate[t - 1] += per_reveal_collision_rate(&stats, &dag, t);
            }
        }
        for t in 1..=height {
            let avg = total_rate[t - 1] / trials as f64;
            let eps = bo3_theory::recursion::epsilon(height, t, d as f64);
            assert!(
                avg <= eps + 0.01,
                "level {t}: measured {avg} exceeds epsilon {eps}"
            );
        }
    }
}
