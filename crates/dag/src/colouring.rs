//! The colouring process `X_H` of Section 2.
//!
//! Given a realised voting-DAG `H` and a colouring of its leaves, the colour
//! of every internal node is the majority of its three samples, computed
//! level by level up to the root.  Summing over realisations of `H`,
//! `P(X_H(v₀, T) = B) = P(ξ_T(v₀) = B)` — the time-reversal duality that
//! experiment E9 verifies empirically.

use rand::Rng;

use bo3_dynamics::opinion::Opinion;

use crate::error::{DagError, Result};
use crate::voting_dag::VotingDag;

/// The colours of every node of a voting-DAG, level by level (index 0 =
/// leaves), as produced by [`colour_dag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagColouring {
    /// `colours[t][i]` is the colour of node `i` at level `t`.
    pub colours: Vec<Vec<Opinion>>,
}

impl DagColouring {
    /// The colour of the root.
    pub fn root_colour(&self) -> Opinion {
        *self
            .colours
            .last()
            .and_then(|level| level.first())
            .expect("a voting-DAG always has a root")
    }

    /// Number of blue nodes at level `t`.
    pub fn blue_count_at(&self, t: usize) -> usize {
        self.colours[t].iter().filter(|c| c.is_blue()).count()
    }

    /// Number of blue leaves.
    pub fn blue_leaves(&self) -> usize {
        self.blue_count_at(0)
    }
}

/// Runs the colouring process on `dag` with the given leaf colours.
///
/// `leaf_colours[i]` is the colour of node `i` at level 0.
pub fn colour_dag(dag: &VotingDag, leaf_colours: &[Opinion]) -> Result<DagColouring> {
    if leaf_colours.len() != dag.num_leaves() {
        return Err(DagError::LeafColouringMismatch {
            got: leaf_colours.len(),
            expected: dag.num_leaves(),
        });
    }
    let mut colours: Vec<Vec<Opinion>> = Vec::with_capacity(dag.levels().len());
    colours.push(leaf_colours.to_vec());
    for t in 1..dag.levels().len() {
        let level = dag.level(t);
        let below = &colours[t - 1];
        let mut this: Vec<Opinion> = Vec::with_capacity(level.len());
        for sample in &level.samples {
            let blues = sample.iter().filter(|&&idx| below[idx].is_blue()).count();
            this.push(if blues >= 2 {
                Opinion::Blue
            } else {
                Opinion::Red
            });
        }
        colours.push(this);
    }
    Ok(DagColouring { colours })
}

/// Draws i.i.d. leaf colours (blue with probability `p_blue`) and runs the
/// colouring process; returns the full colouring.
pub fn colour_dag_random<R: Rng + ?Sized>(
    dag: &VotingDag,
    p_blue: f64,
    rng: &mut R,
) -> Result<DagColouring> {
    if !(0.0..=1.0).contains(&p_blue) || p_blue.is_nan() {
        return Err(DagError::InvalidParameter {
            reason: format!("p_blue must lie in [0,1], got {p_blue}"),
        });
    }
    let leaves: Vec<Opinion> = (0..dag.num_leaves())
        .map(|_| {
            if rng.gen::<f64>() < p_blue {
                Opinion::Blue
            } else {
                Opinion::Red
            }
        })
        .collect();
    colour_dag(dag, &leaves)
}

/// Monte-Carlo estimate of `P(X_H(v₀, T) = B)` where both the DAG and the
/// leaf colours are random: samples `trials` independent (DAG, colouring)
/// pairs and returns the fraction of blue roots.
pub fn estimate_root_blue_probability<R: Rng + ?Sized>(
    graph: &bo3_graph::CsrGraph,
    root: usize,
    height: usize,
    p_blue: f64,
    trials: usize,
    rng: &mut R,
) -> Result<f64> {
    let mut blue = 0usize;
    for _ in 0..trials {
        let dag = VotingDag::sample(graph, root, height, rng)?;
        let colouring = colour_dag_random(&dag, p_blue, rng)?;
        if colouring.root_colour().is_blue() {
            blue += 1;
        }
    }
    Ok(blue as f64 / trials.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::generators;
    use bo3_theory::recursion::ideal_trajectory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_wrong_leaf_count_and_bad_probability() {
        let g = generators::complete(50);
        let mut rng = StdRng::seed_from_u64(0);
        let dag = VotingDag::sample(&g, 0, 2, &mut rng).unwrap();
        assert!(colour_dag(&dag, &[Opinion::Red]).is_err());
        assert!(colour_dag_random(&dag, 1.5, &mut rng).is_err());
        assert!(colour_dag_random(&dag, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn unanimous_leaves_propagate_to_the_root() {
        let g = generators::complete(100);
        let mut rng = StdRng::seed_from_u64(1);
        let dag = VotingDag::sample(&g, 5, 4, &mut rng).unwrap();
        let all_red = vec![Opinion::Red; dag.num_leaves()];
        let c = colour_dag(&dag, &all_red).unwrap();
        assert_eq!(c.root_colour(), Opinion::Red);
        assert_eq!(c.blue_leaves(), 0);
        for t in 0..=dag.height() {
            assert_eq!(c.blue_count_at(t), 0);
        }
        let all_blue = vec![Opinion::Blue; dag.num_leaves()];
        let c = colour_dag(&dag, &all_blue).unwrap();
        assert_eq!(c.root_colour(), Opinion::Blue);
    }

    #[test]
    fn zero_height_dag_root_colour_is_the_leaf_colour() {
        let g = generators::complete(10);
        let mut rng = StdRng::seed_from_u64(2);
        let dag = VotingDag::sample(&g, 3, 0, &mut rng).unwrap();
        let c = colour_dag(&dag, &[Opinion::Blue]).unwrap();
        assert_eq!(c.root_colour(), Opinion::Blue);
    }

    #[test]
    fn majority_is_taken_per_node() {
        // Build a height-1 DAG on the complete graph and hand-colour the
        // leaves so the root's three samples have a known majority.
        let g = generators::complete(1000);
        let mut rng = StdRng::seed_from_u64(3);
        let dag = VotingDag::sample(&g, 0, 1, &mut rng).unwrap();
        let leaves = dag.num_leaves();
        assert!(leaves <= 3);
        // Colour every leaf blue except the first.
        let mut colours = vec![Opinion::Blue; leaves];
        colours[0] = Opinion::Red;
        let c = colour_dag(&dag, &colours).unwrap();
        // The root samples three leaf slots; whether it is blue depends on
        // how many of its samples hit leaf 0. Recompute by hand.
        let sample = dag.level(1).samples[0];
        let blues = sample.iter().filter(|&&i| colours[i].is_blue()).count();
        assert_eq!(c.root_colour().is_blue(), blues >= 2);
    }

    #[test]
    fn root_blue_probability_matches_ideal_recursion_on_huge_complete_graphs() {
        // On a large complete graph with small height, the DAG is a ternary
        // tree w.h.p., so P(root blue) follows equation (1) exactly.
        let g = generators::complete(5_000);
        let mut rng = StdRng::seed_from_u64(4);
        let height = 3;
        let p0 = 0.3f64;
        let est = estimate_root_blue_probability(&g, 0, height, p0, 4_000, &mut rng).unwrap();
        let ideal = ideal_trajectory(p0, height)[height];
        assert!(
            (est - ideal).abs() < 0.02,
            "estimate {est}, ideal recursion {ideal}"
        );
    }

    #[test]
    fn blue_minority_shrinks_level_by_level() {
        let g = generators::complete(5_000);
        let mut rng = StdRng::seed_from_u64(5);
        let dag = VotingDag::sample(&g, 0, 4, &mut rng).unwrap();
        let c = colour_dag_random(&dag, 0.35, &mut rng).unwrap();
        // Fractions of blue nodes should trend downwards as we move up.
        let fractions: Vec<f64> = (0..=dag.height())
            .map(|t| c.blue_count_at(t) as f64 / dag.level(t).len() as f64)
            .collect();
        assert!(
            fractions[dag.height()] <= fractions[0] + 0.05,
            "fractions {fractions:?}"
        );
        assert_eq!(c.colours.len(), dag.height() + 1);
    }
}
