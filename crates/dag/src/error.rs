//! Error types for the voting-DAG substrate.

use std::fmt;

/// Errors produced while building or analysing voting-DAGs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The root vertex does not exist in the graph.
    RootOutOfRange {
        /// The requested root.
        root: usize,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// The graph cannot host a voting-DAG (e.g. an isolated vertex was reached).
    InvalidGraph {
        /// Description of the problem.
        reason: String,
    },
    /// A leaf colouring of the wrong length was supplied.
    LeafColouringMismatch {
        /// Number of colours supplied.
        got: usize,
        /// Number of leaves expected.
        expected: usize,
    },
    /// A parameter was invalid (zero levels, zero branching factor, …).
    InvalidParameter {
        /// Description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::RootOutOfRange { root, n } => {
                write!(
                    f,
                    "root vertex {root} out of range for graph with {n} vertices"
                )
            }
            DagError::InvalidGraph { reason } => write!(f, "invalid graph: {reason}"),
            DagError::LeafColouringMismatch { got, expected } => write!(
                f,
                "leaf colouring has {got} entries but the DAG has {expected} leaves"
            ),
            DagError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl std::error::Error for DagError {}

impl From<bo3_graph::GraphError> for DagError {
    fn from(e: bo3_graph::GraphError) -> Self {
        DagError::InvalidGraph {
            reason: e.to_string(),
        }
    }
}

/// Result alias for `bo3-dag`.
pub type Result<T> = std::result::Result<T, DagError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_parameters() {
        let e = DagError::RootOutOfRange { root: 9, n: 5 };
        assert!(e.to_string().contains('9') && e.to_string().contains('5'));
        let e = DagError::LeafColouringMismatch {
            got: 2,
            expected: 4,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('4'));
    }

    #[test]
    fn graph_error_converts() {
        let e: DagError = bo3_graph::GraphError::EmptyGraph.into();
        assert!(matches!(e, DagError::InvalidGraph { .. }));
    }
}
