//! # bo3-dag
//!
//! The time-reversal substrate of *“Best-of-Three Voting on Dense Graphs”*
//! (Kang & Rivera, SPAA 2019): the random voting-DAG, its colouring process,
//! the Sprinkling coupling, the ternary-tree transformation, collision
//! accounting, and the COBRA-walk view of the same object.
//!
//! * [`voting_dag`] — sampling the DAG `H_{v₀}` of Section 2;
//! * [`colouring`] — the colouring process `X_H`, whose root colour is
//!   distributed exactly as `ξ_T(v₀)` (the duality verified by experiment E9);
//! * [`sprinkling`] — the Section 3 coupling that converts collisions into
//!   deterministically blue nodes, giving a collision-free DAG `H′` with
//!   `X_H ≤ X_{H′}` pointwise;
//! * [`ternary`] — Lemmas 5 and 6: blue-leaf thresholds for ternary trees and
//!   the DAG→tree transformation;
//! * [`collisions`] — per-level collision statistics compared against the
//!   `ε_t = 3^{T−t+1}/d` and `Bin(h, 9^h/d)` bounds of Lemma 7;
//! * [`cobra`] — COBRA walks (Remark 2).
//!
//! ```
//! use bo3_dag::voting_dag::VotingDag;
//! use bo3_dag::colouring::colour_dag_random;
//! use bo3_graph::generators;
//! use rand::SeedableRng;
//!
//! let graph = generators::complete(1000);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let dag = VotingDag::sample(&graph, 0, 4, &mut rng).unwrap();
//! let colouring = colour_dag_random(&dag, 0.3, &mut rng).unwrap();
//! // The root colour has the same law as the forward process after 4 rounds.
//! let _ = colouring.root_colour();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cobra;
pub mod collisions;
pub mod colouring;
pub mod error;
pub mod sprinkling;
pub mod ternary;
pub mod voting_dag;

pub use cobra::{cobra_walk, CobraTrajectory};
pub use collisions::{collision_stats, CollisionStats};
pub use colouring::{colour_dag, colour_dag_random, DagColouring};
pub use error::{DagError, Result};
pub use sprinkling::{sprinkle, SprinkledDag};
pub use ternary::{ternary_transform, TernaryTransform};
pub use voting_dag::{DagLevel, VotingDag, BRANCHING};
