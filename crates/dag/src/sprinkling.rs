//! The Sprinkling process of Section 3.
//!
//! Revealing the samples of a voting-DAG level by level (from the top of the
//! analysed range down to level 1), every reveal that hits an
//! already-revealed vertex is *redirected* to a brand-new artificial node
//! whose colour is deterministically **blue** and whose out-degree is 0.
//! The resulting DAG `H′` is collision-free below the starting level, the
//! colours of distinct nodes at a level are independent, and the coupling
//! `X_H(v,t) ≤ X_{H′}(v,t)` (blue = 1) holds pointwise because the
//! substitution can only add blue.
//!
//! [`sprinkle`] performs exactly that transformation on a realised DAG and
//! [`SprinkledDag::colour`] reproduces the associated colouring process, so
//! the monotone-coupling claim and the recursion (2) can be checked
//! experimentally (experiments E7 and E10).

use serde::{Deserialize, Serialize};

use bo3_dynamics::opinion::Opinion;
use bo3_graph::VertexId;

use crate::error::{DagError, Result};
use crate::voting_dag::{VotingDag, BRANCHING};

/// A node of a sprinkled DAG level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SprinkledNode {
    /// A node of the original DAG, carrying its graph vertex.
    Original {
        /// The graph vertex this node corresponds to.
        vertex: VertexId,
    },
    /// An artificial node added by the Sprinkling process; its colour is
    /// deterministically blue and it has no outgoing samples.
    ForcedBlue,
}

impl SprinkledNode {
    /// `true` for artificial forced-blue nodes.
    pub fn is_forced_blue(&self) -> bool {
        matches!(self, SprinkledNode::ForcedBlue)
    }
}

/// One level of a sprinkled DAG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SprinkledLevel {
    /// The nodes at this level (original nodes first, in the original order,
    /// then any forced-blue nodes appended by the level above).
    pub nodes: Vec<SprinkledNode>,
    /// For levels above 0: the three sample indices of each **original** node
    /// (forced-blue nodes never have samples). `samples[i]` corresponds to
    /// `nodes[i]`, which is original by construction.
    pub samples: Vec<[usize; BRANCHING]>,
}

/// The result of applying the Sprinkling process to a voting-DAG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SprinkledDag {
    levels: Vec<SprinkledLevel>,
    original_leaves: usize,
    forced_blue_added: usize,
}

impl SprinkledDag {
    /// The levels, leaves first.
    pub fn levels(&self) -> &[SprinkledLevel] {
        &self.levels
    }

    /// DAG height (number of time steps).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// Number of original (non-artificial) leaves — these are the nodes that
    /// receive random colours, and there are exactly as many as in the
    /// original DAG.
    pub fn original_leaves(&self) -> usize {
        self.original_leaves
    }

    /// Total number of forced-blue nodes added across all levels.
    pub fn forced_blue_added(&self) -> usize {
        self.forced_blue_added
    }

    /// `true` when no level below the top has a repeated sample target —
    /// the defining property of the sprinkled DAG.
    pub fn is_collision_free(&self) -> bool {
        for t in 1..self.levels.len() {
            let level = &self.levels[t];
            let below_len = self.levels[t - 1].nodes.len();
            let mut seen = vec![false; below_len];
            for sample in &level.samples {
                for &idx in sample {
                    if seen[idx] {
                        return false;
                    }
                    seen[idx] = true;
                }
            }
        }
        true
    }

    /// Runs the colouring process on the sprinkled DAG.
    ///
    /// `leaf_colours` supplies the colours of the **original** leaves, in the
    /// original DAG's leaf order (forced-blue nodes ignore it).  This is the
    /// same vector used to colour the original DAG, which is what makes the
    /// coupling argument testable.
    pub fn colour(&self, leaf_colours: &[Opinion]) -> Result<SprinkledColouring> {
        if leaf_colours.len() != self.original_leaves {
            return Err(DagError::LeafColouringMismatch {
                got: leaf_colours.len(),
                expected: self.original_leaves,
            });
        }
        let mut colours: Vec<Vec<Opinion>> = Vec::with_capacity(self.levels.len());
        // Level 0: original leaves take the supplied colours; forced nodes blue.
        let mut level0 = Vec::with_capacity(self.levels[0].nodes.len());
        let mut original_seen = 0usize;
        for node in &self.levels[0].nodes {
            match node {
                SprinkledNode::Original { .. } => {
                    level0.push(leaf_colours[original_seen]);
                    original_seen += 1;
                }
                SprinkledNode::ForcedBlue => level0.push(Opinion::Blue),
            }
        }
        colours.push(level0);

        for t in 1..self.levels.len() {
            let level = &self.levels[t];
            let below = &colours[t - 1];
            let mut this = Vec::with_capacity(level.nodes.len());
            for (i, node) in level.nodes.iter().enumerate() {
                match node {
                    SprinkledNode::Original { .. } => {
                        let sample = &level.samples[i];
                        let blues = sample.iter().filter(|&&idx| below[idx].is_blue()).count();
                        this.push(if blues >= 2 {
                            Opinion::Blue
                        } else {
                            Opinion::Red
                        });
                    }
                    SprinkledNode::ForcedBlue => this.push(Opinion::Blue),
                }
            }
            colours.push(this);
        }
        Ok(SprinkledColouring { colours })
    }
}

/// Colours of every node of a sprinkled DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SprinkledColouring {
    /// `colours[t][i]` is the colour of node `i` at level `t`.
    pub colours: Vec<Vec<Opinion>>,
}

impl SprinkledColouring {
    /// The colour of the root.
    pub fn root_colour(&self) -> Opinion {
        *self
            .colours
            .last()
            .and_then(|l| l.first())
            .expect("a sprinkled DAG always has a root")
    }

    /// Number of blue nodes at level `t`.
    pub fn blue_count_at(&self, t: usize) -> usize {
        self.colours[t].iter().filter(|c| c.is_blue()).count()
    }
}

/// Applies the Sprinkling process to every level of `dag` (the paper applies
/// it from a chosen level `T′` down to 1; passing `dag.height()` as
/// `from_level` reproduces that with `T′ = T`, and smaller values leave the
/// upper levels untouched).
pub fn sprinkle(dag: &VotingDag, from_level: usize) -> Result<SprinkledDag> {
    if from_level > dag.height() {
        return Err(DagError::InvalidParameter {
            reason: format!(
                "from_level {from_level} exceeds the DAG height {}",
                dag.height()
            ),
        });
    }

    // Start with a verbatim copy of the original levels.
    let mut levels: Vec<SprinkledLevel> = dag
        .levels()
        .iter()
        .map(|l| SprinkledLevel {
            nodes: l
                .vertices
                .iter()
                .map(|&v| SprinkledNode::Original { vertex: v })
                .collect(),
            samples: l.samples.clone(),
        })
        .collect();
    let mut forced_total = 0usize;

    // Process levels from `from_level` down to 1, exactly as the paper orders
    // the reveals: nodes left to right, samples in slot order.
    for t in (1..=from_level).rev() {
        let below_original_len = dag.level(t - 1).len();
        let mut revealed = vec![false; below_original_len];
        // Indices >= below_original_len are forced-blue nodes appended below.
        let level = &mut levels[t];
        let mut new_below_nodes: Vec<SprinkledNode> = Vec::new();
        for sample in level.samples.iter_mut() {
            for slot in sample.iter_mut() {
                let idx = *slot;
                if idx < below_original_len {
                    if revealed[idx] {
                        // Collision: redirect to a fresh forced-blue node.
                        let new_idx = below_original_len + forced_total_offset(&new_below_nodes);
                        new_below_nodes.push(SprinkledNode::ForcedBlue);
                        *slot = new_idx;
                        forced_total += 1;
                    } else {
                        revealed[idx] = true;
                    }
                }
                // Samples already pointing at forced nodes cannot occur here
                // because forced nodes are only ever added to the level below
                // the one being processed.
            }
        }
        levels[t - 1].nodes.extend(new_below_nodes);
    }

    Ok(SprinkledDag {
        levels,
        original_leaves: dag.num_leaves(),
        forced_blue_added: forced_total,
    })
}

fn forced_total_offset(new_nodes: &[SprinkledNode]) -> usize {
    new_nodes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colouring::colour_dag;
    use bo3_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_leaves<R: Rng>(n: usize, p_blue: f64, rng: &mut R) -> Vec<Opinion> {
        (0..n)
            .map(|_| {
                if rng.gen::<f64>() < p_blue {
                    Opinion::Blue
                } else {
                    Opinion::Red
                }
            })
            .collect()
    }

    #[test]
    fn rejects_bad_from_level_and_bad_leaf_count() {
        let g = generators::complete(20);
        let mut rng = StdRng::seed_from_u64(0);
        let dag = VotingDag::sample(&g, 0, 3, &mut rng).unwrap();
        assert!(sprinkle(&dag, 9).is_err());
        let s = sprinkle(&dag, 3).unwrap();
        assert!(s.colour(&[Opinion::Red]).is_err());
    }

    #[test]
    fn collision_free_dag_is_unchanged() {
        let g = generators::complete(5000);
        let mut rng = StdRng::seed_from_u64(1);
        let dag = VotingDag::sample(&g, 0, 2, &mut rng).unwrap();
        assert!(dag.is_ternary_tree());
        let s = sprinkle(&dag, 2).unwrap();
        assert_eq!(s.forced_blue_added(), 0);
        assert_eq!(s.original_leaves(), dag.num_leaves());
        assert!(s.is_collision_free());
        // Node counts unchanged level by level.
        for (t, level) in s.levels().iter().enumerate() {
            assert_eq!(level.nodes.len(), dag.level(t).len());
        }
    }

    #[test]
    fn sprinkling_makes_the_dag_collision_free() {
        // Small complete graph forces heavy coalescing.
        let g = generators::complete(6);
        let mut rng = StdRng::seed_from_u64(2);
        let dag = VotingDag::sample(&g, 0, 5, &mut rng).unwrap();
        assert!(!dag.is_ternary_tree());
        let s = sprinkle(&dag, 5).unwrap();
        assert!(s.is_collision_free());
        assert!(s.forced_blue_added() > 0);
        assert_eq!(s.height(), 5);
    }

    #[test]
    fn forced_blue_nodes_are_always_blue_in_the_colouring() {
        let g = generators::complete(5);
        let mut rng = StdRng::seed_from_u64(3);
        let dag = VotingDag::sample(&g, 0, 4, &mut rng).unwrap();
        let s = sprinkle(&dag, 4).unwrap();
        let leaves = random_leaves(s.original_leaves(), 0.0, &mut rng); // all red
        let colouring = s.colour(&leaves).unwrap();
        for (t, level) in s.levels().iter().enumerate() {
            for (i, node) in level.nodes.iter().enumerate() {
                if node.is_forced_blue() {
                    assert!(colouring.colours[t][i].is_blue());
                }
            }
        }
    }

    #[test]
    fn monotone_coupling_holds_pointwise() {
        // For the same leaf colouring, every original node's colour in the
        // sprinkled DAG dominates (blue ≥ blue) its colour in the original
        // DAG — the coupling X_H ≤ X_{H'} from Section 3.
        let mut rng = StdRng::seed_from_u64(4);
        for trial in 0..30 {
            let n = 5 + (trial % 20);
            let g = generators::complete(n);
            let dag = VotingDag::sample(&g, 0, 5, &mut rng).unwrap();
            let s = sprinkle(&dag, 5).unwrap();
            let leaves = random_leaves(dag.num_leaves(), 0.4, &mut rng);
            let base = colour_dag(&dag, &leaves).unwrap();
            let sprinkled = s.colour(&leaves).unwrap();
            for t in 0..=dag.height() {
                for i in 0..dag.level(t).len() {
                    let x = base.colours[t][i].as_value();
                    let x_prime = sprinkled.colours[t][i].as_value();
                    assert!(
                        x <= x_prime,
                        "coupling violated at level {t}, node {i} (trial {trial})"
                    );
                }
            }
            // In particular the root colour dominates.
            assert!(base.root_colour().as_value() <= sprinkled.root_colour().as_value());
        }
    }

    #[test]
    fn partial_sprinkling_leaves_upper_levels_untouched() {
        let g = generators::complete(6);
        let mut rng = StdRng::seed_from_u64(5);
        let dag = VotingDag::sample(&g, 0, 6, &mut rng).unwrap();
        let t_prime = 3;
        let s = sprinkle(&dag, t_prime).unwrap();
        // Levels above t_prime keep their original samples verbatim.
        for t in (t_prime + 1)..=dag.height() {
            assert_eq!(s.levels()[t].samples, dag.level(t).samples);
            assert_eq!(s.levels()[t].nodes.len(), dag.level(t).len());
        }
        // Levels 1..=t_prime are collision-free.
        for t in 1..=t_prime {
            let level = &s.levels()[t];
            let below_len = s.levels()[t - 1].nodes.len();
            let mut seen = vec![false; below_len];
            for sample in &level.samples {
                for &idx in sample {
                    assert!(!seen[idx], "collision left at level {t}");
                    seen[idx] = true;
                }
            }
        }
    }

    #[test]
    fn figure_1_style_two_level_example() {
        // Reproduce the paper's Figure 1 situation: a 2-level DAG whose level-1
        // nodes collide on shared leaves; after sprinkling, each level-1 node
        // has three private children and the added children are forced blue.
        let g = generators::complete(4);
        let mut rng = StdRng::seed_from_u64(6);
        // Sample DAGs until one actually has a collision at level 1 (on K_4
        // this happens almost immediately).
        let dag = loop {
            let d = VotingDag::sample(&g, 0, 2, &mut rng).unwrap();
            if !d.is_ternary_tree() {
                break d;
            }
        };
        let s = sprinkle(&dag, 2).unwrap();
        assert!(s.is_collision_free());
        assert!(s.forced_blue_added() > 0);
        // Every level-1 node still has exactly three samples and the sampled
        // indices are now pairwise distinct across the whole level.
        let level1 = &s.levels()[1];
        let mut all: Vec<usize> = level1.samples.iter().flatten().copied().collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    fn blue_probability_upper_bounded_by_recursion_two() {
        // Average over DAGs on a moderately dense graph: the fraction of blue
        // roots under sprinkling must not exceed the recursion-(2) bound p_T
        // computed with the same parameters.
        let n = 400usize;
        let d = (n - 1) as f64;
        let g = generators::complete(n);
        let height = 3;
        let delta = 0.15;
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 400;
        let mut blue_roots = 0usize;
        for _ in 0..trials {
            let dag = VotingDag::sample(&g, 0, height, &mut rng).unwrap();
            let s = sprinkle(&dag, height).unwrap();
            let leaves = random_leaves(s.original_leaves(), 0.5 - delta, &mut rng);
            if s.colour(&leaves).unwrap().root_colour().is_blue() {
                blue_roots += 1;
            }
        }
        let measured = blue_roots as f64 / trials as f64;
        let bound = *bo3_theory::recursion::sprinkling_trajectory(delta, height, d)
            .p
            .last()
            .unwrap();
        // Allow Monte-Carlo noise on top of the theoretical upper bound.
        assert!(
            measured <= bound + 0.05,
            "measured {measured} exceeds recursion bound {bound}"
        );
    }
}
