//! The ternary-tree machinery of Section 4 (Lemmas 5 and 6).
//!
//! Lemma 5: in a ternary tree of `h + 1` levels, a blue root needs at least
//! `2^h` blue leaves.  Lemma 6: any voting-DAG with a leaf colouring can be
//! transformed into a ternary tree with the *same root colour* whose number
//! of blue leaves is at most `B₀ · 2^C`, where `B₀` is the number of blue
//! leaves of the DAG and `C` the number of levels involving a collision.
//!
//! [`ternary_transform`] carries out the induction of Lemma 6 without
//! materialising the (exponentially large) tree: for each node it returns the
//! node's colour, the number of blue leaves the equivalent ternary subtree
//! would have, and the subtree height — enough to check both lemmas
//! experimentally (experiment E7/E10) and to drive the Lemma 7 bound.

use bo3_dynamics::opinion::Opinion;

use crate::colouring::{colour_dag, DagColouring};
use crate::error::Result;
use crate::voting_dag::VotingDag;

/// Result of the Lemma-6 transformation at the root of a DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct TernaryTransform {
    /// Colour of the root (identical to the DAG colouring's root colour).
    pub root_colour: Opinion,
    /// Number of blue leaves of the equivalent ternary tree.
    pub blue_leaves: u128,
    /// Height `h` of the tree (same as the DAG height).
    pub height: usize,
    /// Number of blue leaves of the original DAG colouring (`B₀`).
    pub dag_blue_leaves: usize,
    /// Number of DAG levels involving at least one collision (`C`).
    pub collision_levels: usize,
    /// Number of colliding reveals at each level `t ≥ 1` (index `t − 1`).
    pub collisions_per_level: Vec<usize>,
}

impl TernaryTransform {
    /// The bound stated by Lemma 6 of the paper, `B₀ · 2^C`.
    ///
    /// **Reproduction note.** The induction in the paper's Lemma 6 does not
    /// justify this constant in case ii): when the root's three sub-DAGs share
    /// descendants, summing their transformed trees counts shared blue leaves
    /// up to three times, which `B₀ · 2^C` does not absorb (a 2-level DAG in
    /// which three children of the root all sample the same blue leaf already
    /// violates it: 6 > 2).  The transformation itself and the qualitative
    /// conclusion are fine — see [`TernaryTransform::reveal_product_bound`]
    /// for a bound the construction provably satisfies — but the literal
    /// constant is not; `EXPERIMENTS.md` records this as a finding.
    pub fn paper_lemma6_bound(&self) -> u128 {
        (self.dag_blue_leaves as u128) << self.collision_levels.min(100)
    }

    /// A bound the transformation *does* satisfy:
    /// `B₀ · Π_{t≥1} (1 + c_t)` where `c_t` is the number of colliding
    /// reveals at level `t`.  Collision-free levels contribute a factor of 1,
    /// so like the paper's bound it degrades only on levels with collisions,
    /// which is all Lemma 7 needs qualitatively.
    pub fn reveal_product_bound(&self) -> u128 {
        let mut bound = self.dag_blue_leaves as u128;
        for &c in &self.collisions_per_level {
            bound = bound.saturating_mul(1 + c as u128);
        }
        bound
    }

    /// Lemma 5's threshold `2^h`: a blue root needs at least this many blue
    /// leaves in the ternary tree.
    pub fn lemma5_threshold(&self) -> u128 {
        1u128 << self.height.min(120)
    }
}

/// Applies the Lemma-6 transformation to `dag` under the given leaf colours.
pub fn ternary_transform(dag: &VotingDag, leaf_colours: &[Opinion]) -> Result<TernaryTransform> {
    let colouring = colour_dag(dag, leaf_colours)?;
    let stats = crate::collisions::collision_stats(dag);

    // blue[t][i] = number of blue leaves of the ternary subtree equivalent to
    // node i at level t, following the induction of Lemma 6.
    let mut blue: Vec<Vec<u128>> = Vec::with_capacity(dag.levels().len());
    blue.push(
        leaf_colours
            .iter()
            .map(|c| if c.is_blue() { 1u128 } else { 0u128 })
            .collect(),
    );
    for t in 1..dag.levels().len() {
        let level = dag.level(t);
        let below_blue = &blue[t - 1];
        let below_colours = &colouring.colours[t - 1];
        let mut this = Vec::with_capacity(level.len());
        for sample in &level.samples {
            let [a, b, c] = *sample;
            let count = if a == b || a == c || b == c {
                // Case i) of Lemma 6: at least two edges share an endpoint, so
                // the node's colour is the shared child's colour and the
                // equivalent tree holds two copies of that child's subtree
                // plus a ternary tree of red leaves.
                let shared = if a == b || a == c { a } else { b };
                2 * below_blue[shared]
            } else {
                // Case ii): three disjoint children; sum their trees.
                below_blue[a] + below_blue[b] + below_blue[c]
            };
            let _ = below_colours; // colours recomputed by colour_dag already
            this.push(count);
        }
        blue.push(this);
    }

    Ok(TernaryTransform {
        root_colour: colouring.root_colour(),
        blue_leaves: blue.last().unwrap()[0],
        height: dag.height(),
        dag_blue_leaves: colouring.blue_leaves(),
        collision_levels: stats.collision_levels,
        collisions_per_level: stats.collisions_per_level,
    })
}

/// Checks Lemma 5 directly on an explicit colouring of a DAG that *is* a
/// ternary tree: returns `true` when (root blue ⇒ blue leaves ≥ 2^h).
pub fn lemma5_holds(dag: &VotingDag, colouring: &DagColouring) -> bool {
    debug_assert!(dag.is_ternary_tree());
    if colouring.root_colour().is_red() {
        return true;
    }
    (colouring.blue_leaves() as u128) >= (1u128 << dag.height().min(120))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_leaves<R: Rng>(n: usize, p_blue: f64, rng: &mut R) -> Vec<Opinion> {
        (0..n)
            .map(|_| {
                if rng.gen::<f64>() < p_blue {
                    Opinion::Blue
                } else {
                    Opinion::Red
                }
            })
            .collect()
    }

    #[test]
    fn transform_preserves_the_root_colour() {
        let mut rng = StdRng::seed_from_u64(0);
        for trial in 0..40 {
            let n = 4 + trial % 30;
            let g = generators::complete(n);
            let dag = VotingDag::sample(&g, 0, 4, &mut rng).unwrap();
            let leaves = random_leaves(dag.num_leaves(), 0.45, &mut rng);
            let base = colour_dag(&dag, &leaves).unwrap();
            let transform = ternary_transform(&dag, &leaves).unwrap();
            assert_eq!(transform.root_colour, base.root_colour(), "trial {trial}");
        }
    }

    #[test]
    fn reveal_product_bound_holds_on_random_dags() {
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..40 {
            let n = 4 + trial % 25;
            let g = generators::complete(n);
            let dag = VotingDag::sample(&g, 0, 5, &mut rng).unwrap();
            let leaves = random_leaves(dag.num_leaves(), 0.4, &mut rng);
            let t = ternary_transform(&dag, &leaves).unwrap();
            assert!(
                t.blue_leaves <= t.reveal_product_bound(),
                "trial {trial}: {} > bound {}",
                t.blue_leaves,
                t.reveal_product_bound()
            );
        }
    }

    #[test]
    fn paper_lemma6_constant_is_violated_on_heavily_coalescing_dags() {
        // Reproduction finding: the literal bound B₀·2^C of Lemma 6 does not
        // hold for the construction described in its proof once siblings
        // share descendants (case ii sums overlapping subtrees).  Scan random
        // DAGs on a tiny complete graph and record at least one violation,
        // while the corrected reveal-product bound always holds.
        let mut rng = StdRng::seed_from_u64(42);
        let mut violated = false;
        for _ in 0..300 {
            let g = generators::complete(5);
            let dag = VotingDag::sample(&g, 0, 4, &mut rng).unwrap();
            let leaves = random_leaves(dag.num_leaves(), 0.5, &mut rng);
            let t = ternary_transform(&dag, &leaves).unwrap();
            assert!(t.blue_leaves <= t.reveal_product_bound());
            if t.blue_leaves > t.paper_lemma6_bound() {
                violated = true;
            }
        }
        assert!(
            violated,
            "expected at least one violation of the paper's literal Lemma 6 constant"
        );
    }

    #[test]
    fn lemma5_holds_via_the_transform_on_any_dag() {
        // Whenever the transformed root is blue, the equivalent ternary tree
        // must have at least 2^h blue leaves (Lemma 5 applied to the tree the
        // transform would build).
        let mut rng = StdRng::seed_from_u64(2);
        let mut blue_roots_seen = 0usize;
        for _ in 0..300 {
            let g = generators::complete(6);
            let dag = VotingDag::sample(&g, 0, 3, &mut rng).unwrap();
            let leaves = random_leaves(dag.num_leaves(), 0.6, &mut rng);
            let t = ternary_transform(&dag, &leaves).unwrap();
            if t.root_colour.is_blue() {
                blue_roots_seen += 1;
                assert!(
                    t.blue_leaves >= t.lemma5_threshold(),
                    "blue root with only {} blue tree leaves (threshold {})",
                    t.blue_leaves,
                    t.lemma5_threshold()
                );
            }
        }
        assert!(blue_roots_seen > 0, "test never exercised a blue root");
    }

    #[test]
    fn lemma5_direct_check_on_ternary_trees() {
        let g = generators::complete(5000);
        let mut rng = StdRng::seed_from_u64(3);
        let mut checked_blue = false;
        for _ in 0..200 {
            let dag = VotingDag::sample(&g, 0, 3, &mut rng).unwrap();
            if !dag.is_ternary_tree() {
                continue;
            }
            let leaves = random_leaves(dag.num_leaves(), 0.7, &mut rng);
            let colouring = colour_dag(&dag, &leaves).unwrap();
            assert!(lemma5_holds(&dag, &colouring));
            checked_blue |= colouring.root_colour().is_blue();
        }
        assert!(checked_blue, "no blue root was ever checked");
    }

    #[test]
    fn collision_free_dag_transform_counts_exact_leaves() {
        // On a ternary tree the transform's blue-leaf count equals the number
        // of blue leaves of the DAG itself (no doubling happens).
        let g = generators::complete(5000);
        let mut rng = StdRng::seed_from_u64(4);
        let dag = VotingDag::sample(&g, 0, 2, &mut rng).unwrap();
        assert!(dag.is_ternary_tree());
        let leaves = random_leaves(dag.num_leaves(), 0.5, &mut rng);
        let t = ternary_transform(&dag, &leaves).unwrap();
        assert_eq!(t.collision_levels, 0);
        assert_eq!(t.blue_leaves, t.dag_blue_leaves as u128);
    }

    #[test]
    fn all_red_leaves_give_zero_blue_everywhere() {
        let g = generators::complete(10);
        let mut rng = StdRng::seed_from_u64(5);
        let dag = VotingDag::sample(&g, 0, 4, &mut rng).unwrap();
        let leaves = vec![Opinion::Red; dag.num_leaves()];
        let t = ternary_transform(&dag, &leaves).unwrap();
        assert_eq!(t.blue_leaves, 0);
        assert_eq!(t.dag_blue_leaves, 0);
        assert_eq!(t.root_colour, Opinion::Red);
        assert_eq!(t.paper_lemma6_bound(), 0);
        assert_eq!(t.reveal_product_bound(), 0);
    }
}
