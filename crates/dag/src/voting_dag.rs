//! The random voting-DAG of Section 2.
//!
//! The opinion `ξ_T(v₀)` is determined by the opinions at time `T − 1` of
//! three random neighbours of `v₀`, which are in turn determined by opinions
//! at `T − 2`, and so on down to time 0.  Unrolling this recursion produces a
//! layered DAG `H` whose level `t` contains the pair `(v, t)` for every graph
//! vertex `v` queried at time `t`; each non-leaf node stores the three
//! (with-replacement) samples that determine its opinion.
//!
//! [`VotingDag::sample`] realises `H` for a given root and height exactly as
//! the paper describes — top level down, deduplicating queried vertices
//! within a level — and [`crate::colouring`] then reproduces the colouring
//! process `X_H`.

use std::collections::HashMap;

use rand::Rng;
use serde::{Deserialize, Serialize};

use bo3_graph::{CsrGraph, VertexId};

use crate::error::{DagError, Result};

/// Branching factor of the Best-of-Three voting-DAG.
pub const BRANCHING: usize = 3;

/// One level of a voting-DAG.
///
/// `vertices[i]` is the graph vertex of node `i` at this level;
/// `samples[i]` (absent at level 0) are the indices **into the level below**
/// of the three with-replacement samples that determine node `i`'s opinion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagLevel {
    /// Graph vertex associated with each node of this level.
    pub vertices: Vec<VertexId>,
    /// For non-leaf levels, the three sampled child indices of each node.
    pub samples: Vec<[usize; BRANCHING]>,
}

impl DagLevel {
    /// Number of nodes at this level.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when the level has no nodes (never the case in a sampled DAG).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// A realised voting-DAG of `height + 1` levels (level `height` is the root,
/// level 0 the leaves).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VotingDag {
    root_vertex: VertexId,
    /// `levels[0]` are the leaves (time 0); `levels[height]` is the root.
    levels: Vec<DagLevel>,
}

impl VotingDag {
    /// Samples the random voting-DAG `H_{v₀}` of the given `height` (number
    /// of time steps `T`; the DAG has `height + 1` levels).
    pub fn sample<R: Rng + ?Sized>(
        graph: &CsrGraph,
        root: VertexId,
        height: usize,
        rng: &mut R,
    ) -> Result<Self> {
        let n = graph.num_vertices();
        if root >= n {
            return Err(DagError::RootOutOfRange { root, n });
        }

        let mut levels: Vec<DagLevel> = Vec::with_capacity(height + 1);
        // Build from the top (root) downwards, then reverse.
        let mut current = DagLevel {
            vertices: vec![root],
            samples: Vec::new(),
        };

        for _ in 0..height {
            let mut below_vertices: Vec<VertexId> = Vec::new();
            let mut below_index: HashMap<VertexId, usize> = HashMap::new();
            let mut samples: Vec<[usize; BRANCHING]> = Vec::with_capacity(current.len());

            for &v in &current.vertices {
                let deg = graph.degree(v);
                if deg == 0 {
                    return Err(DagError::InvalidGraph {
                        reason: format!("vertex {v} has no neighbours to sample"),
                    });
                }
                let mut sample = [0usize; BRANCHING];
                for slot in &mut sample {
                    let w = graph.neighbour_at(v, rng.gen_range(0..deg));
                    let idx = *below_index.entry(w).or_insert_with(|| {
                        below_vertices.push(w);
                        below_vertices.len() - 1
                    });
                    *slot = idx;
                }
                samples.push(sample);
            }

            // `current` becomes a finished internal level; its samples refer to
            // the level we just created below it.
            levels.push(DagLevel {
                vertices: std::mem::take(&mut current.vertices),
                samples,
            });
            current = DagLevel {
                vertices: below_vertices,
                samples: Vec::new(),
            };
        }
        // `current` is now level 0 (the leaves).
        levels.push(current);
        levels.reverse();

        Ok(VotingDag {
            root_vertex: root,
            levels,
        })
    }

    /// The graph vertex at the root.
    pub fn root_vertex(&self) -> VertexId {
        self.root_vertex
    }

    /// The number of time steps `T` the DAG spans (levels − 1).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// All levels, leaves first.
    pub fn levels(&self) -> &[DagLevel] {
        &self.levels
    }

    /// The level at index `t` (0 = leaves).
    pub fn level(&self, t: usize) -> &DagLevel {
        &self.levels[t]
    }

    /// Number of leaves (nodes at level 0).
    pub fn num_leaves(&self) -> usize {
        self.levels[0].len()
    }

    /// Total number of nodes across all levels.
    pub fn num_nodes(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// `true` when every level has no repeated samples — i.e. the DAG is a
    /// ternary tree (every node at level `t < height` is referenced by
    /// exactly one sample slot).
    pub fn is_ternary_tree(&self) -> bool {
        for t in 1..self.levels.len() {
            let level = &self.levels[t];
            let below_len = self.levels[t - 1].len();
            let mut seen = vec![false; below_len];
            for sample in &level.samples {
                for &idx in sample {
                    if seen[idx] {
                        return false;
                    }
                    seen[idx] = true;
                }
            }
        }
        true
    }

    /// The number of nodes the idealised ternary tree would have at each
    /// level; useful to quantify how much coalescing happened.
    pub fn ternary_reference_sizes(&self) -> Vec<usize> {
        let h = self.height();
        (0..=h).map(|t| BRANCHING.pow((h - t) as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_out_of_range_root() {
        let g = generators::complete(5);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            VotingDag::sample(&g, 9, 3, &mut rng),
            Err(DagError::RootOutOfRange { root: 9, n: 5 })
        ));
    }

    #[test]
    fn zero_height_dag_is_just_the_root() {
        let g = generators::complete(5);
        let mut rng = StdRng::seed_from_u64(1);
        let dag = VotingDag::sample(&g, 2, 0, &mut rng).unwrap();
        assert_eq!(dag.height(), 0);
        assert_eq!(dag.num_leaves(), 1);
        assert_eq!(dag.num_nodes(), 1);
        assert_eq!(dag.level(0).vertices, vec![2]);
        assert!(dag.is_ternary_tree());
    }

    #[test]
    fn structure_invariants_hold_on_random_dags() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::erdos_renyi_gnp(200, 0.2, &mut rng).unwrap();
        let dag = VotingDag::sample(&g, 7, 5, &mut rng).unwrap();
        assert_eq!(dag.root_vertex(), 7);
        assert_eq!(dag.height(), 5);
        assert_eq!(dag.levels().len(), 6);
        // The root level has exactly one node with three samples.
        let root_level = dag.level(5);
        assert_eq!(root_level.len(), 1);
        assert_eq!(root_level.samples.len(), 1);
        // Leaves carry no samples.
        assert!(dag.level(0).samples.is_empty());
        // Every sample index points inside the level below; every sampled
        // vertex is a graph neighbour of the sampling vertex.
        for t in 1..=5 {
            let level = dag.level(t);
            let below = dag.level(t - 1);
            assert_eq!(level.samples.len(), level.len());
            for (i, sample) in level.samples.iter().enumerate() {
                let v = level.vertices[i];
                for &idx in sample {
                    assert!(idx < below.len());
                    assert!(
                        g.has_edge(v, below.vertices[idx]),
                        "sampled a non-neighbour"
                    );
                }
            }
            // Level sizes never exceed the ternary reference.
            assert!(level.len() <= dag.ternary_reference_sizes()[t].max(1));
        }
        // Vertices within a level are distinct (deduplication worked).
        for t in 0..=5 {
            let mut vs = dag.level(t).vertices.clone();
            vs.sort_unstable();
            vs.dedup();
            assert_eq!(vs.len(), dag.level(t).len());
        }
    }

    #[test]
    fn level_sizes_bounded_by_ternary_growth() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::complete(500);
        let dag = VotingDag::sample(&g, 0, 6, &mut rng).unwrap();
        let reference = dag.ternary_reference_sizes();
        for (t, level) in dag.levels().iter().enumerate() {
            assert!(
                level.len() <= reference[t],
                "level {t} has {} nodes, ternary bound {}",
                level.len(),
                reference[t]
            );
        }
        assert_eq!(reference[6], 1);
        assert_eq!(reference[0], 729);
    }

    #[test]
    fn small_graphs_force_heavy_coalescing() {
        // On a triangle only 3 distinct vertices exist, so every level has at
        // most 3 nodes no matter the height.
        let g = generators::complete(3);
        let mut rng = StdRng::seed_from_u64(4);
        let dag = VotingDag::sample(&g, 0, 8, &mut rng).unwrap();
        for level in dag.levels() {
            assert!(level.len() <= 3);
        }
        assert!(!dag.is_ternary_tree());
    }

    #[test]
    fn dense_graphs_usually_give_ternary_trees_at_small_height() {
        // With n = 5000 and height 2 at most 13 vertices are touched, so the
        // probability of any coalescence is tiny; with a fixed seed this is
        // deterministic.
        let g = generators::complete(5000);
        let mut rng = StdRng::seed_from_u64(5);
        let dag = VotingDag::sample(&g, 42, 2, &mut rng).unwrap();
        assert!(dag.is_ternary_tree());
        assert_eq!(dag.num_leaves(), 9);
        assert_eq!(dag.num_nodes(), 13);
    }

    #[test]
    fn same_seed_reproduces_the_same_dag() {
        let g = generators::complete(100);
        let dag1 = VotingDag::sample(&g, 3, 4, &mut StdRng::seed_from_u64(9)).unwrap();
        let dag2 = VotingDag::sample(&g, 3, 4, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(dag1, dag2);
        let dag3 = VotingDag::sample(&g, 3, 4, &mut StdRng::seed_from_u64(10)).unwrap();
        assert_ne!(dag1, dag3);
    }

    #[test]
    fn cobra_view_remark_levels_shrink_towards_root() {
        // Remark 2: level T−t of H is the occupied set of a COBRA walk after
        // t steps; the root level always has exactly one node and leaves the
        // most.
        let g = generators::complete(1000);
        let mut rng = StdRng::seed_from_u64(6);
        let dag = VotingDag::sample(&g, 1, 5, &mut rng).unwrap();
        assert_eq!(dag.level(dag.height()).len(), 1);
        assert!(dag.num_leaves() >= dag.level(dag.height()).len());
    }
}
