//! Composable adversaries: zealots, Byzantine reporters, message drop and
//! block partitions layered over the engine's update step.
//!
//! The paper's guarantees assume every vertex is honest and every sampled
//! neighbour answers.  This module asks what happens when they don't, in
//! the shape of the distributed-voting fault literature (cf. Cooper–
//! Elsässer–Radzik on two-choice voting with adversarial vertices):
//!
//! * **Zealots** ([`AdversarySpec::Zealots`] / [`AdversarySpec::ZealotIds`])
//!   — a deterministic vertex set that never updates.  Zealots keep the
//!   opinion the initial condition gave them, consume no RNG draws, and are
//!   still sampled (honestly) by everyone else.
//! * **Byzantine reporters** ([`AdversarySpec::Byzantine`]) — vertices whose
//!   opinion reads *inverted* whenever another vertex samples them.  Their
//!   own stored opinion, their own updates and their own self-reads are
//!   honest; only outbound reports lie.
//! * **Message drop** ([`AdversarySpec::Drop`]) — every neighbour sample is
//!   independently lost with probability `q`; a lost sample falls back to
//!   the reader's **own current opinion** (the reader counts itself where
//!   the absent answer would have gone).
//! * **Block partitions** ([`AdversarySpec::Partition`]) — for rounds
//!   `[from_round, until_round)` every *inter-block* message is severed and
//!   treated exactly like a dropped sample (self-opinion fallback); at
//!   `until_round` the partition heals and messages flow again.  This is
//!   the `set_drop_rate` / `partition_network` / `heal_partitions` shape of
//!   simulation engines for distributed consensus, expressed as data.
//!
//! # Partition semantics on hash-defined edges
//!
//! A partition does **not** rewrite the topology — on an implicit,
//! hash-defined family ([`bo3_graph::ImplicitSbm`], [`bo3_graph::ImplicitGnp`])
//! there is no edge list to cut, and resampling "within the block" would
//! both reweight the neighbour distribution and change the RNG stream
//! length.  Instead the edge is severed at the *message* layer: the sampled
//! neighbour is drawn exactly as in the honest run, and if it lands in a
//! different block while the partition is active, the answer is lost
//! (self-opinion fallback, counted in
//! [`AdversaryCounters::dropped_samples`]).  Blocks are the `blocks`
//! contiguous, equal-length ranges of the vertex id space — on
//! [`bo3_graph::ImplicitSbm`] vertices are numbered block by block, so a
//! partition with the SBM's own block count severs exactly the `p_out`
//! edges.
//!
//! # RNG-stream contract
//!
//! Adversarial randomness never touches the kernel streams.  The engine's
//! per-round update draws (neighbour samples, tie coins) come from the same
//! `(master_seed, round, chunk)` streams as the honest run — see
//! [`crate::kernel::kernel_chunk_rng`] — while the adversary draws its drop
//! coins from its **own** stream per work unit,
//! `(master_seed ⊕ stream_seed ⊕ `[`ADVERSARY_STREAM_SALT`]`, round, chunk)`,
//! one `u64` per neighbour sample whenever `q > 0` (and none at `q = 0`).
//! Zealot and Byzantine membership is not random at run time at all: a
//! fractional set is the deterministic hash-threshold set
//! `{v : h(seed, v) < fraction·2⁶⁴}` — seed-derived, so it exists on
//! implicit graphs without materialising anything.  Consequences:
//!
//! * adversarial runs are **seq == parallel bit-identical**: both the
//!   kernel stream and the adversary stream are pure functions of
//!   `(seed, round, chunk)`, independent of which thread runs the chunk;
//! * a zero-strength adversary (`Zealots { fraction: 0.0 }`,
//!   `Drop { q: 0.0 }`, an empty byzantine set, a healed partition) is
//!   **bit-identical to the unwrapped engine**: the membership sets are
//!   empty, `q = 0` draws no coins, and the kernel stream is consumed
//!   sample-for-sample as in the honest kernels;
//! * with **no adversary configured the engine never enters this module**
//!   — the honest kernels run unchanged, so the pinned determinism and
//!   kernel-equivalence goldens cannot move.
//!
//! Under the asynchronous schedule the adversary stream for round `t` is
//! the single `(…, t, `[`crate::engine::ASYNC_ROUND_CHUNK`]`)` stream,
//! mirroring the kernel stream's layout (asynchronous rounds are sequential
//! by definition — see [`crate::schedule`]).
//!
//! ```
//! use bo3_dynamics::prelude::*;
//! use bo3_graph::Complete;
//!
//! let n = 2_000;
//! let adversary = Adversary::build(
//!     &[
//!         AdversarySpec::Zealots { fraction: 0.05 },
//!         AdversarySpec::Drop { q: 0.1 },
//!     ],
//!     n,
//!     7,
//! )
//! .unwrap();
//! let engine = Engine::new(Complete::new(n).unwrap())
//!     .unwrap()
//!     .with_stopping(StoppingCondition::fixed_rounds(8))
//!     .with_adversary(adversary);
//! let result = engine
//!     .run_seeded_kind(ProtocolKind::BestOfThree, Configuration::all_red(n), 42)
//!     .unwrap();
//! let counters = result.adversary.unwrap();
//! assert!(counters.zealots > 0);
//! assert!(counters.dropped_samples > 0);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use rand::RngCore;
use serde::{Deserialize, Serialize};

use bo3_graph::{Complete, CsrTopology, Topology};

use crate::error::{DynamicsError, Result};
use crate::kernel::{kernel_chunk_rng, KernelRng, PackedSnapshot, ProtocolKind};
use crate::opinion::Opinion;
use crate::protocol::{resolve_majority, TieRule};

/// Salt separating the adversary's drop-coin streams from the kernel
/// streams — see the module docs for the full RNG-stream contract.
pub const ADVERSARY_STREAM_SALT: u64 = 0xAD5E_12A1_7B01_5EED;

/// Salt separating the zealot membership hash from the Byzantine one, so
/// the two fractional sets drawn from one adversary seed are independent.
const ZEALOT_MEMBER_SALT: u64 = 0x5EA1_0751_1DEA_D007;

/// See [`ZEALOT_MEMBER_SALT`].
const BYZANTINE_MEMBER_SALT: u64 = 0xB12A_4711_FA11_E12E;

/// One serialisable adversarial mechanism.  A scenario composes a **list**
/// of these (see [`Adversary::build`]); each variant is independent and
/// they stack — e.g. zealots plus message drop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdversarySpec {
    /// A seed-derived hash-threshold set of vertices (expected size
    /// `fraction · n`) that never updates.
    Zealots {
        /// Expected fraction of zealot vertices, in `[0, 1]`.
        fraction: f64,
    },
    /// An explicit list of zealot vertex ids (for scripted scenarios where
    /// *which* vertices hold out matters, e.g. a frozen-blue prefix).
    ZealotIds {
        /// The zealot vertex ids (must be `< n`; duplicates are harmless).
        vertices: Vec<usize>,
    },
    /// A seed-derived hash-threshold set of vertices whose opinion reads
    /// inverted when sampled by others.
    Byzantine {
        /// Expected fraction of Byzantine vertices, in `[0, 1]`.
        fraction: f64,
    },
    /// Independent per-sample message loss with self-opinion fallback.
    Drop {
        /// Probability that any one neighbour sample is dropped, in `[0, 1]`.
        q: f64,
    },
    /// Sever inter-block messages for rounds `[from_round, until_round)`,
    /// then heal — see the module docs for the semantics on hash-defined
    /// edges.
    Partition {
        /// First round (0-based) the partition is active.
        from_round: u64,
        /// First round the partition is healed again (exclusive bound).
        until_round: u64,
        /// Number of contiguous, equal-length vertex blocks (`≥ 2`).
        blocks: usize,
    },
}

impl AdversarySpec {
    /// Checks the variant's own parameter constraints (membership fractions
    /// and drop probabilities in `[0, 1]`, non-empty partition windows with
    /// at least two blocks).  Vertex-id bounds are checked against `n` by
    /// [`Adversary::build`].
    pub fn validate(&self) -> Result<()> {
        let bad = |reason: String| Err(DynamicsError::InvalidParameter { reason });
        match *self {
            AdversarySpec::Zealots { fraction } | AdversarySpec::Byzantine { fraction } => {
                if !(0.0..=1.0).contains(&fraction) {
                    return bad(format!(
                        "adversary membership fraction must be in [0, 1], got {fraction}"
                    ));
                }
            }
            AdversarySpec::ZealotIds { .. } => {}
            AdversarySpec::Drop { q } => {
                if !(0.0..=1.0).contains(&q) {
                    return bad(format!("drop probability must be in [0, 1], got {q}"));
                }
            }
            AdversarySpec::Partition {
                from_round,
                until_round,
                blocks,
            } => {
                if from_round >= until_round {
                    return bad(format!(
                        "partition window [{from_round}, {until_round}) is empty"
                    ));
                }
                if blocks < 2 {
                    return bad(format!("partition needs at least 2 blocks, got {blocks}"));
                }
            }
        }
        Ok(())
    }

    /// Short label for reports, mirroring the registry spellings.
    pub fn label(&self) -> String {
        match self {
            AdversarySpec::Zealots { fraction } => format!("zealots:{fraction}"),
            AdversarySpec::ZealotIds { vertices } => format!("zealot-ids:{}", vertices.len()),
            AdversarySpec::Byzantine { fraction } => format!("byzantine:{fraction}"),
            AdversarySpec::Drop { q } => format!("drop:{q}"),
            AdversarySpec::Partition {
                from_round,
                until_round,
                ..
            } => format!("partition:{from_round}:{until_round}"),
        }
    }
}

/// Typed counters describing what the adversary actually did during a run —
/// surfaced on [`crate::engine::RunResult`] and aggregated across replicas
/// by the Monte-Carlo layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdversaryCounters {
    /// Number of zealot vertices (exact size of the frozen set).
    pub zealots: usize,
    /// Number of Byzantine reporter vertices.
    pub byzantine: usize,
    /// Neighbour samples lost to message drop **or** an active partition
    /// (each fell back to the reader's own opinion).
    pub dropped_samples: u64,
    /// Number of executed rounds during which a partition was active.
    pub partition_rounds: u64,
}

impl AdversaryCounters {
    /// Merges another replica's counters into this one: membership sizes
    /// are per-run constants (kept via `max`), event counts accumulate.
    pub fn merge(&mut self, other: &AdversaryCounters) {
        self.zealots = self.zealots.max(other.zealots);
        self.byzantine = self.byzantine.max(other.byzantine);
        self.dropped_samples += other.dropped_samples;
        self.partition_rounds += other.partition_rounds;
    }
}

/// SplitMix64 finaliser over `(salt, v)` — the deterministic membership
/// hash behind fractional zealot/Byzantine sets.
#[inline]
fn member_hash(salt: u64, v: usize) -> u64 {
    let mut z = salt ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a probability to the `u64`-draw acceptance threshold, exactly like
/// the graph crate's hash-defined edge tests: accept iff `draw < p · 2⁶⁴`.
#[inline]
fn probability_threshold(p: f64) -> u128 {
    ((p * (u64::MAX as f64 + 1.0)) as u128).min(1u128 << 64)
}

/// A deterministic vertex set: a hash-threshold family, an explicit bitset,
/// or the union of both (when fractional and id-list specs compose).
#[derive(Debug, Clone, Default)]
struct VertexSet {
    salt: u64,
    threshold: u128,
    explicit: Option<Vec<u64>>,
    count: usize,
}

impl VertexSet {
    fn build(n: usize, salt: u64, fraction: f64, ids: &[usize]) -> Result<VertexSet> {
        let explicit = if ids.is_empty() {
            None
        } else {
            let mut words = vec![0u64; n.div_ceil(64)];
            for &v in ids {
                if v >= n {
                    return Err(DynamicsError::InvalidParameter {
                        reason: format!("zealot id {v} out of range for n = {n}"),
                    });
                }
                words[v >> 6] |= 1u64 << (v & 63);
            }
            Some(words)
        };
        let mut set = VertexSet {
            salt,
            threshold: probability_threshold(fraction),
            explicit,
            count: 0,
        };
        set.count = if set.threshold == 0 {
            set.explicit
                .as_ref()
                .map_or(0, |w| w.iter().map(|x| x.count_ones() as usize).sum())
        } else {
            (0..n).filter(|&v| set.contains(v)).count()
        };
        Ok(set)
    }

    #[inline]
    fn contains(&self, v: usize) -> bool {
        (self.threshold != 0 && (member_hash(self.salt, v) as u128) < self.threshold)
            || self
                .explicit
                .as_ref()
                .is_some_and(|w| (w[v >> 6] >> (v & 63)) & 1 == 1)
    }
}

/// One partition window: rounds `[from, until)` with `block_size`-wide
/// contiguous vertex blocks.
#[derive(Debug, Clone, Copy)]
struct PartitionWindow {
    from: u64,
    until: u64,
    block_size: usize,
}

impl PartitionWindow {
    #[inline]
    fn active(&self, round: u64) -> bool {
        round >= self.from && round < self.until
    }

    #[inline]
    fn severs(&self, round: u64, u: usize, w: usize) -> bool {
        self.active(round) && u / self.block_size != w / self.block_size
    }
}

/// The runtime adversary: a compiled, topology-sized composition of
/// [`AdversarySpec`]s, attached to an engine via
/// [`crate::engine::Engine::with_adversary`].
///
/// Membership sets are fixed at build time from `seed` (the *membership
/// seed*); drop coins come from per-`(round, chunk)` streams derived from
/// the *stream seed* (defaults to `seed`, override with
/// [`Adversary::with_stream_seed`] to vary coins across replicas while the
/// corrupted vertex set stays put).  See the module docs for the full
/// RNG-stream contract.
#[derive(Debug, Clone)]
pub struct Adversary {
    n: usize,
    stream_seed: u64,
    zealots: VertexSet,
    byzantine: VertexSet,
    drop_threshold: u128,
    partitions: Vec<PartitionWindow>,
}

impl Adversary {
    /// Compiles a list of specs against an `n`-vertex topology.  Multiple
    /// specs of the same mechanism compose: fractional sets take the
    /// largest fraction, id lists union, drop probabilities combine as
    /// independent losses (`1 − ∏(1 − qᵢ)`), and partition windows all
    /// apply.  Fails with a typed error on out-of-range parameters.
    pub fn build(specs: &[AdversarySpec], n: usize, seed: u64) -> Result<Adversary> {
        if n == 0 {
            return Err(DynamicsError::InvalidParameter {
                reason: "adversary needs a non-empty topology".into(),
            });
        }
        let mut zealot_fraction = 0.0f64;
        let mut zealot_ids: Vec<usize> = Vec::new();
        let mut byzantine_fraction = 0.0f64;
        let mut keep = 1.0f64;
        let mut partitions = Vec::new();
        for spec in specs {
            spec.validate()?;
            match spec {
                AdversarySpec::Zealots { fraction } => {
                    zealot_fraction = zealot_fraction.max(*fraction);
                }
                AdversarySpec::ZealotIds { vertices } => zealot_ids.extend(vertices),
                AdversarySpec::Byzantine { fraction } => {
                    byzantine_fraction = byzantine_fraction.max(*fraction);
                }
                AdversarySpec::Drop { q } => keep *= 1.0 - q,
                AdversarySpec::Partition {
                    from_round,
                    until_round,
                    blocks,
                } => partitions.push(PartitionWindow {
                    from: *from_round,
                    until: *until_round,
                    block_size: n.div_ceil(*blocks),
                }),
            }
        }
        Ok(Adversary {
            n,
            stream_seed: seed,
            zealots: VertexSet::build(n, seed ^ ZEALOT_MEMBER_SALT, zealot_fraction, &zealot_ids)?,
            byzantine: VertexSet::build(n, seed ^ BYZANTINE_MEMBER_SALT, byzantine_fraction, &[])?,
            drop_threshold: probability_threshold(1.0 - keep),
            partitions,
        })
    }

    /// Replaces the stream seed feeding the drop-coin streams, leaving the
    /// seed-derived membership sets untouched.
    pub fn with_stream_seed(mut self, stream_seed: u64) -> Self {
        self.stream_seed = stream_seed;
        self
    }

    /// Number of vertices this adversary was compiled for.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `true` when vertex `v` is a zealot (never updates).
    #[inline]
    pub fn is_zealot(&self, v: usize) -> bool {
        self.zealots.contains(v)
    }

    /// `true` when vertex `v` reports its opinion inverted.
    #[inline]
    pub fn is_byzantine(&self, v: usize) -> bool {
        self.byzantine.contains(v)
    }

    /// Exact size of the zealot set.
    pub fn zealot_count(&self) -> usize {
        self.zealots.count
    }

    /// Exact size of the Byzantine set.
    pub fn byzantine_count(&self) -> usize {
        self.byzantine.count
    }

    /// `true` when some partition window is active in `round`.
    pub fn partition_active(&self, round: u64) -> bool {
        self.partitions.iter().any(|p| p.active(round))
    }

    /// The adversary's drop-coin stream for one `(round, chunk)` work unit
    /// — disjoint from the kernel streams by [`ADVERSARY_STREAM_SALT`].
    #[inline]
    pub(crate) fn round_rng(&self, master_seed: u64, round: u64, chunk: u64) -> KernelRng {
        kernel_chunk_rng(
            master_seed ^ self.stream_seed ^ ADVERSARY_STREAM_SALT,
            round,
            chunk,
        )
    }

    /// Folds a finished run's tallies into typed counters.
    pub(crate) fn counters(&self, rounds: usize, dropped_samples: u64) -> AdversaryCounters {
        let executed = rounds as u64;
        AdversaryCounters {
            zealots: self.zealot_count(),
            byzantine: self.byzantine_count(),
            dropped_samples,
            partition_rounds: self
                .partitions
                .iter()
                .map(|p| p.until.min(executed).saturating_sub(p.from.min(executed)))
                .sum(),
        }
    }

    /// One drop coin: draws exactly one `u64` from the adversary stream
    /// when `q > 0`, and nothing at all when `q = 0`.
    #[inline(always)]
    fn sample_dropped<A: RngCore + ?Sized>(&self, adv_rng: &mut A) -> bool {
        self.drop_threshold != 0 && (adv_rng.next_u64() as u128) < self.drop_threshold
    }

    /// `true` when an active partition severs the `u → w` message.
    #[inline(always)]
    fn severed(&self, round: u64, u: usize, w: usize) -> bool {
        self.partitions.iter().any(|p| p.severs(round, u, w))
    }

    /// One adversarial neighbour read for vertex `v`: samples a neighbour
    /// from the **kernel** stream exactly like the honest kernels (one
    /// `next_u64`), then applies drop, partition and Byzantine inversion.
    /// Returns the colour `v` ends up counting.
    ///
    /// (The arity mirrors the kernel call sites: topology, snapshot, the two
    /// RNG streams and the drop counter are all per-chunk state.)
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn read_sample<T: Topology, R: RngCore + ?Sized, A: RngCore + ?Sized>(
        &self,
        topo: &T,
        snap: &PackedSnapshot,
        v: usize,
        round: u64,
        rng: &mut R,
        adv_rng: &mut A,
        dropped: &mut u64,
    ) -> bool {
        let w = topo.sample_neighbour(v, rng);
        if self.sample_dropped(adv_rng) || self.severed(round, v, w) {
            *dropped += 1;
            return snap.is_blue(v);
        }
        snap.is_blue(w) ^ self.is_byzantine(w)
    }

    /// One adversarial full-neighbourhood read (the local-majority walk):
    /// every neighbour report is independently subject to drop, partition
    /// severing and Byzantine inversion.  Returns `(blues, degree)`.
    #[inline]
    fn read_neighbourhood<T: Topology, A: RngCore + ?Sized>(
        &self,
        topo: &T,
        snap: &PackedSnapshot,
        v: usize,
        round: u64,
        adv_rng: &mut A,
        dropped: &mut u64,
    ) -> (usize, usize) {
        let mut blues = 0usize;
        let mut deg = 0usize;
        topo.for_each_neighbour(v, |w| {
            deg += 1;
            if self.sample_dropped(adv_rng) || self.severed(round, v, w) {
                *dropped += 1;
                blues += snap.is_blue(v) as usize;
            } else {
                blues += (snap.is_blue(w) ^ self.is_byzantine(w)) as usize;
            }
        });
        (blues, deg)
    }
}

/// The number of neighbour samples and the tie rule `kind` resolves with —
/// `resolve_majority` over these is decision-identical to the honest
/// kernels (odd sample counts and `KeepOwn` never reach the coin, so the
/// kernel RNG stream also matches draw-for-draw).
#[inline]
fn samples_and_tie(kind: ProtocolKind) -> (usize, TieRule) {
    match kind {
        ProtocolKind::Voter => (1, TieRule::KeepOwn),
        ProtocolKind::BestOfTwo(tie_rule) => (2, tie_rule),
        ProtocolKind::BestOfThree => (3, TieRule::KeepOwn),
        ProtocolKind::BestOfK { k, tie_rule } => (k, tie_rule),
        ProtocolKind::LocalMajority(_) => unreachable!("local majority has no sample count"),
    }
}

/// The adversarial synchronous chunk kernel on any [`Topology`]: the
/// honest sampled kernel with zealot freezing, Byzantine read inversion and
/// drop/partition fallbacks layered in.  Kernel RNG consumption matches the
/// honest kernels sample-for-sample for non-zealot vertices (zealots draw
/// nothing); drop coins come from `adv_rng` only.
#[allow(clippy::too_many_arguments)]
fn update_chunk_adversarial<T: Topology, R: RngCore + ?Sized, A: RngCore + ?Sized>(
    adv: &Adversary,
    kind: ProtocolKind,
    topo: &T,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    round: u64,
    rng: &mut R,
    adv_rng: &mut A,
    dropped_total: &AtomicU64,
) {
    let mut dropped = 0u64;
    if let ProtocolKind::LocalMajority(tie_rule) = kind {
        for (i, slot) in out.iter_mut().enumerate() {
            let v = start + i;
            if adv.is_zealot(v) {
                *slot = snap.get(v);
                continue;
            }
            let (blues, deg) = adv.read_neighbourhood(topo, snap, v, round, adv_rng, &mut dropped);
            *slot = resolve_majority(blues, deg, snap.get(v), tie_rule, rng);
        }
    } else {
        let (k, tie_rule) = samples_and_tie(kind);
        for (i, slot) in out.iter_mut().enumerate() {
            let v = start + i;
            if adv.is_zealot(v) {
                *slot = snap.get(v);
                continue;
            }
            let mut blues = 0usize;
            for _ in 0..k {
                blues += adv.read_sample(topo, snap, v, round, rng, adv_rng, &mut dropped) as usize;
            }
            *slot = resolve_majority(blues, k, snap.get(v), tie_rule, rng);
        }
    }
    if dropped > 0 {
        dropped_total.fetch_add(dropped, Ordering::Relaxed);
    }
}

/// Routes one adversarial chunk the way [`crate::kernel`]'s honest
/// `dispatch_chunk` does: a materialised complete graph runs on the
/// implicit [`Complete`] topology (synthesised rows, no adjacency reads),
/// other materialised graphs through [`CsrTopology`], and adjacency-free
/// topologies directly — all consuming the kernel RNG identically.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dispatch_chunk_adversarial<T: Topology, R: RngCore + ?Sized, A: RngCore + ?Sized>(
    adv: &Adversary,
    kind: ProtocolKind,
    topo: &T,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    round: u64,
    rng: &mut R,
    adv_rng: &mut A,
    dropped_total: &AtomicU64,
) {
    match topo.as_graph() {
        Some(graph) if graph.is_complete() => {
            let complete =
                Complete::new(graph.num_vertices()).expect("complete graphs have n >= 2");
            update_chunk_adversarial(
                adv,
                kind,
                &complete,
                snap,
                start,
                out,
                round,
                rng,
                adv_rng,
                dropped_total,
            );
        }
        Some(graph) => update_chunk_adversarial(
            adv,
            kind,
            &CsrTopology::new(graph),
            snap,
            start,
            out,
            round,
            rng,
            adv_rng,
            dropped_total,
        ),
        None => update_chunk_adversarial(
            adv,
            kind,
            topo,
            snap,
            start,
            out,
            round,
            rng,
            adv_rng,
            dropped_total,
        ),
    }
}

/// One adversarial **asynchronous** (live-state) update of a non-zealot
/// vertex `v` — the adversarial counterpart of the kernel's live-vertex
/// update.  The caller skips zealots entirely (they draw nothing and never
/// change).
#[allow(clippy::too_many_arguments)]
pub(crate) fn update_vertex_adversarial<T: Topology, R: RngCore + ?Sized, A: RngCore + ?Sized>(
    adv: &Adversary,
    kind: ProtocolKind,
    topo: &T,
    live: &PackedSnapshot,
    v: usize,
    round: u64,
    rng: &mut R,
    adv_rng: &mut A,
    dropped: &mut u64,
) -> Opinion {
    if let ProtocolKind::LocalMajority(tie_rule) = kind {
        let (blues, deg) = adv.read_neighbourhood(topo, live, v, round, adv_rng, dropped);
        resolve_majority(blues, deg, live.get(v), tie_rule, rng)
    } else {
        let (k, tie_rule) = samples_and_tie(kind);
        let mut blues = 0usize;
        for _ in 0..k {
            blues += adv.read_sample(topo, live, v, round, rng, adv_rng, dropped) as usize;
        }
        resolve_majority(blues, k, live.get(v), tie_rule, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_zealots(f: f64) -> AdversarySpec {
        AdversarySpec::Zealots { fraction: f }
    }

    #[test]
    fn validation_rejects_out_of_range_parameters() {
        for bad in [
            spec_zealots(-0.1),
            spec_zealots(1.5),
            AdversarySpec::Byzantine { fraction: 2.0 },
            AdversarySpec::Drop { q: -0.01 },
            AdversarySpec::Drop { q: 1.01 },
            AdversarySpec::Partition {
                from_round: 5,
                until_round: 5,
                blocks: 2,
            },
            AdversarySpec::Partition {
                from_round: 0,
                until_round: 4,
                blocks: 1,
            },
        ] {
            assert!(
                Adversary::build(std::slice::from_ref(&bad), 100, 0).is_err(),
                "{bad:?} should fail"
            );
        }
        assert!(Adversary::build(
            &[AdversarySpec::ZealotIds {
                vertices: vec![100]
            }],
            100,
            0
        )
        .is_err());
        assert!(Adversary::build(&[], 0, 0).is_err());
    }

    #[test]
    fn fractional_membership_is_seed_derived_and_roughly_sized() {
        let n = 100_000;
        let adv = Adversary::build(&[spec_zealots(0.1)], n, 42).unwrap();
        let expected = n as f64 * 0.1;
        assert!(
            (adv.zealot_count() as f64 - expected).abs() < expected * 0.1,
            "zealot count {} far from {expected}",
            adv.zealot_count()
        );
        // Deterministic in the seed…
        let again = Adversary::build(&[spec_zealots(0.1)], n, 42).unwrap();
        assert_eq!(
            (0..n).filter(|&v| adv.is_zealot(v)).count(),
            (0..n).filter(|&v| again.is_zealot(v)).count()
        );
        assert!((0..n).all(|v| adv.is_zealot(v) == again.is_zealot(v)));
        // …and different seeds give different sets.
        let other = Adversary::build(&[spec_zealots(0.1)], n, 43).unwrap();
        assert!((0..n).any(|v| adv.is_zealot(v) != other.is_zealot(v)));
    }

    #[test]
    fn zero_strength_sets_are_empty_and_draw_no_coins() {
        let adv = Adversary::build(
            &[spec_zealots(0.0), AdversarySpec::Drop { q: 0.0 }],
            10_000,
            7,
        )
        .unwrap();
        assert_eq!(adv.zealot_count(), 0);
        assert_eq!(adv.byzantine_count(), 0);
        assert!(!(0..10_000).any(|v| adv.is_zealot(v) || adv.is_byzantine(v)));
        // q = 0 must not consume the adversary stream.
        struct Panicking;
        impl RngCore for Panicking {
            fn next_u32(&mut self) -> u32 {
                panic!("drop coin drawn at q = 0")
            }
            fn next_u64(&mut self) -> u64 {
                panic!("drop coin drawn at q = 0")
            }
            fn fill_bytes(&mut self, _: &mut [u8]) {
                panic!()
            }
        }
        assert!(!adv.sample_dropped(&mut Panicking));
    }

    #[test]
    fn explicit_ids_union_with_fractions() {
        let n = 1_000;
        let adv = Adversary::build(
            &[
                AdversarySpec::ZealotIds {
                    vertices: vec![1, 3, 3, 5],
                },
                spec_zealots(0.0),
            ],
            n,
            0,
        )
        .unwrap();
        assert_eq!(adv.zealot_count(), 3);
        assert!(adv.is_zealot(1) && adv.is_zealot(3) && adv.is_zealot(5));
        assert!(!adv.is_zealot(0) && !adv.is_zealot(2));
    }

    #[test]
    fn drop_probabilities_compose_independently() {
        let a = Adversary::build(&[AdversarySpec::Drop { q: 1.0 }], 10, 0).unwrap();
        let mut rng = kernel_chunk_rng(1, 2, 3);
        assert!(a.sample_dropped(&mut rng));
        let b = Adversary::build(
            &[
                AdversarySpec::Drop { q: 0.5 },
                AdversarySpec::Drop { q: 0.5 },
            ],
            10,
            0,
        )
        .unwrap();
        assert_eq!(b.drop_threshold, probability_threshold(0.75));
    }

    #[test]
    fn partition_windows_sever_only_cross_block_while_active() {
        let n = 100;
        let adv = Adversary::build(
            &[AdversarySpec::Partition {
                from_round: 2,
                until_round: 5,
                blocks: 2,
            }],
            n,
            0,
        )
        .unwrap();
        assert!(!adv.partition_active(1));
        assert!(adv.partition_active(2));
        assert!(adv.partition_active(4));
        assert!(!adv.partition_active(5));
        // Blocks are [0, 50) and [50, 100).
        assert!(adv.severed(3, 10, 60));
        assert!(adv.severed(3, 60, 10));
        assert!(!adv.severed(3, 10, 40));
        assert!(!adv.severed(1, 10, 60));
        assert!(!adv.severed(5, 10, 60));
    }

    #[test]
    fn counters_clamp_partition_rounds_to_executed_rounds() {
        let adv = Adversary::build(
            &[AdversarySpec::Partition {
                from_round: 2,
                until_round: 10,
                blocks: 2,
            }],
            100,
            0,
        )
        .unwrap();
        assert_eq!(adv.counters(1, 0).partition_rounds, 0);
        assert_eq!(adv.counters(4, 0).partition_rounds, 2);
        assert_eq!(adv.counters(50, 9).partition_rounds, 8);
        assert_eq!(adv.counters(50, 9).dropped_samples, 9);
    }

    #[test]
    fn counters_merge_accumulates_events_and_keeps_membership() {
        let mut a = AdversaryCounters {
            zealots: 10,
            byzantine: 4,
            dropped_samples: 100,
            partition_rounds: 3,
        };
        a.merge(&AdversaryCounters {
            zealots: 10,
            byzantine: 4,
            dropped_samples: 50,
            partition_rounds: 2,
        });
        assert_eq!(a.zealots, 10);
        assert_eq!(a.byzantine, 4);
        assert_eq!(a.dropped_samples, 150);
        assert_eq!(a.partition_rounds, 5);
    }

    #[test]
    fn labels_mirror_registry_spellings() {
        assert_eq!(spec_zealots(0.05).label(), "zealots:0.05");
        assert_eq!(
            AdversarySpec::Byzantine { fraction: 0.1 }.label(),
            "byzantine:0.1"
        );
        assert_eq!(AdversarySpec::Drop { q: 0.2 }.label(), "drop:0.2");
        assert_eq!(
            AdversarySpec::Partition {
                from_round: 3,
                until_round: 9,
                blocks: 2
            }
            .label(),
            "partition:3:9"
        );
        assert_eq!(
            AdversarySpec::ZealotIds {
                vertices: vec![1, 2]
            }
            .label(),
            "zealot-ids:2"
        );
    }
}
