//! Cancellable, checkpointable execution: [`RunBudget`], [`RunCheckpoint`]
//! and [`RunOutcome`].
//!
//! Long campaigns (hundreds of grid cells at `n = 10⁶`) must survive
//! interruption: a SIGTERM mid-round, a deadline, a crashed process.  The
//! engine's seeded runners ([`crate::engine::Engine::run_seeded_kind`] and
//! friends) support this with *yield points* at every round boundary: a run
//! executed under a [`RunBudget`] either completes, or pauses and hands back
//! a typed [`RunCheckpoint`] from which
//! [`crate::engine::Engine::resume`] continues **bit-identically** to an
//! uninterrupted run, at any thread count, on either schedule.
//!
//! # Why resume can be bit-identical
//!
//! The seeded engine derives every random draw from a pure function of
//! `(master_seed, round, chunk)` — synchronous rounds use one kernel stream
//! per chunk, asynchronous rounds one stream per round (chunk coordinate
//! [`crate::engine::ASYNC_ROUND_CHUNK`]).  No RNG *state* survives across
//! rounds, so a checkpoint needs only the `(seed, round)` coordinates plus
//! the opinion bits: round `r`'s streams are re-derived identically whether
//! or not the process restarted in between.  (The caller-RNG
//! [`crate::engine::Engine::run`] path is *not* checkpointable — its RNG
//! state lives in the caller.)
//!
//! # Checkpoint contents
//!
//! A [`RunCheckpoint`] captures everything the next round reads:
//!
//! * the packed opinion bits (vertex `v` is blue iff bit `v % 64` of word
//!   `v / 64` is set — the [`crate::kernel::PackedSnapshot`] layout),
//! * the round index (the next round to execute),
//! * the stop-state: the [`StoppingCondition`] under which the run started
//!   (stateless given the configuration and round, so nothing else is
//!   needed),
//! * the adversary's cross-round accumulator (`dropped_samples`; membership
//!   sets are re-derived from the adversary's own seeds),
//! * the `(seed, round, chunk)` RNG contract: just `master_seed` — streams
//!   are re-derived per round,
//! * the partial trace, when tracing was enabled.
//!
//! The JSON encoding of a checkpoint (version 1) lives in
//! `bo3_core::campaign`, next to the atomic-write protocol that makes
//! on-disk checkpoints crash-safe.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::error::{DynamicsError, Result};
use crate::kernel::ProtocolKind;
use crate::opinion::{Configuration, Opinion};
use crate::schedule::Schedule;
use crate::stopping::StoppingCondition;
use crate::trace::Trace;

/// Version of the [`RunCheckpoint`] layout (bumped on incompatible change;
/// the golden snapshot test in `bo3_core::campaign` pins the JSON form).
pub const RUN_CHECKPOINT_VERSION: u32 = 1;

/// How much work a single engine call may perform before yielding.
///
/// All three limits are optional and combine disjunctively: the run pauses
/// at the next round boundary once *any* of them fires.  The default is
/// [`RunBudget::unlimited`], under which the budgeted runners never pause
/// and behave exactly like their unbudgeted twins.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Pause after at most this many rounds in this call (`None` = no cap).
    /// A cap of `0` pauses immediately, capturing the pre-round state.
    pub max_rounds_per_slice: Option<usize>,
    /// Pause at the first round boundary at or past this instant.
    pub deadline: Option<Instant>,
    /// Pause at the next round boundary once this flag is set — the hook a
    /// SIGINT/SIGTERM handler flips.
    pub cancel_flag: Option<Arc<AtomicBool>>,
    /// A second, independently owned cancellation source checked exactly
    /// like [`RunBudget::cancel_flag`].  A supervising daemon shares one
    /// drain flag across *every* in-flight budget while each job keeps its
    /// own `cancel_flag`, so a graceful shutdown (SIGTERM) pauses all work
    /// within one round slice without disturbing per-job cancellation.
    pub drain_flag: Option<Arc<AtomicBool>>,
}

impl RunBudget {
    /// No limits: budgeted runs complete exactly like unbudgeted ones.
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// Pause after at most `rounds` rounds per call.
    pub fn rounds_per_slice(rounds: usize) -> Self {
        RunBudget {
            max_rounds_per_slice: Some(rounds),
            ..RunBudget::default()
        }
    }

    /// Sets the per-slice round cap on an existing budget.
    pub fn with_rounds_per_slice(mut self, rounds: usize) -> Self {
        self.max_rounds_per_slice = Some(rounds);
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the cancellation flag (shared with e.g. a signal handler).
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel_flag = Some(flag);
        self
    }

    /// Sets the drain flag — a daemon-owned cancellation source layered
    /// *alongside* the per-run [`RunBudget::cancel_flag`], so one SIGTERM
    /// handler can interrupt every in-flight run at its next round boundary.
    pub fn with_drain_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.drain_flag = Some(flag);
        self
    }

    /// `true` once either cancellation flag is set or the deadline has
    /// passed — the *external* interruption sources (used by batch drivers
    /// to also yield at replica boundaries, where no round slice applies).
    pub fn interrupted(&self) -> bool {
        if let Some(flag) = &self.cancel_flag {
            if flag.load(Ordering::SeqCst) {
                return true;
            }
        }
        if let Some(flag) = &self.drain_flag {
            if flag.load(Ordering::SeqCst) {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    /// `true` when a run that has executed `rounds_this_slice` rounds in the
    /// current call should pause at this round boundary.
    pub(crate) fn should_pause(&self, rounds_this_slice: usize) -> bool {
        if let Some(cap) = self.max_rounds_per_slice {
            if rounds_this_slice >= cap {
                return true;
            }
        }
        self.interrupted()
    }
}

/// A paused seeded run, serialisable and sufficient to continue
/// bit-identically — see the module docs for exactly why the `(seed, round)`
/// pair replaces any RNG state.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCheckpoint {
    /// Layout version ([`RUN_CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The protocol kernel being run.
    pub protocol: ProtocolKind,
    /// The update schedule (resume refuses a mismatching engine).
    pub schedule: Schedule,
    /// The stop-state: the stopping condition is stateless given
    /// `(configuration, round)`, so carrying the condition itself captures
    /// it completely.
    pub stopping: StoppingCondition,
    /// The master seed all round streams derive from.
    pub master_seed: u64,
    /// The next round to execute (rounds `0..round` are already applied to
    /// the opinion bits).
    pub round: usize,
    /// Number of vertices.
    pub n: usize,
    /// Packed opinion bits in [`crate::kernel::PackedSnapshot`] layout:
    /// vertex `v` is blue iff bit `v % 64` of word `v / 64` is set; bits at
    /// and beyond `n` are zero.
    pub opinion_words: Vec<u64>,
    /// Blue fraction of the run's round-0 configuration (carried so the
    /// final [`crate::engine::RunResult`] matches the uninterrupted run's).
    pub initial_blue_fraction: f64,
    /// The adversary's cross-round drop tally so far (`0` on honest runs);
    /// all other adversary state is re-derived from its seeds.
    pub dropped_samples: u64,
    /// The partial per-round trace, when tracing was enabled (`trace[r]`
    /// describes the configuration after round `r`).
    pub trace: Option<Trace>,
}

impl RunCheckpoint {
    /// Unpacks the stored opinion bits into a [`Configuration`].
    ///
    /// Fails with a typed error when the word count does not match `n` or a
    /// bit beyond `n` is set (a corrupted or hand-edited checkpoint).
    pub fn configuration(&self) -> Result<Configuration> {
        Ok(Configuration::new(unpack_opinions(
            &self.opinion_words,
            self.n,
        )?))
    }
}

/// The outcome of a budgeted run: finished, or paused at a yield point.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The stopping condition fired; here is the full result.
    Completed(crate::engine::RunResult),
    /// The budget fired first; resume from this checkpoint (boxed — a
    /// checkpoint carries `n` bits of state).
    Paused(Box<RunCheckpoint>),
}

impl RunOutcome {
    /// The completed result, if the run finished.
    pub fn completed(self) -> Option<crate::engine::RunResult> {
        match self {
            RunOutcome::Completed(result) => Some(result),
            RunOutcome::Paused(_) => None,
        }
    }

    /// The checkpoint, if the run paused.
    pub fn paused(self) -> Option<RunCheckpoint> {
        match self {
            RunOutcome::Completed(_) => None,
            RunOutcome::Paused(checkpoint) => Some(*checkpoint),
        }
    }
}

/// Packs an opinion slice into the [`crate::kernel::PackedSnapshot`] bit
/// layout (little-endian within each 64-bit word).
pub fn pack_opinions(opinions: &[Opinion]) -> Vec<u64> {
    let mut words = Vec::with_capacity(opinions.len().div_ceil(64));
    for chunk in opinions.chunks(64) {
        let mut word = 0u64;
        for (bit, o) in chunk.iter().enumerate() {
            word |= (o.is_blue() as u64) << bit;
        }
        words.push(word);
    }
    words
}

/// Unpacks [`pack_opinions`] output, validating the word count and that no
/// bit at or beyond `n` is set.
pub fn unpack_opinions(words: &[u64], n: usize) -> Result<Vec<Opinion>> {
    if words.len() != n.div_ceil(64) {
        return Err(DynamicsError::InvalidParameter {
            reason: format!(
                "checkpoint holds {} opinion words but n = {n} needs {}",
                words.len(),
                n.div_ceil(64)
            ),
        });
    }
    if !n.is_multiple_of(64) {
        if let Some(last) = words.last() {
            if last >> (n % 64) != 0 {
                return Err(DynamicsError::InvalidParameter {
                    reason: format!("checkpoint sets opinion bits beyond n = {n}"),
                });
            }
        }
    }
    let mut opinions = Vec::with_capacity(n);
    for v in 0..n {
        let blue = (words[v >> 6] >> (v & 63)) & 1 == 1;
        opinions.push(if blue { Opinion::Blue } else { Opinion::Red });
    }
    Ok(opinions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips_at_awkward_lengths() {
        for n in [0usize, 1, 63, 64, 65, 127, 128, 130] {
            let opinions: Vec<Opinion> = (0..n)
                .map(|v| {
                    if v % 3 == 0 {
                        Opinion::Blue
                    } else {
                        Opinion::Red
                    }
                })
                .collect();
            let words = pack_opinions(&opinions);
            assert_eq!(words.len(), n.div_ceil(64));
            assert_eq!(unpack_opinions(&words, n).unwrap(), opinions, "n = {n}");
        }
    }

    #[test]
    fn unpack_rejects_wrong_word_count_and_stray_bits() {
        assert!(unpack_opinions(&[0, 0], 64).is_err());
        assert!(unpack_opinions(&[], 1).is_err());
        // Bit 10 set with n = 10: beyond the vertex range.
        assert!(unpack_opinions(&[1 << 10], 10).is_err());
        assert!(unpack_opinions(&[(1 << 10) - 1], 10).is_ok());
    }

    #[test]
    fn unlimited_budget_never_pauses() {
        let budget = RunBudget::unlimited();
        assert!(!budget.should_pause(0));
        assert!(!budget.should_pause(usize::MAX));
        assert!(!budget.interrupted());
    }

    #[test]
    fn slice_budget_pauses_at_the_cap() {
        let budget = RunBudget::rounds_per_slice(3);
        assert!(!budget.should_pause(2));
        assert!(budget.should_pause(3));
        // A zero-round slice pauses before doing anything.
        assert!(RunBudget::rounds_per_slice(0).should_pause(0));
    }

    #[test]
    fn cancel_flag_and_deadline_interrupt() {
        let flag = Arc::new(AtomicBool::new(false));
        let budget = RunBudget::unlimited().with_cancel_flag(flag.clone());
        assert!(!budget.should_pause(10_000));
        flag.store(true, Ordering::SeqCst);
        assert!(budget.should_pause(0));
        assert!(budget.interrupted());

        let past = Instant::now() - std::time::Duration::from_millis(1);
        assert!(RunBudget::unlimited().with_deadline(past).interrupted());
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        assert!(!RunBudget::unlimited().with_deadline(far).interrupted());
    }

    #[test]
    fn drain_flag_interrupts_independently_of_the_cancel_flag() {
        let cancel = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(AtomicBool::new(false));
        let budget = RunBudget::unlimited()
            .with_cancel_flag(cancel.clone())
            .with_drain_flag(drain.clone());
        assert!(!budget.interrupted());
        // The daemon-owned drain flag fires with the per-job flag untouched.
        drain.store(true, Ordering::SeqCst);
        assert!(budget.interrupted());
        assert!(budget.should_pause(0));
        assert!(!cancel.load(Ordering::SeqCst));
        // And vice versa: the per-job flag alone still interrupts.
        drain.store(false, Ordering::SeqCst);
        cancel.store(true, Ordering::SeqCst);
        assert!(budget.interrupted());
    }
}
