//! Serialisable protocol descriptions.
//!
//! Experiment configurations (and the CSV reports they produce) need to name
//! the protocol they ran; [`ProtocolSpec`] is the serde-friendly description
//! that can be turned into a live [`Protocol`] object.

use serde::{Deserialize, Serialize};

use crate::kernel::ProtocolKind;
use crate::protocol::{BestOfK, BestOfThree, BestOfTwo, LocalMajority, Protocol, TieRule, Voter};

/// A serialisable description of a voting protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolSpec {
    /// Best-of-1 (the voter model).
    Voter,
    /// Best-of-2 with the given tie rule.
    BestOfTwo {
        /// How a 1–1 sample is resolved.
        tie_rule: TieRule,
    },
    /// Best-of-3 — the paper's protocol.
    BestOfThree,
    /// Best-of-k for arbitrary `k ≥ 1`.
    BestOfK {
        /// Sample size.
        k: usize,
        /// How ties are resolved (relevant only for even `k`).
        tie_rule: TieRule,
    },
    /// Deterministic full-neighbourhood majority.
    LocalMajority {
        /// How exact ties are resolved.
        tie_rule: TieRule,
    },
}

impl ProtocolSpec {
    /// Instantiates the described protocol.
    pub fn build(&self) -> Box<dyn Protocol> {
        match *self {
            ProtocolSpec::Voter => Box::new(Voter::new()),
            ProtocolSpec::BestOfTwo { tie_rule } => Box::new(BestOfTwo::new(tie_rule)),
            ProtocolSpec::BestOfThree => Box::new(BestOfThree::new()),
            ProtocolSpec::BestOfK { k, tie_rule } => Box::new(BestOfK::new(k, tie_rule)),
            ProtocolSpec::LocalMajority { tie_rule } => Box::new(LocalMajority::new(tie_rule)),
        }
    }

    /// The protocol's display name, computed directly on the spec.
    ///
    /// Pinned against [`Protocol::name`] of the built protocol for every
    /// variant by a unit test below — the previous implementation allocated
    /// a whole `Box<dyn Protocol>` just to read the name.
    pub fn name(&self) -> String {
        match *self {
            ProtocolSpec::Voter => "voter (best-of-1)".into(),
            ProtocolSpec::BestOfTwo {
                tie_rule: TieRule::KeepOwn,
            } => "best-of-2 (keep on tie)".into(),
            ProtocolSpec::BestOfTwo {
                tie_rule: TieRule::Random,
            } => "best-of-2 (random tie)".into(),
            ProtocolSpec::BestOfThree => "best-of-3".into(),
            ProtocolSpec::BestOfK { k, tie_rule } => match tie_rule {
                TieRule::KeepOwn => format!("best-of-{k} (keep on tie)"),
                TieRule::Random => format!("best-of-{k} (random tie)"),
            },
            ProtocolSpec::LocalMajority { .. } => "local-majority (full neighbourhood)".into(),
        }
    }

    /// The kernel the described protocol monomorphizes to.
    ///
    /// Every spec names a built-in protocol, so — unlike the open-world
    /// [`Protocol::kind`] — this is total: Monte-Carlo replicas built from a
    /// spec always run on the kernel path.
    pub fn kind(&self) -> ProtocolKind {
        match *self {
            ProtocolSpec::Voter => ProtocolKind::Voter,
            ProtocolSpec::BestOfTwo { tie_rule } => ProtocolKind::BestOfTwo(tie_rule),
            ProtocolSpec::BestOfThree => ProtocolKind::BestOfThree,
            ProtocolSpec::BestOfK { k, tie_rule } => ProtocolKind::BestOfK { k, tie_rule },
            ProtocolSpec::LocalMajority { tie_rule } => ProtocolKind::LocalMajority(tie_rule),
        }
    }

    /// The standard comparison set used by experiments E3 and E5: voter,
    /// Best-of-2 (keep), Best-of-3, Best-of-5 and local majority.
    pub fn comparison_set() -> Vec<ProtocolSpec> {
        vec![
            ProtocolSpec::Voter,
            ProtocolSpec::BestOfTwo {
                tie_rule: TieRule::KeepOwn,
            },
            ProtocolSpec::BestOfThree,
            ProtocolSpec::BestOfK {
                k: 5,
                tie_rule: TieRule::KeepOwn,
            },
            ProtocolSpec::LocalMajority {
                tie_rule: TieRule::KeepOwn,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_build_the_right_protocols() {
        assert_eq!(ProtocolSpec::Voter.build().sample_size(), 1);
        assert_eq!(
            ProtocolSpec::BestOfTwo {
                tie_rule: TieRule::KeepOwn
            }
            .build()
            .sample_size(),
            2
        );
        assert_eq!(ProtocolSpec::BestOfThree.build().sample_size(), 3);
        assert_eq!(
            ProtocolSpec::BestOfK {
                k: 7,
                tie_rule: TieRule::Random
            }
            .build()
            .sample_size(),
            7
        );
        assert_eq!(
            ProtocolSpec::LocalMajority {
                tie_rule: TieRule::KeepOwn
            }
            .build()
            .sample_size(),
            0
        );
    }

    #[test]
    fn names_are_consistent_with_protocols() {
        assert!(ProtocolSpec::BestOfThree.name().contains("best-of-3"));
        assert!(ProtocolSpec::Voter.name().contains("voter"));
        assert!(ProtocolSpec::BestOfK {
            k: 5,
            tie_rule: TieRule::KeepOwn
        }
        .name()
        .contains("best-of-5"));
    }

    #[test]
    fn spec_name_matches_the_built_protocol_name_for_every_variant() {
        // `ProtocolSpec::name` is computed without building the protocol;
        // this pins it to `Protocol::name` across every variant and tie
        // rule so the two spellings cannot drift.
        let mut specs = ProtocolSpec::comparison_set();
        specs.extend([
            ProtocolSpec::BestOfTwo {
                tie_rule: TieRule::Random,
            },
            ProtocolSpec::BestOfK {
                k: 1,
                tie_rule: TieRule::KeepOwn,
            },
            ProtocolSpec::BestOfK {
                k: 4,
                tie_rule: TieRule::Random,
            },
            ProtocolSpec::BestOfK {
                k: 9,
                tie_rule: TieRule::KeepOwn,
            },
            ProtocolSpec::LocalMajority {
                tie_rule: TieRule::Random,
            },
        ]);
        for spec in specs {
            assert_eq!(spec.name(), spec.build().name(), "{spec:?}");
        }
    }

    #[test]
    fn spec_kind_matches_the_built_protocol_kind() {
        // `ProtocolSpec::kind` and `Protocol::kind` express the same mapping
        // twice; this pins them together so they cannot drift when a
        // protocol is added.
        let mut specs = ProtocolSpec::comparison_set();
        specs.extend([
            ProtocolSpec::BestOfTwo {
                tie_rule: TieRule::Random,
            },
            ProtocolSpec::BestOfK {
                k: 4,
                tie_rule: TieRule::Random,
            },
            ProtocolSpec::LocalMajority {
                tie_rule: TieRule::Random,
            },
        ]);
        for spec in specs {
            assert_eq!(spec.build().kind(), Some(spec.kind()), "{spec:?}");
        }
    }

    #[test]
    fn comparison_set_contains_the_paper_protocol_and_baselines() {
        let set = ProtocolSpec::comparison_set();
        assert_eq!(set.len(), 5);
        assert!(set.contains(&ProtocolSpec::BestOfThree));
        assert!(set.contains(&ProtocolSpec::Voter));
    }
}
