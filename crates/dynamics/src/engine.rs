//! The single-threaded simulation engine.
//!
//! [`Simulator`] owns nothing heavy: it borrows a graph, takes a protocol per
//! run, and manages the double-buffered synchronous update (or the in-place
//! asynchronous one).  The multi-threaded stepper lives in
//! [`crate::parallel`] and reuses the same per-vertex update logic.
//!
//! Built-in protocols execute through the topology-generic kernels of
//! [`crate::kernel`]: a materialised complete graph is routed as the
//! implicit `Complete` topology (synthesised rows, no adjacency reads) and
//! everything else as `CsrTopology` (batched CSR path).  The fully generic
//! engine — implicit `G(n, p)`, SBM and friends at `n = 10⁶` with no
//! adjacency at all — is [`crate::topology_sim::TopologySimulator`].

use rand::seq::SliceRandom;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use bo3_graph::{CsrGraph, NeighbourSampler};

use crate::error::{DynamicsError, Result};
use crate::kernel::{self, PackedSnapshot, ProtocolKind};
use crate::opinion::{Configuration, Opinion};
use crate::protocol::{Protocol, UpdateContext};
use crate::schedule::Schedule;
use crate::stopping::{StopReason, StoppingCondition};
use crate::trace::Trace;

/// Outcome of a single dynamics run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Consensus winner, when consensus was reached.
    pub winner: Option<Opinion>,
    /// Number of rounds executed (round 0 is the initial configuration and
    /// is not counted).
    pub rounds: usize,
    /// Blue fraction of the initial configuration.
    pub initial_blue_fraction: f64,
    /// Blue fraction of the final configuration.
    pub final_blue_fraction: f64,
    /// The per-round trajectory (present when tracing was enabled).
    pub trace: Option<Trace>,
}

impl RunResult {
    /// `true` when the run ended in consensus on red — the outcome Theorem 1
    /// predicts for the paper's parameter regime.
    pub fn red_won(&self) -> bool {
        self.winner == Some(Opinion::Red)
    }

    /// `true` when the run ended in consensus (on either colour).
    pub fn reached_consensus(&self) -> bool {
        self.winner.is_some()
    }
}

/// Synchronous / asynchronous voting dynamics simulator over a borrowed graph.
pub struct Simulator<'g> {
    graph: &'g CsrGraph,
    sampler: NeighbourSampler<'g>,
    schedule: Schedule,
    stopping: StoppingCondition,
    record_trace: bool,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator with the default (synchronous, stop-at-consensus)
    /// behaviour. Fails if the graph has an isolated vertex, which could
    /// never perform an update.
    pub fn new(graph: &'g CsrGraph) -> Result<Self> {
        if graph.num_vertices() == 0 {
            return Err(DynamicsError::InvalidGraph {
                reason: "cannot run dynamics on the empty graph".into(),
            });
        }
        let sampler = NeighbourSampler::new(graph)?;
        Ok(Simulator {
            graph,
            sampler,
            schedule: Schedule::default(),
            stopping: StoppingCondition::default(),
            record_trace: false,
        })
    }

    /// Sets the update schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the stopping condition.
    pub fn with_stopping(mut self, stopping: StoppingCondition) -> Self {
        self.stopping = stopping;
        self
    }

    /// Enables or disables per-round trace recording.
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// The configured stopping condition.
    pub fn stopping(&self) -> StoppingCondition {
        self.stopping
    }

    /// Performs one synchronous round: reads `current`, writes the next
    /// opinions into `next` (which is cleared and refilled).
    ///
    /// Built-in protocols ([`Protocol::kind`] returns `Some`) run through
    /// the monomorphized kernels of [`crate::kernel`] over a bit-packed
    /// snapshot; custom protocols use the generic `dyn` loop.  Both paths
    /// consume `rng` identically, so the choice is invisible in the output.
    pub fn step_synchronous(
        &self,
        protocol: &dyn Protocol,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        rng: &mut dyn RngCore,
    ) {
        let mut snap = PackedSnapshot::all_red(0);
        self.step_synchronous_into(protocol, protocol.kind(), current, next, &mut snap, rng);
    }

    /// [`Simulator::step_synchronous`] with the protocol kind pre-resolved
    /// and a caller-owned snapshot buffer, so repeated rounds (as in
    /// [`Simulator::run`]) repack in place instead of allocating.
    fn step_synchronous_into(
        &self,
        protocol: &dyn Protocol,
        kind: Option<ProtocolKind>,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        snap: &mut PackedSnapshot,
        rng: &mut dyn RngCore,
    ) {
        let prev = current.as_slice();
        next.clear();
        if let Some(kind) = kind {
            next.resize(prev.len(), Opinion::Red);
            snap.repack_from(prev);
            kernel::dispatch_chunk(kind, self.graph, snap, 0, next, rng);
            return;
        }
        next.reserve(prev.len());
        for v in self.graph.vertices() {
            let ctx = UpdateContext {
                vertex: v,
                current: prev[v],
                previous: prev,
                sampler: &self.sampler,
            };
            next.push(protocol.update(&ctx, rng));
        }
    }

    /// Performs one asynchronous round: every vertex updates exactly once, in
    /// a fresh random order, reading the current (partially updated) state.
    pub fn step_asynchronous(
        &self,
        protocol: &dyn Protocol,
        config: &mut Configuration,
        rng: &mut dyn RngCore,
    ) {
        let mut order: Vec<usize> = Vec::new();
        self.step_asynchronous_with(protocol, config, rng, &mut order);
    }

    /// [`Simulator::step_asynchronous`] with a caller-provided order buffer,
    /// so repeated rounds (as in [`Simulator::run`]) allocate nothing.
    pub fn step_asynchronous_with(
        &self,
        protocol: &dyn Protocol,
        config: &mut Configuration,
        rng: &mut dyn RngCore,
        order: &mut Vec<usize>,
    ) {
        order.clear();
        order.extend(self.graph.vertices());
        {
            let mut r = &mut *rng;
            order.shuffle(&mut r);
        }
        // The asynchronous update reads the live configuration; we snapshot
        // per vertex via the slice borrow below.
        for &v in order.iter() {
            let new_opinion = {
                let prev = config.as_slice();
                let ctx = UpdateContext {
                    vertex: v,
                    current: prev[v],
                    previous: prev,
                    sampler: &self.sampler,
                };
                protocol.update(&ctx, rng)
            };
            config.set(v, new_opinion);
        }
    }

    /// Performs one synchronous round with the parallel stepper's
    /// `(master_seed, round, chunk)` RNG derivation, single-threaded.
    pub fn step_seeded(
        &self,
        protocol: &dyn Protocol,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        master_seed: u64,
        round: u64,
    ) {
        let mut snap = PackedSnapshot::all_red(0);
        self.step_seeded_into(
            protocol,
            protocol.kind(),
            current,
            next,
            &mut snap,
            master_seed,
            round,
        );
    }

    /// [`Simulator::step_seeded`] with the protocol kind pre-resolved and a
    /// caller-owned snapshot buffer, so repeated rounds (as in
    /// [`Simulator::run_seeded`]) repack in place instead of allocating.
    #[allow(clippy::too_many_arguments)] // private plumbing: two scratch buffers ride along
    fn step_seeded_into(
        &self,
        protocol: &dyn Protocol,
        kind: Option<ProtocolKind>,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        snap: &mut PackedSnapshot,
        master_seed: u64,
        round: u64,
    ) {
        let prev = current.as_slice();
        next.clear();
        next.resize(prev.len(), Opinion::Red);
        if let Some(kind) = kind {
            snap.repack_from(prev);
            self.step_seeded_kernel(kind, snap, next, master_seed, round);
            return;
        }
        for (chunk, out) in next.chunks_mut(crate::parallel::CHUNK_SIZE).enumerate() {
            let mut rng = crate::parallel::chunk_rng(master_seed, round, chunk as u64);
            crate::parallel::update_chunk(
                protocol,
                &self.sampler,
                prev,
                chunk * crate::parallel::CHUNK_SIZE,
                out,
                &mut rng,
            );
        }
    }

    /// Kernel-path seeded round over an already-packed snapshot, one
    /// monomorphized chunk per `(master_seed, round, chunk)` RNG stream —
    /// the exact per-chunk schedule of the parallel stepper.
    fn step_seeded_kernel(
        &self,
        kind: ProtocolKind,
        snap: &PackedSnapshot,
        next: &mut [Opinion],
        master_seed: u64,
        round: u64,
    ) {
        for (chunk, out) in next.chunks_mut(crate::parallel::CHUNK_SIZE).enumerate() {
            let mut rng = kernel::kernel_chunk_rng(master_seed, round, chunk as u64);
            kernel::dispatch_chunk(
                kind,
                self.graph,
                snap,
                chunk * crate::parallel::CHUNK_SIZE,
                out,
                &mut rng,
            );
        }
    }

    /// Runs the synchronous dynamics with all randomness derived from
    /// `master_seed`, using the same per-chunk derivation as
    /// [`crate::parallel::ParallelSimulator`].
    ///
    /// The returned [`RunResult`] is bit-for-bit identical to
    /// `ParallelSimulator::run` with the same seed at **any** thread count —
    /// the determinism contract documented in [`crate::parallel`], pinned by
    /// the integration suite's determinism regression test.
    ///
    /// Fails if the simulator was configured with an asynchronous schedule,
    /// which has no parallel counterpart.
    pub fn run_seeded(
        &self,
        protocol: &dyn Protocol,
        initial: Configuration,
        master_seed: u64,
    ) -> Result<RunResult> {
        if self.schedule != Schedule::Synchronous {
            return Err(DynamicsError::InvalidParameter {
                reason: "run_seeded requires the synchronous schedule".into(),
            });
        }
        if initial.len() != self.graph.num_vertices() {
            return Err(DynamicsError::OpinionLengthMismatch {
                got: initial.len(),
                expected: self.graph.num_vertices(),
            });
        }
        let kind = protocol.kind();
        let mut scratch: Vec<Opinion> = Vec::with_capacity(initial.len());
        // The packed snapshot is repacked in place each round; the only
        // remaining kernel-path allocation is the batched kernel's small
        // per-chunk pick buffer (amortised over 4096 vertices).
        let mut snap = PackedSnapshot::all_red(0);
        Ok(drive(
            &self.stopping,
            self.record_trace,
            initial,
            |config, round| {
                self.step_seeded_into(
                    protocol,
                    kind,
                    config,
                    &mut scratch,
                    &mut snap,
                    master_seed,
                    round as u64,
                );
                config.overwrite_from(&scratch);
            },
        ))
    }

    /// Runs the dynamics from `initial` until the stopping condition fires.
    pub fn run(
        &self,
        protocol: &dyn Protocol,
        initial: Configuration,
        rng: &mut dyn RngCore,
    ) -> Result<RunResult> {
        if initial.len() != self.graph.num_vertices() {
            return Err(DynamicsError::OpinionLengthMismatch {
                got: initial.len(),
                expected: self.graph.num_vertices(),
            });
        }
        let kind = protocol.kind();
        let mut scratch: Vec<Opinion> = Vec::with_capacity(initial.len());
        let mut snap = PackedSnapshot::all_red(0);
        let mut order: Vec<usize> = Vec::new();
        Ok(drive(
            &self.stopping,
            self.record_trace,
            initial,
            |config, _round| match self.schedule {
                Schedule::Synchronous => {
                    self.step_synchronous_into(
                        protocol,
                        kind,
                        config,
                        &mut scratch,
                        &mut snap,
                        rng,
                    );
                    config.overwrite_from(&scratch);
                }
                Schedule::AsynchronousRandomOrder => {
                    self.step_asynchronous_with(protocol, config, rng, &mut order);
                }
            },
        ))
    }
}

/// The shared run driver: applies `round_fn` until `stopping` fires,
/// recording the trace and assembling the [`RunResult`].
///
/// Every runner — [`Simulator::run`], [`Simulator::run_seeded`] and
/// [`crate::parallel::ParallelSimulator::run`] — goes through this single
/// loop, so stopping, trace and bookkeeping semantics cannot drift between
/// the sequential and parallel paths (the bit-identical determinism
/// contract depends on that).
pub(crate) fn drive(
    stopping: &StoppingCondition,
    record_trace: bool,
    initial: Configuration,
    mut round_fn: impl FnMut(&mut Configuration, usize),
) -> RunResult {
    let initial_blue_fraction = initial.blue_fraction();
    let mut config = initial;
    let mut trace = if record_trace {
        Some(Trace::new())
    } else {
        None
    };
    if let Some(t) = trace.as_mut() {
        t.record(0, &config);
    }
    let mut rounds = 0usize;
    let stop_reason = loop {
        if let Some(reason) = stopping.should_stop(&config, rounds) {
            break reason;
        }
        round_fn(&mut config, rounds);
        rounds += 1;
        if let Some(t) = trace.as_mut() {
            t.record(rounds, &config);
        }
    };
    RunResult {
        stop_reason,
        winner: stop_reason.winner(),
        rounds,
        initial_blue_fraction,
        final_blue_fraction: config.blue_fraction(),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitialCondition;
    use crate::protocol::{BestOfThree, LocalMajority, Voter};
    use bo3_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_graph_and_isolated_vertices() {
        let empty = bo3_graph::GraphBuilder::new(0).build().unwrap();
        assert!(Simulator::new(&empty).is_err());
        let iso = bo3_graph::GraphBuilder::new(3)
            .add_edge(0, 1)
            .unwrap()
            .build()
            .unwrap();
        assert!(Simulator::new(&iso).is_err());
    }

    #[test]
    fn rejects_mismatched_initial_configuration() {
        let g = generators::complete(5);
        let sim = Simulator::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let bad = Configuration::all_red(3);
        assert!(matches!(
            sim.run(&BestOfThree::new(), bad, &mut rng),
            Err(DynamicsError::OpinionLengthMismatch {
                got: 3,
                expected: 5
            })
        ));
    }

    #[test]
    fn consensus_initial_state_stops_immediately() {
        let g = generators::complete(8);
        let sim = Simulator::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let res = sim
            .run(&BestOfThree::new(), Configuration::all_red(8), &mut rng)
            .unwrap();
        assert_eq!(res.rounds, 0);
        assert!(res.red_won());
        assert!(res.reached_consensus());
        assert_eq!(res.final_blue_fraction, 0.0);
    }

    #[test]
    fn best_of_three_reaches_red_consensus_on_dense_graph() {
        let g = generators::complete(400);
        let sim = Simulator::new(&g).unwrap().with_trace(true);
        let mut rng = StdRng::seed_from_u64(2);
        let init = InitialCondition::BernoulliWithBias { delta: 0.15 }
            .sample(&g, &mut rng)
            .unwrap();
        let res = sim.run(&BestOfThree::new(), init, &mut rng).unwrap();
        assert!(res.red_won(), "stop reason {:?}", res.stop_reason);
        assert!(res.rounds <= 30, "took {} rounds", res.rounds);
        let trace = res.trace.as_ref().unwrap();
        assert_eq!(trace.len(), res.rounds + 1);
        // The blue fraction is (weakly) shrinking over most of the run.
        let fr = trace.blue_fractions();
        assert!(fr.first().unwrap() > fr.last().unwrap());
    }

    #[test]
    fn blue_majority_start_gives_blue_consensus() {
        let g = generators::complete(300);
        let sim = Simulator::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let init = InitialCondition::Bernoulli {
            blue_probability: 0.7,
        }
        .sample(&g, &mut rng)
        .unwrap();
        let res = sim.run(&BestOfThree::new(), init, &mut rng).unwrap();
        assert_eq!(res.winner, Some(Opinion::Blue));
    }

    #[test]
    fn fixed_round_budget_is_respected() {
        let g = generators::complete(100);
        let sim = Simulator::new(&g)
            .unwrap()
            .with_stopping(StoppingCondition::fixed_rounds(4))
            .with_trace(true);
        let mut rng = StdRng::seed_from_u64(4);
        let init = InitialCondition::ExactCount { blue: 50 }
            .sample(&g, &mut rng)
            .unwrap();
        let res = sim.run(&BestOfThree::new(), init, &mut rng).unwrap();
        assert_eq!(res.rounds, 4);
        assert_eq!(res.stop_reason, StopReason::RoundLimit);
        assert_eq!(res.trace.unwrap().len(), 5);
    }

    #[test]
    fn voter_model_is_much_slower_than_best_of_three() {
        let g = generators::complete(150);
        let mut rng = StdRng::seed_from_u64(5);
        let init = InitialCondition::ExactCount { blue: 60 }
            .sample(&g, &mut rng)
            .unwrap();

        let sim = Simulator::new(&g)
            .unwrap()
            .with_stopping(StoppingCondition::consensus_within(100_000));
        let bo3 = sim
            .run(&BestOfThree::new(), init.clone(), &mut rng)
            .unwrap();
        let voter = sim.run(&Voter::new(), init, &mut rng).unwrap();
        assert!(bo3.reached_consensus());
        assert!(voter.reached_consensus());
        assert!(
            voter.rounds > 3 * bo3.rounds,
            "voter {} rounds vs best-of-3 {}",
            voter.rounds,
            bo3.rounds
        );
    }

    #[test]
    fn local_majority_converges_in_one_round_on_complete_graph() {
        let g = generators::complete(101);
        let sim = Simulator::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let init = InitialCondition::ExactCount { blue: 30 }
            .sample(&g, &mut rng)
            .unwrap();
        let res = sim.run(&LocalMajority::keep_own(), init, &mut rng).unwrap();
        assert!(res.red_won());
        assert_eq!(res.rounds, 1);
    }

    #[test]
    fn asynchronous_schedule_also_converges() {
        let g = generators::complete(200);
        let sim = Simulator::new(&g)
            .unwrap()
            .with_schedule(Schedule::AsynchronousRandomOrder);
        let mut rng = StdRng::seed_from_u64(7);
        let init = InitialCondition::BernoulliWithBias { delta: 0.15 }
            .sample(&g, &mut rng)
            .unwrap();
        let res = sim.run(&BestOfThree::new(), init, &mut rng).unwrap();
        assert!(res.reached_consensus());
        assert!(res.red_won());
    }

    #[test]
    fn synchronous_step_reads_only_the_snapshot() {
        // On a 2-colourable structure, a synchronous local-majority update of
        // an alternating colouring swaps the colours (period-2 oscillation),
        // which is only possible if every vertex reads the *old* snapshot.
        let g = generators::complete_bipartite(5, 5).unwrap();
        let sim = Simulator::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        // Left side blue, right side red.
        let opinions: Vec<Opinion> = (0..10)
            .map(|v| if v < 5 { Opinion::Blue } else { Opinion::Red })
            .collect();
        let cfg = Configuration::new(opinions);
        let mut next = Vec::new();
        sim.step_synchronous(&LocalMajority::keep_own(), &cfg, &mut next, &mut rng);
        // Every left vertex sees only red neighbours and vice versa.
        assert!(next[..5].iter().all(|&o| o == Opinion::Red));
        assert!(next[5..].iter().all(|&o| o == Opinion::Blue));
    }

    #[test]
    fn blue_extinction_stopping_is_honoured() {
        let g = generators::complete(500);
        let sim = Simulator::new(&g)
            .unwrap()
            .with_stopping(StoppingCondition::blue_extinction(1_000, 0.05));
        let mut rng = StdRng::seed_from_u64(9);
        let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
            .sample(&g, &mut rng)
            .unwrap();
        let res = sim.run(&BestOfThree::new(), init, &mut rng).unwrap();
        assert!(res.final_blue_fraction <= 0.05);
    }

    #[test]
    fn run_seeded_requires_the_synchronous_schedule() {
        let g = generators::complete(20);
        let sim = Simulator::new(&g)
            .unwrap()
            .with_schedule(Schedule::AsynchronousRandomOrder);
        let init = Configuration::all_red(20);
        assert!(matches!(
            sim.run_seeded(&BestOfThree::new(), init, 0),
            Err(DynamicsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn run_seeded_is_reproducible() {
        let g = generators::complete(300);
        let sim = Simulator::new(&g).unwrap().with_trace(true);
        let mut rng = StdRng::seed_from_u64(10);
        let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
            .sample(&g, &mut rng)
            .unwrap();
        let a = sim
            .run_seeded(&BestOfThree::new(), init.clone(), 77)
            .unwrap();
        let b = sim.run_seeded(&BestOfThree::new(), init, 77).unwrap();
        assert_eq!(a, b);
        assert!(a.red_won());
    }

    #[test]
    fn deterministic_given_the_same_seed() {
        let g = generators::complete(100);
        let sim = Simulator::new(&g).unwrap().with_trace(true);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
                .sample(&g, &mut rng)
                .unwrap();
            sim.run(&BestOfThree::new(), init, &mut rng).unwrap()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b);
        let c = run(43);
        assert!(a.rounds != c.rounds || a.trace != c.trace);
    }
}
