//! The unified simulation engine.
//!
//! [`Engine`] is generic over [`bo3_graph::Topology`] and owns every
//! stepping implementation in the crate — one per [`Schedule`]:
//!
//! * **synchronous** — the paper's model: every vertex reads the previous
//!   round's snapshot.  Built-in protocols run the monomorphized kernels of
//!   [`crate::kernel`] over a bit-packed snapshot; the seeded entry points
//!   derive one RNG per `(master_seed, round, chunk)` work unit and scale
//!   across threads, bit-identical at any thread count.
//! * **asynchronous (random sequential)** — the distributed-systems
//!   ablation: every vertex updates exactly once per round, in a fresh
//!   uniformly random order, reading the *current* (partially updated)
//!   state.  Works on **any** topology — an implicit `G(n, 1/2)` at
//!   `n = 10⁶` runs without materialising an edge — and the seeded entry
//!   derives one RNG per round (see [`ASYNC_ROUND_CHUNK`]), so results are
//!   reproducible and trivially independent of the thread count.
//!
//! Custom protocols (no [`Protocol::kind`]) read neighbour rows through
//! [`UpdateContext`], which only a materialised graph can provide; the
//! engine serves them whenever [`bo3_graph::Topology::as_graph`] yields one
//! and returns a typed error otherwise.
//!
//! The historical engines survive as thin façades over this one type:
//! [`Simulator`] (below) for borrowed CSR graphs,
//! [`crate::parallel::ParallelSimulator`] and
//! [`crate::topology_sim::TopologySimulator`] — each is construction sugar
//! plus method forwarding, no stepping logic of its own.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::seq::SliceRandom;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use bo3_graph::{
    CsrGraph, CsrTopology, MeteredTopology, NeighbourLane, NeighbourSampler, PairHashSpec, Topology,
};
use bo3_obs::SamplerMeter;

use crate::adversary::{self, Adversary, AdversaryCounters};
use crate::checkpoint::{
    pack_opinions, RunBudget, RunCheckpoint, RunOutcome, RUN_CHECKPOINT_VERSION,
};
use crate::error::{DynamicsError, Result};
use crate::kernel::{self, PackedSnapshot, ProtocolKind};
use crate::observe::{maybe_now, NoopObserver, Observer};
use crate::opinion::{Configuration, Opinion};
use crate::protocol::{Protocol, UpdateContext};
use crate::schedule::Schedule;
use crate::stopping::{StopReason, StoppingCondition};
use crate::trace::Trace;

/// The chunk coordinate reserved for the asynchronous schedule's per-round
/// RNG stream.
///
/// A synchronous round is split into `CHUNK_SIZE` work units, chunk `c`
/// drawing from the `(master_seed, round, c)` stream.  An asynchronous round
/// is one sequential unit (each update may read the one before it), so it
/// draws everything — the order shuffle, the neighbour samples, the tie
/// coins — from the single `(master_seed, round, ASYNC_ROUND_CHUNK)` stream.
/// Real chunk indices are bounded by `n / CHUNK_SIZE`, so `u64::MAX` can
/// never collide with one.
pub const ASYNC_ROUND_CHUNK: u64 = u64::MAX;

/// Outcome of a single dynamics run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Consensus winner, when consensus was reached.
    pub winner: Option<Opinion>,
    /// Number of rounds executed (round 0 is the initial configuration and
    /// is not counted).
    pub rounds: usize,
    /// Blue fraction of the initial configuration.
    pub initial_blue_fraction: f64,
    /// Blue fraction of the final configuration.
    pub final_blue_fraction: f64,
    /// The per-round trajectory (present when tracing was enabled).
    pub trace: Option<Trace>,
    /// What the adversary did, when one was configured
    /// ([`Engine::with_adversary`]); `None` on honest runs.
    pub adversary: Option<AdversaryCounters>,
}

impl RunResult {
    /// `true` when the run ended in consensus on red — the outcome Theorem 1
    /// predicts for the paper's parameter regime.
    pub fn red_won(&self) -> bool {
        self.winner == Some(Opinion::Red)
    }

    /// `true` when the run ended in consensus (on either colour).
    pub fn reached_consensus(&self) -> bool {
        self.winner.is_some()
    }
}

/// The one voting-dynamics engine: any [`Topology`], either [`Schedule`],
/// seeded or caller-RNG execution, sequential or multi-threaded.
///
/// The second type parameter is the attached [`Observer`]
/// ([`Engine::with_observer`]); it defaults to [`NoopObserver`], whose hooks
/// monomorphize to nothing — an unobserved engine compiles to exactly the
/// uninstrumented hot path.  Observers read a run, they never perturb it:
/// results are bit-identical with or without one (see [`crate::observe`]).
pub struct Engine<T: Topology, O: Observer = NoopObserver> {
    topo: T,
    schedule: Schedule,
    stopping: StoppingCondition,
    threads: usize,
    record_trace: bool,
    adversary: Option<Adversary>,
    observer: O,
}

impl<T: Topology> Engine<T> {
    /// Creates an engine over `topo` (owned or borrowed — `&T` is itself a
    /// topology) with the defaults: synchronous schedule, stop at consensus,
    /// single-threaded, no trace.
    ///
    /// Fails on the empty topology, and — when the topology is backed by a
    /// materialised graph — on isolated vertices, which could never perform
    /// an update.  Hash-defined implicit topologies cannot be checked
    /// without `Θ(n²)` work and instead panic from sampling if run outside
    /// their dense regime.
    pub fn new(topo: T) -> Result<Self> {
        if topo.n() == 0 {
            return Err(DynamicsError::InvalidGraph {
                reason: "cannot run dynamics on the empty topology".into(),
            });
        }
        if let Some(graph) = topo.as_graph() {
            NeighbourSampler::new(graph)?;
        }
        Ok(Engine {
            topo,
            schedule: Schedule::default(),
            stopping: StoppingCondition::default(),
            threads: 1,
            record_trace: false,
            adversary: None,
            observer: NoopObserver,
        })
    }
}

impl<T: Topology, O: Observer> Engine<T, O> {
    /// Attaches an observer, replacing the current one (the default is the
    /// free [`NoopObserver`]).
    ///
    /// Observers receive read-only notifications — per-round and per-chunk
    /// progress/wall-time, the adversary tally, rejection-sampling effort —
    /// and are bound by the [`crate::observe`] contract: they never consume
    /// randomness or alter control flow, so the run's results are
    /// **bit-identical** with any observer attached, at any thread count, on
    /// either schedule.
    pub fn with_observer<O2: Observer>(self, observer: O2) -> Engine<T, O2> {
        Engine {
            topo: self.topo,
            schedule: self.schedule,
            stopping: self.stopping,
            threads: self.threads,
            record_trace: self.record_trace,
            adversary: self.adversary,
            observer,
        }
    }

    /// The attached observer (use after a run to read what it recorded).
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Sets the update schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the stopping condition.
    pub fn with_stopping(mut self, stopping: StoppingCondition) -> Self {
        self.stopping = stopping;
        self
    }

    /// Sets the worker thread count (`0` means "number of available CPUs").
    ///
    /// Only the synchronous seeded rounds fan out across workers; the result
    /// never depends on this — only the wall clock does.  (An asynchronous
    /// round is sequential by definition: each update may read the previous
    /// one.)
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        };
        self
    }

    /// Enables or disables per-round trace recording.
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Attaches an adversary ([`crate::adversary`]) wrapping every update
    /// step: zealots, Byzantine reporters, message drop and block
    /// partitions, on either schedule.
    ///
    /// The adversary must have been built for this topology's vertex count
    /// (checked by the run entry points) and only applies to built-in
    /// protocol kernels — runs with a custom `dyn` protocol report a typed
    /// error.  Without this call the engine never touches the adversarial
    /// code paths, so honest runs are bit-identical to previous releases.
    pub fn with_adversary(mut self, adversary: Adversary) -> Self {
        self.adversary = Some(adversary);
        self
    }

    /// The configured adversary, if any.
    pub fn adversary(&self) -> Option<&Adversary> {
        self.adversary.as_ref()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// The configured update schedule.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// The configured stopping condition.
    pub fn stopping(&self) -> StoppingCondition {
        self.stopping
    }

    /// Number of worker threads in use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    // ------------------------------------------------------------------
    // Validation helpers
    // ------------------------------------------------------------------

    fn check_initial(&self, initial: &Configuration) -> Result<()> {
        if initial.len() != self.topo.n() {
            return Err(DynamicsError::OpinionLengthMismatch {
                got: initial.len(),
                expected: self.topo.n(),
            });
        }
        Ok(())
    }

    /// Refuses full-neighbourhood protocols on huge hash-defined topologies
    /// (no [`Topology::cheap_rows`]): enumerating their rows tests all
    /// `n − 1` candidate pairs per vertex, `Θ(n²)` per round, so — matching
    /// the `GraphError::TooLarge` policy of the graph-side diagnostics —
    /// that combination is a typed error past
    /// [`bo3_graph::DENSE_ANALYSIS_VERTEX_LIMIT`] instead of an open-ended
    /// grind.
    fn check_kind(&self, kind: ProtocolKind) -> Result<()> {
        if matches!(kind, ProtocolKind::LocalMajority(_))
            && !self.topo.is_all_but_self()
            && !self.topo.cheap_rows()
            && self.topo.n() > bo3_graph::DENSE_ANALYSIS_VERTEX_LIMIT
        {
            return Err(DynamicsError::InvalidParameter {
                reason: format!(
                    "local majority on {} enumerates all n-1 candidate pairs per vertex \
                     (Theta(n^2) per round); refusing beyond {} vertices",
                    self.topo.label(),
                    bo3_graph::DENSE_ANALYSIS_VERTEX_LIMIT
                ),
            });
        }
        Ok(())
    }

    /// Checks that a configured adversary fits this run: it must have been
    /// compiled for this topology's vertex count, and it wraps only the
    /// built-in protocol kernels (a custom `dyn` protocol has no kernel to
    /// wrap, so the combination is a typed error rather than a silently
    /// honest run).
    fn check_adversary(&self, kind: Option<ProtocolKind>) -> Result<()> {
        let Some(adv) = &self.adversary else {
            return Ok(());
        };
        if adv.n() != self.topo.n() {
            return Err(DynamicsError::InvalidParameter {
                reason: format!(
                    "adversary was built for n = {} but the topology has {} vertices",
                    adv.n(),
                    self.topo.n()
                ),
            });
        }
        if kind.is_none() {
            return Err(DynamicsError::InvalidParameter {
                reason: "adversaries wrap the built-in protocol kernels; custom dyn protocols \
                         are not supported — use a ProtocolSpec / ProtocolKind protocol"
                    .into(),
            });
        }
        Ok(())
    }

    /// The materialised graph behind the topology, or the typed error the
    /// `dyn`-protocol paths report on adjacency-free topologies.
    fn dyn_graph(&self) -> Result<&CsrGraph> {
        self.topo
            .as_graph()
            .ok_or_else(|| DynamicsError::InvalidParameter {
                reason: format!(
                    "custom protocols read materialised neighbour rows through UpdateContext, \
                 which {} (an adjacency-free topology) cannot provide; use a built-in \
                 protocol or a materialised graph",
                    self.topo.label()
                ),
            })
    }

    // ------------------------------------------------------------------
    // Synchronous stepping — the only implementations in the crate
    // ------------------------------------------------------------------

    /// Routes one kernel chunk to the best dispatch the topology supports:
    /// graph-backed topologies go through the CSR entry point (which keeps
    /// the materialised-complete-graph row synthesis), everything else
    /// through the fully generic topology dispatch.  Both consume the RNG
    /// identically.
    ///
    /// When the observer wants a sampler meter, the generic arm wraps the
    /// topology in [`MeteredTopology`] — which consumes the RNG identically
    /// and forwards every routing predicate, so metering is invisible in the
    /// output.  The CSR arm samples in one try by construction and stays
    /// unmetered (its try-rate is definitionally 1).
    #[inline]
    fn dispatch<R: RngCore + ?Sized>(
        &self,
        kind: ProtocolKind,
        snap: &PackedSnapshot,
        start: usize,
        out: &mut [Opinion],
        rng: &mut R,
    ) {
        match self.topo.as_graph() {
            Some(graph) => kernel::dispatch_chunk(kind, graph, snap, start, out, rng),
            None => match self.observer.sampler_meter() {
                Some(meter) => kernel::dispatch_chunk_topology(
                    kind,
                    &MeteredTopology::new(&self.topo, meter),
                    snap,
                    start,
                    out,
                    rng,
                ),
                None => kernel::dispatch_chunk_topology(kind, &self.topo, snap, start, out, rng),
            },
        }
    }

    /// [`Engine::dispatch`] for callers whose chunk RNG is **scoped** — one
    /// fresh stream per `(master_seed, round, chunk)` work unit, dropped at
    /// chunk end.  Scoping is what licenses the draw-ahead lane kernel (its
    /// pre-drawn-but-unconsumed tail is unobservable when nothing else ever
    /// reads the stream), so hash-defined topologies route through
    /// [`kernel::try_dispatch_chunk_lane`] here and only here; caller-RNG
    /// steppers keep the strict scalar [`Engine::dispatch`].  Accepted
    /// neighbours — and therefore outputs — are bit-identical either way.
    #[inline]
    fn dispatch_scoped<R: RngCore + ?Sized>(
        &self,
        kind: ProtocolKind,
        snap: &PackedSnapshot,
        start: usize,
        out: &mut [Opinion],
        rng: &mut R,
    ) {
        if self.topo.as_graph().is_none() {
            if let Some(spec) = self.topo.pair_hash_spec() {
                if kernel::try_dispatch_chunk_lane(
                    kind,
                    spec,
                    snap,
                    start,
                    out,
                    rng,
                    self.observer.sampler_meter(),
                ) {
                    return;
                }
            }
        }
        self.dispatch(kind, snap, start, out, rng)
    }

    /// [`adversary::dispatch_chunk_adversarial`] behind the same
    /// meter-or-not routing as [`Engine::dispatch`]: the wrapper forwards
    /// `as_graph`, so the adversarial dispatch's internal CSR-vs-generic
    /// choice is unchanged by metering.
    #[allow(clippy::too_many_arguments)] // private plumbing: mirrors the adversarial dispatch
    #[inline]
    fn dispatch_adversarial<R: RngCore + ?Sized, A: RngCore + ?Sized>(
        &self,
        adv: &Adversary,
        kind: ProtocolKind,
        snap: &PackedSnapshot,
        start: usize,
        out: &mut [Opinion],
        round: u64,
        rng: &mut R,
        adv_rng: &mut A,
        dropped: &AtomicU64,
    ) {
        match self.observer.sampler_meter() {
            Some(meter) => adversary::dispatch_chunk_adversarial(
                adv,
                kind,
                &MeteredTopology::new(&self.topo, meter),
                snap,
                start,
                out,
                round,
                rng,
                adv_rng,
                dropped,
            ),
            None => adversary::dispatch_chunk_adversarial(
                adv, kind, &self.topo, snap, start, out, round, rng, adv_rng, dropped,
            ),
        }
    }

    /// One caller-RNG synchronous round: reads `current`, writes the next
    /// opinions into `next` (cleared and refilled), consuming `rng` over the
    /// whole vertex range in order.
    ///
    /// `round` and `dropped` feed the adversary (partition windows, the
    /// drop-coin stream and the drop tally); honest rounds ignore both.
    /// Caller-RNG execution is sequential (one work unit), so the
    /// adversary's stream coordinate is `(stream_seed, round, 0)`.
    #[allow(clippy::too_many_arguments)] // private plumbing: scratch buffers ride along
    fn step_sync_with_rng(
        &self,
        protocol: &dyn Protocol,
        kind: Option<ProtocolKind>,
        sampler: Option<&NeighbourSampler<'_>>,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        snap: &mut PackedSnapshot,
        round: u64,
        dropped: &AtomicU64,
        rng: &mut dyn RngCore,
    ) {
        let prev = current.as_slice();
        next.clear();
        if let Some(kind) = kind {
            next.resize(prev.len(), Opinion::Red);
            snap.repack_from(prev);
            match &self.adversary {
                None => self.dispatch(kind, snap, 0, next, rng),
                Some(adv) => {
                    let mut adv_rng = adv.round_rng(0, round, 0);
                    self.dispatch_adversarial(
                        adv,
                        kind,
                        snap,
                        0,
                        next,
                        round,
                        rng,
                        &mut adv_rng,
                        dropped,
                    );
                }
            }
            return;
        }
        let sampler = sampler.expect("dyn-path rounds carry a sampler");
        next.reserve(prev.len());
        for v in 0..prev.len() {
            let ctx = UpdateContext {
                vertex: v,
                current: prev[v],
                previous: prev,
                sampler,
            };
            next.push(protocol.update(&ctx, rng));
        }
    }

    /// One seeded synchronous kernel round: one RNG per
    /// `(master_seed, round, chunk)` work unit via
    /// [`kernel::kernel_chunk_rng`], chunks fanned across the worker pool —
    /// bit-identical at any thread count.
    #[allow(clippy::too_many_arguments)] // private plumbing: scratch buffers ride along
    fn step_sync_seeded_kernel(
        &self,
        kind: ProtocolKind,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        snap: &mut PackedSnapshot,
        master_seed: u64,
        round: u64,
        dropped: &AtomicU64,
    ) {
        let prev = current.as_slice();
        next.clear();
        next.resize(prev.len(), Opinion::Red);
        snap.repack_from(prev);
        let snap_ref = &*snap;
        match &self.adversary {
            None => crate::parallel::run_chunks(self.threads, next, &|chunk, start, out| {
                let timer = maybe_now(&self.observer);
                let mut rng = kernel::kernel_chunk_rng(master_seed, round, chunk);
                self.dispatch_scoped(kind, snap_ref, start, out, &mut rng);
                if let Some(t0) = timer {
                    self.observer
                        .on_chunk(chunk, out.len() as u64, t0.elapsed().as_nanos() as u64);
                }
            }),
            // The adversarial round keeps the exact same kernel streams and
            // chunk layout; the adversary's drop coins ride a second,
            // salted per-(seed, round, chunk) stream, so the round stays
            // bit-identical at any thread count.
            Some(adv) => crate::parallel::run_chunks(self.threads, next, &|chunk, start, out| {
                let timer = maybe_now(&self.observer);
                let mut rng = kernel::kernel_chunk_rng(master_seed, round, chunk);
                let mut adv_rng = adv.round_rng(master_seed, round, chunk);
                self.dispatch_adversarial(
                    adv,
                    kind,
                    snap_ref,
                    start,
                    out,
                    round,
                    &mut rng,
                    &mut adv_rng,
                    dropped,
                );
                if let Some(t0) = timer {
                    self.observer
                        .on_chunk(chunk, out.len() as u64, t0.elapsed().as_nanos() as u64);
                }
            }),
        }
    }

    /// One seeded synchronous `dyn`-fallback round: the same chunk schedule
    /// with the ChaCha8 [`crate::parallel::chunk_rng`] streams the fallback
    /// has always used.
    fn step_sync_seeded_dyn(
        &self,
        protocol: &dyn Protocol,
        sampler: &NeighbourSampler<'_>,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        master_seed: u64,
        round: u64,
    ) {
        let prev = current.as_slice();
        next.clear();
        next.resize(prev.len(), Opinion::Red);
        crate::parallel::run_chunks(self.threads, next, &|chunk, start, out| {
            let mut rng = crate::parallel::chunk_rng(master_seed, round, chunk);
            crate::parallel::update_chunk(protocol, sampler, prev, start, out, &mut rng);
        });
    }

    // ------------------------------------------------------------------
    // Asynchronous stepping — the only implementation in the crate
    // ------------------------------------------------------------------

    /// One asynchronous (random sequential) round: every vertex updates
    /// exactly once, in a fresh uniformly random order drawn from `rng`,
    /// reading the **current** (partially updated) state.
    ///
    /// Built-in protocols run the live-state kernel update
    /// ([`kernel::update_vertex_live`]) against a bit-packed mirror of the
    /// configuration — which is what makes the round topology-generic (an
    /// implicit topology samples neighbours arithmetically) — while custom
    /// protocols keep the materialised `dyn` loop.  Both consume `rng`
    /// identically for the protocols both can express.
    ///
    /// `scoped` declares that `rng` is a per-round stream dropped when the
    /// round ends (the seeded `(master_seed, round, ASYNC_ROUND_CHUNK)`
    /// stream) — the licence the draw-ahead lane sweep needs to pre-draw
    /// candidates; see the contract in `bo3_graph::topology`.  Caller-held
    /// RNGs (`step_asynchronous_with`, `run`) pass `false` and stay on the
    /// strict scalar sweep, preserving their RNG positions draw for draw.
    #[allow(clippy::too_many_arguments)] // private plumbing: scratch buffers ride along
    fn step_async(
        &self,
        protocol: Option<&dyn Protocol>,
        kind: Option<ProtocolKind>,
        sampler: Option<&NeighbourSampler<'_>>,
        config: &mut Configuration,
        order: &mut Vec<usize>,
        live: &mut PackedSnapshot,
        round: u64,
        adv_master: u64,
        dropped: &AtomicU64,
        scoped: bool,
        rng: &mut dyn RngCore,
    ) {
        // Identity-refill then shuffle: the buffer's allocation is reused
        // across rounds (see `AsyncScratch`), but its *contents* must be the
        // identity permutation before each shuffle — shuffling last round's
        // order instead would change the pinned seeded permutation.
        order.clear();
        order.extend(0..config.len());
        {
            let mut r = &mut *rng;
            order.shuffle(&mut r);
        }
        match kind {
            Some(kind) => {
                live.repack_from(config.as_slice());
                if let Some(adv) = &self.adversary {
                    // Asynchronous rounds are one sequential work unit, so
                    // the adversary stream mirrors the kernel stream's
                    // layout: one stream per round at ASYNC_ROUND_CHUNK.
                    let mut adv_rng = adv.round_rng(adv_master, round, ASYNC_ROUND_CHUNK);
                    let mut lost = 0u64;
                    match self.observer.sampler_meter() {
                        Some(meter) => async_adversarial_sweep(
                            adv,
                            kind,
                            &MeteredTopology::new(&self.topo, meter),
                            order,
                            live,
                            config,
                            round,
                            rng,
                            &mut adv_rng,
                            &mut lost,
                        ),
                        None => async_adversarial_sweep(
                            adv,
                            kind,
                            &self.topo,
                            order,
                            live,
                            config,
                            round,
                            rng,
                            &mut adv_rng,
                            &mut lost,
                        ),
                    }
                    if lost > 0 {
                        dropped.fetch_add(lost, Ordering::Relaxed);
                    }
                    return;
                }
                if scoped && self.topo.as_graph().is_none() {
                    if let (Some(k), Some(spec)) =
                        (kernel::lane_samples(kind), self.topo.pair_hash_spec())
                    {
                        async_lane_sweep(
                            k,
                            spec,
                            order,
                            live,
                            config,
                            rng,
                            self.observer.sampler_meter(),
                        );
                        return;
                    }
                }
                match self.observer.sampler_meter() {
                    Some(meter) => async_kernel_sweep(
                        kind,
                        &MeteredTopology::new(&self.topo, meter),
                        order,
                        live,
                        config,
                        rng,
                    ),
                    None => async_kernel_sweep(kind, &self.topo, order, live, config, rng),
                }
            }
            None => {
                assert!(
                    self.adversary.is_none(),
                    "adversaries wrap the built-in protocol kernels; custom dyn protocols are \
                     not supported (the run entry points report this as a typed error)"
                );
                let protocol = protocol.expect("dyn-path rounds carry a protocol");
                let sampler = sampler.expect("dyn-path rounds carry a sampler");
                for &v in order.iter() {
                    let new_opinion = {
                        let prev = config.as_slice();
                        let ctx = UpdateContext {
                            vertex: v,
                            current: prev[v],
                            previous: prev,
                            sampler,
                        };
                        protocol.update(&ctx, rng)
                    };
                    config.set(v, new_opinion);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Public single-step entry points
    // ------------------------------------------------------------------

    /// The `dyn`-fallback sampler for the panicking step entry points:
    /// `None` when `kind` is present (kernel paths need no sampler), else
    /// the unchecked sampler over the backing graph — panicking, unlike the
    /// run entry points' typed [`Engine::dyn_graph`] error, because the
    /// step signatures predate the unification and return `()`.
    fn step_sampler(&self, kind: Option<ProtocolKind>) -> Option<NeighbourSampler<'_>> {
        if kind.is_some() {
            return None;
        }
        Some(NeighbourSampler::new_unchecked(
            self.dyn_graph()
                .expect("custom protocols need a materialised graph"),
        ))
    }

    /// Performs one caller-RNG synchronous round: reads `current`, writes
    /// the next opinions into `next` (which is cleared and refilled).
    ///
    /// Built-in protocols ([`Protocol::kind`] returns `Some`) run through
    /// the monomorphized kernels over a bit-packed snapshot; custom
    /// protocols use the generic `dyn` loop, which needs a materialised
    /// graph behind the topology (panics otherwise — use the run entry
    /// points for a typed error).  Both paths consume `rng` identically, so
    /// the choice is invisible in the output.
    pub fn step_synchronous(
        &self,
        protocol: &dyn Protocol,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        rng: &mut dyn RngCore,
    ) {
        let kind = protocol.kind();
        let sampler = self.step_sampler(kind);
        let mut snap = PackedSnapshot::all_red(0);
        let dropped = AtomicU64::new(0);
        self.step_sync_with_rng(
            protocol,
            kind,
            sampler.as_ref(),
            current,
            next,
            &mut snap,
            0,
            &dropped,
            rng,
        );
    }

    /// Performs one caller-RNG asynchronous round on the live configuration
    /// (see the module docs); panics like [`Engine::step_synchronous`] when
    /// a custom protocol meets an adjacency-free topology.
    ///
    /// Allocates the round's scratch buffers afresh — callers stepping many
    /// rounds should hold an [`AsyncScratch`] and use
    /// [`Engine::step_asynchronous_with`] instead, which reuses them.
    pub fn step_asynchronous(
        &self,
        protocol: &dyn Protocol,
        config: &mut Configuration,
        rng: &mut dyn RngCore,
    ) {
        let mut scratch = AsyncScratch::new();
        self.step_asynchronous_with(protocol, config, &mut scratch, rng);
    }

    /// [`Engine::step_asynchronous`] with caller-held scratch: the shuffled
    /// order buffer and the packed live mirror are reused across rounds
    /// instead of re-allocated every call.  Buffer reuse never changes the
    /// output — each round refills the order with the identity permutation
    /// before shuffling, so the permutation stream is exactly the fresh
    /// allocation's (the schedule-matrix suite pins this bit-identical).
    pub fn step_asynchronous_with(
        &self,
        protocol: &dyn Protocol,
        config: &mut Configuration,
        scratch: &mut AsyncScratch,
        rng: &mut dyn RngCore,
    ) {
        let kind = protocol.kind();
        let sampler = self.step_sampler(kind);
        let dropped = AtomicU64::new(0);
        self.step_async(
            Some(protocol),
            kind,
            sampler.as_ref(),
            config,
            &mut scratch.order,
            &mut scratch.live,
            0,
            0,
            &dropped,
            false,
            rng,
        );
    }

    /// Performs one synchronous round with the seeded
    /// `(master_seed, round, chunk)` RNG derivation (kernel streams for
    /// built-in protocols, ChaCha8 streams for the `dyn` fallback), across
    /// the configured worker pool.
    pub fn step_seeded(
        &self,
        protocol: &dyn Protocol,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        master_seed: u64,
        round: u64,
    ) {
        let mut snap = PackedSnapshot::all_red(0);
        let dropped = AtomicU64::new(0);
        match protocol.kind() {
            Some(kind) => self.step_sync_seeded_kernel(
                kind,
                current,
                next,
                &mut snap,
                master_seed,
                round,
                &dropped,
            ),
            None => {
                let sampler = self.step_sampler(None).expect("dyn path builds a sampler");
                self.step_sync_seeded_dyn(protocol, &sampler, current, next, master_seed, round);
            }
        }
    }

    /// [`Engine::step_seeded`] with the protocol given as a bare
    /// [`ProtocolKind`] — the entry point for topology-generic callers that
    /// never box a protocol.
    pub fn step_seeded_kind(
        &self,
        kind: ProtocolKind,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        master_seed: u64,
        round: u64,
    ) {
        let mut snap = PackedSnapshot::all_red(0);
        let dropped = AtomicU64::new(0);
        self.step_sync_seeded_kernel(kind, current, next, &mut snap, master_seed, round, &dropped);
    }

    // ------------------------------------------------------------------
    // Runners
    // ------------------------------------------------------------------

    /// Runs the dynamics from `initial` until the stopping condition fires,
    /// with every draw taken from the caller's `rng` (both schedules;
    /// sequential — seeded execution is what fans out across threads).
    pub fn run(
        &self,
        protocol: &dyn Protocol,
        initial: Configuration,
        rng: &mut dyn RngCore,
    ) -> Result<RunResult> {
        self.check_initial(&initial)?;
        let kind = protocol.kind();
        self.check_adversary(kind)?;
        if let Some(kind) = kind {
            self.check_kind(kind)?;
        }
        let sampler = if kind.is_none() {
            Some(NeighbourSampler::new_unchecked(self.dyn_graph()?))
        } else {
            None
        };
        let mut scratch: Vec<Opinion> = Vec::with_capacity(initial.len());
        let mut snap = PackedSnapshot::all_red(0);
        let mut order: Vec<usize> = Vec::new();
        let dropped = AtomicU64::new(0);
        let mut result = drive(
            &self.stopping,
            self.record_trace,
            initial,
            |config, round| {
                let timer = maybe_now(&self.observer);
                match self.schedule {
                    Schedule::Synchronous => {
                        self.step_sync_with_rng(
                            protocol,
                            kind,
                            sampler.as_ref(),
                            config,
                            &mut scratch,
                            &mut snap,
                            round as u64,
                            &dropped,
                            rng,
                        );
                        config.overwrite_from(&scratch);
                    }
                    Schedule::AsynchronousRandomOrder => {
                        self.step_async(
                            Some(protocol),
                            kind,
                            sampler.as_ref(),
                            config,
                            &mut order,
                            &mut snap,
                            round as u64,
                            0,
                            &dropped,
                            false,
                            rng,
                        );
                    }
                }
                if let Some(t0) = timer {
                    self.observer.on_round(
                        round as u64,
                        config.len() as u64,
                        t0.elapsed().as_nanos() as u64,
                    );
                }
            },
        );
        if let Some(adv) = &self.adversary {
            let counters = adv.counters(result.rounds, dropped.into_inner());
            self.observer.on_adversary(&counters);
            result.adversary = Some(counters);
        }
        Ok(result)
    }

    /// Runs the dynamics with all randomness derived from `master_seed`.
    ///
    /// Synchronous runs derive one RNG per `(master_seed, round, chunk)`
    /// work unit and are **bit-for-bit identical at any thread count**;
    /// asynchronous runs derive one RNG per round (chunk coordinate
    /// [`ASYNC_ROUND_CHUNK`]) and execute sequentially, so the same property
    /// holds trivially.  See [`Schedule`] for the full determinism
    /// semantics.
    pub fn run_seeded(
        &self,
        protocol: &dyn Protocol,
        initial: Configuration,
        master_seed: u64,
    ) -> Result<RunResult> {
        match protocol.kind() {
            Some(kind) => self.run_seeded_kind(kind, initial, master_seed),
            None => self.run_seeded_dyn(protocol, initial, master_seed),
        }
    }

    /// [`Engine::run_seeded`] for a bare [`ProtocolKind`] — the
    /// topology-generic entry point (custom `dyn` protocols have no kind and
    /// go through [`Engine::run_seeded`] instead).
    pub fn run_seeded_kind(
        &self,
        kind: ProtocolKind,
        initial: Configuration,
        master_seed: u64,
    ) -> Result<RunResult> {
        match self.run_seeded_kind_budgeted(kind, initial, master_seed, &RunBudget::unlimited())? {
            RunOutcome::Completed(result) => Ok(result),
            RunOutcome::Paused(_) => unreachable!("an unlimited budget never pauses"),
        }
    }

    /// [`Engine::run_seeded_kind`] under a [`RunBudget`]: the run yields at
    /// the round boundary where the budget first fires and hands back a
    /// [`RunCheckpoint`]; [`Engine::resume`] continues it **bit-identically**
    /// to an uninterrupted run, on either schedule, at any thread count (see
    /// [`crate::checkpoint`] for why the checkpoint needs no RNG state).
    pub fn run_seeded_kind_budgeted(
        &self,
        kind: ProtocolKind,
        initial: Configuration,
        master_seed: u64,
        budget: &RunBudget,
    ) -> Result<RunOutcome> {
        self.check_initial(&initial)?;
        self.check_adversary(Some(kind))?;
        self.check_kind(kind)?;
        let state = DriveState::fresh(initial, self.record_trace);
        self.seeded_kind_slice(kind, master_seed, state, 0, budget)
    }

    /// Continues a paused seeded run from its checkpoint, under a new
    /// budget.  The engine must be configured identically to the one that
    /// produced the checkpoint (same topology size, schedule, stopping
    /// condition and trace flag) — mismatches are typed errors, never silent
    /// divergence.  The thread count is free to differ: seeded rounds are
    /// bit-identical at any thread count.
    pub fn resume(&self, checkpoint: &RunCheckpoint, budget: &RunBudget) -> Result<RunOutcome> {
        let bad = |reason: String| DynamicsError::InvalidParameter { reason };
        if checkpoint.version != RUN_CHECKPOINT_VERSION {
            return Err(bad(format!(
                "checkpoint version {} is not the supported version {RUN_CHECKPOINT_VERSION}",
                checkpoint.version
            )));
        }
        if checkpoint.n != self.topo.n() {
            return Err(bad(format!(
                "checkpoint was taken at n = {} but the topology has {} vertices",
                checkpoint.n,
                self.topo.n()
            )));
        }
        if checkpoint.schedule != self.schedule {
            return Err(bad(format!(
                "checkpoint was taken under the {} schedule but the engine runs {}",
                checkpoint.schedule.label(),
                self.schedule.label()
            )));
        }
        if checkpoint.stopping != self.stopping {
            return Err(bad(
                "checkpoint stopping condition differs from the engine's".into(),
            ));
        }
        if checkpoint.trace.is_some() != self.record_trace {
            return Err(bad(format!(
                "checkpoint {} a partial trace but the engine has tracing {}",
                if checkpoint.trace.is_some() {
                    "carries"
                } else {
                    "lacks"
                },
                if self.record_trace { "on" } else { "off" }
            )));
        }
        self.check_adversary(Some(checkpoint.protocol))?;
        self.check_kind(checkpoint.protocol)?;
        let state = DriveState {
            config: checkpoint.configuration()?,
            rounds: checkpoint.round,
            trace: checkpoint.trace.clone(),
            initial_blue_fraction: checkpoint.initial_blue_fraction,
        };
        self.seeded_kind_slice(
            checkpoint.protocol,
            checkpoint.master_seed,
            state,
            checkpoint.dropped_samples,
            budget,
        )
    }

    /// [`Engine::resume`] with an unlimited budget: runs the checkpoint to
    /// completion.
    pub fn resume_to_end(&self, checkpoint: &RunCheckpoint) -> Result<RunResult> {
        match self.resume(checkpoint, &RunBudget::unlimited())? {
            RunOutcome::Completed(result) => Ok(result),
            RunOutcome::Paused(_) => unreachable!("an unlimited budget never pauses"),
        }
    }

    /// The one seeded-kernel slice driver behind [`Engine::run_seeded_kind`],
    /// [`Engine::run_seeded_kind_budgeted`] and [`Engine::resume`]: drives
    /// rounds (both schedules) until the stopping condition or the budget
    /// fires, then assembles the result or captures the checkpoint.
    fn seeded_kind_slice(
        &self,
        kind: ProtocolKind,
        master_seed: u64,
        state: DriveState,
        prior_dropped: u64,
        budget: &RunBudget,
    ) -> Result<RunOutcome> {
        let mut scratch: Vec<Opinion> = Vec::with_capacity(state.config.len());
        // The packed snapshot doubles as the async path's live mirror; it is
        // repacked in place each round either way.
        let mut snap = PackedSnapshot::all_red(0);
        let mut order: Vec<usize> = Vec::new();
        let dropped = AtomicU64::new(prior_dropped);
        let outcome = drive_budgeted(&self.stopping, budget, state, |config, round| {
            let timer = maybe_now(&self.observer);
            match self.schedule {
                Schedule::Synchronous => {
                    self.step_sync_seeded_kernel(
                        kind,
                        config,
                        &mut scratch,
                        &mut snap,
                        master_seed,
                        round as u64,
                        &dropped,
                    );
                    config.overwrite_from(&scratch);
                }
                Schedule::AsynchronousRandomOrder => {
                    let mut rng =
                        kernel::kernel_chunk_rng(master_seed, round as u64, ASYNC_ROUND_CHUNK);
                    self.step_async(
                        None,
                        Some(kind),
                        None,
                        config,
                        &mut order,
                        &mut snap,
                        round as u64,
                        master_seed,
                        &dropped,
                        true,
                        &mut rng,
                    );
                }
            }
            if let Some(t0) = timer {
                self.observer.on_round(
                    round as u64,
                    config.len() as u64,
                    t0.elapsed().as_nanos() as u64,
                );
            }
        });
        match outcome {
            DriveOutcome::Done(mut result) => {
                if let Some(adv) = &self.adversary {
                    let counters = adv.counters(result.rounds, dropped.into_inner());
                    self.observer.on_adversary(&counters);
                    result.adversary = Some(counters);
                }
                Ok(RunOutcome::Completed(result))
            }
            DriveOutcome::Paused(state) => Ok(RunOutcome::Paused(Box::new(RunCheckpoint {
                version: RUN_CHECKPOINT_VERSION,
                protocol: kind,
                schedule: self.schedule,
                stopping: self.stopping,
                master_seed,
                round: state.rounds,
                n: state.config.len(),
                opinion_words: pack_opinions(state.config.as_slice()),
                initial_blue_fraction: state.initial_blue_fraction,
                dropped_samples: dropped.into_inner(),
                trace: state.trace,
            }))),
        }
    }

    /// The seeded `dyn`-fallback runner: ChaCha8 streams over the same
    /// work-unit coordinates as the kernel path.
    fn run_seeded_dyn(
        &self,
        protocol: &dyn Protocol,
        initial: Configuration,
        master_seed: u64,
    ) -> Result<RunResult> {
        self.check_initial(&initial)?;
        self.check_adversary(None)?;
        let graph = self.dyn_graph()?;
        let sampler = NeighbourSampler::new_unchecked(graph);
        let mut scratch: Vec<Opinion> = Vec::with_capacity(initial.len());
        let mut snap = PackedSnapshot::all_red(0);
        let mut order: Vec<usize> = Vec::new();
        let dropped = AtomicU64::new(0);
        Ok(drive(
            &self.stopping,
            self.record_trace,
            initial,
            |config, round| {
                let timer = maybe_now(&self.observer);
                match self.schedule {
                    Schedule::Synchronous => {
                        self.step_sync_seeded_dyn(
                            protocol,
                            &sampler,
                            config,
                            &mut scratch,
                            master_seed,
                            round as u64,
                        );
                        config.overwrite_from(&scratch);
                    }
                    Schedule::AsynchronousRandomOrder => {
                        let mut rng = crate::parallel::chunk_rng(
                            master_seed,
                            round as u64,
                            ASYNC_ROUND_CHUNK,
                        );
                        self.step_async(
                            Some(protocol),
                            None,
                            Some(&sampler),
                            config,
                            &mut order,
                            &mut snap,
                            round as u64,
                            0,
                            &dropped,
                            false,
                            &mut rng,
                        );
                    }
                }
                if let Some(t0) = timer {
                    self.observer.on_round(
                        round as u64,
                        config.len() as u64,
                        t0.elapsed().as_nanos() as u64,
                    );
                }
            },
        ))
    }
}

/// Creates an engine over a borrowed materialised graph — shorthand for
/// `Engine::new(CsrTopology::new(graph))`, the migration target for code
/// written against the historical CSR-only `Simulator`.
impl<'g> Engine<CsrTopology<'g>> {
    /// See [`Engine::new`]; fails on empty graphs and isolated vertices.
    pub fn on_graph(graph: &'g CsrGraph) -> Result<Self> {
        Engine::new(CsrTopology::new(graph))
    }
}

impl<'g, O: Observer> Engine<CsrTopology<'g>, O> {
    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.topology().graph()
    }
}

/// The honest asynchronous kernel sweep, generic over the (possibly
/// metered) topology so the observer's sampler meter can wrap it without a
/// second copy of the loop.
///
/// The live blue count makes the complete-topology local majority O(1) per
/// update instead of a Θ(n) row walk; it is maintained exactly, so counts
/// (and tie coins) match the row-walking path bit for bit.
fn async_kernel_sweep<T: Topology>(
    kind: ProtocolKind,
    topo: &T,
    order: &[usize],
    live: &mut PackedSnapshot,
    config: &mut Configuration,
    rng: &mut dyn RngCore,
) {
    let mut blues = live.blue_count();
    for &v in order {
        let new = kernel::update_vertex_live(kind, topo, live, blues, v, rng);
        if live.get(v) != new {
            blues = if new.is_blue() { blues + 1 } else { blues - 1 };
            live.set(v, new);
            config.set(v, new);
        }
    }
}

/// The draw-ahead asynchronous sweep for fixed-draw-count protocols on
/// hash-defined topologies: [`async_kernel_sweep`] with the per-vertex
/// scalar sampling replaced by one [`NeighbourLane`] shared across the
/// round.  Only seeded rounds may take this path — the round RNG is scoped
/// to `(master_seed, round, ASYNC_ROUND_CHUNK)` and dropped at round end,
/// which is what makes the lane's pre-drawn tail unobservable — and the
/// accepted neighbours are bit-identical to the scalar sweep, so the
/// partially-updated live state evolves identically.
///
/// The lane-eligible kinds never reach a tie coin (`kernel::lane_samples`
/// filters for odd draw counts or `KeepOwn`), so the pure majority decision
/// [`kernel::decide_pure`] is the whole update rule.
fn async_lane_sweep(
    k: usize,
    spec: PairHashSpec,
    order: &[usize],
    live: &mut PackedSnapshot,
    config: &mut Configuration,
    rng: &mut dyn RngCore,
    meter: Option<&SamplerMeter>,
) {
    let mut lane = NeighbourLane::new(spec);
    for &v in order {
        let mut blues = 0usize;
        for _ in 0..k {
            let (w, _) = lane.sample(v, rng);
            blues += live.is_blue(w) as usize;
        }
        let new = kernel::decide_pure(blues, k, live.get(v));
        if live.get(v) != new {
            live.set(v, new);
            config.set(v, new);
        }
    }
    if let Some(meter) = meter {
        meter.record_lane(lane.consumed(), (order.len() * k) as u64, lane.drawn());
    }
}

/// The adversarial asynchronous sweep, generic like [`async_kernel_sweep`]
/// (zealots skip their update; `lost` tallies samples the adversary ate).
#[allow(clippy::too_many_arguments)] // private plumbing: mirrors the adversarial update
fn async_adversarial_sweep<T: Topology>(
    adv: &Adversary,
    kind: ProtocolKind,
    topo: &T,
    order: &[usize],
    live: &mut PackedSnapshot,
    config: &mut Configuration,
    round: u64,
    rng: &mut dyn RngCore,
    adv_rng: &mut dyn RngCore,
    lost: &mut u64,
) {
    for &v in order {
        if adv.is_zealot(v) {
            continue;
        }
        let new = adversary::update_vertex_adversarial(
            adv, kind, topo, live, v, round, rng, adv_rng, lost,
        );
        if live.get(v) != new {
            live.set(v, new);
            config.set(v, new);
        }
    }
}

/// Caller-held scratch buffers for repeated asynchronous stepping: the
/// shuffled vertex order and the packed live mirror, reused across rounds by
/// [`Engine::step_asynchronous_with`] instead of re-allocated per call.
///
/// Reuse is purely an allocation optimisation — each round refills the order
/// buffer with the identity permutation before shuffling, so the results are
/// bit-identical to fresh buffers.
pub struct AsyncScratch {
    pub(crate) order: Vec<usize>,
    pub(crate) live: PackedSnapshot,
}

impl AsyncScratch {
    /// Creates empty scratch; the first round sizes the buffers.
    pub fn new() -> Self {
        AsyncScratch {
            order: Vec::new(),
            live: PackedSnapshot::all_red(0),
        }
    }
}

impl Default for AsyncScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Synchronous / asynchronous voting dynamics simulator over a borrowed
/// graph — the historical CSR-only engine, now a thin façade over
/// [`Engine`]`<CsrTopology>` kept so existing call sites (and the pinned
/// determinism suites) keep compiling; new code should use [`Engine`]
/// directly.  Every method forwards; no stepping logic lives here.
pub struct Simulator<'g> {
    engine: Engine<CsrTopology<'g>>,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator with the default (synchronous, stop-at-consensus)
    /// behaviour. Fails if the graph is empty or has an isolated vertex,
    /// which could never perform an update.
    pub fn new(graph: &'g CsrGraph) -> Result<Self> {
        Ok(Simulator {
            engine: Engine::on_graph(graph)?,
        })
    }

    /// Sets the update schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.engine = self.engine.with_schedule(schedule);
        self
    }

    /// Sets the stopping condition.
    pub fn with_stopping(mut self, stopping: StoppingCondition) -> Self {
        self.engine = self.engine.with_stopping(stopping);
        self
    }

    /// Enables or disables per-round trace recording.
    pub fn with_trace(mut self, record: bool) -> Self {
        self.engine = self.engine.with_trace(record);
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.engine.graph()
    }

    /// The configured stopping condition.
    pub fn stopping(&self) -> StoppingCondition {
        self.engine.stopping()
    }

    /// One caller-RNG synchronous round — see [`Engine::step_synchronous`].
    pub fn step_synchronous(
        &self,
        protocol: &dyn Protocol,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        rng: &mut dyn RngCore,
    ) {
        self.engine.step_synchronous(protocol, current, next, rng);
    }

    /// One caller-RNG asynchronous round — see [`Engine::step_asynchronous`].
    pub fn step_asynchronous(
        &self,
        protocol: &dyn Protocol,
        config: &mut Configuration,
        rng: &mut dyn RngCore,
    ) {
        self.engine.step_asynchronous(protocol, config, rng);
    }

    /// One seeded synchronous round — see [`Engine::step_seeded`].
    pub fn step_seeded(
        &self,
        protocol: &dyn Protocol,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        master_seed: u64,
        round: u64,
    ) {
        self.engine
            .step_seeded(protocol, current, next, master_seed, round);
    }

    /// Seeded run — see [`Engine::run_seeded`].
    pub fn run_seeded(
        &self,
        protocol: &dyn Protocol,
        initial: Configuration,
        master_seed: u64,
    ) -> Result<RunResult> {
        self.engine.run_seeded(protocol, initial, master_seed)
    }

    /// Caller-RNG run — see [`Engine::run`].
    pub fn run(
        &self,
        protocol: &dyn Protocol,
        initial: Configuration,
        rng: &mut dyn RngCore,
    ) -> Result<RunResult> {
        self.engine.run(protocol, initial, rng)
    }
}

/// In-flight state of a (possibly sliced) run: what [`drive_budgeted`]
/// threads from slice to slice, and what a [`RunCheckpoint`] captures.
pub(crate) struct DriveState {
    pub(crate) config: Configuration,
    pub(crate) rounds: usize,
    pub(crate) trace: Option<Trace>,
    pub(crate) initial_blue_fraction: f64,
}

impl DriveState {
    /// Round-0 state of a fresh run (records the trace's round 0).
    pub(crate) fn fresh(initial: Configuration, record_trace: bool) -> Self {
        let initial_blue_fraction = initial.blue_fraction();
        let mut trace = if record_trace {
            Some(Trace::new())
        } else {
            None
        };
        if let Some(t) = trace.as_mut() {
            t.record(0, &initial);
        }
        DriveState {
            config: initial,
            rounds: 0,
            trace,
            initial_blue_fraction,
        }
    }
}

/// What one [`drive_budgeted`] call produced.
pub(crate) enum DriveOutcome {
    /// The stopping condition fired.
    Done(RunResult),
    /// The budget fired at a round boundary; the state is ready to continue.
    Paused(DriveState),
}

/// The shared run driver: applies `round_fn` until `stopping` or the budget
/// fires, recording the trace and assembling the [`RunResult`].
///
/// Every runner goes through this single loop, so stopping, trace and
/// bookkeeping semantics cannot drift between schedules or execution modes
/// (the bit-identical determinism contract depends on that).  The budget is
/// checked *after* the stopping condition at each round boundary — these are
/// the yield points — so a run whose stopping condition fires within the
/// slice completes rather than pausing, and pausing never observes a
/// half-applied round.
pub(crate) fn drive_budgeted(
    stopping: &StoppingCondition,
    budget: &RunBudget,
    mut state: DriveState,
    mut round_fn: impl FnMut(&mut Configuration, usize),
) -> DriveOutcome {
    let mut slice_rounds = 0usize;
    loop {
        if let Some(reason) = stopping.should_stop(&state.config, state.rounds) {
            return DriveOutcome::Done(RunResult {
                stop_reason: reason,
                winner: reason.winner(),
                rounds: state.rounds,
                initial_blue_fraction: state.initial_blue_fraction,
                final_blue_fraction: state.config.blue_fraction(),
                trace: state.trace,
                adversary: None,
            });
        }
        if budget.should_pause(slice_rounds) {
            return DriveOutcome::Paused(state);
        }
        round_fn(&mut state.config, state.rounds);
        state.rounds += 1;
        slice_rounds += 1;
        if let Some(t) = state.trace.as_mut() {
            t.record(state.rounds, &state.config);
        }
    }
}

/// [`drive_budgeted`] with an unlimited budget — the unbudgeted runners'
/// entry point.
pub(crate) fn drive(
    stopping: &StoppingCondition,
    record_trace: bool,
    initial: Configuration,
    round_fn: impl FnMut(&mut Configuration, usize),
) -> RunResult {
    match drive_budgeted(
        stopping,
        &RunBudget::unlimited(),
        DriveState::fresh(initial, record_trace),
        round_fn,
    ) {
        DriveOutcome::Done(result) => result,
        DriveOutcome::Paused(_) => unreachable!("an unlimited budget never pauses"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitialCondition;
    use crate::protocol::{BestOfThree, LocalMajority, Voter};
    use bo3_graph::{generators, Complete, ImplicitGnp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_graph_and_isolated_vertices() {
        let empty = bo3_graph::GraphBuilder::new(0).build().unwrap();
        assert!(Simulator::new(&empty).is_err());
        let iso = bo3_graph::GraphBuilder::new(3)
            .add_edge(0, 1)
            .unwrap()
            .build()
            .unwrap();
        assert!(Simulator::new(&iso).is_err());
    }

    #[test]
    fn rejects_mismatched_initial_configuration() {
        let g = generators::complete(5);
        let sim = Simulator::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let bad = Configuration::all_red(3);
        assert!(matches!(
            sim.run(&BestOfThree::new(), bad, &mut rng),
            Err(DynamicsError::OpinionLengthMismatch {
                got: 3,
                expected: 5
            })
        ));
    }

    #[test]
    fn consensus_initial_state_stops_immediately() {
        let g = generators::complete(8);
        let sim = Simulator::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let res = sim
            .run(&BestOfThree::new(), Configuration::all_red(8), &mut rng)
            .unwrap();
        assert_eq!(res.rounds, 0);
        assert!(res.red_won());
        assert!(res.reached_consensus());
        assert_eq!(res.final_blue_fraction, 0.0);
    }

    #[test]
    fn best_of_three_reaches_red_consensus_on_dense_graph() {
        let g = generators::complete(400);
        let sim = Simulator::new(&g).unwrap().with_trace(true);
        let mut rng = StdRng::seed_from_u64(2);
        let init = InitialCondition::BernoulliWithBias { delta: 0.15 }
            .sample(&g, &mut rng)
            .unwrap();
        let res = sim.run(&BestOfThree::new(), init, &mut rng).unwrap();
        assert!(res.red_won(), "stop reason {:?}", res.stop_reason);
        assert!(res.rounds <= 30, "took {} rounds", res.rounds);
        let trace = res.trace.as_ref().unwrap();
        assert_eq!(trace.len(), res.rounds + 1);
        // The blue fraction is (weakly) shrinking over most of the run.
        let fr = trace.blue_fractions();
        assert!(fr.first().unwrap() > fr.last().unwrap());
    }

    #[test]
    fn blue_majority_start_gives_blue_consensus() {
        let g = generators::complete(300);
        let sim = Simulator::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let init = InitialCondition::Bernoulli {
            blue_probability: 0.7,
        }
        .sample(&g, &mut rng)
        .unwrap();
        let res = sim.run(&BestOfThree::new(), init, &mut rng).unwrap();
        assert_eq!(res.winner, Some(Opinion::Blue));
    }

    #[test]
    fn fixed_round_budget_is_respected() {
        let g = generators::complete(100);
        let sim = Simulator::new(&g)
            .unwrap()
            .with_stopping(StoppingCondition::fixed_rounds(4))
            .with_trace(true);
        let mut rng = StdRng::seed_from_u64(4);
        let init = InitialCondition::ExactCount { blue: 50 }
            .sample(&g, &mut rng)
            .unwrap();
        let res = sim.run(&BestOfThree::new(), init, &mut rng).unwrap();
        assert_eq!(res.rounds, 4);
        assert_eq!(res.stop_reason, StopReason::RoundLimit);
        assert_eq!(res.trace.unwrap().len(), 5);
    }

    #[test]
    fn voter_model_is_much_slower_than_best_of_three() {
        let g = generators::complete(150);
        let mut rng = StdRng::seed_from_u64(5);
        let init = InitialCondition::ExactCount { blue: 60 }
            .sample(&g, &mut rng)
            .unwrap();

        let sim = Simulator::new(&g)
            .unwrap()
            .with_stopping(StoppingCondition::consensus_within(100_000));
        let bo3 = sim
            .run(&BestOfThree::new(), init.clone(), &mut rng)
            .unwrap();
        let voter = sim.run(&Voter::new(), init, &mut rng).unwrap();
        assert!(bo3.reached_consensus());
        assert!(voter.reached_consensus());
        assert!(
            voter.rounds > 3 * bo3.rounds,
            "voter {} rounds vs best-of-3 {}",
            voter.rounds,
            bo3.rounds
        );
    }

    #[test]
    fn local_majority_converges_in_one_round_on_complete_graph() {
        let g = generators::complete(101);
        let sim = Simulator::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let init = InitialCondition::ExactCount { blue: 30 }
            .sample(&g, &mut rng)
            .unwrap();
        let res = sim.run(&LocalMajority::keep_own(), init, &mut rng).unwrap();
        assert!(res.red_won());
        assert_eq!(res.rounds, 1);
    }

    #[test]
    fn asynchronous_schedule_also_converges() {
        let g = generators::complete(200);
        let sim = Simulator::new(&g)
            .unwrap()
            .with_schedule(Schedule::AsynchronousRandomOrder);
        let mut rng = StdRng::seed_from_u64(7);
        let init = InitialCondition::BernoulliWithBias { delta: 0.15 }
            .sample(&g, &mut rng)
            .unwrap();
        let res = sim.run(&BestOfThree::new(), init, &mut rng).unwrap();
        assert!(res.reached_consensus());
        assert!(res.red_won());
    }

    #[test]
    fn synchronous_step_reads_only_the_snapshot() {
        // On a 2-colourable structure, a synchronous local-majority update of
        // an alternating colouring swaps the colours (period-2 oscillation),
        // which is only possible if every vertex reads the *old* snapshot.
        let g = generators::complete_bipartite(5, 5).unwrap();
        let sim = Simulator::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        // Left side blue, right side red.
        let opinions: Vec<Opinion> = (0..10)
            .map(|v| if v < 5 { Opinion::Blue } else { Opinion::Red })
            .collect();
        let cfg = Configuration::new(opinions);
        let mut next = Vec::new();
        sim.step_synchronous(&LocalMajority::keep_own(), &cfg, &mut next, &mut rng);
        // Every left vertex sees only red neighbours and vice versa.
        assert!(next[..5].iter().all(|&o| o == Opinion::Red));
        assert!(next[5..].iter().all(|&o| o == Opinion::Blue));
    }

    #[test]
    fn blue_extinction_stopping_is_honoured() {
        let g = generators::complete(500);
        let sim = Simulator::new(&g)
            .unwrap()
            .with_stopping(StoppingCondition::blue_extinction(1_000, 0.05));
        let mut rng = StdRng::seed_from_u64(9);
        let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
            .sample(&g, &mut rng)
            .unwrap();
        let res = sim.run(&BestOfThree::new(), init, &mut rng).unwrap();
        assert!(res.final_blue_fraction <= 0.05);
    }

    #[test]
    fn run_seeded_supports_the_asynchronous_schedule() {
        // Historically `run_seeded` rejected the asynchronous schedule; the
        // unified engine runs it, reproducibly, on materialised graphs...
        let g = generators::complete(300);
        let sim = Simulator::new(&g)
            .unwrap()
            .with_schedule(Schedule::AsynchronousRandomOrder)
            .with_trace(true);
        let mut rng = StdRng::seed_from_u64(10);
        let init = InitialCondition::BernoulliWithBias { delta: 0.15 }
            .sample(&g, &mut rng)
            .unwrap();
        let a = sim
            .run_seeded(&BestOfThree::new(), init.clone(), 5)
            .unwrap();
        let b = sim.run_seeded(&BestOfThree::new(), init, 5).unwrap();
        assert_eq!(a, b);
        assert!(a.red_won());
    }

    #[test]
    fn seeded_async_runs_on_implicit_topologies() {
        // ...and on adjacency-free topologies, where the old engines could
        // not express it at all.
        let n = 2_000;
        let mut rng = StdRng::seed_from_u64(11);
        let init = InitialCondition::BernoulliWithBias { delta: 0.15 }
            .sample_n(n, &mut rng)
            .unwrap();
        let engine = Engine::new(ImplicitGnp::new(n, 0.3, 3).unwrap())
            .unwrap()
            .with_schedule(Schedule::AsynchronousRandomOrder)
            .with_trace(true);
        let a = engine
            .run_seeded_kind(ProtocolKind::BestOfThree, init.clone(), 21)
            .unwrap();
        let b = engine
            .run_seeded_kind(ProtocolKind::BestOfThree, init.clone(), 21)
            .unwrap();
        assert_eq!(a, b, "seeded async must be reproducible");
        assert!(a.red_won());
        // The thread knob cannot change an asynchronous result (the round
        // is sequential by definition).
        let threaded = Engine::new(ImplicitGnp::new(n, 0.3, 3).unwrap())
            .unwrap()
            .with_schedule(Schedule::AsynchronousRandomOrder)
            .with_threads(8)
            .with_trace(true)
            .run_seeded_kind(ProtocolKind::BestOfThree, init, 21)
            .unwrap();
        assert_eq!(a, threaded);
    }

    #[test]
    fn async_kernel_path_matches_the_dyn_path_draw_for_draw() {
        // The async round routes built-in protocols through the live-state
        // kernel update; forced onto the dyn path (DynOnly) with the same
        // caller RNG it must produce bit-identical rounds.
        use crate::kernel::DynOnly;
        use crate::protocol::{BestOfK, BestOfTwo, TieRule};
        let g = generators::complete_bipartite(150, 170).unwrap();
        let sim = Simulator::new(&g)
            .unwrap()
            .with_schedule(Schedule::AsynchronousRandomOrder)
            .with_stopping(StoppingCondition::fixed_rounds(6))
            .with_trace(true);
        let mut rng = StdRng::seed_from_u64(12);
        let init = InitialCondition::BernoulliWithBias { delta: 0.05 }
            .sample(&g, &mut rng)
            .unwrap();
        let pairs: Vec<(Box<dyn Protocol>, Box<dyn Protocol>)> = vec![
            (Box::new(Voter::new()), Box::new(DynOnly(Voter::new()))),
            (
                Box::new(BestOfTwo::new(TieRule::Random)),
                Box::new(DynOnly(BestOfTwo::new(TieRule::Random))),
            ),
            (
                Box::new(BestOfThree::new()),
                Box::new(DynOnly(BestOfThree::new())),
            ),
            (
                Box::new(BestOfK::new(4, TieRule::Random)),
                Box::new(DynOnly(BestOfK::new(4, TieRule::Random))),
            ),
            (
                Box::new(LocalMajority::new(TieRule::Random)),
                Box::new(DynOnly(LocalMajority::new(TieRule::Random))),
            ),
        ];
        for (kernel_side, dyn_side) in &pairs {
            let mut rng_a = StdRng::seed_from_u64(77);
            let mut rng_b = StdRng::seed_from_u64(77);
            let a = sim
                .run(kernel_side.as_ref(), init.clone(), &mut rng_a)
                .unwrap();
            let b = sim
                .run(dyn_side.as_ref(), init.clone(), &mut rng_b)
                .unwrap();
            assert_eq!(a, b, "{} diverged", kernel_side.name());
        }
    }

    #[test]
    fn custom_protocols_on_implicit_topologies_are_a_typed_error() {
        use crate::kernel::DynOnly;
        let engine = Engine::new(Complete::new(50).unwrap()).unwrap();
        let init = Configuration::all_red(50);
        let mut rng = StdRng::seed_from_u64(13);
        assert!(matches!(
            engine.run(&DynOnly(BestOfThree::new()), init.clone(), &mut rng),
            Err(DynamicsError::InvalidParameter { .. })
        ));
        assert!(matches!(
            engine.run_seeded(&DynOnly(BestOfThree::new()), init, 0),
            Err(DynamicsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn run_seeded_is_reproducible() {
        let g = generators::complete(300);
        let sim = Simulator::new(&g).unwrap().with_trace(true);
        let mut rng = StdRng::seed_from_u64(10);
        let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
            .sample(&g, &mut rng)
            .unwrap();
        let a = sim
            .run_seeded(&BestOfThree::new(), init.clone(), 77)
            .unwrap();
        let b = sim.run_seeded(&BestOfThree::new(), init, 77).unwrap();
        assert_eq!(a, b);
        assert!(a.red_won());
    }

    #[test]
    fn deterministic_given_the_same_seed() {
        let g = generators::complete(100);
        let sim = Simulator::new(&g).unwrap().with_trace(true);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
                .sample(&g, &mut rng)
                .unwrap();
            sim.run(&BestOfThree::new(), init, &mut rng).unwrap()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b);
        let c = run(43);
        assert!(a.rounds != c.rounds || a.trace != c.trace);
    }

    #[test]
    fn engine_on_graph_equals_simulator() {
        let g = generators::complete(200);
        let mut rng = StdRng::seed_from_u64(14);
        let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
            .sample(&g, &mut rng)
            .unwrap();
        let engine = Engine::on_graph(&g).unwrap().with_trace(true);
        assert_eq!(engine.graph(), &g);
        let via_engine = engine
            .run_seeded(&BestOfThree::new(), init.clone(), 9)
            .unwrap();
        let via_simulator = Simulator::new(&g)
            .unwrap()
            .with_trace(true)
            .run_seeded(&BestOfThree::new(), init, 9)
            .unwrap();
        assert_eq!(via_engine, via_simulator);
    }
}
