//! Error types for the dynamics engine.

use std::fmt;

/// Errors produced while configuring or running voting dynamics.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicsError {
    /// The supplied graph cannot host the dynamics (e.g. isolated vertex).
    InvalidGraph {
        /// Description of the problem.
        reason: String,
    },
    /// An invalid parameter was supplied (probability out of range, zero
    /// sample size, etc.).
    InvalidParameter {
        /// Description of the violated constraint.
        reason: String,
    },
    /// The opinion vector does not match the graph.
    OpinionLengthMismatch {
        /// Number of opinions supplied.
        got: usize,
        /// Number of vertices expected.
        expected: usize,
    },
    /// A run exceeded its round budget without reaching its stopping condition.
    DidNotConverge {
        /// Number of rounds executed.
        rounds: usize,
    },
}

impl fmt::Display for DynamicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicsError::InvalidGraph { reason } => write!(f, "invalid graph: {reason}"),
            DynamicsError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            DynamicsError::OpinionLengthMismatch { got, expected } => write!(
                f,
                "opinion vector has length {got} but the graph has {expected} vertices"
            ),
            DynamicsError::DidNotConverge { rounds } => {
                write!(f, "dynamics did not converge within {rounds} rounds")
            }
        }
    }
}

impl std::error::Error for DynamicsError {}

impl From<bo3_graph::GraphError> for DynamicsError {
    fn from(e: bo3_graph::GraphError) -> Self {
        DynamicsError::InvalidGraph {
            reason: e.to_string(),
        }
    }
}

/// Result alias for `bo3-dynamics`.
pub type Result<T> = std::result::Result<T, DynamicsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DynamicsError::OpinionLengthMismatch {
            got: 3,
            expected: 5,
        };
        assert!(e.to_string().contains("length 3"));
        assert!(e.to_string().contains("5 vertices"));
        let e = DynamicsError::DidNotConverge { rounds: 100 };
        assert!(e.to_string().contains("100 rounds"));
    }

    #[test]
    fn graph_error_converts() {
        let ge = bo3_graph::GraphError::EmptyGraph;
        let de: DynamicsError = ge.into();
        assert!(matches!(de, DynamicsError::InvalidGraph { .. }));
    }
}
