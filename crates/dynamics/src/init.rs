//! Initial opinion configurations.
//!
//! Theorem 1 assumes every vertex is independently blue with probability
//! `1/2 − δ`; the other schemes here (exact counts, placement by degree or by
//! block) exist to probe how much that independence assumption matters —
//! the paper explicitly notes that the expander-based analyses (\[5]) work in
//! an adversarial-placement setting while its own proof exploits the i.i.d.
//! start.

use rand::Rng;
use serde::{Deserialize, Serialize};

use bo3_graph::{CsrGraph, Topology};

use crate::error::{DynamicsError, Result};
use crate::opinion::{Configuration, Opinion};

/// A recipe for the initial configuration `ξ₀`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InitialCondition {
    /// The paper's model: each vertex is blue independently with probability
    /// `1/2 − delta` (red otherwise).
    BernoulliWithBias {
        /// The red bias `δ ∈ (0, 1/2]`; blue probability is `1/2 − δ`.
        delta: f64,
    },
    /// Each vertex is blue independently with the given probability.
    Bernoulli {
        /// Blue probability in `[0, 1]`.
        blue_probability: f64,
    },
    /// Exactly `blue` vertices are blue, chosen uniformly at random.
    ExactCount {
        /// Number of blue vertices.
        blue: usize,
    },
    /// All vertices red.
    AllRed,
    /// All vertices blue.
    AllBlue,
    /// The `blue` vertices of **highest degree** are blue — an adversarial
    /// placement that concentrates the minority where it is most influential.
    HighestDegreeBlue {
        /// Number of blue vertices.
        blue: usize,
    },
    /// The `blue` vertices of **lowest degree** are blue.
    LowestDegreeBlue {
        /// Number of blue vertices.
        blue: usize,
    },
    /// A fixed set of vertices is blue (e.g. one block of an SBM).
    ExplicitBlue {
        /// The vertices initially blue.
        vertices: Vec<usize>,
    },
    /// The first `blue` vertices (ids `0..blue`) are blue — combined with the
    /// block-numbered SBM/barbell generators this paints whole communities.
    PrefixBlue {
        /// Number of blue vertices.
        blue: usize,
    },
}

impl InitialCondition {
    /// Instantiates the initial configuration on `graph`.
    pub fn sample<R: Rng + ?Sized>(&self, graph: &CsrGraph, rng: &mut R) -> Result<Configuration> {
        match self {
            InitialCondition::HighestDegreeBlue { blue } => by_degree(graph, *blue, true),
            InitialCondition::LowestDegreeBlue { blue } => by_degree(graph, *blue, false),
            other => other.sample_n(graph.num_vertices(), rng),
        }
    }

    /// Instantiates the initial configuration on any [`Topology`] — the
    /// entry point the unified engine's Monte-Carlo driver uses for every
    /// spec variant.
    ///
    /// Graph-free schemes delegate to [`InitialCondition::sample_n`]
    /// (consuming `rng` identically, so seeded runs agree across entry
    /// points).  The degree-ranked placements consume no randomness and
    /// resolve through, in order:
    ///
    /// * the materialised degree sequence, when
    ///   [`Topology::as_graph`] yields one — exactly
    ///   [`InitialCondition::sample`];
    /// * the topology's [`Topology::degree_oracle`] otherwise — exact
    ///   `O(#classes)` rank arithmetic for the closed-form families, and the
    ///   concentration-window answer for hash-defined ones: all degrees
    ///   share one window except with the oracle's stated failure
    ///   probability, so the canonical end-of-id-space choices (prefix for
    ///   highest, suffix for lowest) are as adversarial as any certifiable
    ///   ranking — but they are *not* the realised degree ranks; comparing
    ///   against those requires materialising the spec.  **No `Θ(n)` degree
    ///   scan happens on any path.**
    pub fn sample_topology<T: Topology, R: Rng + ?Sized>(
        &self,
        topo: &T,
        rng: &mut R,
    ) -> Result<Configuration> {
        match self {
            InitialCondition::HighestDegreeBlue { blue } => by_degree_topology(topo, *blue, true),
            InitialCondition::LowestDegreeBlue { blue } => by_degree_topology(topo, *blue, false),
            other => other.sample_n(topo.n(), rng),
        }
    }

    /// Instantiates the initial configuration on `n` vertices without a
    /// materialised graph — the entry point for implicit-topology runs,
    /// where `n` may be far past any allocatable adjacency.
    ///
    /// Every scheme except the degree-ranked placements is a pure function
    /// of `n` (and the RNG); the degree-ranked ones need a graph to rank and
    /// return an error here.  For non-degree schemes this consumes `rng`
    /// exactly like [`InitialCondition::sample`], so seeded runs agree
    /// across the two entry points.
    pub fn sample_n<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Result<Configuration> {
        match self {
            InitialCondition::BernoulliWithBias { delta } => {
                // NaN fails the first comparison and is rejected too.
                let delta_valid = *delta > 0.0 && *delta <= 0.5;
                if !delta_valid {
                    return Err(DynamicsError::InvalidParameter {
                        reason: format!("delta must lie in (0, 1/2], got {delta}"),
                    });
                }
                bernoulli(n, 0.5 - delta, rng)
            }
            InitialCondition::Bernoulli { blue_probability } => {
                if !(0.0..=1.0).contains(blue_probability) || blue_probability.is_nan() {
                    return Err(DynamicsError::InvalidParameter {
                        reason: format!(
                            "blue probability must lie in [0,1], got {blue_probability}"
                        ),
                    });
                }
                bernoulli(n, *blue_probability, rng)
            }
            InitialCondition::ExactCount { blue } => {
                if *blue > n {
                    return Err(DynamicsError::InvalidParameter {
                        reason: format!("cannot colour {blue} of {n} vertices blue"),
                    });
                }
                // Partial Fisher–Yates over the vertex ids.
                let mut ids: Vec<usize> = (0..n).collect();
                for i in 0..*blue {
                    let j = rng.gen_range(i..n);
                    ids.swap(i, j);
                }
                let mut cfg = Configuration::all_red(n);
                for &v in &ids[..*blue] {
                    cfg.set(v, Opinion::Blue);
                }
                Ok(cfg)
            }
            InitialCondition::AllRed => Ok(Configuration::all_red(n)),
            InitialCondition::AllBlue => Ok(Configuration::all_blue(n)),
            InitialCondition::HighestDegreeBlue { .. }
            | InitialCondition::LowestDegreeBlue { .. } => Err(DynamicsError::InvalidParameter {
                reason: format!(
                    "{} ranks vertices by degree, which a bare vertex count cannot \
                         provide; use InitialCondition::sample (materialised graph) or \
                         InitialCondition::sample_topology (degree oracle)",
                    self.label()
                ),
            }),
            InitialCondition::ExplicitBlue { vertices } => {
                let mut cfg = Configuration::all_red(n);
                for &v in vertices {
                    if v >= n {
                        return Err(DynamicsError::InvalidParameter {
                            reason: format!("blue vertex {v} out of range for {n} vertices"),
                        });
                    }
                    cfg.set(v, Opinion::Blue);
                }
                Ok(cfg)
            }
            InitialCondition::PrefixBlue { blue } => {
                if *blue > n {
                    return Err(DynamicsError::InvalidParameter {
                        reason: format!("cannot colour {blue} of {n} vertices blue"),
                    });
                }
                let mut cfg = Configuration::all_red(n);
                for v in 0..*blue {
                    cfg.set(v, Opinion::Blue);
                }
                Ok(cfg)
            }
        }
    }

    /// A short label for experiment reports.
    pub fn label(&self) -> String {
        match self {
            InitialCondition::BernoulliWithBias { delta } => format!("bernoulli(delta={delta})"),
            InitialCondition::Bernoulli { blue_probability } => {
                format!("bernoulli(p_blue={blue_probability})")
            }
            InitialCondition::ExactCount { blue } => format!("exact(blue={blue})"),
            InitialCondition::AllRed => "all_red".into(),
            InitialCondition::AllBlue => "all_blue".into(),
            InitialCondition::HighestDegreeBlue { blue } => format!("highest_degree(blue={blue})"),
            InitialCondition::LowestDegreeBlue { blue } => format!("lowest_degree(blue={blue})"),
            InitialCondition::ExplicitBlue { vertices } => {
                format!("explicit(|B|={})", vertices.len())
            }
            InitialCondition::PrefixBlue { blue } => format!("prefix(blue={blue})"),
        }
    }
}

fn bernoulli<R: Rng + ?Sized>(n: usize, p_blue: f64, rng: &mut R) -> Result<Configuration> {
    let mut opinions = Vec::with_capacity(n);
    for _ in 0..n {
        opinions.push(if rng.gen::<f64>() < p_blue {
            Opinion::Blue
        } else {
            Opinion::Red
        });
    }
    Ok(Configuration::new(opinions))
}

/// Degree-ranked placement on an arbitrary topology: materialised degrees
/// when available, the degree oracle otherwise — never a degree scan.
fn by_degree_topology<T: Topology>(topo: &T, blue: usize, highest: bool) -> Result<Configuration> {
    if let Some(graph) = topo.as_graph() {
        return by_degree(graph, blue, highest);
    }
    let n = topo.n();
    if blue > n {
        return Err(DynamicsError::InvalidParameter {
            reason: format!("cannot colour {blue} of {n} vertices blue"),
        });
    }
    let Some(oracle) = topo.degree_oracle() else {
        return Err(DynamicsError::InvalidParameter {
            reason: format!(
                "{} provides neither materialised degrees nor a degree oracle; \
                 cannot place degree-ranked opinions",
                topo.label()
            ),
        });
    };
    let mut cfg = Configuration::all_red(n);
    for range in oracle.ranked_vertices(blue, highest) {
        for v in range {
            cfg.set(v, Opinion::Blue);
        }
    }
    Ok(cfg)
}

fn by_degree(graph: &CsrGraph, blue: usize, highest: bool) -> Result<Configuration> {
    let n = graph.num_vertices();
    if blue > n {
        return Err(DynamicsError::InvalidParameter {
            reason: format!("cannot colour {blue} of {n} vertices blue"),
        });
    }
    let mut by_deg: Vec<usize> = (0..n).collect();
    if highest {
        by_deg.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    } else {
        by_deg.sort_by_key(|&v| graph.degree(v));
    }
    let mut cfg = Configuration::all_red(n);
    for &v in &by_deg[..blue] {
        cfg.set(v, Opinion::Blue);
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_with_bias_validates_delta() {
        let g = generators::complete(10);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(InitialCondition::BernoulliWithBias { delta: 0.0 }
            .sample(&g, &mut rng)
            .is_err());
        assert!(InitialCondition::BernoulliWithBias { delta: 0.7 }
            .sample(&g, &mut rng)
            .is_err());
        assert!(InitialCondition::BernoulliWithBias { delta: 0.2 }
            .sample(&g, &mut rng)
            .is_ok());
    }

    #[test]
    fn bernoulli_bias_concentrates_near_expectation() {
        let g = generators::complete(20_000);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = InitialCondition::BernoulliWithBias { delta: 0.1 }
            .sample(&g, &mut rng)
            .unwrap();
        let frac = cfg.blue_fraction();
        assert!((frac - 0.4).abs() < 0.02, "blue fraction {frac}");
    }

    #[test]
    fn bernoulli_probability_validation_and_extremes() {
        let g = generators::complete(50);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(InitialCondition::Bernoulli {
            blue_probability: 1.4
        }
        .sample(&g, &mut rng)
        .is_err());
        let all_blue = InitialCondition::Bernoulli {
            blue_probability: 1.0,
        }
        .sample(&g, &mut rng)
        .unwrap();
        assert_eq!(all_blue.blue_count(), 50);
        let all_red = InitialCondition::Bernoulli {
            blue_probability: 0.0,
        }
        .sample(&g, &mut rng)
        .unwrap();
        assert_eq!(all_red.blue_count(), 0);
    }

    #[test]
    fn exact_count_is_exact() {
        let g = generators::complete(100);
        let mut rng = StdRng::seed_from_u64(3);
        for &blue in &[0usize, 1, 37, 100] {
            let cfg = InitialCondition::ExactCount { blue }
                .sample(&g, &mut rng)
                .unwrap();
            assert_eq!(cfg.blue_count(), blue);
        }
        assert!(InitialCondition::ExactCount { blue: 101 }
            .sample(&g, &mut rng)
            .is_err());
    }

    #[test]
    fn exact_count_placement_varies_with_seed() {
        let g = generators::complete(50);
        let mut rng1 = StdRng::seed_from_u64(4);
        let mut rng2 = StdRng::seed_from_u64(5);
        let a = InitialCondition::ExactCount { blue: 10 }
            .sample(&g, &mut rng1)
            .unwrap();
        let b = InitialCondition::ExactCount { blue: 10 }
            .sample(&g, &mut rng2)
            .unwrap();
        assert_ne!(a.blue_vertices(), b.blue_vertices());
    }

    #[test]
    fn all_red_and_all_blue() {
        let g = generators::complete(7);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(
            InitialCondition::AllRed
                .sample(&g, &mut rng)
                .unwrap()
                .blue_count(),
            0
        );
        assert_eq!(
            InitialCondition::AllBlue
                .sample(&g, &mut rng)
                .unwrap()
                .blue_count(),
            7
        );
    }

    #[test]
    fn degree_based_placement_targets_the_right_vertices() {
        let g = generators::star(10).unwrap(); // vertex 0 is the hub
        let mut rng = StdRng::seed_from_u64(7);
        let high = InitialCondition::HighestDegreeBlue { blue: 1 }
            .sample(&g, &mut rng)
            .unwrap();
        assert_eq!(high.blue_vertices(), vec![0]);
        let low = InitialCondition::LowestDegreeBlue { blue: 2 }
            .sample(&g, &mut rng)
            .unwrap();
        assert!(!low.blue_vertices().contains(&0));
        assert_eq!(low.blue_count(), 2);
        assert!(InitialCondition::HighestDegreeBlue { blue: 11 }
            .sample(&g, &mut rng)
            .is_err());
    }

    #[test]
    fn explicit_and_prefix_placement() {
        let g = generators::complete(10);
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = InitialCondition::ExplicitBlue {
            vertices: vec![2, 5, 7],
        }
        .sample(&g, &mut rng)
        .unwrap();
        assert_eq!(cfg.blue_vertices(), vec![2, 5, 7]);
        assert!(InitialCondition::ExplicitBlue { vertices: vec![99] }
            .sample(&g, &mut rng)
            .is_err());

        let prefix = InitialCondition::PrefixBlue { blue: 4 }
            .sample(&g, &mut rng)
            .unwrap();
        assert_eq!(prefix.blue_vertices(), vec![0, 1, 2, 3]);
        assert!(InitialCondition::PrefixBlue { blue: 11 }
            .sample(&g, &mut rng)
            .is_err());
    }

    #[test]
    fn sample_n_matches_sample_for_graph_free_schemes() {
        let g = generators::complete(64);
        for cond in [
            InitialCondition::BernoulliWithBias { delta: 0.1 },
            InitialCondition::Bernoulli {
                blue_probability: 0.3,
            },
            InitialCondition::ExactCount { blue: 20 },
            InitialCondition::AllRed,
            InitialCondition::AllBlue,
            InitialCondition::ExplicitBlue {
                vertices: vec![1, 5],
            },
            InitialCondition::PrefixBlue { blue: 7 },
        ] {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            let via_graph = cond.sample(&g, &mut a).unwrap();
            let via_n = cond.sample_n(64, &mut b).unwrap();
            assert_eq!(via_graph, via_n, "{}", cond.label());
        }
    }

    #[test]
    fn sample_n_rejects_degree_ranked_schemes() {
        let mut rng = StdRng::seed_from_u64(0);
        for cond in [
            InitialCondition::HighestDegreeBlue { blue: 3 },
            InitialCondition::LowestDegreeBlue { blue: 3 },
        ] {
            assert!(matches!(
                cond.sample_n(10, &mut rng),
                Err(DynamicsError::InvalidParameter { .. })
            ));
        }
    }

    #[test]
    fn sample_topology_matches_sample_on_materialised_graphs() {
        use bo3_graph::CsrTopology;
        // Star: distinct degrees, so the degree-ranked schemes are exercised
        // through both entry points; graph-free schemes consume the RNG
        // identically by delegation.
        let g = generators::star(12).unwrap();
        let topo = CsrTopology::new(&g);
        for cond in [
            InitialCondition::BernoulliWithBias { delta: 0.1 },
            InitialCondition::ExactCount { blue: 4 },
            InitialCondition::HighestDegreeBlue { blue: 3 },
            InitialCondition::LowestDegreeBlue { blue: 5 },
            InitialCondition::PrefixBlue { blue: 2 },
        ] {
            let mut a = StdRng::seed_from_u64(9);
            let mut b = StdRng::seed_from_u64(9);
            let via_graph = cond.sample(&g, &mut a).unwrap();
            let via_topo = cond.sample_topology(&topo, &mut b).unwrap();
            assert_eq!(via_graph, via_topo, "{}", cond.label());
        }
    }

    #[test]
    fn degree_ranked_on_closed_form_topologies_matches_the_materialised_truth() {
        use bo3_graph::topology::materialize;
        use bo3_graph::{CompleteBipartite, CompleteMultipartite};
        let mut rng = StdRng::seed_from_u64(10);
        let bipartite = CompleteBipartite::new(4, 9).unwrap();
        let multi = CompleteMultipartite::new(&[3, 4, 5]).unwrap();
        for blue in [1usize, 4, 7] {
            for highest in [true, false] {
                let cond = if highest {
                    InitialCondition::HighestDegreeBlue { blue }
                } else {
                    InitialCondition::LowestDegreeBlue { blue }
                };
                // Oracle-based placement on the implicit topology must equal
                // the stable-sort placement on its materialisation.
                let via_oracle = cond.sample_topology(&bipartite, &mut rng).unwrap();
                let via_graph = cond
                    .sample(&materialize(&bipartite).unwrap(), &mut rng)
                    .unwrap();
                assert_eq!(via_oracle, via_graph, "bipartite {} ", cond.label());
                let via_oracle = cond.sample_topology(&multi, &mut rng).unwrap();
                let via_graph = cond
                    .sample(&materialize(&multi).unwrap(), &mut rng)
                    .unwrap();
                assert_eq!(via_oracle, via_graph, "multipartite {}", cond.label());
            }
        }
    }

    #[test]
    fn degree_ranked_on_hash_defined_topologies_uses_the_window_ends() {
        // No Θ(n) scan: a window oracle answers with its canonical ends —
        // highest takes the id prefix, lowest the id suffix, so the two
        // adversarial placements stay distinct (and disjoint here).
        let topo = bo3_graph::ImplicitSbm::new(1_000, 2, 0.6, 0.3, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let high = InitialCondition::HighestDegreeBlue { blue: 250 }
            .sample_topology(&topo, &mut rng)
            .unwrap();
        assert_eq!(high.blue_count(), 250);
        assert_eq!(high.blue_vertices(), (0..250).collect::<Vec<_>>());
        let low = InitialCondition::LowestDegreeBlue { blue: 250 }
            .sample_topology(&topo, &mut rng)
            .unwrap();
        assert_eq!(low.blue_vertices(), (750..1_000).collect::<Vec<_>>());
        // Over-long placements still validate against n.
        assert!(InitialCondition::LowestDegreeBlue { blue: 1_001 }
            .sample_topology(&topo, &mut rng)
            .is_err());
    }

    #[test]
    fn labels_are_descriptive() {
        assert!(InitialCondition::BernoulliWithBias { delta: 0.05 }
            .label()
            .contains("0.05"));
        assert!(InitialCondition::ExactCount { blue: 9 }
            .label()
            .contains("9"));
        assert_eq!(InitialCondition::AllRed.label(), "all_red");
        assert!(InitialCondition::ExplicitBlue {
            vertices: vec![1, 2]
        }
        .label()
        .contains("|B|=2"));
    }
}
