//! Monomorphized hot-path kernels.
//!
//! A single E1-scale run performs `3·n·T` neighbour draws, so the per-update
//! inner loop *is* the system.  The generic engine path pays two virtual
//! calls per sample (`dyn Protocol::update`, `dyn RngCore`), a per-sample
//! degree reload and a byte-wide read of `ξ_t(w)`.  This module removes all
//! of that for the built-in protocols:
//!
//! * [`PackedSnapshot`] — the previous round's configuration as a `u64`
//!   bitset: reading `ξ_t(w)` touches one bit instead of one byte, and blue
//!   counts are a popcount scan;
//! * **batched RNG** — neighbour indices come from whole `u64` draws mapped
//!   onto `[0, deg)` with Lemire's multiply-shift reduction
//!   ([`sample_index`]), one draw per sample, no rejection loop, with the
//!   degree/row lookup hoisted out of the k-sample loop;
//! * **static dispatch** — [`ProtocolKind`] names the built-in protocols and
//!   [`dispatch_chunk`] selects a fully monomorphized
//!   [`update_chunk_kernel`] instantiation per kind, so the protocol update
//!   and the RNG inline into one tight loop.  Custom protocols keep working
//!   through the object-safe [`Protocol`] registry API: a protocol whose
//!   [`Protocol::kind`] returns `None` falls back to the generic `dyn` path.
//!
//! # Determinism contract
//!
//! Two properties, pinned by two suites:
//!
//! **1. Draw-for-draw `dyn` compatibility.** Handed the *same* RNG, a kernel
//! update of vertex `v` consumes exactly the same raw stream and produces
//! exactly the same opinion as `Protocol::update` for the corresponding
//! built-in protocol:
//!
//! * every neighbour sample consumes one `next_u64` and reduces it with the
//!   same multiply-shift map as the vendored `gen_range(0..deg)`, and
//! * tie coins consume one `next_u32` exactly like `rng.gen::<bool>()`,
//!
//! in the same order.  Consequently the caller-RNG entry points
//! ([`crate::engine::Simulator::run`] / `step_synchronous`) return
//! bit-identical results whether a protocol takes the kernel path or is
//! forced onto the `dyn` path — the kernel-equivalence suite pins this on
//! complete, Erdős–Rényi and bipartite graphs.
//!
//! **2. Sequential == parallel on the seeded path.**  The seeded steppers
//! derive one RNG per `(master_seed, round, chunk)` work unit, so the
//! output is bit-for-bit identical at any thread count — the determinism
//! regression suite pins this at 1/2/8 threads.  The kernel path derives
//! [`kernel_chunk_rng`] (xoshiro256++, a few cycles per draw) and the `dyn`
//! fallback keeps [`crate::parallel::chunk_rng`] (ChaCha8) over the same
//! stream-id mixing; each path is internally deterministic, sequential and
//! parallel always agree *within* a path, and which path runs is a pure
//! function of [`Protocol::kind`].  (The seeded kernel stream deliberately
//! differs from the seeded `dyn` stream: hoisting ChaCha out of the
//! per-sample loop is most of the kernel speedup.  Seeded results therefore
//! changed exactly once, when the kernels landed, for built-in protocols.)
//!
//! Any change to the per-sample draw order breaks both suites; change the
//! kernels and the `dyn` helpers ([`crate::protocol`]) together.

use rand::RngCore;

use bo3_graph::{CsrGraph, VertexId};

use crate::opinion::Opinion;
use crate::protocol::{resolve_majority, Protocol, TieRule, UpdateContext};

/// A bit-packed immutable view of one round's configuration `ξ_t`.
///
/// Vertex `v` is blue iff bit `v % 64` of word `v / 64` is set.  The packed
/// form is 8× denser than `[Opinion]`, so snapshot reads stay cache-resident
/// far longer, and [`PackedSnapshot::blue_count`] is a popcount scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSnapshot {
    words: Vec<u64>,
    len: usize,
}

impl PackedSnapshot {
    /// An all-red snapshot of `n` vertices.
    pub fn all_red(n: usize) -> Self {
        PackedSnapshot {
            words: vec![0u64; n.div_ceil(64)],
            len: n,
        }
    }

    /// Packs an opinion slice.
    pub fn from_opinions(opinions: &[Opinion]) -> Self {
        let mut snap = PackedSnapshot {
            words: Vec::new(),
            len: 0,
        };
        snap.repack_from(opinions);
        snap
    }

    /// Repacks in place from an opinion slice, reusing the allocation.
    pub fn repack_from(&mut self, opinions: &[Opinion]) {
        self.len = opinions.len();
        self.words.clear();
        self.words.reserve(opinions.len().div_ceil(64));
        for chunk in opinions.chunks(64) {
            let mut word = 0u64;
            for (bit, o) in chunk.iter().enumerate() {
                word |= (o.is_blue() as u64) << bit;
            }
            self.words.push(word);
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when there are no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when vertex `v` is blue.
    #[inline(always)]
    pub fn is_blue(&self, v: usize) -> bool {
        debug_assert!(v < self.len);
        (self.words[v >> 6] >> (v & 63)) & 1 == 1
    }

    /// The opinion of vertex `v`.
    #[inline(always)]
    pub fn get(&self, v: usize) -> Opinion {
        if self.is_blue(v) {
            Opinion::Blue
        } else {
            Opinion::Red
        }
    }

    /// Sets the opinion of vertex `v`.
    #[inline]
    pub fn set(&mut self, v: usize, opinion: Opinion) {
        debug_assert!(v < self.len);
        let mask = 1u64 << (v & 63);
        match opinion {
            Opinion::Blue => self.words[v >> 6] |= mask,
            Opinion::Red => self.words[v >> 6] &= !mask,
        }
    }

    /// Number of blue vertices — a popcount scan over the packed words.
    pub fn blue_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of blue vertices (`0.0` on the empty snapshot).
    pub fn blue_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.blue_count() as f64 / self.len as f64
        }
    }
}

/// Names a built-in protocol the kernel path can monomorphize.
///
/// Returned by [`Protocol::kind`]; protocols that return `None` (custom
/// registry entries) run through the generic `dyn` path instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Best-of-1: copy one random neighbour.
    Voter,
    /// Best-of-2 with the given tie rule.
    BestOfTwo(TieRule),
    /// Best-of-3 — the paper's protocol.
    BestOfThree,
    /// Best-of-k samples with the given tie rule.
    BestOfK {
        /// Sample size.
        k: usize,
        /// How even-`k` ties are resolved.
        tie_rule: TieRule,
    },
    /// Deterministic full-neighbourhood majority with the given tie rule.
    LocalMajority(TieRule),
}

/// Wraps any protocol so it reports no [`ProtocolKind`], forcing the engines
/// onto the generic `dyn` fallback path.
///
/// This exists for the kernel-equivalence suite and the `e13` throughput
/// bench, which compare the two paths on the same protocol; it is not useful
/// in production code.
#[derive(Debug, Clone, Copy)]
pub struct DynOnly<P>(pub P);

impl<P: Protocol> Protocol for DynOnly<P> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn sample_size(&self) -> usize {
        self.0.sample_size()
    }

    fn update(&self, ctx: &UpdateContext<'_>, rng: &mut dyn RngCore) -> Opinion {
        self.0.update(ctx, rng)
    }

    fn kind(&self) -> Option<ProtocolKind> {
        None
    }
}

/// The kernel path's per-work-unit generator: xoshiro256++.
///
/// The seeded kernels draw one `u64` per neighbour sample, so generator
/// throughput is directly on the critical path; xoshiro256++ produces a
/// `u64` in a handful of cycles (versus a few dozen for the `dyn` path's
/// buffered ChaCha8) while passing the statistical test batteries that
/// matter for Monte-Carlo work.  Streams are derived per
/// `(master_seed, round, chunk)` work unit by [`kernel_chunk_rng`], exactly
/// mirroring the `dyn` path's [`crate::parallel::chunk_rng`] derivation, so
/// the sequential-equals-parallel contract is preserved.
#[derive(Debug, Clone)]
pub struct KernelRng {
    s: [u64; 4],
}

impl KernelRng {
    /// Expands a 64-bit stream id into the 256-bit state through SplitMix64
    /// (the seeding recommended by the xoshiro authors).
    pub fn from_stream_id(id: u64) -> Self {
        let mut sm = id;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        KernelRng { s }
    }
}

impl RngCore for KernelRng {
    #[inline(always)]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    #[inline(always)]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
    }
}

/// Derives the kernel-path RNG for one `(seed, round, chunk)` work unit.
///
/// Same stream-id mixing as [`crate::parallel::chunk_rng`], different
/// generator — see [`KernelRng`].  Public for the same reason `chunk_rng`
/// is: external code reproducing seeded kernel runs draw-for-draw.
pub fn kernel_chunk_rng(master_seed: u64, round: u64, chunk: u64) -> KernelRng {
    KernelRng::from_stream_id(crate::parallel::stream_id(master_seed, round, chunk))
}

/// Maps one `u64` draw onto `[0, n)` with Lemire's multiply-shift reduction.
///
/// This is bit-identical to the vendored `rng.gen_range(0..n)` (which uses
/// the same fixed-point multiply without a rejection step), which is what
/// keeps the kernel path and the `dyn` path on the same RNG stream.
#[inline(always)]
pub(crate) fn sample_index(draw: u64, n: usize) -> usize {
    debug_assert!(n > 0);
    ((draw as u128 * n as u128) >> 64) as usize
}

/// One protocol's monomorphizable per-vertex update rule.
///
/// `row` is the vertex's hoisted neighbour row (fetched once per vertex, not
/// once per sample) and `snap` the packed previous-round snapshot.
trait KernelCore: Copy {
    fn update_vertex<R: RngCore + ?Sized>(
        &self,
        row: &[VertexId],
        current: Opinion,
        snap: &PackedSnapshot,
        rng: &mut R,
    ) -> Opinion;
}

/// A sampling rule whose RNG consumption is exactly `k` draws per vertex —
/// no data-dependent tie coin — so the sample draws can be hoisted away from
/// the neighbour-row reads without reordering the stream.
///
/// That reordering freedom is the key throughput lever on dense graphs: the
/// row reads are independent cache misses, and issuing a whole batch of them
/// back to back lets the core overlap their latency instead of serialising
/// draw → read → draw → read per sample (see [`update_chunk_batched`]).
/// Protocols that may draw a tie coin *between* one vertex's samples and the
/// next vertex's (the `TieRule::Random` variants with even `k`) cannot be
/// phase-split without changing the stream; they stay on the per-vertex
/// [`KernelCore`] loop.
trait BatchCore: Copy {
    /// Samples drawn per vertex.
    fn samples(&self) -> usize;

    /// Pure decision from the blue-sample count (no RNG by construction).
    fn decide(&self, blues: usize, current: Opinion) -> Opinion;
}

/// Counts blue among `k` with-replacement samples: one `u64` draw per
/// sample, Lemire-reduced onto the hoisted row.
#[inline(always)]
fn count_blue_packed<R: RngCore + ?Sized>(
    row: &[VertexId],
    snap: &PackedSnapshot,
    k: usize,
    rng: &mut R,
) -> usize {
    let mut blues = 0usize;
    for _ in 0..k {
        let w = row[sample_index(rng.next_u64(), row.len())];
        blues += snap.is_blue(w) as usize;
    }
    blues
}

/// The pure half of [`resolve_majority`]: strict majorities plus the
/// keep-own tie.  Callers guarantee the random-coin tie is unreachable
/// (odd `k`, or `TieRule::KeepOwn`).
#[inline(always)]
fn decide_pure(blues: usize, k: usize, current: Opinion) -> Opinion {
    let reds = k - blues;
    match blues.cmp(&reds) {
        std::cmp::Ordering::Greater => Opinion::Blue,
        std::cmp::Ordering::Less => Opinion::Red,
        std::cmp::Ordering::Equal => current,
    }
}

#[derive(Clone, Copy)]
struct VoterKernel;

impl BatchCore for VoterKernel {
    #[inline(always)]
    fn samples(&self) -> usize {
        1
    }

    #[inline(always)]
    fn decide(&self, blues: usize, _current: Opinion) -> Opinion {
        if blues == 1 {
            Opinion::Blue
        } else {
            Opinion::Red
        }
    }
}

#[derive(Clone, Copy)]
struct BestOfThreeKernel;

impl BatchCore for BestOfThreeKernel {
    #[inline(always)]
    fn samples(&self) -> usize {
        3
    }

    #[inline(always)]
    fn decide(&self, blues: usize, _current: Opinion) -> Opinion {
        if blues >= 2 {
            Opinion::Blue
        } else {
            Opinion::Red
        }
    }
}

/// Best-of-k whenever the tie coin is unreachable (odd `k` or keep-own).
/// Covers Best-of-2 (keep own) as `k = 2`.
#[derive(Clone, Copy)]
struct BestOfKPureKernel {
    k: usize,
}

impl BatchCore for BestOfKPureKernel {
    #[inline(always)]
    fn samples(&self) -> usize {
        self.k
    }

    #[inline(always)]
    fn decide(&self, blues: usize, current: Opinion) -> Opinion {
        decide_pure(blues, self.k, current)
    }
}

/// Best-of-k with a reachable random tie coin (even `k`, `TieRule::Random`):
/// the coin draw is interleaved with the sample draws, so this core must run
/// strictly in vertex order.  Covers Best-of-2 (random tie) as `k = 2`.
#[derive(Clone, Copy)]
struct BestOfKCoinKernel {
    k: usize,
}

impl KernelCore for BestOfKCoinKernel {
    #[inline(always)]
    fn update_vertex<R: RngCore + ?Sized>(
        &self,
        row: &[VertexId],
        current: Opinion,
        snap: &PackedSnapshot,
        rng: &mut R,
    ) -> Opinion {
        let blues = count_blue_packed(row, snap, self.k, rng);
        resolve_majority(blues, self.k, current, TieRule::Random, rng)
    }
}

#[derive(Clone, Copy)]
struct LocalMajorityKernel {
    tie_rule: TieRule,
}

impl KernelCore for LocalMajorityKernel {
    #[inline(always)]
    fn update_vertex<R: RngCore + ?Sized>(
        &self,
        row: &[VertexId],
        current: Opinion,
        snap: &PackedSnapshot,
        rng: &mut R,
    ) -> Opinion {
        let mut blues = 0usize;
        for &w in row {
            blues += snap.is_blue(w) as usize;
        }
        resolve_majority(blues, row.len(), current, self.tie_rule, rng)
    }
}

/// Applies one monomorphized kernel to the vertices
/// `start..start + out.len()`, reading the packed snapshot and writing the
/// new opinions into `out`, consuming `rng` exactly as the `dyn` path does —
/// per vertex in order, with any tie coin interleaved.
///
/// This is the kernel-path counterpart of
/// [`crate::parallel::update_chunk`]; both honour the same chunk boundaries
/// and RNG derivation, which is what keeps sequential, parallel, kernel and
/// `dyn` executions bit-identical.
fn update_chunk_kernel<P: KernelCore, R: RngCore + ?Sized>(
    core: P,
    graph: &CsrGraph,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    for (i, slot) in out.iter_mut().enumerate() {
        let v = start + i;
        let row = graph.neighbours(v);
        *slot = core.update_vertex(row, snap.get(v), snap, rng);
    }
}

/// Vertices per software-pipelined block of [`update_chunk_batched`].
///
/// Large enough that a block's neighbour-row gathers (`BATCH · k`
/// independent reads) saturate the core's outstanding-miss capacity, small
/// enough that the pick buffer stays in L1.
const BATCH: usize = 128;

/// The batched chunk kernel for fixed-draw-count sampling protocols.
///
/// Processes vertices in blocks of [`BATCH`], in three phases per block:
///
/// 1. **draw** — consume `k` RNG draws per vertex *in vertex order* (the
///    stream therefore matches the `dyn` path exactly) and turn them into
///    flat CSR arc positions via [`sample_index`], reading only the
///    sequentially-prefetchable offset array;
/// 2. **gather** — resolve every pick to a neighbour id in one tight loop of
///    independent reads, so the cache misses into the (potentially huge)
///    neighbour array overlap instead of serialising;
/// 3. **decide** — count blue bits in the packed snapshot (L1-resident) and
///    write the pure majority decision.
///
/// The phase split changes only the *order of memory reads*, never the RNG
/// stream, so results stay bit-identical to [`update_chunk_kernel`] and the
/// `dyn` fallback.
fn update_chunk_batched<C: BatchCore, R: RngCore + ?Sized>(
    core: C,
    graph: &CsrGraph,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    let k = core.samples();
    let (offsets, neighbours) = graph.as_csr();
    // One allocation per chunk (≤ 4096 vertices), reused across its blocks.
    let mut picks = vec![0usize; BATCH * k];
    let mut done = 0usize;
    while done < out.len() {
        let block = BATCH.min(out.len() - done);
        let first = start + done;
        // Phase 1: draws, in exactly the dyn path's order.
        let offset_window = &offsets[first..first + block + 1];
        for (i, vertex_picks) in picks[..block * k].chunks_exact_mut(k).enumerate() {
            let row_start = offset_window[i];
            let deg = offset_window[i + 1] - row_start;
            // A real (per-vertex, perfectly predicted) assert: the `dyn`
            // path fails loudly on an isolated vertex (`gen_range` on an
            // empty range), and a silent `sample_index(_, 0)` here would
            // gather a *different vertex's* neighbour instead.  Engines
            // rule isolated vertices out up front via `NeighbourSampler`.
            assert!(deg > 0, "isolated vertex {} in kernel path", first + i);
            for slot in vertex_picks {
                *slot = row_start + sample_index(rng.next_u64(), deg);
            }
        }
        // Phase 2: gather + packed-bit lookup.  Every iteration is
        // independent, so the neighbour-array misses overlap; the snapshot
        // read behind each gather is L1-resident.
        for p in &mut picks[..block * k] {
            *p = snap.is_blue(neighbours[*p]) as usize;
        }
        // Phase 3: pure decisions from the blue-sample counts.
        for (i, vertex_bits) in picks[..block * k].chunks_exact(k).enumerate() {
            let blues: usize = vertex_bits.iter().sum();
            out[done + i] = core.decide(blues, snap.get(first + i));
        }
        done += block;
    }
}

/// The fixed-draw-count kernel specialised to the complete graph `K_n`.
///
/// On `K_n` the neighbour row of `v` is the identity sequence with a gap at
/// `v` (`row[i] == i + (i >= v)`, pinned by a `CsrGraph` unit test), so the
/// sampled neighbour is *computed* instead of gathered — the `Θ(n²)` CSR
/// adjacency is never touched and the only memory read per sample is one
/// L1-resident snapshot bit.  This is the single biggest lever on the
/// paper's own workload (dense/complete graphs): it removes the per-sample
/// DRAM miss entirely.  Draw order and sampled values stay exactly those of
/// the generic path, so results remain bit-identical.
fn update_chunk_complete<C: BatchCore, R: RngCore + ?Sized>(
    core: C,
    n: usize,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    let k = core.samples();
    let deg = n - 1;
    for (i, slot) in out.iter_mut().enumerate() {
        let v = start + i;
        let mut blues = 0usize;
        for _ in 0..k {
            let idx = sample_index(rng.next_u64(), deg);
            let w = idx + usize::from(idx >= v);
            blues += snap.is_blue(w) as usize;
        }
        *slot = core.decide(blues, snap.get(v));
    }
}

/// Best-of-k with a reachable random tie coin, specialised to `K_n`
/// (synthesised rows, coin interleaved in vertex order like the `dyn` path).
fn update_chunk_coin_complete<R: RngCore + ?Sized>(
    k: usize,
    n: usize,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    let deg = n - 1;
    for (i, slot) in out.iter_mut().enumerate() {
        let v = start + i;
        let mut blues = 0usize;
        for _ in 0..k {
            let idx = sample_index(rng.next_u64(), deg);
            let w = idx + usize::from(idx >= v);
            blues += snap.is_blue(w) as usize;
        }
        *slot = resolve_majority(blues, k, snap.get(v), TieRule::Random, rng);
    }
}

/// Local majority specialised to `K_n`: every vertex sees all vertices but
/// itself, so its blue-neighbour count is one popcount of the snapshot
/// (hoisted out of the loop) minus its own bit — `O(n/64 + chunk)` instead
/// of the `Θ(n · chunk)` row scan.  Counts equal the generic row scan's, so
/// ties (and any tie coins) land identically.
fn update_chunk_local_majority_complete<R: RngCore + ?Sized>(
    tie_rule: TieRule,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    let total_blues = snap.blue_count();
    let deg = snap.len() - 1;
    for (i, slot) in out.iter_mut().enumerate() {
        let v = start + i;
        let blues = total_blues - snap.is_blue(v) as usize;
        *slot = resolve_majority(blues, deg, snap.get(v), tie_rule, rng);
    }
}

/// Statically dispatches one chunk to the monomorphized kernel for `kind`.
///
/// Fixed-draw-count protocols take the software-pipelined
/// [`update_chunk_batched`] path; protocols with a reachable random tie coin
/// (whose RNG consumption is data-dependent) and the full-neighbourhood
/// local majority take the per-vertex [`update_chunk_kernel`] path.  On the
/// complete graph every protocol switches to a synthesised-row kernel that
/// never reads the `Θ(n²)` adjacency ([`update_chunk_complete`] and
/// friends).
pub(crate) fn dispatch_chunk<R: RngCore + ?Sized>(
    kind: ProtocolKind,
    graph: &CsrGraph,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    let n = graph.num_vertices();
    if graph.is_complete() {
        match kind {
            ProtocolKind::Voter => update_chunk_complete(VoterKernel, n, snap, start, out, rng),
            ProtocolKind::BestOfThree => {
                update_chunk_complete(BestOfThreeKernel, n, snap, start, out, rng)
            }
            ProtocolKind::BestOfTwo(TieRule::KeepOwn) => {
                update_chunk_complete(BestOfKPureKernel { k: 2 }, n, snap, start, out, rng)
            }
            ProtocolKind::BestOfTwo(TieRule::Random) => {
                update_chunk_coin_complete(2, n, snap, start, out, rng)
            }
            ProtocolKind::BestOfK { k, tie_rule } if k % 2 == 1 || tie_rule == TieRule::KeepOwn => {
                update_chunk_complete(BestOfKPureKernel { k }, n, snap, start, out, rng)
            }
            ProtocolKind::BestOfK { k, .. } => {
                update_chunk_coin_complete(k, n, snap, start, out, rng)
            }
            ProtocolKind::LocalMajority(tie_rule) => {
                update_chunk_local_majority_complete(tie_rule, snap, start, out, rng)
            }
        }
        return;
    }
    match kind {
        ProtocolKind::Voter => update_chunk_batched(VoterKernel, graph, snap, start, out, rng),
        ProtocolKind::BestOfThree => {
            update_chunk_batched(BestOfThreeKernel, graph, snap, start, out, rng)
        }
        ProtocolKind::BestOfTwo(TieRule::KeepOwn) => {
            update_chunk_batched(BestOfKPureKernel { k: 2 }, graph, snap, start, out, rng)
        }
        ProtocolKind::BestOfTwo(TieRule::Random) => {
            update_chunk_kernel(BestOfKCoinKernel { k: 2 }, graph, snap, start, out, rng)
        }
        ProtocolKind::BestOfK { k, tie_rule } if k % 2 == 1 || tie_rule == TieRule::KeepOwn => {
            update_chunk_batched(BestOfKPureKernel { k }, graph, snap, start, out, rng)
        }
        ProtocolKind::BestOfK { k, .. } => {
            update_chunk_kernel(BestOfKCoinKernel { k }, graph, snap, start, out, rng)
        }
        ProtocolKind::LocalMajority(tie_rule) => update_chunk_kernel(
            LocalMajorityKernel { tie_rule },
            graph,
            snap,
            start,
            out,
            rng,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{BestOfK, BestOfThree, BestOfTwo, LocalMajority, Voter};
    use bo3_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn packed_snapshot_round_trips_opinions() {
        let opinions: Vec<Opinion> = (0..130)
            .map(|v| {
                if v % 3 == 0 {
                    Opinion::Blue
                } else {
                    Opinion::Red
                }
            })
            .collect();
        let snap = PackedSnapshot::from_opinions(&opinions);
        assert_eq!(snap.len(), 130);
        assert!(!snap.is_empty());
        for (v, &o) in opinions.iter().enumerate() {
            assert_eq!(snap.get(v), o, "vertex {v}");
        }
        let expected = opinions.iter().filter(|o| o.is_blue()).count();
        assert_eq!(snap.blue_count(), expected);
        let frac = expected as f64 / 130.0;
        assert!((snap.blue_fraction() - frac).abs() < 1e-12);
    }

    #[test]
    fn packed_snapshot_set_flips_single_bits() {
        let mut snap = PackedSnapshot::all_red(100);
        assert_eq!(snap.blue_count(), 0);
        snap.set(63, Opinion::Blue);
        snap.set(64, Opinion::Blue);
        assert!(snap.is_blue(63) && snap.is_blue(64));
        assert!(!snap.is_blue(62) && !snap.is_blue(65));
        assert_eq!(snap.blue_count(), 2);
        snap.set(63, Opinion::Red);
        assert_eq!(snap.blue_count(), 1);
        // Setting an already-correct bit is a no-op.
        snap.set(64, Opinion::Blue);
        assert_eq!(snap.blue_count(), 1);
    }

    #[test]
    fn repack_reuses_the_allocation_and_matches_from_opinions() {
        let a: Vec<Opinion> = (0..200).map(|_| Opinion::Blue).collect();
        let b: Vec<Opinion> = (0..70)
            .map(|v| {
                if v % 2 == 0 {
                    Opinion::Red
                } else {
                    Opinion::Blue
                }
            })
            .collect();
        let mut snap = PackedSnapshot::from_opinions(&a);
        snap.repack_from(&b);
        assert_eq!(snap, PackedSnapshot::from_opinions(&b));
        assert_eq!(snap.blue_count(), 35);
    }

    #[test]
    fn empty_snapshot_is_well_behaved() {
        let snap = PackedSnapshot::from_opinions(&[]);
        assert!(snap.is_empty());
        assert_eq!(snap.blue_count(), 0);
        assert_eq!(snap.blue_fraction(), 0.0);
    }

    #[test]
    fn sample_index_matches_gen_range() {
        // The kernel's Lemire reduction must stay bit-identical to the
        // vendored gen_range for every degree, or the kernel and dyn paths
        // drift onto different streams.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for n in [1usize, 2, 3, 7, 64, 1000, 4097] {
            for _ in 0..50 {
                let via_kernel = sample_index(a.next_u64(), n);
                let via_gen_range = b.gen_range(0..n);
                assert_eq!(via_kernel, via_gen_range, "n = {n}");
            }
        }
    }

    #[test]
    fn kernel_rng_streams_are_deterministic_and_distinct() {
        let draws = |mut rng: KernelRng| -> Vec<u64> { (0..8).map(|_| rng.next_u64()).collect() };
        let a = draws(kernel_chunk_rng(1, 2, 3));
        let b = draws(kernel_chunk_rng(1, 2, 3));
        assert_eq!(a, b, "same coordinates must give the same stream");
        for other in [
            kernel_chunk_rng(2, 2, 3),
            kernel_chunk_rng(1, 3, 3),
            kernel_chunk_rng(1, 2, 4),
        ] {
            assert_ne!(a, draws(other), "coordinates must separate streams");
        }
        // Rough uniformity: bounded indices cover a small range evenly.
        let mut rng = kernel_chunk_rng(7, 0, 0);
        let mut counts = [0usize; 10];
        let trials = 100_000;
        for _ in 0..trials {
            counts[sample_index(rng.next_u64(), 10)] += 1;
        }
        for &c in &counts {
            let expected = trials as f64 / 10.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "bucket count {c} vs {expected}"
            );
        }
    }

    #[test]
    fn kernel_rng_fill_bytes_and_u32_are_consistent_with_u64() {
        let mut a = KernelRng::from_stream_id(5);
        let mut b = KernelRng::from_stream_id(5);
        assert_eq!(a.next_u32() as u64, b.next_u64() >> 32);
        let mut buf = [0u8; 12];
        a.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 12]);
    }

    #[test]
    fn builtin_protocols_report_their_kind() {
        assert_eq!(Voter::new().kind(), Some(ProtocolKind::Voter));
        assert_eq!(
            BestOfTwo::keep_own().kind(),
            Some(ProtocolKind::BestOfTwo(TieRule::KeepOwn))
        );
        assert_eq!(BestOfThree::new().kind(), Some(ProtocolKind::BestOfThree));
        assert_eq!(
            BestOfK::new(5, TieRule::Random).kind(),
            Some(ProtocolKind::BestOfK {
                k: 5,
                tie_rule: TieRule::Random
            })
        );
        assert_eq!(
            LocalMajority::keep_own().kind(),
            Some(ProtocolKind::LocalMajority(TieRule::KeepOwn))
        );
    }

    #[test]
    fn dyn_only_hides_the_kind_but_delegates_everything_else() {
        let wrapped = DynOnly(BestOfThree::new());
        assert_eq!(wrapped.kind(), None);
        assert_eq!(wrapped.name(), BestOfThree::new().name());
        assert_eq!(wrapped.sample_size(), 3);
    }

    /// Every kernel must consume the same RNG stream and produce the same
    /// opinion as the corresponding `dyn` protocol update — the
    /// bit-compatibility half of the determinism contract.  Run on an
    /// Erdős–Rényi graph (batched/explicit-row kernels) and on a complete
    /// graph (synthesised-row kernels).
    #[test]
    fn kernels_match_dyn_updates_draw_for_draw() {
        let graphs = vec![
            generators::erdos_renyi_gnp(180, 0.2, &mut StdRng::seed_from_u64(1)).unwrap(),
            generators::complete(150),
        ];
        for g in &graphs {
            let sampler = bo3_graph::NeighbourSampler::new(g).unwrap();
            let opinions: Vec<Opinion> = {
                let mut rng = StdRng::seed_from_u64(2);
                (0..g.num_vertices())
                    .map(|_| {
                        if rng.gen_bool(0.45) {
                            Opinion::Blue
                        } else {
                            Opinion::Red
                        }
                    })
                    .collect()
            };
            let snap = PackedSnapshot::from_opinions(&opinions);
            let protocols: Vec<(ProtocolKind, Box<dyn Protocol>)> = vec![
                (ProtocolKind::Voter, Box::new(Voter::new())),
                (
                    ProtocolKind::BestOfTwo(TieRule::Random),
                    Box::new(BestOfTwo::new(TieRule::Random)),
                ),
                (
                    ProtocolKind::BestOfTwo(TieRule::KeepOwn),
                    Box::new(BestOfTwo::keep_own()),
                ),
                (ProtocolKind::BestOfThree, Box::new(BestOfThree::new())),
                (
                    ProtocolKind::BestOfK {
                        k: 6,
                        tie_rule: TieRule::KeepOwn,
                    },
                    Box::new(BestOfK::new(6, TieRule::KeepOwn)),
                ),
                (
                    ProtocolKind::BestOfK {
                        k: 4,
                        tie_rule: TieRule::Random,
                    },
                    Box::new(BestOfK::new(4, TieRule::Random)),
                ),
                (
                    ProtocolKind::LocalMajority(TieRule::Random),
                    Box::new(LocalMajority::new(TieRule::Random)),
                ),
            ];
            for (kind, protocol) in &protocols {
                let mut kernel_out = vec![Opinion::Red; g.num_vertices()];
                let mut kernel_rng = StdRng::seed_from_u64(33);
                dispatch_chunk(*kind, g, &snap, 0, &mut kernel_out, &mut kernel_rng);

                let mut dyn_out = Vec::with_capacity(g.num_vertices());
                let mut dyn_rng = StdRng::seed_from_u64(33);
                for v in g.vertices() {
                    let ctx = UpdateContext {
                        vertex: v,
                        current: opinions[v],
                        previous: &opinions,
                        sampler: &sampler,
                    };
                    dyn_out.push(protocol.update(&ctx, &mut dyn_rng));
                }
                assert_eq!(kernel_out, dyn_out, "{:?} diverged from dyn path", kind);
                // Both paths must have consumed the same amount of randomness.
                assert_eq!(
                    kernel_rng.next_u64(),
                    dyn_rng.next_u64(),
                    "{:?} consumed a different stream length",
                    kind
                );
            }
        }
    }
}
