//! Monomorphized hot-path kernels.
//!
//! A single E1-scale run performs `3·n·T` neighbour draws, so the per-update
//! inner loop *is* the system.  The generic engine path pays two virtual
//! calls per sample (`dyn Protocol::update`, `dyn RngCore`), a per-sample
//! degree reload and a byte-wide read of `ξ_t(w)`.  This module removes all
//! of that for the built-in protocols:
//!
//! * [`PackedSnapshot`] — the previous round's configuration as a `u64`
//!   bitset: reading `ξ_t(w)` touches one bit instead of one byte, and blue
//!   counts are a popcount scan;
//! * **batched RNG** — neighbour indices come from whole `u64` draws mapped
//!   onto `[0, deg)` with Lemire's multiply-shift reduction
//!   (`sample_index`), one draw per sample, no rejection loop, with the
//!   degree/row lookup hoisted out of the k-sample loop;
//! * **static dispatch** — [`ProtocolKind`] names the built-in protocols and
//!   `dispatch_chunk_topology` selects a fully monomorphized chunk kernel
//!   per (protocol kind, topology type) pair, so the protocol update, the
//!   topology's neighbour sampling and the RNG inline into one tight loop.
//!   Custom protocols keep working through the object-safe [`Protocol`]
//!   registry API: a protocol whose [`Protocol::kind`] returns `None` falls
//!   back to the generic `dyn` path.
//!
//! The kernels are generic over [`bo3_graph::Topology`], so the same code
//! drives materialised CSR graphs and the implicit (procedural) topologies
//! of `bo3_graph::topology` — a million-vertex complete graph or implicit
//! `G(n, p)` runs without a single byte of adjacency.  Topologies exposing
//! raw CSR arrays ([`Topology::as_csr`]) take the software-pipelined batched
//! path below; the complete graph is no longer an ad-hoc special case but
//! simply the [`bo3_graph::Complete`] topology, whose arithmetic neighbour
//! synthesis (and the popcount local-majority shortcut via
//! [`Topology::is_all_but_self`]) the `dispatch_chunk` CSR entry point
//! selects whenever `CsrGraph::is_complete` holds.
//!
//! # Determinism contract
//!
//! Two properties, pinned by two suites:
//!
//! **1. Draw-for-draw `dyn` compatibility.** Handed the *same* RNG, a kernel
//! update of vertex `v` consumes exactly the same raw stream and produces
//! exactly the same opinion as `Protocol::update` for the corresponding
//! built-in protocol:
//!
//! * every neighbour sample consumes one `next_u64` and reduces it with the
//!   same multiply-shift map as the vendored `gen_range(0..deg)`, and
//! * tie coins consume one `next_u32` exactly like `rng.gen::<bool>()`,
//!
//! in the same order.  Consequently the caller-RNG entry points
//! ([`crate::engine::Simulator::run`] / `step_synchronous`) return
//! bit-identical results whether a protocol takes the kernel path or is
//! forced onto the `dyn` path — the kernel-equivalence suite pins this on
//! complete, Erdős–Rényi and bipartite graphs.
//!
//! **2. Sequential == parallel on the seeded path.**  The seeded steppers
//! derive one RNG per `(master_seed, round, chunk)` work unit, so the
//! output is bit-for-bit identical at any thread count — the determinism
//! regression suite pins this at 1/2/8 threads.  The kernel path derives
//! [`kernel_chunk_rng`] (xoshiro256++, a few cycles per draw) and the `dyn`
//! fallback keeps [`crate::parallel::chunk_rng`] (ChaCha8) over the same
//! stream-id mixing; each path is internally deterministic, sequential and
//! parallel always agree *within* a path, and which path runs is a pure
//! function of [`Protocol::kind`].  (The seeded kernel stream deliberately
//! differs from the seeded `dyn` stream: hoisting ChaCha out of the
//! per-sample loop is most of the kernel speedup.  Seeded results therefore
//! changed exactly once, when the kernels landed, for built-in protocols.)
//!
//! Any change to the per-sample draw order breaks both suites; change the
//! kernels and the `dyn` helpers ([`crate::protocol`]) together.

use rand::RngCore;

use bo3_graph::topology::lemire_index;
use bo3_graph::{Complete, CsrGraph, CsrTopology, NeighbourLane, PairHashSpec, Topology, VertexId};
use bo3_obs::SamplerMeter;

use crate::opinion::Opinion;
use crate::protocol::{resolve_majority, Protocol, TieRule, UpdateContext};

/// A bit-packed immutable view of one round's configuration `ξ_t`.
///
/// Vertex `v` is blue iff bit `v % 64` of word `v / 64` is set.  The packed
/// form is 8× denser than `[Opinion]`, so snapshot reads stay cache-resident
/// far longer, and [`PackedSnapshot::blue_count`] is a popcount scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSnapshot {
    words: Vec<u64>,
    len: usize,
}

impl PackedSnapshot {
    /// An all-red snapshot of `n` vertices.
    pub fn all_red(n: usize) -> Self {
        PackedSnapshot {
            words: vec![0u64; n.div_ceil(64)],
            len: n,
        }
    }

    /// Packs an opinion slice.
    pub fn from_opinions(opinions: &[Opinion]) -> Self {
        let mut snap = PackedSnapshot {
            words: Vec::new(),
            len: 0,
        };
        snap.repack_from(opinions);
        snap
    }

    /// Repacks in place from an opinion slice, reusing the allocation.
    pub fn repack_from(&mut self, opinions: &[Opinion]) {
        self.len = opinions.len();
        self.words.clear();
        self.words.reserve(opinions.len().div_ceil(64));
        for chunk in opinions.chunks(64) {
            let mut word = 0u64;
            for (bit, o) in chunk.iter().enumerate() {
                word |= (o.is_blue() as u64) << bit;
            }
            self.words.push(word);
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when there are no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when vertex `v` is blue.
    #[inline(always)]
    pub fn is_blue(&self, v: usize) -> bool {
        debug_assert!(v < self.len);
        (self.words[v >> 6] >> (v & 63)) & 1 == 1
    }

    /// The opinion of vertex `v`.
    #[inline(always)]
    pub fn get(&self, v: usize) -> Opinion {
        if self.is_blue(v) {
            Opinion::Blue
        } else {
            Opinion::Red
        }
    }

    /// Sets the opinion of vertex `v`.
    #[inline]
    pub fn set(&mut self, v: usize, opinion: Opinion) {
        debug_assert!(v < self.len);
        let mask = 1u64 << (v & 63);
        match opinion {
            Opinion::Blue => self.words[v >> 6] |= mask,
            Opinion::Red => self.words[v >> 6] &= !mask,
        }
    }

    /// Number of blue vertices — a popcount scan over the packed words.
    pub fn blue_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of blue vertices (`0.0` on the empty snapshot).
    pub fn blue_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.blue_count() as f64 / self.len as f64
        }
    }
}

/// Names a built-in protocol the kernel path can monomorphize.
///
/// Returned by [`Protocol::kind`]; protocols that return `None` (custom
/// registry entries) run through the generic `dyn` path instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Best-of-1: copy one random neighbour.
    Voter,
    /// Best-of-2 with the given tie rule.
    BestOfTwo(TieRule),
    /// Best-of-3 — the paper's protocol.
    BestOfThree,
    /// Best-of-k samples with the given tie rule.
    BestOfK {
        /// Sample size.
        k: usize,
        /// How even-`k` ties are resolved.
        tie_rule: TieRule,
    },
    /// Deterministic full-neighbourhood majority with the given tie rule.
    LocalMajority(TieRule),
}

/// Wraps any protocol so it reports no [`ProtocolKind`], forcing the engines
/// onto the generic `dyn` fallback path.
///
/// This exists for the kernel-equivalence suite and the `e13` throughput
/// bench, which compare the two paths on the same protocol; it is not useful
/// in production code.
#[derive(Debug, Clone, Copy)]
pub struct DynOnly<P>(pub P);

impl<P: Protocol> Protocol for DynOnly<P> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn sample_size(&self) -> usize {
        self.0.sample_size()
    }

    fn update(&self, ctx: &UpdateContext<'_>, rng: &mut dyn RngCore) -> Opinion {
        self.0.update(ctx, rng)
    }

    fn kind(&self) -> Option<ProtocolKind> {
        None
    }
}

/// The kernel path's per-work-unit generator: xoshiro256++.
///
/// The seeded kernels draw one `u64` per neighbour sample, so generator
/// throughput is directly on the critical path; xoshiro256++ produces a
/// `u64` in a handful of cycles (versus a few dozen for the `dyn` path's
/// buffered ChaCha8) while passing the statistical test batteries that
/// matter for Monte-Carlo work.  Streams are derived per
/// `(master_seed, round, chunk)` work unit by [`kernel_chunk_rng`], exactly
/// mirroring the `dyn` path's [`crate::parallel::chunk_rng`] derivation, so
/// the sequential-equals-parallel contract is preserved.
#[derive(Debug, Clone)]
pub struct KernelRng {
    s: [u64; 4],
}

impl KernelRng {
    /// Expands a 64-bit stream id into the 256-bit state through SplitMix64
    /// (the seeding recommended by the xoshiro authors).
    pub fn from_stream_id(id: u64) -> Self {
        let mut sm = id;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        KernelRng { s }
    }
}

impl RngCore for KernelRng {
    #[inline(always)]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    #[inline(always)]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
    }
}

/// Derives the kernel-path RNG for one `(seed, round, chunk)` work unit.
///
/// Same stream-id mixing as [`crate::parallel::chunk_rng`], different
/// generator — see [`KernelRng`].  Public for the same reason `chunk_rng`
/// is: external code reproducing seeded kernel runs draw-for-draw.
pub fn kernel_chunk_rng(master_seed: u64, round: u64, chunk: u64) -> KernelRng {
    KernelRng::from_stream_id(crate::parallel::stream_id(master_seed, round, chunk))
}

/// Maps one `u64` draw onto `[0, n)` with Lemire's multiply-shift reduction.
///
/// This is bit-identical to the vendored `rng.gen_range(0..n)` (which uses
/// the same fixed-point multiply without a rejection step), which is what
/// keeps the kernel path and the `dyn` path on the same RNG stream.  The
/// shared definition lives in `bo3_graph::topology` so the implicit
/// topologies reduce draws identically.
#[inline(always)]
pub(crate) fn sample_index(draw: u64, n: usize) -> usize {
    lemire_index(draw, n)
}

/// A sampling rule whose RNG consumption is exactly `k` draws per vertex —
/// no data-dependent tie coin — so the sample draws can be hoisted away from
/// the neighbour-row reads without reordering the stream.
///
/// That reordering freedom is the key throughput lever on dense graphs: the
/// row reads are independent cache misses, and issuing a whole batch of them
/// back to back lets the core overlap their latency instead of serialising
/// draw → read → draw → read per sample (see [`update_chunk_batched`]).
/// Protocols that may draw a tie coin *between* one vertex's samples and the
/// next vertex's (the `TieRule::Random` variants with even `k`) cannot be
/// phase-split without changing the stream; they stay on the per-vertex
/// [`KernelCore`] loop.
trait BatchCore: Copy {
    /// Samples drawn per vertex.
    fn samples(&self) -> usize;

    /// Pure decision from the blue-sample count (no RNG by construction).
    fn decide(&self, blues: usize, current: Opinion) -> Opinion;
}

/// The pure half of [`resolve_majority`]: strict majorities plus the
/// keep-own tie.  Callers guarantee the random-coin tie is unreachable
/// (odd `k`, or `TieRule::KeepOwn`).
#[inline(always)]
pub(crate) fn decide_pure(blues: usize, k: usize, current: Opinion) -> Opinion {
    let reds = k - blues;
    match blues.cmp(&reds) {
        std::cmp::Ordering::Greater => Opinion::Blue,
        std::cmp::Ordering::Less => Opinion::Red,
        std::cmp::Ordering::Equal => current,
    }
}

#[derive(Clone, Copy)]
struct VoterKernel;

impl BatchCore for VoterKernel {
    #[inline(always)]
    fn samples(&self) -> usize {
        1
    }

    #[inline(always)]
    fn decide(&self, blues: usize, _current: Opinion) -> Opinion {
        if blues == 1 {
            Opinion::Blue
        } else {
            Opinion::Red
        }
    }
}

#[derive(Clone, Copy)]
struct BestOfThreeKernel;

impl BatchCore for BestOfThreeKernel {
    #[inline(always)]
    fn samples(&self) -> usize {
        3
    }

    #[inline(always)]
    fn decide(&self, blues: usize, _current: Opinion) -> Opinion {
        if blues >= 2 {
            Opinion::Blue
        } else {
            Opinion::Red
        }
    }
}

/// Best-of-k whenever the tie coin is unreachable (odd `k` or keep-own).
/// Covers Best-of-2 (keep own) as `k = 2`.
#[derive(Clone, Copy)]
struct BestOfKPureKernel {
    k: usize,
}

impl BatchCore for BestOfKPureKernel {
    #[inline(always)]
    fn samples(&self) -> usize {
        self.k
    }

    #[inline(always)]
    fn decide(&self, blues: usize, current: Opinion) -> Opinion {
        decide_pure(blues, self.k, current)
    }
}

/// Fixed-draw-count protocols on an arbitrary topology: `k` samples per
/// vertex through [`Topology::sample_neighbour`], a packed-bit lookup each,
/// then the pure majority decision.  For the closed-form topologies
/// (implicit complete, bipartite, multipartite) the sample inlines to a
/// couple of arithmetic ops and one L1-resident snapshot read — no adjacency
/// exists to miss on.  Vertices are processed strictly in order so the RNG
/// stream matches the `dyn` path on materialised graphs.
fn update_chunk_sampled<C: BatchCore, T: Topology, R: RngCore + ?Sized>(
    core: C,
    topo: &T,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    let k = core.samples();
    for (i, slot) in out.iter_mut().enumerate() {
        let v = start + i;
        let mut blues = 0usize;
        for _ in 0..k {
            blues += snap.is_blue(topo.sample_neighbour(v, rng)) as usize;
        }
        *slot = core.decide(blues, snap.get(v));
    }
}

/// Best-of-k with a reachable random tie coin (even `k`, `TieRule::Random`)
/// on an arbitrary topology: the coin draw is interleaved between one
/// vertex's samples and the next vertex's, so this kernel runs strictly in
/// vertex order and cannot be phase-split.  Covers Best-of-2 (random tie) as
/// `k = 2`.
fn update_chunk_coin_sampled<T: Topology, R: RngCore + ?Sized>(
    k: usize,
    topo: &T,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    for (i, slot) in out.iter_mut().enumerate() {
        let v = start + i;
        let mut blues = 0usize;
        for _ in 0..k {
            blues += snap.is_blue(topo.sample_neighbour(v, rng)) as usize;
        }
        *slot = resolve_majority(blues, k, snap.get(v), TieRule::Random, rng);
    }
}

/// The coin kernel specialised to materialised CSR arrays: the neighbour
/// row is hoisted out of the k-sample loop (one offsets read per vertex,
/// not per draw), with draws and coin in exactly the sampled path's order.
fn update_chunk_coin_csr<R: RngCore + ?Sized>(
    k: usize,
    offsets: &[usize],
    neighbours: &[VertexId],
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    for (i, slot) in out.iter_mut().enumerate() {
        let v = start + i;
        let row = &neighbours[offsets[v]..offsets[v + 1]];
        let mut blues = 0usize;
        for _ in 0..k {
            blues += snap.is_blue(row[sample_index(rng.next_u64(), row.len())]) as usize;
        }
        *slot = resolve_majority(blues, k, snap.get(v), TieRule::Random, rng);
    }
}

/// Routes one coin-protocol chunk like [`fixed_draw_chunk`] does for the
/// pure protocols: row-hoisted on CSR, sampled elsewhere.  Both consume the
/// RNG identically.
#[inline]
fn coin_chunk<T: Topology, R: RngCore + ?Sized>(
    k: usize,
    topo: &T,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    if let Some((offsets, neighbours)) = topo.as_csr() {
        update_chunk_coin_csr(k, offsets, neighbours, snap, start, out, rng);
    } else {
        update_chunk_coin_sampled(k, topo, snap, start, out, rng);
    }
}

/// Deterministic full-neighbourhood majority on an arbitrary topology.
///
/// When the topology is the complete graph ([`Topology::is_all_but_self`])
/// every vertex sees all vertices but itself, so its blue-neighbour count is
/// one popcount of the snapshot (hoisted out of the loop) minus its own bit
/// — `O(n/64 + chunk)` instead of the `Θ(n · chunk)` neighbourhood scan.
/// Counts equal the scan's, so ties (and any tie coins) land identically.
/// Other topologies walk their neighbourhood via
/// [`Topology::for_each_neighbour`] — the same row scan as before on CSR,
/// and an inherently `Θ(n)`-per-vertex edge-test sweep on hash-defined
/// implicit topologies.
fn update_chunk_local_majority<T: Topology, R: RngCore + ?Sized>(
    tie_rule: TieRule,
    topo: &T,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    if topo.is_all_but_self() {
        let total_blues = snap.blue_count();
        let deg = snap.len() - 1;
        for (i, slot) in out.iter_mut().enumerate() {
            let v = start + i;
            let blues = total_blues - snap.is_blue(v) as usize;
            *slot = resolve_majority(blues, deg, snap.get(v), tie_rule, rng);
        }
        return;
    }
    for (i, slot) in out.iter_mut().enumerate() {
        let v = start + i;
        let mut blues = 0usize;
        let mut deg = 0usize;
        topo.for_each_neighbour(v, |w| {
            blues += snap.is_blue(w) as usize;
            deg += 1;
        });
        *slot = resolve_majority(blues, deg, snap.get(v), tie_rule, rng);
    }
}

/// Counts blue among `k` uniform with-replacement neighbour samples of `v`,
/// read from the (possibly live) snapshot — one `next_u64` per sample,
/// reduced exactly like the `dyn` path's `gen_range`.
#[inline(always)]
fn count_sampled_blues<T: Topology, R: RngCore + ?Sized>(
    topo: &T,
    snap: &PackedSnapshot,
    v: usize,
    k: usize,
    rng: &mut R,
) -> usize {
    let mut blues = 0usize;
    for _ in 0..k {
        blues += snap.is_blue(topo.sample_neighbour(v, rng)) as usize;
    }
    blues
}

/// One **asynchronous** (live-state) update of vertex `v` under `kind`.
///
/// This is the per-vertex core of the asynchronous schedule on any
/// [`Topology`]: neighbour samples and the full-neighbourhood counts read
/// `live` — the *current*, partially updated round state — instead of a
/// frozen snapshot.  `live_blues` is the caller-maintained blue count of
/// `live`, which turns the complete-topology local majority into one
/// subtraction instead of a `Θ(n)` row walk (counts equal the walk's, so tie
/// coins land identically).
///
/// RNG consumption matches `Protocol::update` draw-for-draw — one `u64` per
/// neighbour sample, one `u32` per reachable tie coin, in the same order —
/// so an asynchronous round through this kernel is bit-identical to the
/// `dyn` loop on a materialised graph (the engine's async equivalence test
/// pins this).
pub(crate) fn update_vertex_live<T: Topology, R: RngCore + ?Sized>(
    kind: ProtocolKind,
    topo: &T,
    live: &PackedSnapshot,
    live_blues: usize,
    v: usize,
    rng: &mut R,
) -> Opinion {
    match kind {
        ProtocolKind::Voter => {
            if count_sampled_blues(topo, live, v, 1, rng) == 1 {
                Opinion::Blue
            } else {
                Opinion::Red
            }
        }
        ProtocolKind::BestOfThree => {
            if count_sampled_blues(topo, live, v, 3, rng) >= 2 {
                Opinion::Blue
            } else {
                Opinion::Red
            }
        }
        ProtocolKind::BestOfTwo(tie_rule) => {
            let blues = count_sampled_blues(topo, live, v, 2, rng);
            resolve_majority(blues, 2, live.get(v), tie_rule, rng)
        }
        ProtocolKind::BestOfK { k, tie_rule } => {
            let blues = count_sampled_blues(topo, live, v, k, rng);
            resolve_majority(blues, k, live.get(v), tie_rule, rng)
        }
        ProtocolKind::LocalMajority(tie_rule) => {
            if topo.is_all_but_self() {
                let blues = live_blues - live.is_blue(v) as usize;
                resolve_majority(blues, live.len() - 1, live.get(v), tie_rule, rng)
            } else {
                let mut blues = 0usize;
                let mut deg = 0usize;
                topo.for_each_neighbour(v, |w| {
                    blues += live.is_blue(w) as usize;
                    deg += 1;
                });
                resolve_majority(blues, deg, live.get(v), tie_rule, rng)
            }
        }
    }
}

/// Vertices per software-pipelined block of [`update_chunk_batched`].
///
/// Large enough that a block's neighbour-row gathers (`BATCH · k`
/// independent reads) saturate the core's outstanding-miss capacity, small
/// enough that the pick buffer stays in L1.
const BATCH: usize = 128;

/// The batched chunk kernel for fixed-draw-count sampling protocols.
///
/// Processes vertices in blocks of [`BATCH`], in three phases per block:
///
/// 1. **draw** — consume `k` RNG draws per vertex *in vertex order* (the
///    stream therefore matches the `dyn` path exactly) and turn them into
///    flat CSR arc positions via [`sample_index`], reading only the
///    sequentially-prefetchable offset array;
/// 2. **gather** — resolve every pick to a neighbour id in one tight loop of
///    independent reads, so the cache misses into the (potentially huge)
///    neighbour array overlap instead of serialising;
/// 3. **decide** — count blue bits in the packed snapshot (L1-resident) and
///    write the pure majority decision.
///
/// The phase split changes only the *order of memory reads*, never the RNG
/// stream, so results stay bit-identical to [`update_chunk_sampled`] and the
/// `dyn` fallback.  Takes the raw CSR arrays (from [`Topology::as_csr`]),
/// since this path only exists for topologies with materialised adjacency.
fn update_chunk_batched<C: BatchCore, R: RngCore + ?Sized>(
    core: C,
    offsets: &[usize],
    neighbours: &[VertexId],
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    let k = core.samples();
    // One allocation per chunk (≤ 4096 vertices), reused across its blocks.
    let mut picks = vec![0usize; BATCH * k];
    let mut done = 0usize;
    while done < out.len() {
        let block = BATCH.min(out.len() - done);
        let first = start + done;
        // Phase 1: draws, in exactly the dyn path's order.
        let offset_window = &offsets[first..first + block + 1];
        for (i, vertex_picks) in picks[..block * k].chunks_exact_mut(k).enumerate() {
            let row_start = offset_window[i];
            let deg = offset_window[i + 1] - row_start;
            // A real (per-vertex, perfectly predicted) assert: the `dyn`
            // path fails loudly on an isolated vertex (`gen_range` on an
            // empty range), and a silent `sample_index(_, 0)` here would
            // gather a *different vertex's* neighbour instead.  Engines
            // rule isolated vertices out up front via `NeighbourSampler`.
            assert!(deg > 0, "isolated vertex {} in kernel path", first + i);
            for slot in vertex_picks {
                *slot = row_start + sample_index(rng.next_u64(), deg);
            }
        }
        // Phase 2: gather + packed-bit lookup.  Every iteration is
        // independent, so the neighbour-array misses overlap; the snapshot
        // read behind each gather is L1-resident.
        for p in &mut picks[..block * k] {
            *p = snap.is_blue(neighbours[*p]) as usize;
        }
        // Phase 3: pure decisions from the blue-sample counts.
        for (i, vertex_bits) in picks[..block * k].chunks_exact(k).enumerate() {
            let blues: usize = vertex_bits.iter().sum();
            out[done + i] = core.decide(blues, snap.get(first + i));
        }
        done += block;
    }
}

/// Fixed draws per vertex under `kind`, when the protocol's RNG
/// consumption is sample-draws only (no reachable tie coin): these are the
/// protocols the draw-ahead lane kernel may batch, because pre-drawing
/// can only commute with a stream that is pure `next_u64` samples.
/// `None` for coin protocols (interleaved `next_u32` tie draws) and the
/// sample-free local majority.
pub(crate) fn lane_samples(kind: ProtocolKind) -> Option<usize> {
    match kind {
        ProtocolKind::Voter => Some(1),
        ProtocolKind::BestOfThree => Some(3),
        ProtocolKind::BestOfTwo(TieRule::KeepOwn) => Some(2),
        ProtocolKind::BestOfK { k, tie_rule } if k % 2 == 1 || tie_rule == TieRule::KeepOwn => {
            Some(k)
        }
        _ => None,
    }
}

/// The draw-ahead chunk kernel for fixed-draw-count protocols on a
/// hash-defined topology: one [`NeighbourLane`] per chunk, refilled from
/// the chunk's scoped RNG, serving the same accepted neighbours (and try
/// counts) as [`update_chunk_sampled`] over the scalar sampler — see the
/// draw-ahead contract in `bo3_graph::topology`.  The caller owns the
/// decision that the chunk's RNG is scoped (dropped at chunk end), which
/// is what makes the lane's discarded pre-draw tail unobservable.
///
/// Metering happens here, not through `MeteredTopology` (the lane never
/// calls `sample_neighbour`): one [`SamplerMeter::record_lane`] per chunk
/// with totals identical to the scalar metered path, plus the lane
/// occupancy only this path can report.
fn update_chunk_lane<C: BatchCore, R: RngCore + ?Sized>(
    core: C,
    spec: PairHashSpec,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
    meter: Option<&SamplerMeter>,
) {
    let k = core.samples();
    let mut lane = NeighbourLane::new(spec);
    for (i, slot) in out.iter_mut().enumerate() {
        let v = start + i;
        let mut blues = 0usize;
        for _ in 0..k {
            let (w, _) = lane.sample(v, rng);
            blues += snap.is_blue(w) as usize;
        }
        *slot = core.decide(blues, snap.get(v));
    }
    if let Some(meter) = meter {
        meter.record_lane(lane.consumed(), (out.len() * k) as u64, lane.drawn());
    }
}

/// Routes one chunk through the draw-ahead lane kernel when both the
/// protocol (fixed draws, no tie coin) and the topology (hash-defined,
/// exposes a [`PairHashSpec`]) support it.  Returns `false` — caller falls
/// back to [`dispatch_chunk_topology`] — otherwise.  Only seeded steppers
/// whose chunk RNG is scoped may call this; see the draw-ahead contract.
pub(crate) fn try_dispatch_chunk_lane<R: RngCore + ?Sized>(
    kind: ProtocolKind,
    spec: PairHashSpec,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
    meter: Option<&SamplerMeter>,
) -> bool {
    match kind {
        ProtocolKind::Voter => update_chunk_lane(VoterKernel, spec, snap, start, out, rng, meter),
        ProtocolKind::BestOfThree => {
            update_chunk_lane(BestOfThreeKernel, spec, snap, start, out, rng, meter)
        }
        ProtocolKind::BestOfTwo(TieRule::KeepOwn) => update_chunk_lane(
            BestOfKPureKernel { k: 2 },
            spec,
            snap,
            start,
            out,
            rng,
            meter,
        ),
        ProtocolKind::BestOfK { k, tie_rule } if k % 2 == 1 || tie_rule == TieRule::KeepOwn => {
            update_chunk_lane(BestOfKPureKernel { k }, spec, snap, start, out, rng, meter)
        }
        _ => return false,
    }
    true
}

/// Routes one fixed-draw-count chunk to the best kernel the topology
/// supports: topologies with materialised CSR arrays take the
/// software-pipelined [`update_chunk_batched`] path (overlapping the
/// adjacency cache misses), everything else the sampled path (whose
/// "misses" are arithmetic or hash evaluations).  Both consume the RNG
/// identically.
#[inline]
fn fixed_draw_chunk<C: BatchCore, T: Topology, R: RngCore + ?Sized>(
    core: C,
    topo: &T,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    if let Some((offsets, neighbours)) = topo.as_csr() {
        update_chunk_batched(core, offsets, neighbours, snap, start, out, rng);
    } else {
        update_chunk_sampled(core, topo, snap, start, out, rng);
    }
}

/// Statically dispatches one chunk to the monomorphized kernel for `kind`
/// on any [`Topology`].
///
/// Fixed-draw-count protocols take [`fixed_draw_chunk`] (batched on CSR,
/// sampled elsewhere); protocols with a reachable random tie coin (whose
/// RNG consumption is data-dependent) run strictly in vertex order through
/// [`coin_chunk`] (row-hoisted on CSR, sampled elsewhere); the
/// full-neighbourhood local majority runs
/// [`update_chunk_local_majority`], which collapses to one snapshot
/// popcount on complete topologies.
pub(crate) fn dispatch_chunk_topology<T: Topology, R: RngCore + ?Sized>(
    kind: ProtocolKind,
    topo: &T,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    match kind {
        ProtocolKind::Voter => fixed_draw_chunk(VoterKernel, topo, snap, start, out, rng),
        ProtocolKind::BestOfThree => {
            fixed_draw_chunk(BestOfThreeKernel, topo, snap, start, out, rng)
        }
        ProtocolKind::BestOfTwo(TieRule::KeepOwn) => {
            fixed_draw_chunk(BestOfKPureKernel { k: 2 }, topo, snap, start, out, rng)
        }
        ProtocolKind::BestOfTwo(TieRule::Random) => coin_chunk(2, topo, snap, start, out, rng),
        ProtocolKind::BestOfK { k, tie_rule } if k % 2 == 1 || tie_rule == TieRule::KeepOwn => {
            fixed_draw_chunk(BestOfKPureKernel { k }, topo, snap, start, out, rng)
        }
        ProtocolKind::BestOfK { k, .. } => coin_chunk(k, topo, snap, start, out, rng),
        ProtocolKind::LocalMajority(tie_rule) => {
            update_chunk_local_majority(tie_rule, topo, snap, start, out, rng)
        }
    }
}

/// The materialised-graph entry point used by [`crate::engine::Simulator`]
/// and [`crate::parallel::ParallelSimulator`].
///
/// A materialised complete graph is routed through the implicit
/// [`Complete`] topology — the one place the `is_complete` detection
/// survives, turned from per-kernel special cases into a topology choice —
/// so `K_n` keeps its synthesised rows (no `Θ(n²)` adjacency reads) and its
/// popcount local majority.  Everything else flows through [`CsrTopology`]
/// onto the batched CSR kernels.  Both routes consume the RNG exactly as
/// before, so seeded results are unchanged.
pub(crate) fn dispatch_chunk<R: RngCore + ?Sized>(
    kind: ProtocolKind,
    graph: &CsrGraph,
    snap: &PackedSnapshot,
    start: usize,
    out: &mut [Opinion],
    rng: &mut R,
) {
    if graph.is_complete() {
        let topo = Complete::new(graph.num_vertices()).expect("complete graphs have n >= 2");
        dispatch_chunk_topology(kind, &topo, snap, start, out, rng);
    } else {
        dispatch_chunk_topology(kind, &CsrTopology::new(graph), snap, start, out, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{BestOfK, BestOfThree, BestOfTwo, LocalMajority, Voter};
    use bo3_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn packed_snapshot_round_trips_opinions() {
        let opinions: Vec<Opinion> = (0..130)
            .map(|v| {
                if v % 3 == 0 {
                    Opinion::Blue
                } else {
                    Opinion::Red
                }
            })
            .collect();
        let snap = PackedSnapshot::from_opinions(&opinions);
        assert_eq!(snap.len(), 130);
        assert!(!snap.is_empty());
        for (v, &o) in opinions.iter().enumerate() {
            assert_eq!(snap.get(v), o, "vertex {v}");
        }
        let expected = opinions.iter().filter(|o| o.is_blue()).count();
        assert_eq!(snap.blue_count(), expected);
        let frac = expected as f64 / 130.0;
        assert!((snap.blue_fraction() - frac).abs() < 1e-12);
    }

    #[test]
    fn packed_snapshot_set_flips_single_bits() {
        let mut snap = PackedSnapshot::all_red(100);
        assert_eq!(snap.blue_count(), 0);
        snap.set(63, Opinion::Blue);
        snap.set(64, Opinion::Blue);
        assert!(snap.is_blue(63) && snap.is_blue(64));
        assert!(!snap.is_blue(62) && !snap.is_blue(65));
        assert_eq!(snap.blue_count(), 2);
        snap.set(63, Opinion::Red);
        assert_eq!(snap.blue_count(), 1);
        // Setting an already-correct bit is a no-op.
        snap.set(64, Opinion::Blue);
        assert_eq!(snap.blue_count(), 1);
    }

    #[test]
    fn repack_reuses_the_allocation_and_matches_from_opinions() {
        let a: Vec<Opinion> = (0..200).map(|_| Opinion::Blue).collect();
        let b: Vec<Opinion> = (0..70)
            .map(|v| {
                if v % 2 == 0 {
                    Opinion::Red
                } else {
                    Opinion::Blue
                }
            })
            .collect();
        let mut snap = PackedSnapshot::from_opinions(&a);
        snap.repack_from(&b);
        assert_eq!(snap, PackedSnapshot::from_opinions(&b));
        assert_eq!(snap.blue_count(), 35);
    }

    #[test]
    fn empty_snapshot_is_well_behaved() {
        let snap = PackedSnapshot::from_opinions(&[]);
        assert!(snap.is_empty());
        assert_eq!(snap.blue_count(), 0);
        assert_eq!(snap.blue_fraction(), 0.0);
    }

    #[test]
    fn sample_index_matches_gen_range() {
        // The kernel's Lemire reduction must stay bit-identical to the
        // vendored gen_range for every degree, or the kernel and dyn paths
        // drift onto different streams.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for n in [1usize, 2, 3, 7, 64, 1000, 4097] {
            for _ in 0..50 {
                let via_kernel = sample_index(a.next_u64(), n);
                let via_gen_range = b.gen_range(0..n);
                assert_eq!(via_kernel, via_gen_range, "n = {n}");
            }
        }
    }

    #[test]
    fn kernel_rng_streams_are_deterministic_and_distinct() {
        let draws = |mut rng: KernelRng| -> Vec<u64> { (0..8).map(|_| rng.next_u64()).collect() };
        let a = draws(kernel_chunk_rng(1, 2, 3));
        let b = draws(kernel_chunk_rng(1, 2, 3));
        assert_eq!(a, b, "same coordinates must give the same stream");
        for other in [
            kernel_chunk_rng(2, 2, 3),
            kernel_chunk_rng(1, 3, 3),
            kernel_chunk_rng(1, 2, 4),
        ] {
            assert_ne!(a, draws(other), "coordinates must separate streams");
        }
        // Rough uniformity: bounded indices cover a small range evenly.
        let mut rng = kernel_chunk_rng(7, 0, 0);
        let mut counts = [0usize; 10];
        let trials = 100_000;
        for _ in 0..trials {
            counts[sample_index(rng.next_u64(), 10)] += 1;
        }
        for &c in &counts {
            let expected = trials as f64 / 10.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "bucket count {c} vs {expected}"
            );
        }
    }

    #[test]
    fn kernel_rng_fill_bytes_and_u32_are_consistent_with_u64() {
        let mut a = KernelRng::from_stream_id(5);
        let mut b = KernelRng::from_stream_id(5);
        assert_eq!(a.next_u32() as u64, b.next_u64() >> 32);
        let mut buf = [0u8; 12];
        a.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 12]);
    }

    #[test]
    fn builtin_protocols_report_their_kind() {
        assert_eq!(Voter::new().kind(), Some(ProtocolKind::Voter));
        assert_eq!(
            BestOfTwo::keep_own().kind(),
            Some(ProtocolKind::BestOfTwo(TieRule::KeepOwn))
        );
        assert_eq!(BestOfThree::new().kind(), Some(ProtocolKind::BestOfThree));
        assert_eq!(
            BestOfK::new(5, TieRule::Random).kind(),
            Some(ProtocolKind::BestOfK {
                k: 5,
                tie_rule: TieRule::Random
            })
        );
        assert_eq!(
            LocalMajority::keep_own().kind(),
            Some(ProtocolKind::LocalMajority(TieRule::KeepOwn))
        );
    }

    #[test]
    fn dyn_only_hides_the_kind_but_delegates_everything_else() {
        let wrapped = DynOnly(BestOfThree::new());
        assert_eq!(wrapped.kind(), None);
        assert_eq!(wrapped.name(), BestOfThree::new().name());
        assert_eq!(wrapped.sample_size(), 3);
    }

    /// The draw-ahead lane kernel must produce the same opinions as the
    /// scalar sampled kernel from the same starting RNG state — the chunk
    /// half of the batched sampler's bit-identity contract (the final RNG
    /// positions legitimately differ; the engine only calls the lane where
    /// the chunk RNG is dropped afterwards).
    #[test]
    fn lane_chunk_matches_scalar_chunk_on_hash_defined_topologies() {
        use bo3_graph::{ImplicitGnp, ImplicitSbm};
        let n = 300;
        let opinions: Vec<Opinion> = {
            let mut rng = StdRng::seed_from_u64(8);
            (0..n)
                .map(|_| {
                    if rng.gen_bool(0.4) {
                        Opinion::Blue
                    } else {
                        Opinion::Red
                    }
                })
                .collect()
        };
        let snap = PackedSnapshot::from_opinions(&opinions);
        let kinds = [
            ProtocolKind::Voter,
            ProtocolKind::BestOfThree,
            ProtocolKind::BestOfTwo(TieRule::KeepOwn),
            ProtocolKind::BestOfK {
                k: 5,
                tie_rule: TieRule::Random,
            },
            ProtocolKind::BestOfK {
                k: 6,
                tie_rule: TieRule::KeepOwn,
            },
        ];
        let gnp_specs: Vec<_> = [0.05, 0.3, 0.5, 0.9]
            .iter()
            .map(|&p| {
                ImplicitGnp::new(n, p, 17)
                    .unwrap()
                    .pair_hash_spec()
                    .unwrap()
            })
            .collect();
        let sbm = ImplicitSbm::new(n, 4, 0.6, 0.15, 19).unwrap();
        let gnp_topos: Vec<_> = [0.05, 0.3, 0.5, 0.9]
            .iter()
            .map(|&p| ImplicitGnp::new(n, p, 17).unwrap())
            .collect();
        for kind in kinds {
            for i in 0..gnp_specs.len() {
                let spec = gnp_specs[i];
                let topo = &gnp_topos[i];
                let mut lane_out = vec![Opinion::Red; n];
                let mut lane_rng = StdRng::seed_from_u64(77);
                assert!(try_dispatch_chunk_lane(
                    kind,
                    spec,
                    &snap,
                    0,
                    &mut lane_out,
                    &mut lane_rng,
                    None
                ));
                let mut scalar_out = vec![Opinion::Red; n];
                let mut scalar_rng = StdRng::seed_from_u64(77);
                update_chunk_sampled(
                    BestOfKPureKernel {
                        k: lane_samples(kind).unwrap(),
                    },
                    topo,
                    &snap,
                    0,
                    &mut scalar_out,
                    &mut scalar_rng,
                );
                assert_eq!(
                    lane_out,
                    scalar_out,
                    "{kind:?} diverged on {}",
                    topo.label()
                );
            }
            // SBM: compare through the full dispatch against the scalar
            // dispatch (same kernels, scalar sampler).
            let spec = sbm.pair_hash_spec().unwrap();
            let mut lane_out = vec![Opinion::Red; n];
            let mut lane_rng = StdRng::seed_from_u64(78);
            assert!(try_dispatch_chunk_lane(
                kind,
                spec,
                &snap,
                0,
                &mut lane_out,
                &mut lane_rng,
                None
            ));
            let mut scalar_out = vec![Opinion::Red; n];
            let mut scalar_rng = StdRng::seed_from_u64(78);
            dispatch_chunk_topology(kind, &sbm, &snap, 0, &mut scalar_out, &mut scalar_rng);
            assert_eq!(lane_out, scalar_out, "{kind:?} diverged on {}", sbm.label());
        }
        // Coin protocols and local majority must refuse the lane.
        let spec = gnp_specs[0];
        let mut out = vec![Opinion::Red; n];
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [
            ProtocolKind::BestOfTwo(TieRule::Random),
            ProtocolKind::BestOfK {
                k: 4,
                tie_rule: TieRule::Random,
            },
            ProtocolKind::LocalMajority(TieRule::KeepOwn),
        ] {
            assert!(!try_dispatch_chunk_lane(
                kind, spec, &snap, 0, &mut out, &mut rng, None
            ));
        }
    }

    /// Lane metering must report the same tries/accepts totals as the
    /// scalar metered path, plus a sane occupancy.
    #[test]
    fn lane_metering_matches_scalar_metering_totals() {
        use bo3_graph::{ImplicitGnp, MeteredTopology};
        let n = 256;
        let topo = ImplicitGnp::new(n, 0.3, 23).unwrap();
        let snap = PackedSnapshot::all_red(n);

        let lane_meter = SamplerMeter::new();
        let mut lane_out = vec![Opinion::Red; n];
        let mut lane_rng = StdRng::seed_from_u64(5);
        assert!(try_dispatch_chunk_lane(
            ProtocolKind::BestOfThree,
            topo.pair_hash_spec().unwrap(),
            &snap,
            0,
            &mut lane_out,
            &mut lane_rng,
            Some(&lane_meter),
        ));

        let scalar_meter = SamplerMeter::new();
        let metered = MeteredTopology::new(&topo, &scalar_meter);
        let mut scalar_out = vec![Opinion::Red; n];
        let mut scalar_rng = StdRng::seed_from_u64(5);
        dispatch_chunk_topology(
            ProtocolKind::BestOfThree,
            &metered,
            &snap,
            0,
            &mut scalar_out,
            &mut scalar_rng,
        );

        assert_eq!(lane_out, scalar_out);
        assert_eq!(lane_meter.tries(), scalar_meter.tries());
        assert_eq!(lane_meter.accepts(), scalar_meter.accepts());
        assert_eq!(lane_meter.accepts(), 3 * n as u64);
        // Occupancy is only reported by the lane path, and is a fraction.
        let occupancy = lane_meter.lane_occupancy().unwrap();
        assert!(occupancy > 0.0 && occupancy <= 1.0);
        assert_eq!(scalar_meter.lane_occupancy(), None);
    }

    /// Every kernel must consume the same RNG stream and produce the same
    /// opinion as the corresponding `dyn` protocol update — the
    /// bit-compatibility half of the determinism contract.  Run on an
    /// Erdős–Rényi graph (batched/explicit-row kernels) and on a complete
    /// graph (synthesised-row kernels).
    #[test]
    fn kernels_match_dyn_updates_draw_for_draw() {
        let graphs = vec![
            generators::erdos_renyi_gnp(180, 0.2, &mut StdRng::seed_from_u64(1)).unwrap(),
            generators::complete(150),
        ];
        for g in &graphs {
            let sampler = bo3_graph::NeighbourSampler::new(g).unwrap();
            let opinions: Vec<Opinion> = {
                let mut rng = StdRng::seed_from_u64(2);
                (0..g.num_vertices())
                    .map(|_| {
                        if rng.gen_bool(0.45) {
                            Opinion::Blue
                        } else {
                            Opinion::Red
                        }
                    })
                    .collect()
            };
            let snap = PackedSnapshot::from_opinions(&opinions);
            let protocols: Vec<(ProtocolKind, Box<dyn Protocol>)> = vec![
                (ProtocolKind::Voter, Box::new(Voter::new())),
                (
                    ProtocolKind::BestOfTwo(TieRule::Random),
                    Box::new(BestOfTwo::new(TieRule::Random)),
                ),
                (
                    ProtocolKind::BestOfTwo(TieRule::KeepOwn),
                    Box::new(BestOfTwo::keep_own()),
                ),
                (ProtocolKind::BestOfThree, Box::new(BestOfThree::new())),
                (
                    ProtocolKind::BestOfK {
                        k: 6,
                        tie_rule: TieRule::KeepOwn,
                    },
                    Box::new(BestOfK::new(6, TieRule::KeepOwn)),
                ),
                (
                    ProtocolKind::BestOfK {
                        k: 4,
                        tie_rule: TieRule::Random,
                    },
                    Box::new(BestOfK::new(4, TieRule::Random)),
                ),
                (
                    ProtocolKind::LocalMajority(TieRule::Random),
                    Box::new(LocalMajority::new(TieRule::Random)),
                ),
            ];
            for (kind, protocol) in &protocols {
                let mut kernel_out = vec![Opinion::Red; g.num_vertices()];
                let mut kernel_rng = StdRng::seed_from_u64(33);
                dispatch_chunk(*kind, g, &snap, 0, &mut kernel_out, &mut kernel_rng);

                let mut dyn_out = Vec::with_capacity(g.num_vertices());
                let mut dyn_rng = StdRng::seed_from_u64(33);
                for v in g.vertices() {
                    let ctx = UpdateContext {
                        vertex: v,
                        current: opinions[v],
                        previous: &opinions,
                        sampler: &sampler,
                    };
                    dyn_out.push(protocol.update(&ctx, &mut dyn_rng));
                }
                assert_eq!(kernel_out, dyn_out, "{:?} diverged from dyn path", kind);
                // Both paths must have consumed the same amount of randomness.
                assert_eq!(
                    kernel_rng.next_u64(),
                    dyn_rng.next_u64(),
                    "{:?} consumed a different stream length",
                    kind
                );
            }
        }
    }
}
