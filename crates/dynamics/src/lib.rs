//! # bo3-dynamics
//!
//! The voting-dynamics engine for the reproduction of *“Best-of-Three Voting
//! on Dense Graphs”* (Kang & Rivera, SPAA 2019).
//!
//! The crate simulates synchronous (and, as an ablation, asynchronous)
//! opinion dynamics on a [`bo3_graph::CsrGraph`]:
//!
//! * [`opinion`] — the two-party opinion space and configurations `ξ_t`;
//! * [`protocol`] — Best-of-3 (the paper's protocol) plus the baselines the
//!   paper positions itself against: the voter model, Best-of-2, Best-of-k
//!   and deterministic local majority;
//! * [`init`] — initial conditions, from the paper's i.i.d.
//!   `Bernoulli(1/2 − δ)` start to adversarial placements (degree-ranked
//!   ones run on implicit topologies through the graph layer's degree
//!   oracle);
//! * [`engine`] — **the** engine: [`engine::Engine`] is generic over
//!   [`bo3_graph::Topology`] and owns every stepping implementation, one
//!   per [`schedule::Schedule`] (synchronous and asynchronous), seeded or
//!   caller-RNG, sequential or multi-threaded.  `Simulator`,
//!   `ParallelSimulator` ([`parallel`]) and `TopologySimulator`
//!   ([`topology_sim`]) are thin façades over it;
//! * [`kernel`] — monomorphized hot-path kernels (bit-packed snapshots,
//!   batched RNG, static dispatch), generic over the topology, that the
//!   engine routes built-in protocols through;
//! * [`adversary`] — composable adversarial wrappers (zealots, Byzantine
//!   reporters, message drop, block partitions) that the engine threads
//!   through every kernel, schedule and topology;
//! * [`checkpoint`] — cancellable, checkpointable execution: budgeted runs
//!   pause at round boundaries into a typed [`checkpoint::RunCheckpoint`]
//!   and resume bit-identically;
//! * [`montecarlo`] / [`stats`] — repeated-run drivers and the summary
//!   statistics the experiments report;
//! * [`trace`], [`schedule`], [`stopping`], [`config`] — supporting types.
//!
//! ## Quick example
//!
//! ```
//! use bo3_dynamics::prelude::*;
//! use bo3_graph::generators;
//! use rand::SeedableRng;
//!
//! let graph = generators::complete(200);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let init = InitialCondition::BernoulliWithBias { delta: 0.1 }
//!     .sample(&graph, &mut rng)
//!     .unwrap();
//! let sim = Simulator::new(&graph).unwrap();
//! let result = sim.run(&BestOfThree::new(), init, &mut rng).unwrap();
//! assert!(result.red_won());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod adversary;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod error;
pub mod init;
pub mod kernel;
pub mod montecarlo;
pub mod observe;
pub mod opinion;
pub mod parallel;
pub mod protocol;
pub mod schedule;
pub mod stats;
pub mod stopping;
pub mod topology_sim;
pub mod trace;

/// Convenient re-exports of the types most callers need.
pub mod prelude {
    pub use crate::adversary::{
        Adversary, AdversaryCounters, AdversarySpec, ADVERSARY_STREAM_SALT,
    };
    pub use crate::checkpoint::{
        pack_opinions, unpack_opinions, RunBudget, RunCheckpoint, RunOutcome,
        RUN_CHECKPOINT_VERSION,
    };
    pub use crate::config::ProtocolSpec;
    pub use crate::engine::{AsyncScratch, Engine, RunResult, Simulator, ASYNC_ROUND_CHUNK};
    pub use crate::error::{DynamicsError, Result};
    pub use crate::init::InitialCondition;
    pub use crate::kernel::{kernel_chunk_rng, DynOnly, KernelRng, PackedSnapshot, ProtocolKind};
    pub use crate::montecarlo::{
        BatchCheckpoint, BatchOutcome, BatchProgress, MonteCarlo, MonteCarloReport, ReplicaOutcome,
        BATCH_CHECKPOINT_VERSION,
    };
    pub use crate::observe::{MetricsObserver, NoopObserver, Observer};
    pub use crate::opinion::{Configuration, Opinion};
    pub use crate::parallel::ParallelSimulator;
    pub use crate::protocol::{
        BestOfK, BestOfThree, BestOfTwo, LocalMajority, Protocol, TieRule, UpdateContext, Voter,
    };
    pub use crate::schedule::Schedule;
    pub use crate::stats::{ProportionEstimate, Summary};
    pub use crate::stopping::{StopReason, StoppingCondition};
    pub use crate::topology_sim::TopologySimulator;
    pub use crate::trace::{RoundRecord, Trace};
}

pub use prelude::*;
