//! Monte-Carlo driver: many independent runs of the same experiment.
//!
//! Theorem 1 is a with-high-probability statement, so every experiment
//! estimates probabilities and expectations over repeated runs.  The driver
//! executes replicas across threads with deterministic per-replica seeding;
//! every replica runs on the one topology-generic
//! [`crate::engine::Engine`], whatever the topology and whichever
//! [`Schedule`] — the asynchronous ablation included, on implicit
//! topologies included.
//!
//! Every replica is described by a [`ProtocolSpec`], which always names a
//! built-in protocol ([`ProtocolSpec::kind`] is total), so replicas execute
//! on the monomorphized kernel paths of [`crate::kernel`] rather than the
//! `dyn`-dispatch fallback.
//!
//! # Replica RNG plumbing (the compatibility seam)
//!
//! Two flavours, chosen by whether the topology is graph-backed
//! ([`Topology::as_graph`]):
//!
//! * **graph-backed** — the replica's `StdRng` stream drives the whole run
//!   (initial condition, then every round), exactly the pre-unification
//!   materialised pipeline, so seeded reports over materialised specs are
//!   bit-identical across the engine merge (pinned by the Scenario API
//!   suite);
//! * **adjacency-free** — the replica stream samples the initial condition
//!   and then hands the run one derived `master_seed`, so rounds use the
//!   chunk-seeded engine streams and stay bit-identical at any thread
//!   count.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use bo3_graph::{CsrGraph, CsrTopology, Topology};

use crate::adversary::{Adversary, AdversaryCounters, AdversarySpec};
use crate::checkpoint::{RunBudget, RunCheckpoint, RunOutcome};
use crate::config::ProtocolSpec;
use crate::engine::{Engine, RunResult};
use crate::error::{DynamicsError, Result};
use crate::init::InitialCondition;
use crate::opinion::Opinion;
use crate::parallel::{replica_rng, stream_id};
use crate::schedule::Schedule;
use crate::stats::{ProportionEstimate, Summary};
use crate::stopping::StoppingCondition;

/// Salt separating the adversary's seed space from the replica streams, so
/// an adversarial batch shares no randomness with its honest twin beyond the
/// master seed itself.
const ADVERSARY_SEED_SALT: u64 = 0xADC0_FFEE_5EED_5A17;

/// Version of the [`BatchCheckpoint`] layout (bumped on incompatible change;
/// the golden snapshot test in `bo3_core::campaign` pins the JSON form).
pub const BATCH_CHECKPOINT_VERSION: u32 = 1;

/// A paused Monte-Carlo batch: the replicas already finished plus, when the
/// pause hit mid-run, the current replica's [`RunCheckpoint`].
///
/// Replica seeding is a pure function of `(master_seed, replica)`, so the
/// checkpoint needs no RNG state: resuming re-derives the next replica's
/// streams exactly as an uninterrupted batch would.  Produced and consumed by
/// [`MonteCarlo::run_on_topology_resumable`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCheckpoint {
    /// Layout version ([`BATCH_CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Outcomes of the replicas that finished, in replica order — the next
    /// replica to run is `completed.len()`.
    pub completed: Vec<ReplicaOutcome>,
    /// The current replica's mid-run checkpoint, when the pause hit inside a
    /// seeded run (`None` when paused at a replica boundary, which is the
    /// only pause point for graph-backed caller-RNG replicas).
    pub current: Option<RunCheckpoint>,
}

/// The outcome of a resumable batch: finished, or paused at a yield point.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOutcome {
    /// Every replica ran; here is the aggregate report.
    Completed(MonteCarloReport),
    /// The budget fired first; resume from this checkpoint.
    Paused(BatchCheckpoint),
}

/// A progress sample handed to the [`MonteCarlo::run_on_topology_cooperative`]
/// callback at every slice boundary — the quantities a streaming subscriber
/// wants per round-slice, derived purely from the batch checkpoint (so
/// observing progress can never perturb the run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchProgress {
    /// Replicas already finished.
    pub replicas_done: usize,
    /// Total replicas in the batch.
    pub replicas: usize,
    /// Index of the in-flight replica (`replicas_done` while one is paused
    /// mid-run; equal to `replicas_done` at a replica boundary too).
    pub replica: usize,
    /// Rounds already applied inside the in-flight replica (`0` at a replica
    /// boundary).
    pub round: usize,
    /// Blue fraction of the in-flight replica's paused configuration; at a
    /// replica boundary, the last finished replica's final blue fraction
    /// (`0.0` before any replica ran).
    pub blue_fraction: f64,
}

impl BatchProgress {
    /// Derives the progress sample a paused batch exposes.
    fn of(ckpt: &BatchCheckpoint, replicas: usize) -> Self {
        let replicas_done = ckpt.completed.len();
        match &ckpt.current {
            Some(run) => BatchProgress {
                replicas_done,
                replicas,
                replica: replicas_done,
                round: run.round,
                blue_fraction: if run.n == 0 {
                    0.0
                } else {
                    let blues: u32 = run.opinion_words.iter().map(|w| w.count_ones()).sum();
                    f64::from(blues) / run.n as f64
                },
            },
            None => BatchProgress {
                replicas_done,
                replicas,
                replica: replicas_done,
                round: 0,
                blue_fraction: ckpt
                    .completed
                    .last()
                    .map(|o| o.final_blue_fraction)
                    .unwrap_or(0.0),
            },
        }
    }
}

impl BatchOutcome {
    /// The completed report, if the batch finished.
    pub fn completed(self) -> Option<MonteCarloReport> {
        match self {
            BatchOutcome::Completed(report) => Some(report),
            BatchOutcome::Paused(_) => None,
        }
    }

    /// The checkpoint, if the batch paused.
    pub fn paused(self) -> Option<BatchCheckpoint> {
        match self {
            BatchOutcome::Completed(_) => None,
            BatchOutcome::Paused(checkpoint) => Some(checkpoint),
        }
    }
}

/// Outcome of one Monte-Carlo replica.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicaOutcome {
    /// Replica index (also the seed offset).
    pub replica: usize,
    /// Consensus winner (`None` when the round cap was hit first).
    pub winner: Option<Opinion>,
    /// Rounds executed.
    pub rounds: usize,
    /// Blue fraction of the initial configuration actually sampled.
    pub initial_blue_fraction: f64,
    /// Blue fraction of the final configuration.
    pub final_blue_fraction: f64,
    /// What the adversary did during this replica (`None` on honest runs).
    pub adversary: Option<AdversaryCounters>,
}

/// Aggregate of a Monte-Carlo batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloReport {
    /// Per-replica outcomes, in replica order.
    pub outcomes: Vec<ReplicaOutcome>,
    /// Fraction of replicas that reached consensus at all.
    pub consensus_rate: f64,
    /// Probability that red (the initial majority in the paper's setting) won,
    /// with a Wilson 95% interval; `None` when no replica reached consensus.
    pub red_win: Option<ProportionEstimate>,
    /// Summary of the consensus times over replicas that reached consensus.
    pub rounds_to_consensus: Option<Summary>,
    /// Adversary counters aggregated across replicas (membership sizes are
    /// per-run constants, event counts sum); `None` on honest batches.
    pub adversary: Option<AdversaryCounters>,
}

impl MonteCarloReport {
    fn from_outcomes(outcomes: Vec<ReplicaOutcome>) -> Self {
        let total = outcomes.len();
        let consensus: Vec<&ReplicaOutcome> =
            outcomes.iter().filter(|o| o.winner.is_some()).collect();
        let consensus_rate = if total == 0 {
            0.0
        } else {
            consensus.len() as f64 / total as f64
        };
        let red_wins = consensus
            .iter()
            .filter(|o| o.winner == Some(Opinion::Red))
            .count();
        let red_win = ProportionEstimate::new(red_wins, consensus.len());
        let rounds: Vec<f64> = consensus.iter().map(|o| o.rounds as f64).collect();
        let rounds_to_consensus = Summary::of(&rounds);
        let mut adversary: Option<AdversaryCounters> = None;
        for counters in outcomes.iter().filter_map(|o| o.adversary.as_ref()) {
            adversary
                .get_or_insert_with(AdversaryCounters::default)
                .merge(counters);
        }
        MonteCarloReport {
            outcomes,
            consensus_rate,
            red_win,
            rounds_to_consensus,
            adversary,
        }
    }

    /// Mean consensus time (rounds), when at least one replica converged.
    pub fn mean_rounds(&self) -> Option<f64> {
        self.rounds_to_consensus.as_ref().map(|s| s.mean)
    }
}

/// A fully described Monte-Carlo experiment on a fixed graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarlo {
    /// Which protocol to run.
    pub protocol: ProtocolSpec,
    /// How initial opinions are drawn each replica.
    pub initial: InitialCondition,
    /// Update schedule.
    pub schedule: Schedule,
    /// Stopping condition per replica.
    pub stopping: StoppingCondition,
    /// Number of replicas.
    pub replicas: usize,
    /// Master seed; replica `i` uses the stream `replica_rng(master_seed, i)`.
    pub master_seed: u64,
    /// Number of worker threads (`0` = available parallelism, `1` = sequential).
    pub threads: usize,
    /// Adversarial mechanisms layered over every replica (empty = honest).
    /// Membership sets are identical across replicas (the scenario corrupts
    /// *these* vertices); drop-coin streams vary per replica.
    pub adversary: Vec<AdversarySpec>,
}

impl MonteCarlo {
    /// A reasonable default experiment: Best-of-3, the paper's initial
    /// condition, synchronous updates, consensus within 10⁴ rounds.
    pub fn best_of_three(delta: f64, replicas: usize, master_seed: u64) -> Self {
        MonteCarlo {
            protocol: ProtocolSpec::BestOfThree,
            initial: InitialCondition::BernoulliWithBias { delta },
            schedule: Schedule::Synchronous,
            stopping: StoppingCondition::default(),
            replicas,
            master_seed,
            threads: 0,
            adversary: Vec::new(),
        }
    }

    /// Runs every replica and aggregates the results — sugar for
    /// [`MonteCarlo::run_on_topology`] over the graph's [`CsrTopology`]
    /// adapter.
    pub fn run(&self, graph: &CsrGraph) -> Result<MonteCarloReport> {
        self.run_on_topology(&CsrTopology::new(graph))
    }

    /// Runs every replica on any [`Topology`] — the one Monte-Carlo path:
    /// materialised graphs (via [`CsrTopology`] or a built spec) and the
    /// adjacency-free implicit families, either [`Schedule`], every
    /// [`InitialCondition`] (degree-ranked placements resolve through the
    /// topology's degree oracle where no graph exists).
    pub fn run_on_topology<T: Topology>(&self, topo: &T) -> Result<MonteCarloReport> {
        // Split the worker budget between replica-level parallelism and
        // per-replica round parallelism: with many replicas the efficient
        // direction is across replicas (each replica single-threaded); with
        // few replicas on a huge topology the leftover workers parallelise
        // the round chunks instead.  The engine is bit-identical at any
        // thread count, so this split never changes the report.  Caveats on
        // the intra-replica share: graph-backed replicas ignore it (the
        // caller-RNG compatibility flavour is sequential by construction —
        // one RNG stream drives the whole run), and asynchronous rounds are
        // sequential by definition; only seeded synchronous rounds on
        // adjacency-free topologies actually fan out.
        let threads = self.resolved_threads();
        let outer = threads.min(self.replicas.max(1));
        let intra = (threads / outer).max(1);
        self.run_replicas(outer, &|replica| {
            self.replica_on_topology(topo, replica, intra)
        })
    }

    /// Runs the batch under a [`RunBudget`], resumable from a
    /// [`BatchCheckpoint`] — the crash-safe flavour of
    /// [`MonteCarlo::run_on_topology`].
    ///
    /// Replicas execute sequentially (in replica order) so the pause point is
    /// well defined; the worker budget parallelises round chunks *within*
    /// seeded replicas instead, and the engine is bit-identical at any thread
    /// count, so the report matches [`MonteCarlo::run_on_topology`] exactly.
    /// Seeded (adjacency-free) replicas pause at any round boundary and hand
    /// back a mid-run [`RunCheckpoint`]; graph-backed caller-RNG replicas run
    /// atomically and the batch pauses at the next replica boundary.
    pub fn run_on_topology_resumable<T: Topology>(
        &self,
        topo: &T,
        resume: Option<BatchCheckpoint>,
        budget: &RunBudget,
    ) -> Result<BatchOutcome> {
        let (mut outcomes, mut current) = match resume {
            Some(ckpt) => {
                if ckpt.version != BATCH_CHECKPOINT_VERSION {
                    return Err(DynamicsError::InvalidParameter {
                        reason: format!(
                            "batch checkpoint version {} does not match {}",
                            ckpt.version, BATCH_CHECKPOINT_VERSION
                        ),
                    });
                }
                if ckpt.completed.len() > self.replicas {
                    return Err(DynamicsError::InvalidParameter {
                        reason: format!(
                            "batch checkpoint holds {} completed replicas but the batch has {}",
                            ckpt.completed.len(),
                            self.replicas
                        ),
                    });
                }
                (ckpt.completed, ckpt.current)
            }
            None => (Vec::new(), None),
        };
        let graph_backed = topo.as_graph().is_some();
        if graph_backed && current.is_some() {
            return Err(DynamicsError::InvalidParameter {
                reason: "graph-backed replicas run caller-RNG and are never checkpointed mid-run"
                    .to_string(),
            });
        }
        let threads = self.resolved_threads();
        while outcomes.len() < self.replicas {
            let replica = outcomes.len();
            // A replica boundary is a yield point too: starting a fresh
            // replica after the flag flipped would waste the whole run.
            if current.is_none() && budget.interrupted() {
                return Ok(BatchOutcome::Paused(BatchCheckpoint {
                    version: BATCH_CHECKPOINT_VERSION,
                    completed: outcomes,
                    current: None,
                }));
            }
            if graph_backed {
                outcomes.push(self.replica_on_topology(topo, replica, 1)?);
                continue;
            }
            let adversary = self.adversary_for_replica(topo.n(), replica)?;
            let mut engine = Engine::new(topo)?
                .with_schedule(self.schedule)
                .with_stopping(self.stopping)
                .with_threads(threads);
            if let Some(adv) = adversary {
                engine = engine.with_adversary(adv);
            }
            let outcome = match current.take() {
                Some(ckpt) => engine.resume(&ckpt, budget)?,
                None => {
                    // Exactly `replica_on_topology`'s seeded derivation: the
                    // replica stream samples the initial condition, then one
                    // drawn word becomes the run's master seed.
                    let mut rng = replica_rng(self.master_seed, replica as u64);
                    let initial = self.initial.sample_topology(topo, &mut rng)?;
                    let run_seed = rng.next_u64();
                    engine.run_seeded_kind_budgeted(
                        self.protocol.kind(),
                        initial,
                        run_seed,
                        budget,
                    )?
                }
            };
            match outcome {
                RunOutcome::Completed(result) => {
                    outcomes.push(Self::outcome_of(replica, result));
                }
                RunOutcome::Paused(ckpt) => {
                    return Ok(BatchOutcome::Paused(BatchCheckpoint {
                        version: BATCH_CHECKPOINT_VERSION,
                        completed: outcomes,
                        current: Some(*ckpt),
                    }));
                }
            }
        }
        Ok(BatchOutcome::Completed(MonteCarloReport::from_outcomes(
            outcomes,
        )))
    }

    /// Drives the batch to completion under a [`RunBudget`], reporting a
    /// [`BatchProgress`] sample at every slice boundary — the cooperative
    /// flavour a long-running service wants: the budget's slice cap sets the
    /// yield cadence, the callback streams progress, and the cancel/drain
    /// flags still interrupt the drive (returning
    /// [`BatchOutcome::Paused`] so the caller can persist or discard the
    /// checkpoint).
    ///
    /// The progress callback only *observes* checkpoints — replica seeding
    /// and round streams are untouched — so the completed report is
    /// bit-identical to [`MonteCarlo::run_on_topology`] (and to
    /// [`MonteCarlo::run_on_topology_resumable`] driven by hand), whatever
    /// the slice size or thread count.
    pub fn run_on_topology_cooperative<T: Topology>(
        &self,
        topo: &T,
        resume: Option<BatchCheckpoint>,
        budget: &RunBudget,
        on_progress: &mut dyn FnMut(&BatchProgress),
    ) -> Result<BatchOutcome> {
        let mut resume = resume;
        loop {
            match self.run_on_topology_resumable(topo, resume.take(), budget)? {
                BatchOutcome::Completed(report) => return Ok(BatchOutcome::Completed(report)),
                BatchOutcome::Paused(ckpt) => {
                    if budget.interrupted() {
                        return Ok(BatchOutcome::Paused(ckpt));
                    }
                    on_progress(&BatchProgress::of(&ckpt, self.replicas));
                    resume = Some(ckpt);
                }
            }
        }
    }

    /// Summarises a finished run as the replica's outcome row.
    fn outcome_of(replica: usize, result: RunResult) -> ReplicaOutcome {
        ReplicaOutcome {
            replica,
            winner: result.winner,
            rounds: result.rounds,
            initial_blue_fraction: result.initial_blue_fraction,
            final_blue_fraction: result.final_blue_fraction,
            adversary: result.adversary,
        }
    }

    /// The worker budget with `0` resolved to the available parallelism.
    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Shared replica driver: executes `run_one` for every replica index,
    /// sequentially or across the worker pool, preserving replica order.
    /// `workers` is the replica-level worker count, already capped by the
    /// caller (the callers are the only places the thread-budget split is
    /// decided).
    fn run_replicas(
        &self,
        workers: usize,
        run_one: &(dyn Fn(usize) -> Result<ReplicaOutcome> + Sync),
    ) -> Result<MonteCarloReport> {
        if workers <= 1 {
            let mut outcomes = Vec::with_capacity(self.replicas);
            for replica in 0..self.replicas {
                outcomes.push(run_one(replica)?);
            }
            return Ok(MonteCarloReport::from_outcomes(outcomes));
        }

        let next_replica = std::sync::atomic::AtomicUsize::new(0);
        let results: parking_lot::Mutex<Vec<Option<Result<ReplicaOutcome>>>> =
            parking_lot::Mutex::new((0..self.replicas).map(|_| None).collect());

        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let replica = next_replica.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if replica >= self.replicas {
                        break;
                    }
                    let outcome = run_one(replica);
                    results.lock()[replica] = Some(outcome);
                });
            }
        })
        .expect("Monte-Carlo worker panicked");

        let mut outcomes = Vec::with_capacity(self.replicas);
        for slot in results.into_inner() {
            outcomes.push(slot.expect("replica not executed")?);
        }
        Ok(MonteCarloReport::from_outcomes(outcomes))
    }

    /// Runs a single replica on a topology (deterministic in
    /// `(master_seed, replica)` — and independent of every thread count
    /// involved).
    pub fn run_one_on_topology<T: Topology>(
        &self,
        topo: &T,
        replica: usize,
    ) -> Result<ReplicaOutcome> {
        self.replica_on_topology(topo, replica, 1)
    }

    /// [`MonteCarlo::run_one_on_topology`] with an explicit per-replica
    /// worker count for the round chunks (the outcome does not depend on it;
    /// only the wall clock does).  The two RNG flavours are documented in
    /// the module docs.
    fn replica_on_topology<T: Topology>(
        &self,
        topo: &T,
        replica: usize,
        threads: usize,
    ) -> Result<ReplicaOutcome> {
        let mut rng = replica_rng(self.master_seed, replica as u64);
        let initial = self.initial.sample_topology(topo, &mut rng)?;
        let adversary = self.adversary_for_replica(topo.n(), replica)?;
        let result = if topo.as_graph().is_some() {
            // Graph-backed: the replica stream drives the whole run — the
            // pre-unification materialised pipeline, bit for bit.  Built
            // from a spec, the boxed protocol reports its `ProtocolKind`,
            // so every round still takes the kernel path.
            let protocol = self.protocol.build();
            let mut engine = Engine::new(topo)?
                .with_schedule(self.schedule)
                .with_stopping(self.stopping);
            if let Some(adv) = adversary {
                engine = engine.with_adversary(adv);
            }
            engine.run(protocol.as_ref(), initial, &mut rng)?
        } else {
            // Adjacency-free: hand the run a derived master seed so rounds
            // use the chunk-seeded engine streams.
            let run_seed = rng.next_u64();
            let mut engine = Engine::new(topo)?
                .with_schedule(self.schedule)
                .with_stopping(self.stopping)
                .with_threads(threads);
            if let Some(adv) = adversary {
                engine = engine.with_adversary(adv);
            }
            engine.run_seeded_kind(self.protocol.kind(), initial, run_seed)?
        };
        Ok(Self::outcome_of(replica, result))
    }

    /// Compiles the adversary list for one replica.  The membership seed is
    /// shared by every replica — the scenario corrupts a fixed vertex set —
    /// while the drop-coin stream seed varies per replica so lossy runs stay
    /// independent across the batch.
    fn adversary_for_replica(&self, n: usize, replica: usize) -> Result<Option<Adversary>> {
        if self.adversary.is_empty() {
            return Ok(None);
        }
        let base = self.master_seed ^ ADVERSARY_SEED_SALT;
        let membership_seed = stream_id(base, 0, 0);
        let stream_seed = stream_id(base, replica as u64, 1);
        Ok(Some(
            Adversary::build(&self.adversary, n, membership_seed)?.with_stream_seed(stream_seed),
        ))
    }

    /// Runs a single replica (deterministic in `(master_seed, replica)`).
    pub fn run_one(&self, graph: &CsrGraph, replica: usize) -> Result<ReplicaOutcome> {
        self.replica_on_topology(&CsrTopology::new(graph), replica, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::generators;

    #[test]
    fn best_of_three_on_dense_graph_red_wins_every_time() {
        let g = generators::complete(300);
        let mc = MonteCarlo::best_of_three(0.15, 20, 7);
        let report = mc.run(&g).unwrap();
        assert_eq!(report.outcomes.len(), 20);
        assert!((report.consensus_rate - 1.0).abs() < 1e-12);
        let red = report.red_win.unwrap();
        assert_eq!(red.successes, red.trials, "red should win every replica");
        assert!(report.mean_rounds().unwrap() < 25.0);
    }

    #[test]
    fn sequential_and_parallel_execution_agree() {
        let g = generators::complete(150);
        let mut mc = MonteCarlo::best_of_three(0.1, 10, 3);
        mc.threads = 1;
        let seq = mc.run(&g).unwrap();
        mc.threads = 4;
        let par = mc.run(&g).unwrap();
        assert_eq!(seq.outcomes, par.outcomes);
    }

    #[test]
    fn replicas_differ_but_are_reproducible() {
        let g = generators::complete(120);
        let mc = MonteCarlo::best_of_three(0.1, 6, 11);
        let a = mc.run(&g).unwrap();
        let b = mc.run(&g).unwrap();
        assert_eq!(a.outcomes, b.outcomes);
        // Initial configurations should differ between replicas.
        let fracs: Vec<f64> = a.outcomes.iter().map(|o| o.initial_blue_fraction).collect();
        assert!(fracs.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9));
    }

    #[test]
    fn voter_model_report_shows_non_trivial_blue_wins() {
        // With 40% blue initially, the voter model lets blue win a
        // non-negligible fraction of the time (proportional-to-share rule),
        // unlike Best-of-3.
        let g = generators::complete(60);
        let mc = MonteCarlo {
            protocol: ProtocolSpec::Voter,
            initial: InitialCondition::ExactCount { blue: 24 },
            schedule: Schedule::Synchronous,
            stopping: StoppingCondition::consensus_within(200_000),
            replicas: 60,
            master_seed: 5,
            threads: 0,
            adversary: Vec::new(),
        };
        let report = mc.run(&g).unwrap();
        assert!((report.consensus_rate - 1.0).abs() < 1e-12);
        let red = report.red_win.unwrap();
        assert!(red.estimate < 0.95, "red win rate {}", red.estimate);
        assert!(red.estimate > 0.30, "red win rate {}", red.estimate);
    }

    #[test]
    fn round_cap_shows_up_as_missing_winner() {
        let g = generators::complete(100);
        let mc = MonteCarlo {
            protocol: ProtocolSpec::BestOfThree,
            initial: InitialCondition::ExactCount { blue: 50 },
            schedule: Schedule::Synchronous,
            stopping: StoppingCondition::fixed_rounds(1),
            replicas: 5,
            master_seed: 1,
            threads: 1,
            adversary: Vec::new(),
        };
        let report = mc.run(&g).unwrap();
        // One round from a dead heat essentially never reaches consensus.
        assert!(report.consensus_rate < 1.0);
        for o in &report.outcomes {
            assert!(o.rounds <= 1);
        }
    }

    #[test]
    fn topology_monte_carlo_sweeps_red_on_implicit_complete() {
        let topo = bo3_graph::Complete::new(2_000).unwrap();
        let mc = MonteCarlo::best_of_three(0.15, 12, 9);
        let report = mc.run_on_topology(&topo).unwrap();
        assert_eq!(report.outcomes.len(), 12);
        assert!((report.consensus_rate - 1.0).abs() < 1e-12);
        let red = report.red_win.unwrap();
        assert_eq!(red.successes, red.trials, "red should win every replica");
    }

    #[test]
    fn topology_monte_carlo_is_thread_count_independent() {
        let topo = bo3_graph::ImplicitGnp::new(1_500, 0.4, 31).unwrap();
        let mut mc = MonteCarlo::best_of_three(0.12, 8, 5);
        mc.threads = 1;
        let seq = mc.run_on_topology(&topo).unwrap();
        mc.threads = 4;
        let par = mc.run_on_topology(&topo).unwrap();
        assert_eq!(seq.outcomes, par.outcomes);
    }

    #[test]
    fn topology_monte_carlo_runs_the_asynchronous_schedule() {
        // The schedule fork that used to reject this lives nowhere any more:
        // the asynchronous ablation runs adjacency-free, reproducibly.
        let topo = bo3_graph::ImplicitGnp::new(1_000, 0.4, 17).unwrap();
        let mut mc = MonteCarlo::best_of_three(0.15, 4, 3);
        mc.schedule = Schedule::AsynchronousRandomOrder;
        let a = mc.run_on_topology(&topo).unwrap();
        let b = mc.run_on_topology(&topo).unwrap();
        assert_eq!(a.outcomes, b.outcomes);
        assert!((a.consensus_rate - 1.0).abs() < 1e-12);
        let red = a.red_win.unwrap();
        assert_eq!(red.successes, red.trials, "red should win every replica");
        // The single-replica entry point agrees with the batch.
        assert_eq!(mc.run_one_on_topology(&topo, 0).unwrap(), a.outcomes[0]);
    }

    #[test]
    fn degree_ranked_initials_run_on_implicit_topologies() {
        // Pre-oracle this was a typed error; now it places through the
        // degree oracle with no Θ(n) scan and runs end to end.
        let topo = bo3_graph::ImplicitSbm::new(2_000, 2, 0.5, 0.4, 5).unwrap();
        let mc = MonteCarlo {
            protocol: ProtocolSpec::BestOfThree,
            initial: InitialCondition::HighestDegreeBlue { blue: 600 },
            schedule: Schedule::Synchronous,
            stopping: StoppingCondition::consensus_within(10_000),
            replicas: 3,
            master_seed: 9,
            threads: 1,
            adversary: Vec::new(),
        };
        let report = mc.run_on_topology(&topo).unwrap();
        assert!((report.consensus_rate - 1.0).abs() < 1e-12);
        for o in &report.outcomes {
            assert!((o.initial_blue_fraction - 0.3).abs() < 1e-12);
        }
    }

    #[test]
    fn resumable_batch_with_unlimited_budget_matches_plain_run() {
        use crate::checkpoint::RunBudget;

        let topo = bo3_graph::ImplicitGnp::new(1_200, 0.4, 21).unwrap();
        let mut mc = MonteCarlo::best_of_three(0.1, 6, 13);
        mc.threads = 1;
        let plain = mc.run_on_topology(&topo).unwrap();
        let resumable = mc
            .run_on_topology_resumable(&topo, None, &RunBudget::unlimited())
            .unwrap()
            .completed()
            .expect("unlimited budget completes");
        assert_eq!(plain, resumable);
    }

    #[test]
    fn resumable_batch_paused_every_round_matches_plain_run() {
        use crate::checkpoint::RunBudget;

        let topo = bo3_graph::ImplicitGnp::new(900, 0.5, 33).unwrap();
        let mut mc = MonteCarlo::best_of_three(0.08, 4, 17);
        mc.threads = 2;
        let plain = mc.run_on_topology(&topo).unwrap();

        // Drive the whole batch one round at a time through checkpoints.
        let budget = RunBudget::rounds_per_slice(1);
        let mut resume = None;
        let mut slices = 0usize;
        let report = loop {
            match mc
                .run_on_topology_resumable(&topo, resume.take(), &budget)
                .unwrap()
            {
                BatchOutcome::Completed(report) => break report,
                BatchOutcome::Paused(ckpt) => {
                    resume = Some(ckpt);
                    slices += 1;
                    assert!(slices < 100_000, "batch failed to make progress");
                }
            }
        };
        assert_eq!(plain, report);
        assert!(slices > 0, "one-round slices must actually pause");
    }

    #[test]
    fn graph_backed_resumable_batch_pauses_at_replica_boundaries() {
        use crate::checkpoint::RunBudget;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let g = generators::complete(120);
        let topo = bo3_graph::CsrTopology::new(&g);
        let mut mc = MonteCarlo::best_of_three(0.12, 5, 29);
        mc.threads = 1;
        let plain = mc.run_on_topology(&topo).unwrap();

        // A pre-set cancel flag pauses before the first replica …
        let flag = Arc::new(AtomicBool::new(true));
        let budget = RunBudget::unlimited().with_cancel_flag(flag.clone());
        let paused = mc
            .run_on_topology_resumable(&topo, None, &budget)
            .unwrap()
            .paused()
            .expect("pre-set flag pauses immediately");
        assert!(paused.completed.is_empty());
        assert!(
            paused.current.is_none(),
            "graph-backed pauses carry no mid-run state"
        );

        // … and resuming with the flag cleared matches the plain run.
        flag.store(false, Ordering::SeqCst);
        let report = mc
            .run_on_topology_resumable(&topo, Some(paused), &budget)
            .unwrap()
            .completed()
            .expect("cleared flag completes");
        assert_eq!(plain, report);
    }

    #[test]
    fn cooperative_drive_matches_plain_run_and_streams_progress() {
        use crate::checkpoint::RunBudget;

        let topo = bo3_graph::ImplicitGnp::new(900, 0.5, 33).unwrap();
        let mut mc = MonteCarlo::best_of_three(0.08, 4, 17);
        mc.threads = 2;
        let plain = mc.run_on_topology(&topo).unwrap();

        let budget = RunBudget::rounds_per_slice(1);
        let mut samples: Vec<BatchProgress> = Vec::new();
        let report = mc
            .run_on_topology_cooperative(&topo, None, &budget, &mut |p| samples.push(*p))
            .unwrap()
            .completed()
            .expect("uninterrupted cooperative drive completes");
        assert_eq!(plain, report);

        // One-round slices sample every round of every replica; the stream
        // is monotone in (replicas_done, round) and carries live fractions.
        assert!(samples.len() > mc.replicas, "{} samples", samples.len());
        assert!(samples
            .windows(2)
            .all(|w| { (w[1].replicas_done, w[1].round) >= (w[0].replicas_done, w[0].round) }));
        assert!(samples.iter().all(|p| p.replicas == mc.replicas
            && p.replica <= mc.replicas
            && (0.0..=1.0).contains(&p.blue_fraction)));
        // Mid-run samples expose the paused configuration's blue fraction.
        assert!(samples
            .windows(2)
            .any(|w| w[0].replica == w[1].replica && w[0].blue_fraction != w[1].blue_fraction));
    }

    #[test]
    fn cooperative_drive_pauses_on_cancel_and_resumes_to_the_same_report() {
        use crate::checkpoint::RunBudget;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let topo = bo3_graph::ImplicitGnp::new(900, 0.5, 41).unwrap();
        let mut mc = MonteCarlo::best_of_three(0.08, 3, 23);
        mc.threads = 1;
        let plain = mc.run_on_topology(&topo).unwrap();

        // Flip the flag from inside the progress callback: the very next
        // slice boundary must surface the checkpoint instead of continuing.
        let flag = Arc::new(AtomicBool::new(false));
        let budget = RunBudget::rounds_per_slice(1).with_cancel_flag(flag.clone());
        let mut seen = 0usize;
        let setter = flag.clone();
        let paused = mc
            .run_on_topology_cooperative(&topo, None, &budget, &mut |_| {
                seen += 1;
                if seen == 3 {
                    setter.store(true, Ordering::SeqCst);
                }
            })
            .unwrap()
            .paused()
            .expect("cancelled drive pauses");
        assert_eq!(seen, 3, "no progress after the flag flipped");

        // Clearing the flag and resuming completes to the identical report.
        flag.store(false, Ordering::SeqCst);
        let report = mc
            .run_on_topology_cooperative(&topo, Some(paused), &budget, &mut |_| {})
            .unwrap()
            .completed()
            .expect("cleared flag completes");
        assert_eq!(plain, report);
    }

    #[test]
    fn resumable_batch_rejects_bad_checkpoints() {
        use crate::checkpoint::RunBudget;

        let topo = bo3_graph::ImplicitGnp::new(500, 0.5, 3).unwrap();
        let mc = MonteCarlo::best_of_three(0.1, 2, 7);

        let wrong_version = BatchCheckpoint {
            version: BATCH_CHECKPOINT_VERSION + 1,
            completed: Vec::new(),
            current: None,
        };
        assert!(mc
            .run_on_topology_resumable(&topo, Some(wrong_version), &RunBudget::unlimited())
            .is_err());

        let plain = mc.run_on_topology(&topo).unwrap();
        let too_many = BatchCheckpoint {
            version: BATCH_CHECKPOINT_VERSION,
            completed: [plain.outcomes.clone(), plain.outcomes.clone()].concat(),
            current: None,
        };
        assert!(mc
            .run_on_topology_resumable(&topo, Some(too_many), &RunBudget::unlimited())
            .is_err());
    }

    #[test]
    fn zero_replicas_is_a_valid_degenerate_batch() {
        let g = generators::complete(30);
        let mc = MonteCarlo::best_of_three(0.1, 0, 0);
        let report = mc.run(&g).unwrap();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.consensus_rate, 0.0);
        assert!(report.red_win.is_none());
        assert!(report.rounds_to_consensus.is_none());
    }
}
