//! Engine observability: the [`Observer`] hook and its two implementations.
//!
//! An [`Observer`] is attached with [`crate::engine::Engine::with_observer`]
//! and receives read-only notifications as a run executes: one call per
//! round, one per synchronous worker chunk, the adversary's final tally, and
//! — through [`Observer::sampler_meter`] — a live count of
//! rejection-sampling effort inside the implicit topologies.
//!
//! # The must-not-perturb contract
//!
//! Observability **reads** a simulation; it never participates in one.  An
//! observer implementation must not:
//!
//! * consume or reseed any RNG the engine passes near it (observers are
//!   never handed one — keep it that way);
//! * influence control flow (every hook returns `()` and the engine ignores
//!   observer state when choosing code paths);
//! * block on the hot path (the provided [`MetricsObserver`] uses only
//!   relaxed atomics).
//!
//! The engine enforces the sampling half of the contract structurally:
//! metered draws go through
//! [`bo3_graph::Topology::sample_neighbour_tries`], which is documented (and
//! tested) to consume the RNG identically to the unmetered
//! `sample_neighbour`, and the [`bo3_graph::MeteredTopology`] wrapper
//! forwards every routing predicate (`as_graph`, `as_csr`,
//! `is_all_but_self`, `cheap_rows`) so kernels take exactly the same code
//! paths.  Consequently a run with any observer installed is **bit-identical**
//! to the same run without one — at any thread count, on either schedule,
//! with or without an adversary.  The `observability` integration suite pins
//! this.
//!
//! With [`NoopObserver`] (the default — `Engine::new` pins it), every hook
//! is an empty inlineable function and [`Observer::enabled`] is a constant
//! `false`, so the timing guards (`enabled().then(Instant::now)`) fold away
//! and the hot path is exactly the pre-observability machine code.

use std::time::Instant;

use bo3_obs::{Counter, Gauge, Log2Histogram, MetricsRegistry, SamplerMeter};
use std::sync::Arc;

use crate::adversary::AdversaryCounters;

/// Read-only instrumentation hooks threaded through [`crate::engine::Engine`].
///
/// All methods have no-op defaults; implement only what you need.  See the
/// [module docs](crate::observe) for the must-not-perturb-RNG contract every
/// implementation is bound by: an observer may never consume randomness,
/// alter control flow or block, so installing one cannot change a run's
/// result.
pub trait Observer: Sync {
    /// Whether the engine should bother collecting timing for this observer.
    ///
    /// `false` (the [`NoopObserver`]) lets the engine skip the
    /// `Instant::now` pair around rounds and chunks entirely, keeping the
    /// unobserved hot path untouched.
    fn enabled(&self) -> bool;

    /// One completed round: its index, the number of vertex updates it
    /// performed, and its wall time.  Not called when
    /// [`Observer::enabled`] is `false`.
    fn on_round(&self, round: u64, updates: u64, wall_ns: u64) {
        let _ = (round, updates, wall_ns);
    }

    /// One completed synchronous worker chunk (called from worker threads —
    /// implementations must be thread-safe).  Not called when
    /// [`Observer::enabled`] is `false`.
    fn on_chunk(&self, chunk: u64, updates: u64, wall_ns: u64) {
        let _ = (chunk, updates, wall_ns);
    }

    /// The adversary's final tally for a completed run (only called on
    /// adversarial runs).
    fn on_adversary(&self, counters: &AdversaryCounters) {
        let _ = counters;
    }

    /// The meter rejection-sampling draws should be recorded into, if this
    /// observer wants them.  Returning `Some` makes the engine route
    /// implicit-topology sampling through a
    /// [`bo3_graph::MeteredTopology`] wrapper (RNG-stream-neutral by
    /// construction); `None` (the default) keeps the direct unmetered path.
    fn sampler_meter(&self) -> Option<&SamplerMeter> {
        None
    }
}

/// The default observer: nothing is recorded, nothing is timed.
///
/// [`Observer::enabled`] is a constant `false` and every hook an empty
/// `#[inline]` body, so an `Engine<T>` (which defaults to this observer)
/// monomorphizes to exactly the uninstrumented hot path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// An [`Observer`] recording into a [`bo3_obs::MetricsRegistry`]:
///
/// * `engine_rounds_total`, `engine_updates_total` — run progress;
/// * `engine_round_wall_ns` / `engine_chunk_wall_ns` — log2 latency
///   histograms for rounds and synchronous worker chunks;
/// * `sampler_tries_total` / `sampler_accepts_total` — rejection-sampling
///   effort inside implicit topologies (tries per accepted draw is the
///   implicit-graph throughput-gap diagnostic);
/// * `sampler_lane_drawn_total` / `sampler_lane_consumed_total` —
///   batch-lane occupancy of the draw-ahead sampler (consumed ÷ drawn; the
///   gap is the discarded pre-draw tail);
/// * `adversary_dropped_samples_total`, `adversary_partition_rounds_total`,
///   `adversary_zealots` / `adversary_byzantine` — what an attached
///   adversary did.
///
/// All instruments are relaxed atomics; the recording path takes no lock
/// and consumes no randomness.  The registry is exposed via
/// [`MetricsObserver::registry`] for Prometheus-text or JSON-snapshot
/// exposition after (or during) a run.
pub struct MetricsObserver {
    registry: MetricsRegistry,
    rounds: Arc<Counter>,
    updates: Arc<Counter>,
    chunks: Arc<Counter>,
    round_wall_ns: Arc<Log2Histogram>,
    chunk_wall_ns: Arc<Log2Histogram>,
    meter: SamplerMeter,
    adv_dropped: Arc<Counter>,
    adv_partition_rounds: Arc<Counter>,
    adv_zealots: Arc<Gauge>,
    adv_byzantine: Arc<Gauge>,
}

impl MetricsObserver {
    /// A fresh observer with its own registry.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        let rounds = registry.counter("engine_rounds_total", "Completed dynamics rounds");
        let updates = registry.counter("engine_updates_total", "Vertex updates performed");
        let chunks = registry.counter("engine_chunks_total", "Synchronous worker chunks executed");
        let round_wall_ns = registry.histogram("engine_round_wall_ns", "Round wall time (ns)");
        let chunk_wall_ns =
            registry.histogram("engine_chunk_wall_ns", "Synchronous chunk wall time (ns)");
        let meter = SamplerMeter::from_counters(
            registry.counter(
                "sampler_tries_total",
                "Rejection-sampling candidate tries in implicit topologies",
            ),
            registry.counter(
                "sampler_accepts_total",
                "Accepted neighbour draws in implicit topologies",
            ),
        )
        .with_lane_counters(
            registry.counter(
                "sampler_lane_drawn_total",
                "Candidates pre-drawn into batched sampler lanes",
            ),
            registry.counter(
                "sampler_lane_consumed_total",
                "Lane candidates consumed as tries (drawn minus consumed is the discarded tail)",
            ),
        );
        let adv_dropped = registry.counter(
            "adversary_dropped_samples_total",
            "Neighbour samples lost to the message-drop adversary",
        );
        let adv_partition_rounds = registry.counter(
            "adversary_partition_rounds_total",
            "Rounds spent inside an adversarial partition window",
        );
        let adv_zealots = registry.gauge("adversary_zealots", "Zealot vertices configured");
        let adv_byzantine = registry.gauge("adversary_byzantine", "Byzantine vertices configured");
        MetricsObserver {
            registry,
            rounds,
            updates,
            chunks,
            round_wall_ns,
            chunk_wall_ns,
            meter,
            adv_dropped,
            adv_partition_rounds,
            adv_zealots,
            adv_byzantine,
        }
    }

    /// The registry behind this observer, for exposition
    /// ([`MetricsRegistry::render_prometheus`] /
    /// [`MetricsRegistry::snapshot_json`]) or for registering further
    /// instruments alongside the engine's.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Completed rounds recorded so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.get()
    }

    /// Vertex updates recorded so far.
    pub fn updates(&self) -> u64 {
        self.updates.get()
    }

    /// Mean rejection-sampling tries per accepted neighbour draw, when any
    /// draws were metered (`None` on materialised-CSR runs, which sample in
    /// one try outside the metered path).
    pub fn tries_per_draw(&self) -> Option<f64> {
        self.meter.tries_per_draw()
    }

    /// The underlying sampler meter.
    pub fn meter(&self) -> &SamplerMeter {
        &self.meter
    }
}

impl Default for MetricsObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl Observer for MetricsObserver {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn on_round(&self, _round: u64, updates: u64, wall_ns: u64) {
        self.rounds.inc();
        self.updates.add(updates);
        self.round_wall_ns.record(wall_ns);
    }

    #[inline]
    fn on_chunk(&self, _chunk: u64, _updates: u64, wall_ns: u64) {
        self.chunks.inc();
        self.chunk_wall_ns.record(wall_ns);
    }

    fn on_adversary(&self, counters: &AdversaryCounters) {
        self.adv_dropped.add(counters.dropped_samples);
        self.adv_partition_rounds.add(counters.partition_rounds);
        self.adv_zealots.set(counters.zealots as i64);
        self.adv_byzantine.set(counters.byzantine as i64);
    }

    #[inline]
    fn sampler_meter(&self) -> Option<&SamplerMeter> {
        Some(&self.meter)
    }
}

/// Starts a wall-clock timer only when `observer` wants one — the guard the
/// engine wraps around rounds and chunks so the [`NoopObserver`] path folds
/// to nothing.
#[inline(always)]
pub(crate) fn maybe_now<O: Observer>(observer: &O) -> Option<Instant> {
    if observer.enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_observer_is_disabled_and_meterless() {
        let obs = NoopObserver;
        assert!(!obs.enabled());
        assert!(obs.sampler_meter().is_none());
        // Default hooks accept calls without effect.
        obs.on_round(0, 10, 5);
        obs.on_chunk(0, 10, 5);
    }

    #[test]
    fn metrics_observer_accumulates_rounds_and_chunks() {
        let obs = MetricsObserver::new();
        assert!(obs.enabled());
        obs.on_round(0, 100, 1_000);
        obs.on_round(1, 100, 2_000);
        obs.on_chunk(0, 64, 500);
        assert_eq!(obs.rounds(), 2);
        assert_eq!(obs.updates(), 200);
        let json = obs.registry().snapshot_json();
        assert!(json.contains("\"engine_rounds_total\":2"));
        assert!(json.contains("\"engine_chunks_total\":1"));
        let prom = obs.registry().render_prometheus();
        assert!(prom.contains("engine_round_wall_ns_count 2"));
    }

    #[test]
    fn adversary_tally_lands_in_the_registry() {
        let obs = MetricsObserver::new();
        obs.on_adversary(&AdversaryCounters {
            zealots: 3,
            byzantine: 1,
            dropped_samples: 42,
            partition_rounds: 7,
        });
        let json = obs.registry().snapshot_json();
        assert!(json.contains("\"adversary_dropped_samples_total\":42"));
        assert!(json.contains("\"adversary_partition_rounds_total\":7"));
        assert!(json.contains("\"adversary_zealots\":3"));
    }

    #[test]
    fn sampler_meter_is_wired_into_the_registry() {
        let obs = MetricsObserver::new();
        let meter = obs.sampler_meter().unwrap();
        meter.record(5);
        meter.record(1);
        assert_eq!(obs.tries_per_draw(), Some(3.0));
        let json = obs.registry().snapshot_json();
        assert!(json.contains("\"sampler_tries_total\":6"));
        assert!(json.contains("\"sampler_accepts_total\":2"));
    }

    #[test]
    fn lane_occupancy_counters_are_wired_into_the_registry() {
        let obs = MetricsObserver::new();
        let meter = obs.sampler_meter().unwrap();
        meter.record_lane(20, 10, 32);
        assert_eq!(meter.lane_occupancy(), Some(0.625));
        let json = obs.registry().snapshot_json();
        assert!(json.contains("\"sampler_lane_drawn_total\":32"));
        assert!(json.contains("\"sampler_lane_consumed_total\":20"));
        // Lane recording feeds the same tries/accepts totals as scalar
        // recording would have.
        assert!(json.contains("\"sampler_tries_total\":20"));
        assert!(json.contains("\"sampler_accepts_total\":10"));
    }
}
