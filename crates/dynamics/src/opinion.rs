//! Opinions and opinion configurations.
//!
//! The paper's model is two-party: every vertex is either **red** (the
//! initial majority in Theorem 1) or **blue** (the initial minority).  The
//! analysis in Section 3 identifies blue with the value 1 and red with 0;
//! [`Opinion::as_value`] follows that convention so code mirrors the paper.

use serde::{Deserialize, Serialize};

/// A vertex opinion (colour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Opinion {
    /// Red — the initial majority in the paper's setting.
    Red = 0,
    /// Blue — the initial minority; mapped to the value 1 in Section 3.
    Blue = 1,
}

impl Opinion {
    /// The paper's numeric encoding: blue ↦ 1, red ↦ 0.
    #[inline]
    pub fn as_value(self) -> u8 {
        self as u8
    }

    /// The opposite opinion.
    #[inline]
    pub fn flipped(self) -> Opinion {
        match self {
            Opinion::Red => Opinion::Blue,
            Opinion::Blue => Opinion::Red,
        }
    }

    /// `true` for blue.
    #[inline]
    pub fn is_blue(self) -> bool {
        matches!(self, Opinion::Blue)
    }

    /// `true` for red.
    #[inline]
    pub fn is_red(self) -> bool {
        matches!(self, Opinion::Red)
    }

    /// Majority of three opinions (always well defined — no ties with an odd
    /// sample).  This is the Best-of-3 update rule applied to one sample.
    #[inline]
    pub fn majority3(a: Opinion, b: Opinion, c: Opinion) -> Opinion {
        let blues = a.as_value() + b.as_value() + c.as_value();
        if blues >= 2 {
            Opinion::Blue
        } else {
            Opinion::Red
        }
    }
}

impl std::fmt::Display for Opinion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Opinion::Red => write!(f, "R"),
            Opinion::Blue => write!(f, "B"),
        }
    }
}

/// A full opinion configuration `ξ_t` together with maintained colour counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Configuration {
    opinions: Vec<Opinion>,
    blue_count: usize,
}

impl Configuration {
    /// Builds a configuration from a vector of opinions.
    pub fn new(opinions: Vec<Opinion>) -> Self {
        let blue_count = opinions.iter().filter(|o| o.is_blue()).count();
        Configuration {
            opinions,
            blue_count,
        }
    }

    /// A configuration of `n` vertices, all red.
    pub fn all_red(n: usize) -> Self {
        Configuration {
            opinions: vec![Opinion::Red; n],
            blue_count: 0,
        }
    }

    /// A configuration of `n` vertices, all blue.
    pub fn all_blue(n: usize) -> Self {
        Configuration {
            opinions: vec![Opinion::Blue; n],
            blue_count: n,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.opinions.len()
    }

    /// `true` when there are no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.opinions.is_empty()
    }

    /// The opinion of vertex `v`.
    #[inline]
    pub fn get(&self, v: usize) -> Opinion {
        self.opinions[v]
    }

    /// Sets the opinion of vertex `v`, keeping the counts consistent.
    #[inline]
    pub fn set(&mut self, v: usize, opinion: Opinion) {
        let old = self.opinions[v];
        if old != opinion {
            match opinion {
                Opinion::Blue => self.blue_count += 1,
                Opinion::Red => self.blue_count -= 1,
            }
            self.opinions[v] = opinion;
        }
    }

    /// Number of blue vertices.
    #[inline]
    pub fn blue_count(&self) -> usize {
        self.blue_count
    }

    /// Number of red vertices.
    #[inline]
    pub fn red_count(&self) -> usize {
        self.opinions.len() - self.blue_count
    }

    /// Fraction of blue vertices (`0.0` on the empty configuration).
    pub fn blue_fraction(&self) -> f64 {
        if self.opinions.is_empty() {
            0.0
        } else {
            self.blue_count as f64 / self.opinions.len() as f64
        }
    }

    /// The red bias `δ_t = 1/2 − (blue fraction)`, the quantity tracked by
    /// the paper's Lemma 4.
    pub fn red_bias(&self) -> f64 {
        0.5 - self.blue_fraction()
    }

    /// `Some(winner)` when every vertex holds the same opinion.
    pub fn consensus(&self) -> Option<Opinion> {
        if self.opinions.is_empty() {
            return None;
        }
        if self.blue_count == 0 {
            Some(Opinion::Red)
        } else if self.blue_count == self.opinions.len() {
            Some(Opinion::Blue)
        } else {
            None
        }
    }

    /// The opinion currently held by a (weak) majority of the vertices; ties
    /// return `None`.
    pub fn current_majority(&self) -> Option<Opinion> {
        let red = self.red_count();
        match red.cmp(&self.blue_count) {
            std::cmp::Ordering::Greater => Some(Opinion::Red),
            std::cmp::Ordering::Less => Some(Opinion::Blue),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// Read-only access to the underlying opinions.
    #[inline]
    pub fn as_slice(&self) -> &[Opinion] {
        &self.opinions
    }

    /// Consumes the configuration and returns the raw opinion vector.
    pub fn into_vec(self) -> Vec<Opinion> {
        self.opinions
    }

    /// Replaces the whole configuration in place (used by the double-buffered
    /// synchronous stepper) and recomputes the counts.
    pub fn overwrite_from(&mut self, other: &[Opinion]) {
        self.opinions.clear();
        self.opinions.extend_from_slice(other);
        self.blue_count = self.opinions.iter().filter(|o| o.is_blue()).count();
    }

    /// The set of vertices currently blue (ascending order).
    pub fn blue_vertices(&self) -> Vec<usize> {
        self.opinions
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_blue())
            .map(|(v, _)| v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opinion_value_encoding_matches_paper() {
        assert_eq!(Opinion::Red.as_value(), 0);
        assert_eq!(Opinion::Blue.as_value(), 1);
        assert_eq!(Opinion::Red.flipped(), Opinion::Blue);
        assert_eq!(Opinion::Blue.flipped(), Opinion::Red);
        assert!(Opinion::Blue.is_blue());
        assert!(Opinion::Red.is_red());
        assert_eq!(format!("{}/{}", Opinion::Red, Opinion::Blue), "R/B");
    }

    #[test]
    fn majority_of_three() {
        use Opinion::{Blue as B, Red as R};
        assert_eq!(Opinion::majority3(R, R, R), R);
        assert_eq!(Opinion::majority3(R, R, B), R);
        assert_eq!(Opinion::majority3(R, B, B), B);
        assert_eq!(Opinion::majority3(B, B, B), B);
        assert_eq!(Opinion::majority3(B, R, B), B);
    }

    #[test]
    fn configuration_counts_and_fractions() {
        use Opinion::{Blue as B, Red as R};
        let c = Configuration::new(vec![R, B, B, R, R]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.blue_count(), 2);
        assert_eq!(c.red_count(), 3);
        assert!((c.blue_fraction() - 0.4).abs() < 1e-12);
        assert!((c.red_bias() - 0.1).abs() < 1e-12);
        assert_eq!(c.current_majority(), Some(R));
        assert_eq!(c.consensus(), None);
        assert_eq!(c.blue_vertices(), vec![1, 2]);
    }

    #[test]
    fn set_keeps_counts_consistent() {
        let mut c = Configuration::all_red(4);
        assert_eq!(c.blue_count(), 0);
        c.set(2, Opinion::Blue);
        assert_eq!(c.blue_count(), 1);
        c.set(2, Opinion::Blue); // no-op
        assert_eq!(c.blue_count(), 1);
        c.set(2, Opinion::Red);
        assert_eq!(c.blue_count(), 0);
        assert_eq!(c.consensus(), Some(Opinion::Red));
    }

    #[test]
    fn consensus_detection() {
        assert_eq!(Configuration::all_red(3).consensus(), Some(Opinion::Red));
        assert_eq!(Configuration::all_blue(3).consensus(), Some(Opinion::Blue));
        assert_eq!(Configuration::new(vec![]).consensus(), None);
        let mut c = Configuration::all_red(3);
        c.set(0, Opinion::Blue);
        assert_eq!(c.consensus(), None);
    }

    #[test]
    fn tie_has_no_majority() {
        use Opinion::{Blue as B, Red as R};
        let c = Configuration::new(vec![R, B, R, B]);
        assert_eq!(c.current_majority(), None);
    }

    #[test]
    fn overwrite_recomputes_counts() {
        use Opinion::{Blue as B, Red as R};
        let mut c = Configuration::all_red(3);
        c.overwrite_from(&[B, B, R]);
        assert_eq!(c.blue_count(), 2);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn empty_configuration_behaviour() {
        let c = Configuration::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.blue_fraction(), 0.0);
        assert_eq!(c.current_majority(), None);
    }

    #[test]
    fn into_vec_round_trip() {
        use Opinion::{Blue as B, Red as R};
        let v = vec![R, B, R];
        let c = Configuration::new(v.clone());
        assert_eq!(c.into_vec(), v);
    }
}
