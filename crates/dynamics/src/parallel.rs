//! Multi-threaded stepping support: the chunk scheduler, the work-unit RNG
//! derivations, and the [`ParallelSimulator`] façade.
//!
//! The synchronous round is embarrassingly parallel: every vertex's new
//! opinion depends only on the previous round's snapshot.  The (crate
//! internal) `run_chunks` scheduler
//! partitions the vertex range into fixed-size chunks and processes chunks
//! across a scoped thread pool (crossbeam), writing each chunk's results into
//! its disjoint slice of the output buffer — no locks, no atomics on the hot
//! path.
//!
//! **Determinism.** Every chunk derives its own RNG from
//! `(master_seed, round, chunk_index)`, so results are bit-for-bit identical
//! regardless of how many worker threads run the chunks.  This is the
//! property the engine ablation (sequential vs. parallel stepping) checks.
//!
//! The stepping logic itself lives in the unified
//! [`crate::engine::Engine`]; [`ParallelSimulator`] survives as a thin
//! construction façade over `Engine<CsrTopology>` with a thread count, kept
//! so existing call sites (and the pinned determinism suites) keep
//! compiling.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use bo3_graph::{CsrGraph, NeighbourSampler};

use crate::engine::{Engine, RunResult};
use crate::error::Result;
use crate::opinion::{Configuration, Opinion};
use crate::protocol::{Protocol, UpdateContext};
use crate::stopping::StoppingCondition;

/// Number of vertices per work unit. Fixed (rather than `n / threads`) so the
/// chunk→RNG mapping, and therefore the simulation output, does not depend on
/// the thread count.
pub const CHUNK_SIZE: usize = 4096;

/// A multi-threaded synchronous simulator — a façade over
/// [`Engine`]`<CsrTopology>` (see the module docs).
pub struct ParallelSimulator<'g> {
    engine: Engine<bo3_graph::CsrTopology<'g>>,
}

impl<'g> ParallelSimulator<'g> {
    /// Creates a parallel simulator using `threads` worker threads
    /// (`0` means "number of available CPUs").
    pub fn new(graph: &'g CsrGraph, threads: usize) -> Result<Self> {
        Ok(ParallelSimulator {
            engine: Engine::on_graph(graph)?.with_threads(threads),
        })
    }

    /// Sets the stopping condition.
    pub fn with_stopping(mut self, stopping: StoppingCondition) -> Self {
        self.engine = self.engine.with_stopping(stopping);
        self
    }

    /// Enables per-round trace recording.
    pub fn with_trace(mut self, record: bool) -> Self {
        self.engine = self.engine.with_trace(record);
        self
    }

    /// Number of worker threads in use.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// One deterministic parallel synchronous round.
    ///
    /// `round` and `master_seed` feed the per-chunk RNG derivation.
    pub fn step(
        &self,
        protocol: &(dyn Protocol + Sync),
        current: &Configuration,
        next: &mut Vec<Opinion>,
        master_seed: u64,
        round: u64,
    ) {
        self.engine
            .step_seeded(protocol, current, next, master_seed, round);
    }

    /// Runs the dynamics from `initial` until the stopping condition fires,
    /// using `master_seed` to derive all randomness — see
    /// [`Engine::run_seeded`].
    pub fn run(
        &self,
        protocol: &(dyn Protocol + Sync),
        initial: Configuration,
        master_seed: u64,
    ) -> Result<RunResult> {
        self.engine.run_seeded(protocol, initial, master_seed)
    }
}

/// Runs `op` once per [`CHUNK_SIZE`] chunk of `next` across `threads`
/// scoped workers.  Chunks are statically assigned round-robin to workers
/// before spawning, so each worker owns a disjoint set of output slices
/// (lock-free) and the chunk → RNG mapping stays independent of the thread
/// count.  Shared by [`ParallelSimulator`] and the topology-generic
/// [`crate::topology_sim::TopologySimulator`], so the two steppers cannot
/// drift in chunk scheduling.
pub(crate) fn run_chunks(
    threads: usize,
    next: &mut [Opinion],
    op: &(dyn Fn(u64, usize, &mut [Opinion]) + Sync),
) {
    let workers = threads.max(1);
    if workers == 1 || next.len() <= CHUNK_SIZE {
        // Sequential fast path: same chunk → RNG mapping, no thread spawn.
        for (chunk, slice) in next.chunks_mut(CHUNK_SIZE).enumerate() {
            op(chunk as u64, chunk * CHUNK_SIZE, slice);
        }
        return;
    }
    let mut per_thread: Vec<Vec<(usize, &mut [Opinion])>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (chunk, slice) in next.chunks_mut(CHUNK_SIZE).enumerate() {
        per_thread[chunk % workers].push((chunk, slice));
    }

    crossbeam::thread::scope(|scope| {
        for bucket in per_thread.drain(..) {
            if bucket.is_empty() {
                continue;
            }
            scope.spawn(move |_| {
                for (chunk, out) in bucket {
                    op(chunk as u64, chunk * CHUNK_SIZE, out);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Applies `protocol` to the vertices `start..start + out.len()`, reading
/// the previous-round snapshot `prev` and writing the new opinions into
/// `out`, consuming `rng` once per vertex in order.
///
/// Shared by the parallel stepper and the seeded sequential stepper
/// ([`crate::engine::Simulator::step_seeded`]) so their per-vertex update
/// sequence — and therefore the bit-identical determinism contract —
/// cannot diverge.
pub(crate) fn update_chunk(
    protocol: &dyn Protocol,
    sampler: &NeighbourSampler<'_>,
    prev: &[Opinion],
    start: usize,
    out: &mut [Opinion],
    rng: &mut dyn RngCore,
) {
    for (i, slot) in out.iter_mut().enumerate() {
        let v = start + i;
        let ctx = UpdateContext {
            vertex: v,
            current: prev[v],
            previous: prev,
            sampler,
        };
        *slot = protocol.update(&ctx, rng);
    }
}

/// SplitMix-style mixing of the three work-unit coordinates into a 64-bit
/// stream id, shared by the `dyn`-path [`chunk_rng`] and the kernel-path
/// [`crate::kernel::kernel_chunk_rng`].
pub(crate) fn stream_id(master_seed: u64, round: u64, chunk: u64) -> u64 {
    let mut z = master_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(round.wrapping_add(1)))
        .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(chunk.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the `dyn`-path RNG for one `(seed, round, chunk)` work unit.
///
/// Public so seeded sequential runs ([`crate::engine::Simulator::run_seeded`])
/// can reproduce the parallel stepper's randomness bit-for-bit.  The kernel
/// path uses the cheaper [`crate::kernel::kernel_chunk_rng`] over the same
/// stream-id derivation.
pub fn chunk_rng(master_seed: u64, round: u64, chunk: u64) -> impl RngCore {
    // ChaCha8 for the actual stream (cheap, high quality, seekable).
    ChaCha8Rng::seed_from_u64(stream_id(master_seed, round, chunk))
}

/// Derives a per-replica RNG for Monte-Carlo runs; exposed so the sequential
/// and parallel Monte-Carlo drivers agree on the seeding scheme.
pub fn replica_rng(master_seed: u64, replica: u64) -> StdRng {
    let mut z = master_seed ^ 0xD6E8_FEB8_6659_FD93u64.wrapping_mul(replica.wrapping_add(1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitialCondition;
    use crate::protocol::BestOfThree;
    use bo3_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_graphs() {
        let empty = bo3_graph::GraphBuilder::new(0).build().unwrap();
        assert!(ParallelSimulator::new(&empty, 2).is_err());
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let g = generators::complete(10);
        let sim = ParallelSimulator::new(&g, 0).unwrap();
        assert!(sim.threads() >= 1);
    }

    #[test]
    fn parallel_run_reaches_red_consensus() {
        let g = generators::complete(600);
        let sim = ParallelSimulator::new(&g, 4).unwrap().with_trace(true);
        let mut rng = StdRng::seed_from_u64(0);
        let init = InitialCondition::BernoulliWithBias { delta: 0.12 }
            .sample(&g, &mut rng)
            .unwrap();
        let res = sim.run(&BestOfThree::new(), init, 99).unwrap();
        assert!(res.red_won());
        assert!(res.rounds <= 40);
        assert_eq!(res.trace.unwrap().len(), res.rounds + 1);
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let g = generators::complete(700);
        let mut rng = StdRng::seed_from_u64(1);
        let init = InitialCondition::BernoulliWithBias { delta: 0.08 }
            .sample(&g, &mut rng)
            .unwrap();

        let run_with = |threads: usize| {
            let sim = ParallelSimulator::new(&g, threads)
                .unwrap()
                .with_trace(true);
            sim.run(&BestOfThree::new(), init.clone(), 1234).unwrap()
        };
        let one = run_with(1);
        let four = run_with(4);
        let eight = run_with(8);
        assert_eq!(one, four);
        assert_eq!(four, eight);
    }

    #[test]
    fn different_master_seeds_give_different_runs() {
        let g = generators::complete(500);
        let mut rng = StdRng::seed_from_u64(2);
        let init = InitialCondition::ExactCount { blue: 200 }
            .sample(&g, &mut rng)
            .unwrap();
        let sim = ParallelSimulator::new(&g, 4).unwrap().with_trace(true);
        let a = sim.run(&BestOfThree::new(), init.clone(), 7).unwrap();
        let b = sim.run(&BestOfThree::new(), init, 8).unwrap();
        assert!(a.trace != b.trace || a.rounds != b.rounds);
    }

    #[test]
    fn single_step_matches_configuration_size() {
        let g = generators::complete(100);
        let sim = ParallelSimulator::new(&g, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let init = InitialCondition::ExactCount { blue: 40 }
            .sample(&g, &mut rng)
            .unwrap();
        let mut next = Vec::new();
        sim.step(&BestOfThree::new(), &init, &mut next, 5, 0);
        assert_eq!(next.len(), 100);
    }

    #[test]
    fn replica_rngs_are_distinct() {
        let mut a = replica_rng(1, 0);
        let mut b = replica_rng(1, 1);
        let va: Vec<u32> = (0..4).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..4).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
        // Same coordinates → same stream.
        let mut c = replica_rng(1, 0);
        let vc: Vec<u32> = (0..4).map(|_| c.next_u32()).collect();
        assert_eq!(va, vc);
    }

    #[test]
    fn mismatched_initial_configuration_is_rejected() {
        let g = generators::complete(10);
        let sim = ParallelSimulator::new(&g, 2).unwrap();
        let bad = Configuration::all_red(4);
        assert!(sim.run(&BestOfThree::new(), bad, 0).is_err());
    }
}
