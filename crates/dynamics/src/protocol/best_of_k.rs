//! General Best-of-k voting for arbitrary sample size `k`.

use rand::RngCore;

use crate::kernel::ProtocolKind;
use crate::opinion::Opinion;
use crate::protocol::{count_blue_samples, resolve_majority, Protocol, TieRule, UpdateContext};

/// Best-of-k: sample `k` neighbours uniformly with replacement and adopt the
/// majority colour; the tie rule decides even-`k` ties.
///
/// Odd `k ≥ 5` is the regime of Abdullah & Draief (\[1] in the paper), whose
/// result needs a *large* initial bias; experiment E12 contrasts it with the
/// paper's `k = 3` at small `δ`.  `k = 1`, `2` and `3` reproduce the
/// dedicated protocols exactly (in distribution) and the tests check that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BestOfK {
    k: usize,
    tie_rule: TieRule,
}

impl BestOfK {
    /// Best-of-`k` with the given tie rule; `k` must be at least 1.
    pub fn new(k: usize, tie_rule: TieRule) -> Self {
        assert!(k >= 1, "Best-of-k requires k >= 1");
        BestOfK { k, tie_rule }
    }

    /// Sample size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The tie rule in use.
    pub fn tie_rule(&self) -> TieRule {
        self.tie_rule
    }
}

impl Protocol for BestOfK {
    fn name(&self) -> String {
        match self.tie_rule {
            TieRule::KeepOwn => format!("best-of-{} (keep on tie)", self.k),
            TieRule::Random => format!("best-of-{} (random tie)", self.k),
        }
    }

    fn sample_size(&self) -> usize {
        self.k
    }

    fn update(&self, ctx: &UpdateContext<'_>, rng: &mut dyn RngCore) -> Opinion {
        let blues = count_blue_samples(ctx, self.k, rng);
        resolve_majority(blues, self.k, ctx.current, self.tie_rule, rng)
    }

    fn kind(&self) -> Option<ProtocolKind> {
        Some(ProtocolKind::BestOfK {
            k: self.k,
            tie_rule: self.tie_rule,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::{generators, NeighbourSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn rejects_zero_k() {
        BestOfK::new(0, TieRule::KeepOwn);
    }

    #[test]
    fn metadata() {
        let p = BestOfK::new(5, TieRule::KeepOwn);
        assert_eq!(p.k(), 5);
        assert_eq!(p.sample_size(), 5);
        assert!(p.name().contains("best-of-5"));
        assert_eq!(p.tie_rule(), TieRule::KeepOwn);
    }

    fn empirical_blue_probability(k: usize, p_blue: f64, current: Opinion, seed: u64) -> f64 {
        let n = 1500;
        let g = generators::complete(n);
        let sampler = NeighbourSampler::new(&g).unwrap();
        let blue_count = (n as f64 * p_blue).round() as usize;
        let opinions: Vec<Opinion> = (0..n)
            .map(|v| {
                if v < blue_count {
                    Opinion::Blue
                } else {
                    Opinion::Red
                }
            })
            .collect();
        let vertex = if current.is_blue() { 0 } else { n - 1 };
        let ctx = UpdateContext {
            vertex,
            current,
            previous: &opinions,
            sampler: &sampler,
        };
        let protocol = BestOfK::new(k, TieRule::KeepOwn);
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 30_000;
        (0..trials)
            .filter(|_| protocol.update(&ctx, &mut rng).is_blue())
            .count() as f64
            / trials as f64
    }

    #[test]
    fn k3_matches_the_paper_majority_map() {
        let observed = empirical_blue_probability(3, 0.3, Opinion::Red, 0);
        let expected = bo3_theory::binomial::best_of_three_blue(0.3);
        assert!((observed - expected).abs() < 0.01, "observed {observed}");
    }

    #[test]
    fn k5_suppresses_the_minority_harder_than_k3() {
        let k3 = empirical_blue_probability(3, 0.35, Opinion::Red, 1);
        let k5 = empirical_blue_probability(5, 0.35, Opinion::Red, 2);
        let k9 = empirical_blue_probability(9, 0.35, Opinion::Red, 3);
        assert!(k5 < k3, "k5 {k5} !< k3 {k3}");
        assert!(k9 < k5, "k9 {k9} !< k5 {k5}");
    }

    #[test]
    fn k1_matches_the_voter_model() {
        let observed = empirical_blue_probability(1, 0.3, Opinion::Red, 4);
        assert!((observed - 0.3).abs() < 0.012, "observed {observed}");
    }

    #[test]
    fn even_k_uses_the_tie_rule() {
        // On a star whose leaves are half blue / half red the centre with
        // keep-own never changes when the sample ties; with k = 2 and a red
        // centre the blue probability is exactly p².
        let observed = empirical_blue_probability(2, 0.5, Opinion::Red, 5);
        assert!((observed - 0.25).abs() < 0.012, "observed {observed}");
    }
}
