//! The paper's protocol: Best-of-Three.

use rand::RngCore;

use crate::kernel::ProtocolKind;
use crate::opinion::Opinion;
use crate::protocol::{count_blue_samples, Protocol, UpdateContext};

/// Best-of-Three: each round every vertex samples three neighbours uniformly
/// **with replacement** and adopts the majority colour among the three
/// samples.  With an odd sample there is never a tie, so no tie rule is
/// needed — exactly the model of Section 2 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BestOfThree;

impl BestOfThree {
    /// Creates the protocol.
    pub fn new() -> Self {
        BestOfThree
    }
}

impl Protocol for BestOfThree {
    fn name(&self) -> String {
        "best-of-3".into()
    }

    fn sample_size(&self) -> usize {
        3
    }

    fn update(&self, ctx: &UpdateContext<'_>, rng: &mut dyn RngCore) -> Opinion {
        let blues = count_blue_samples(ctx, 3, rng);
        if blues >= 2 {
            Opinion::Blue
        } else {
            Opinion::Red
        }
    }

    fn kind(&self) -> Option<ProtocolKind> {
        Some(ProtocolKind::BestOfThree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::{generators, NeighbourSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx_on_star<'a>(
        sampler: &'a NeighbourSampler<'a>,
        previous: &'a [Opinion],
        vertex: usize,
    ) -> UpdateContext<'a> {
        UpdateContext {
            vertex,
            current: previous[vertex],
            previous,
            sampler,
        }
    }

    #[test]
    fn metadata() {
        let p = BestOfThree::new();
        assert_eq!(p.name(), "best-of-3");
        assert_eq!(p.sample_size(), 3);
    }

    #[test]
    fn unanimous_neighbourhoods_are_deterministic() {
        let g = generators::star(8).unwrap();
        let sampler = NeighbourSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let p = BestOfThree::new();

        // All leaves blue: the centre must adopt blue.
        let mut opinions = vec![Opinion::Blue; 8];
        opinions[0] = Opinion::Red;
        let ctx = ctx_on_star(&sampler, &opinions, 0);
        for _ in 0..20 {
            assert_eq!(p.update(&ctx, &mut rng), Opinion::Blue);
        }

        // All leaves red: the centre must adopt red even if it is blue.
        let mut opinions = vec![Opinion::Red; 8];
        opinions[0] = Opinion::Blue;
        let ctx = ctx_on_star(&sampler, &opinions, 0);
        for _ in 0..20 {
            assert_eq!(p.update(&ctx, &mut rng), Opinion::Red);
        }
    }

    #[test]
    fn leaf_copies_the_centre() {
        // A leaf of the star has a single neighbour (the centre), so all
        // three samples hit it and the leaf adopts the centre's colour.
        let g = generators::star(5).unwrap();
        let sampler = NeighbourSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let p = BestOfThree::new();
        let mut opinions = vec![Opinion::Blue; 5];
        opinions[0] = Opinion::Red;
        let ctx = ctx_on_star(&sampler, &opinions, 3);
        assert_eq!(p.update(&ctx, &mut rng), Opinion::Red);
    }

    #[test]
    fn update_probability_matches_majority_formula() {
        // On the complete graph K_n with a fraction p of blue vertices, a red
        // vertex turns blue with probability ≈ 3p²(1−p) + p³ (sampling its
        // n−1 neighbours ≈ sampling the whole population for large n).
        let n = 2000;
        let g = generators::complete(n);
        let sampler = NeighbourSampler::new(&g).unwrap();
        let p_blue = 0.3;
        let blue_count = (n as f64 * p_blue) as usize;
        let opinions: Vec<Opinion> = (0..n)
            .map(|v| {
                if v < blue_count {
                    Opinion::Blue
                } else {
                    Opinion::Red
                }
            })
            .collect();
        let protocol = BestOfThree::new();
        let mut rng = StdRng::seed_from_u64(2);
        // Update the last (red) vertex many times.
        let ctx = UpdateContext {
            vertex: n - 1,
            current: Opinion::Red,
            previous: &opinions,
            sampler: &sampler,
        };
        let trials = 40_000;
        let mut blue_updates = 0usize;
        for _ in 0..trials {
            if protocol.update(&ctx, &mut rng).is_blue() {
                blue_updates += 1;
            }
        }
        let observed = blue_updates as f64 / trials as f64;
        let expected = bo3_theory::binomial::best_of_three_blue(p_blue);
        assert!(
            (observed - expected).abs() < 0.01,
            "observed {observed}, expected {expected}"
        );
    }
}
