//! Best-of-Two baseline ([4], [8] in the paper).

use rand::RngCore;

use crate::kernel::ProtocolKind;
use crate::opinion::Opinion;
use crate::protocol::{count_blue_samples, resolve_majority, Protocol, TieRule, UpdateContext};

/// Best-of-2 ("two choices" voting): every vertex samples two neighbours with
/// replacement; if they agree it adopts their colour, otherwise the tie rule
/// decides (keep own opinion, the convention of Cooper–Elsässer–Radzik \[4],
/// or pick at random, in which case the protocol degenerates to the voter
/// model in distribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BestOfTwo {
    tie_rule: TieRule,
}

impl BestOfTwo {
    /// Best-of-2 with the given tie rule.
    pub fn new(tie_rule: TieRule) -> Self {
        BestOfTwo { tie_rule }
    }

    /// The conventional variant: ties keep the current opinion.
    pub fn keep_own() -> Self {
        BestOfTwo::new(TieRule::KeepOwn)
    }

    /// The tie rule in use.
    pub fn tie_rule(&self) -> TieRule {
        self.tie_rule
    }
}

impl Default for BestOfTwo {
    fn default() -> Self {
        BestOfTwo::keep_own()
    }
}

impl Protocol for BestOfTwo {
    fn name(&self) -> String {
        match self.tie_rule {
            TieRule::KeepOwn => "best-of-2 (keep on tie)".into(),
            TieRule::Random => "best-of-2 (random tie)".into(),
        }
    }

    fn sample_size(&self) -> usize {
        2
    }

    fn update(&self, ctx: &UpdateContext<'_>, rng: &mut dyn RngCore) -> Opinion {
        let blues = count_blue_samples(ctx, 2, rng);
        resolve_majority(blues, 2, ctx.current, self.tie_rule, rng)
    }

    fn kind(&self) -> Option<ProtocolKind> {
        Some(ProtocolKind::BestOfTwo(self.tie_rule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::{generators, NeighbourSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn metadata_and_tie_rule() {
        assert!(BestOfTwo::keep_own().name().contains("keep"));
        assert!(BestOfTwo::new(TieRule::Random).name().contains("random"));
        assert_eq!(BestOfTwo::default().tie_rule(), TieRule::KeepOwn);
        assert_eq!(BestOfTwo::keep_own().sample_size(), 2);
    }

    #[test]
    fn unanimous_samples_override_current_opinion() {
        let g = generators::star(6).unwrap();
        let sampler = NeighbourSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let p = BestOfTwo::keep_own();
        let mut opinions = vec![Opinion::Blue; 6];
        opinions[0] = Opinion::Red;
        let ctx = UpdateContext {
            vertex: 0,
            current: Opinion::Red,
            previous: &opinions,
            sampler: &sampler,
        };
        for _ in 0..20 {
            assert_eq!(p.update(&ctx, &mut rng), Opinion::Blue);
        }
    }

    #[test]
    fn keep_own_update_probability_matches_formula() {
        // P(turn blue) = p² + 2p(1−p)·[current is blue].
        let n = 1500;
        let g = generators::complete(n);
        let sampler = NeighbourSampler::new(&g).unwrap();
        let p_blue = 0.3;
        let blue_count = (n as f64 * p_blue) as usize;
        let opinions: Vec<Opinion> = (0..n)
            .map(|v| {
                if v < blue_count {
                    Opinion::Blue
                } else {
                    Opinion::Red
                }
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(1);
        let protocol = BestOfTwo::keep_own();
        let trials = 30_000;

        // Red vertex: only the p² term.
        let ctx_red = UpdateContext {
            vertex: n - 1,
            current: Opinion::Red,
            previous: &opinions,
            sampler: &sampler,
        };
        let blue = (0..trials)
            .filter(|_| protocol.update(&ctx_red, &mut rng).is_blue())
            .count();
        let observed = blue as f64 / trials as f64;
        assert!(
            (observed - p_blue * p_blue).abs() < 0.01,
            "red vertex: observed {observed}"
        );

        // Blue vertex: p² + 2p(1−p).
        let ctx_blue = UpdateContext {
            vertex: 0,
            current: Opinion::Blue,
            previous: &opinions,
            sampler: &sampler,
        };
        let blue = (0..trials)
            .filter(|_| protocol.update(&ctx_blue, &mut rng).is_blue())
            .count();
        let observed = blue as f64 / trials as f64;
        let expected = p_blue * p_blue + 2.0 * p_blue * (1.0 - p_blue);
        assert!(
            (observed - expected).abs() < 0.012,
            "blue vertex: observed {observed}, expected {expected}"
        );
    }
}
