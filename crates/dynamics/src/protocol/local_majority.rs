//! Deterministic full-neighbourhood majority baseline.

use rand::RngCore;

use crate::kernel::ProtocolKind;
use crate::opinion::Opinion;
use crate::protocol::{resolve_majority, Protocol, TieRule, UpdateContext};

/// Local majority: every vertex reads its **entire** neighbourhood and adopts
/// the majority colour (ties resolved by the tie rule).
///
/// This is the deterministic limit of Best-of-k as `k → ∞` and serves as a
/// "full information" upper baseline: it converges extremely fast on dense
/// graphs but requires `deg(v)` reads per vertex per round instead of 3, the
/// communication cost the sampling protocols are designed to avoid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalMajority {
    tie_rule: TieRule,
}

impl LocalMajority {
    /// Local majority with the given tie rule.
    pub fn new(tie_rule: TieRule) -> Self {
        LocalMajority { tie_rule }
    }

    /// The conventional variant: ties keep the current opinion.
    pub fn keep_own() -> Self {
        LocalMajority::new(TieRule::KeepOwn)
    }
}

impl Default for LocalMajority {
    fn default() -> Self {
        LocalMajority::keep_own()
    }
}

impl Protocol for LocalMajority {
    fn name(&self) -> String {
        "local-majority (full neighbourhood)".into()
    }

    fn sample_size(&self) -> usize {
        0 // reads the whole neighbourhood rather than sampling
    }

    fn update(&self, ctx: &UpdateContext<'_>, rng: &mut dyn RngCore) -> Opinion {
        let graph = ctx.sampler.graph();
        let row = graph.neighbours(ctx.vertex);
        let mut blues = 0usize;
        for &w in row {
            blues += usize::from(ctx.previous[w].is_blue());
        }
        resolve_majority(blues, row.len(), ctx.current, self.tie_rule, rng)
    }

    fn kind(&self) -> Option<ProtocolKind> {
        Some(ProtocolKind::LocalMajority(self.tie_rule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::{generators, NeighbourSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn metadata() {
        let p = LocalMajority::keep_own();
        assert_eq!(p.sample_size(), 0);
        assert!(p.name().contains("local-majority"));
        assert_eq!(LocalMajority::default(), LocalMajority::keep_own());
    }

    #[test]
    fn deterministic_majority_is_followed() {
        let g = generators::complete(9);
        let sampler = NeighbourSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let p = LocalMajority::keep_own();
        // 5 blue, 4 red: a red vertex sees 5 blue / 3 red neighbours.
        let opinions: Vec<Opinion> = (0..9)
            .map(|v| if v < 5 { Opinion::Blue } else { Opinion::Red })
            .collect();
        let ctx = UpdateContext {
            vertex: 8,
            current: Opinion::Red,
            previous: &opinions,
            sampler: &sampler,
        };
        assert_eq!(p.update(&ctx, &mut rng), Opinion::Blue);
        // A blue vertex sees 4 blue / 4 red: tie, keeps own (blue).
        let ctx_tie = UpdateContext {
            vertex: 0,
            current: Opinion::Blue,
            previous: &opinions,
            sampler: &sampler,
        };
        assert_eq!(p.update(&ctx_tie, &mut rng), Opinion::Blue);
    }

    #[test]
    fn random_tie_rule_flips_a_coin() {
        let g = generators::cycle(4).unwrap();
        let sampler = NeighbourSampler::new(&g).unwrap();
        let p = LocalMajority::new(TieRule::Random);
        // Vertex 0's neighbours are 1 (blue) and 3 (red): a tie.
        let opinions = vec![Opinion::Red, Opinion::Blue, Opinion::Red, Opinion::Red];
        let ctx = UpdateContext {
            vertex: 0,
            current: Opinion::Red,
            previous: &opinions,
            sampler: &sampler,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 4000;
        let blue = (0..trials)
            .filter(|_| p.update(&ctx, &mut rng).is_blue())
            .count();
        let frac = blue as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.05, "tie coin fraction {frac}");
    }

    #[test]
    fn converges_in_one_round_on_dense_unanimous_majorities() {
        // On the complete graph with a 2/3 blue majority every vertex sees a
        // blue majority, so one synchronous round reaches blue consensus.
        let g = generators::complete(30);
        let sampler = NeighbourSampler::new(&g).unwrap();
        let p = LocalMajority::keep_own();
        let opinions: Vec<Opinion> = (0..30)
            .map(|v| if v < 20 { Opinion::Blue } else { Opinion::Red })
            .collect();
        let mut rng = StdRng::seed_from_u64(2);
        for v in 0..30 {
            let ctx = UpdateContext {
                vertex: v,
                current: opinions[v],
                previous: &opinions,
                sampler: &sampler,
            };
            assert_eq!(p.update(&ctx, &mut rng), Opinion::Blue);
        }
    }
}
