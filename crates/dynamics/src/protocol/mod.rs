//! Voting protocols: the paper's Best-of-Three and the baselines it is
//! compared against in the introduction.
//!
//! | Protocol | Paper reference | Behaviour |
//! |---|---|---|
//! | [`Voter`] (Best-of-1) | §1 | copy one random neighbour |
//! | [`BestOfTwo`] | \[4], \[8] | two samples; tie → keep own / random |
//! | [`BestOfThree`] | this paper | three samples; strict majority |
//! | [`BestOfK`] | \[1], \[2] | `k` samples with either tie rule |
//! | [`LocalMajority`] | classic deterministic baseline | full-neighbourhood majority |
//!
//! All protocols implement [`Protocol`], which is object-safe so the
//! experiment registry in `bo3-core` can hold them behind `Box<dyn Protocol>`.

mod best_of_k;
mod best_of_three;
mod best_of_two;
mod local_majority;
mod voter;

pub use best_of_k::BestOfK;
pub use best_of_three::BestOfThree;
pub use best_of_two::BestOfTwo;
pub use local_majority::LocalMajority;
pub use voter::Voter;

use rand::RngCore;
use serde::{Deserialize, Serialize};

use bo3_graph::{NeighbourSampler, VertexId};

use crate::kernel::ProtocolKind;
use crate::opinion::Opinion;

/// How a protocol resolves a tied sample (only relevant for even sample sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TieRule {
    /// Keep the vertex's current opinion.
    KeepOwn,
    /// Adopt a uniformly random opinion among the tied ones.
    Random,
}

/// Everything a protocol may look at when updating one vertex.
pub struct UpdateContext<'a> {
    /// The vertex being updated.
    pub vertex: VertexId,
    /// The vertex's opinion in the previous round.
    pub current: Opinion,
    /// The full opinion vector of the previous round (`ξ_t`).
    pub previous: &'a [Opinion],
    /// Sampler over the underlying graph.
    pub sampler: &'a NeighbourSampler<'a>,
}

/// A synchronous-update voting protocol.
///
/// The engine calls [`Protocol::update`] once per vertex per round; the
/// returned opinion becomes `ξ_{t+1}(v)`.  Implementations must only read
/// `ctx.previous` (the snapshot of round `t`), which is what makes the
/// update synchronous.
pub trait Protocol: Send + Sync {
    /// Human-readable protocol name (used in reports and bench ids).
    fn name(&self) -> String;

    /// Number of neighbour samples drawn per update (0 for protocols that
    /// read the whole neighbourhood).
    fn sample_size(&self) -> usize;

    /// Computes the next opinion of `ctx.vertex`.
    fn update(&self, ctx: &UpdateContext<'_>, rng: &mut dyn RngCore) -> Opinion;

    /// The built-in kernel this protocol monomorphizes to, if any.
    ///
    /// Protocols returning `Some` are routed through the static-dispatch
    /// kernels in [`crate::kernel`] by both engines; the default `None`
    /// keeps custom registry protocols on the generic `dyn` path.  An
    /// override must match [`Protocol::update`] draw-for-draw (same stream,
    /// same result) — the kernel-equivalence suite pins this.
    fn kind(&self) -> Option<ProtocolKind> {
        None
    }
}

/// Helper shared by the sampling protocols: counts blue among `k` uniform
/// with-replacement samples of `v`'s neighbours.
pub(crate) fn count_blue_samples(
    ctx: &UpdateContext<'_>,
    k: usize,
    rng: &mut dyn RngCore,
) -> usize {
    use rand::Rng;
    // The row (and with it the degree) is hoisted out of the k-sample loop;
    // each sample is one `gen_range` draw plus one slice read.  The draw
    // sequence must stay bit-identical to the kernels in [`crate::kernel`].
    let row = ctx.sampler.graph().neighbours(ctx.vertex);
    let mut blues = 0usize;
    let r = rng;
    for _ in 0..k {
        let w = row[r.gen_range(0..row.len())];
        blues += usize::from(ctx.previous[w].is_blue());
    }
    blues
}

/// Resolves a sample of size `k` with `blues` blue votes under the given tie
/// rule. Exposed for reuse by the protocols and directly tested.
pub(crate) fn resolve_majority<R: RngCore + ?Sized>(
    blues: usize,
    k: usize,
    current: Opinion,
    tie_rule: TieRule,
    rng: &mut R,
) -> Opinion {
    use rand::Rng;
    let reds = k - blues;
    match blues.cmp(&reds) {
        std::cmp::Ordering::Greater => Opinion::Blue,
        std::cmp::Ordering::Less => Opinion::Red,
        std::cmp::Ordering::Equal => match tie_rule {
            TieRule::KeepOwn => current,
            TieRule::Random => {
                let r = rng;
                if r.gen::<bool>() {
                    Opinion::Blue
                } else {
                    Opinion::Red
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn resolve_majority_without_ties() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            resolve_majority(3, 3, Opinion::Red, TieRule::KeepOwn, &mut rng),
            Opinion::Blue
        );
        assert_eq!(
            resolve_majority(0, 3, Opinion::Blue, TieRule::KeepOwn, &mut rng),
            Opinion::Red
        );
        assert_eq!(
            resolve_majority(2, 5, Opinion::Blue, TieRule::Random, &mut rng),
            Opinion::Red
        );
    }

    #[test]
    fn resolve_majority_tie_keep_own() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            resolve_majority(1, 2, Opinion::Red, TieRule::KeepOwn, &mut rng),
            Opinion::Red
        );
        assert_eq!(
            resolve_majority(1, 2, Opinion::Blue, TieRule::KeepOwn, &mut rng),
            Opinion::Blue
        );
    }

    #[test]
    fn resolve_majority_tie_random_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut blue = 0;
        let trials = 10_000;
        for _ in 0..trials {
            if resolve_majority(2, 4, Opinion::Red, TieRule::Random, &mut rng).is_blue() {
                blue += 1;
            }
        }
        let frac = blue as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.03, "blue fraction on ties {frac}");
    }

    #[test]
    fn count_blue_samples_matches_neighbourhood_composition() {
        // Star centre: all its neighbours are leaves. Colour all leaves blue.
        let g = generators::star(10).unwrap();
        let sampler = NeighbourSampler::new(&g).unwrap();
        let opinions = vec![Opinion::Red]
            .into_iter()
            .chain(std::iter::repeat_n(Opinion::Blue, 9))
            .collect::<Vec<_>>();
        let ctx = UpdateContext {
            vertex: 0,
            current: Opinion::Red,
            previous: &opinions,
            sampler: &sampler,
        };
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(count_blue_samples(&ctx, 7, &mut rng), 7);

        // A leaf's only neighbour is the red centre.
        let ctx_leaf = UpdateContext {
            vertex: 3,
            current: Opinion::Blue,
            previous: &opinions,
            sampler: &sampler,
        };
        assert_eq!(count_blue_samples(&ctx_leaf, 5, &mut rng), 0);
    }
}
