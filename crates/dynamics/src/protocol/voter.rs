//! The voter model (Best-of-1) baseline.

use rand::RngCore;

use crate::kernel::ProtocolKind;
use crate::opinion::Opinion;
use crate::protocol::{count_blue_samples, Protocol, UpdateContext};

/// Best-of-1, i.e. the classical voter model: every vertex copies the opinion
/// of a single uniformly random neighbour.
///
/// The paper recalls that this protocol reaches consensus on connected
/// non-bipartite graphs but the winning colour is only proportional to its
/// initial degree-weighted share — it does **not** amplify the majority, and
/// its consensus time is polynomial rather than (double) logarithmic.  This
/// is the baseline experiments E3 and E5 quantify against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Voter;

impl Voter {
    /// Creates the protocol.
    pub fn new() -> Self {
        Voter
    }
}

impl Protocol for Voter {
    fn name(&self) -> String {
        "voter (best-of-1)".into()
    }

    fn sample_size(&self) -> usize {
        1
    }

    fn update(&self, ctx: &UpdateContext<'_>, rng: &mut dyn RngCore) -> Opinion {
        if count_blue_samples(ctx, 1, rng) == 1 {
            Opinion::Blue
        } else {
            Opinion::Red
        }
    }

    fn kind(&self) -> Option<ProtocolKind> {
        Some(ProtocolKind::Voter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_graph::{generators, NeighbourSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn metadata() {
        assert_eq!(Voter::new().name(), "voter (best-of-1)");
        assert_eq!(Voter::new().sample_size(), 1);
    }

    #[test]
    fn copies_a_neighbour_opinion() {
        let g = generators::cycle(6).unwrap();
        let sampler = NeighbourSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let p = Voter::new();
        // Vertex 0's neighbours are 1 and 5; make both blue.
        let mut opinions = vec![Opinion::Red; 6];
        opinions[1] = Opinion::Blue;
        opinions[5] = Opinion::Blue;
        let ctx = UpdateContext {
            vertex: 0,
            current: Opinion::Red,
            previous: &opinions,
            sampler: &sampler,
        };
        for _ in 0..10 {
            assert_eq!(p.update(&ctx, &mut rng), Opinion::Blue);
        }
    }

    #[test]
    fn adoption_probability_equals_neighbourhood_fraction() {
        // On the complete graph the probability of turning blue equals the
        // blue fraction among the other vertices — no amplification at all,
        // which is exactly what distinguishes the voter model from Best-of-3.
        let n = 1000;
        let g = generators::complete(n);
        let sampler = NeighbourSampler::new(&g).unwrap();
        let blue_count = 300;
        let opinions: Vec<Opinion> = (0..n)
            .map(|v| {
                if v < blue_count {
                    Opinion::Blue
                } else {
                    Opinion::Red
                }
            })
            .collect();
        let ctx = UpdateContext {
            vertex: n - 1,
            current: Opinion::Red,
            previous: &opinions,
            sampler: &sampler,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let p = Voter::new();
        let trials = 30_000;
        let blue = (0..trials)
            .filter(|_| p.update(&ctx, &mut rng).is_blue())
            .count();
        let observed = blue as f64 / trials as f64;
        let expected = blue_count as f64 / (n - 1) as f64;
        assert!((observed - expected).abs() < 0.01, "observed {observed}");
    }
}
