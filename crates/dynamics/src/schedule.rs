//! Update schedules.
//!
//! The paper's process is *synchronous*: in round `t + 1` every vertex reads
//! the round-`t` snapshot.  The asynchronous (random sequential) variant is
//! provided as an ablation — it breaks the voting-DAG duality but is the
//! natural model in distributed voting settings (cf. the Best-of-Two
//! distributed-voting literature).  Both schedules are served by the one
//! [`crate::engine::Engine`], on any [`bo3_graph::Topology`].
//!
//! # Seeded determinism semantics
//!
//! Given a fixed `master_seed`, both schedules are **bit-identical across
//! thread counts** — but they get there differently:
//!
//! * [`Schedule::Synchronous`] rounds are data-parallel: the vertex range
//!   splits into fixed-size chunks, chunk `c` of round `t` drawing from its
//!   own `(master_seed, t, c)` stream, so any assignment of chunks to
//!   worker threads produces the same output.
//! * [`Schedule::AsynchronousRandomOrder`] rounds are *sequential by
//!   definition* — each update may read the one before it — so round `t`
//!   draws everything (the uniform order shuffle, then every neighbour
//!   sample and tie coin, in update order) from the single
//!   `(master_seed, t, ASYNC_ROUND_CHUNK)` stream
//!   ([`crate::engine::ASYNC_ROUND_CHUNK`]) and executes on one thread
//!   regardless of the engine's thread knob.  Thread-count invariance
//!   therefore holds trivially: threads never participate, and the round's
//!   randomness is a pure function of `(master_seed, t)`.
//!
//! The schedule-matrix integration suite pins both properties across every
//! `TopologySpec` variant.

use serde::{Deserialize, Serialize};

/// When vertices read each other's opinions within a round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schedule {
    /// All vertices update simultaneously from the previous round's snapshot
    /// (the paper's model).
    #[default]
    Synchronous,
    /// Vertices update one at a time in a fresh uniformly random order each
    /// round, each reading the *current* (partially updated) state — see
    /// the module docs for the seeded determinism semantics.
    AsynchronousRandomOrder,
}

impl Schedule {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Schedule::Synchronous => "synchronous",
            Schedule::AsynchronousRandomOrder => "asynchronous",
        }
    }

    /// `true` for the paper's synchronous model.
    pub fn is_synchronous(&self) -> bool {
        matches!(self, Schedule::Synchronous)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_default() {
        assert_eq!(Schedule::Synchronous.label(), "synchronous");
        assert_eq!(Schedule::AsynchronousRandomOrder.label(), "asynchronous");
        assert_eq!(Schedule::default(), Schedule::Synchronous);
        assert!(Schedule::Synchronous.is_synchronous());
        assert!(!Schedule::AsynchronousRandomOrder.is_synchronous());
    }
}
