//! Update schedules.
//!
//! The paper's process is *synchronous*: in round `t + 1` every vertex reads
//! the round-`t` snapshot.  The asynchronous (random sequential) variant is
//! provided as an ablation — it breaks the voting-DAG duality but is the
//! natural model in some distributed systems.

use serde::{Deserialize, Serialize};

/// When vertices read each other's opinions within a round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schedule {
    /// All vertices update simultaneously from the previous round's snapshot
    /// (the paper's model).
    #[default]
    Synchronous,
    /// Vertices update one at a time in a fresh uniformly random order each
    /// round, each reading the *current* (partially updated) state.
    AsynchronousRandomOrder,
}

impl Schedule {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Schedule::Synchronous => "synchronous",
            Schedule::AsynchronousRandomOrder => "asynchronous",
        }
    }

    /// `true` for the paper's synchronous model.
    pub fn is_synchronous(&self) -> bool {
        matches!(self, Schedule::Synchronous)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_default() {
        assert_eq!(Schedule::Synchronous.label(), "synchronous");
        assert_eq!(Schedule::AsynchronousRandomOrder.label(), "asynchronous");
        assert_eq!(Schedule::default(), Schedule::Synchronous);
        assert!(Schedule::Synchronous.is_synchronous());
        assert!(!Schedule::AsynchronousRandomOrder.is_synchronous());
    }
}
