//! Summary statistics for Monte-Carlo experiments.

use serde::{Deserialize, Serialize};

/// Summary of a sample of real values (consensus times, final fractions, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased, `0.0` for fewer than 2 samples).
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median (linear interpolation).
    pub median: f64,
    /// 10th percentile.
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
}

impl Summary {
    /// Summarises `values`; returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Some(Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: quantile_sorted(&sorted, 0.5),
            p10: quantile_sorted(&sorted, 0.1),
            p90: quantile_sorted(&sorted, 0.9),
        })
    }

    /// Half-width of the normal-approximation 95% confidence interval on the
    /// mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }
}

/// Quantile of an already sorted slice with linear interpolation.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// An estimated probability with a Wilson-score 95% confidence interval —
/// used for "probability the initial majority wins" (experiment E5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProportionEstimate {
    /// Number of successes.
    pub successes: usize,
    /// Number of trials.
    pub trials: usize,
    /// Point estimate `successes / trials`.
    pub estimate: f64,
    /// Lower end of the Wilson 95% interval.
    pub ci_low: f64,
    /// Upper end of the Wilson 95% interval.
    pub ci_high: f64,
}

impl ProportionEstimate {
    /// Builds the estimate; returns `None` when `trials == 0`.
    pub fn new(successes: usize, trials: usize) -> Option<Self> {
        if trials == 0 || successes > trials {
            return None;
        }
        let n = trials as f64;
        let p = successes as f64 / n;
        let z = 1.959_963_984_540_054f64; // 97.5th normal percentile
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
        Some(ProportionEstimate {
            successes,
            trials,
            estimate: p,
            ci_low: (centre - half).max(0.0),
            ci_high: (centre + half).min(1.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_of_single_value() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.5);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn summary_statistics_are_correct() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert!((quantile_sorted(&sorted, 0.5) - 5.0).abs() < 1e-12);
        assert!((quantile_sorted(&sorted, 0.25) - 2.5).abs() < 1e-12);
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 10.0);
        assert_eq!(quantile_sorted(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_sample_panics() {
        quantile_sorted(&[], 0.5);
    }

    #[test]
    fn p10_p90_order() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = Summary::of(&values).unwrap();
        assert!(s.p10 < s.median && s.median < s.p90);
        assert!((s.p10 - 9.9).abs() < 1e-9);
        assert!((s.p90 - 89.1).abs() < 1e-9);
    }

    #[test]
    fn proportion_estimate_edge_cases() {
        assert!(ProportionEstimate::new(1, 0).is_none());
        assert!(ProportionEstimate::new(5, 3).is_none());
        let all = ProportionEstimate::new(10, 10).unwrap();
        assert_eq!(all.estimate, 1.0);
        // The Wilson upper bound at p̂ = 1 is exactly 1 analytically; allow
        // for floating-point rounding.
        assert!(all.ci_low < 1.0 && all.ci_high > 1.0 - 1e-9);
        let none = ProportionEstimate::new(0, 10).unwrap();
        assert_eq!(none.estimate, 0.0);
        assert!(none.ci_high > 0.0 && none.ci_low < 1e-9);
    }

    #[test]
    fn proportion_interval_narrows_with_more_trials() {
        let small = ProportionEstimate::new(6, 10).unwrap();
        let large = ProportionEstimate::new(600, 1000).unwrap();
        let w_small = small.ci_high - small.ci_low;
        let w_large = large.ci_high - large.ci_low;
        assert!(w_large < w_small);
        assert!((large.estimate - 0.6).abs() < 1e-12);
        assert!(large.ci_low < 0.6 && 0.6 < large.ci_high);
    }
}
