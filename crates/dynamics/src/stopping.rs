//! Stopping conditions for a dynamics run.

use serde::{Deserialize, Serialize};

use crate::opinion::{Configuration, Opinion};

/// When to stop a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoppingCondition {
    /// Hard cap on the number of rounds.
    pub max_rounds: usize,
    /// Stop as soon as every vertex holds the same opinion.
    pub stop_on_consensus: bool,
    /// Optionally stop as soon as the blue fraction drops to or below this
    /// threshold (useful for "time to near-extinction" measurements where
    /// full consensus would add a long deterministic tail).
    pub blue_fraction_floor: Option<f64>,
}

impl StoppingCondition {
    /// Stop at consensus, with the given round cap.
    pub fn consensus_within(max_rounds: usize) -> Self {
        StoppingCondition {
            max_rounds,
            stop_on_consensus: true,
            blue_fraction_floor: None,
        }
    }

    /// Run exactly `rounds` rounds regardless of the configuration.
    pub fn fixed_rounds(rounds: usize) -> Self {
        StoppingCondition {
            max_rounds: rounds,
            stop_on_consensus: false,
            blue_fraction_floor: None,
        }
    }

    /// Stop when the blue fraction reaches `floor` (or consensus, or the cap).
    pub fn blue_extinction(max_rounds: usize, floor: f64) -> Self {
        StoppingCondition {
            max_rounds,
            stop_on_consensus: true,
            blue_fraction_floor: Some(floor),
        }
    }

    /// Whether the run should stop *now*, given the current configuration.
    pub fn should_stop(&self, config: &Configuration, rounds_done: usize) -> Option<StopReason> {
        if self.stop_on_consensus {
            if let Some(winner) = config.consensus() {
                return Some(StopReason::Consensus(winner));
            }
        }
        if let Some(floor) = self.blue_fraction_floor {
            if config.blue_fraction() <= floor {
                return Some(StopReason::BlueFractionFloor);
            }
        }
        if rounds_done >= self.max_rounds {
            return Some(StopReason::RoundLimit);
        }
        None
    }
}

impl Default for StoppingCondition {
    fn default() -> Self {
        StoppingCondition::consensus_within(10_000)
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// Every vertex holds the same opinion.
    Consensus(Opinion),
    /// The blue fraction reached the configured floor.
    BlueFractionFloor,
    /// The round cap was hit without meeting any other condition.
    RoundLimit,
}

impl StopReason {
    /// The consensus winner, when the run ended in consensus.
    pub fn winner(&self) -> Option<Opinion> {
        match self {
            StopReason::Consensus(w) => Some(*w),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consensus_stops_immediately() {
        let cond = StoppingCondition::consensus_within(100);
        let cfg = Configuration::all_red(5);
        assert_eq!(
            cond.should_stop(&cfg, 0),
            Some(StopReason::Consensus(Opinion::Red))
        );
        assert_eq!(
            cond.should_stop(&cfg, 0).unwrap().winner(),
            Some(Opinion::Red)
        );
    }

    #[test]
    fn fixed_rounds_ignores_consensus() {
        let cond = StoppingCondition::fixed_rounds(10);
        let cfg = Configuration::all_blue(5);
        assert_eq!(cond.should_stop(&cfg, 3), None);
        assert_eq!(cond.should_stop(&cfg, 10), Some(StopReason::RoundLimit));
    }

    #[test]
    fn round_limit_applies_without_consensus() {
        let cond = StoppingCondition::consensus_within(5);
        let mut cfg = Configuration::all_red(4);
        cfg.set(0, Opinion::Blue);
        assert_eq!(cond.should_stop(&cfg, 4), None);
        assert_eq!(cond.should_stop(&cfg, 5), Some(StopReason::RoundLimit));
    }

    #[test]
    fn blue_floor_triggers() {
        let cond = StoppingCondition::blue_extinction(100, 0.3);
        let mut cfg = Configuration::all_red(10);
        for v in 0..5 {
            cfg.set(v, Opinion::Blue);
        }
        assert_eq!(cond.should_stop(&cfg, 1), None);
        cfg.set(0, Opinion::Red);
        cfg.set(1, Opinion::Red);
        // 3/10 <= 0.3
        assert_eq!(
            cond.should_stop(&cfg, 1),
            Some(StopReason::BlueFractionFloor)
        );
    }

    #[test]
    fn default_is_consensus_with_generous_cap() {
        let d = StoppingCondition::default();
        assert!(d.stop_on_consensus);
        assert_eq!(d.max_rounds, 10_000);
        assert_eq!(d.blue_fraction_floor, None);
    }

    #[test]
    fn winner_of_non_consensus_reasons_is_none() {
        assert_eq!(StopReason::RoundLimit.winner(), None);
        assert_eq!(StopReason::BlueFractionFloor.winner(), None);
    }
}
