//! `TopologySimulator` — the historical name of the topology-generic
//! seeded engine, now a thin façade over the unified
//! [`crate::engine::Engine`].
//!
//! PR-era history: this module introduced seeded synchronous dynamics over
//! any [`bo3_graph::Topology`]; the unified engine has since absorbed that
//! stepping (plus the asynchronous schedule and the caller-RNG entry
//! points), and this type survives as construction sugar so existing call
//! sites — including the kernel-equivalence suite, which pins
//! `TopologySimulator` over `CsrTopology` bit-identical to the seeded CSR
//! path — keep compiling.  New code should use [`Engine`] directly.
//!
//! # Determinism
//!
//! Unchanged from the original contract, now provided by [`Engine`]:
//! rounds derive one RNG per `(master_seed, round, chunk)` work unit via
//! [`crate::kernel::kernel_chunk_rng`], so a run is **bit-for-bit identical
//! at any thread count**, and a run on [`bo3_graph::CsrTopology`] is
//! bit-identical to `Simulator::run_seeded` / `ParallelSimulator::run` on
//! the underlying graph.

use bo3_graph::Topology;

use crate::engine::{Engine, RunResult};
use crate::error::Result;
use crate::kernel::ProtocolKind;
use crate::opinion::{Configuration, Opinion};
use crate::stopping::StoppingCondition;

/// Seeded synchronous simulator over any [`Topology`] — a façade over
/// [`Engine`] (see the module docs).
pub struct TopologySimulator<T: Topology> {
    engine: Engine<T>,
}

impl<T: Topology> TopologySimulator<T> {
    /// Creates a simulator over `topo` (owned or borrowed — `&T` is itself a
    /// topology) with the default stop-at-consensus behaviour, running
    /// single-threaded until [`TopologySimulator::with_threads`] says
    /// otherwise.  Fails on the empty topology — see [`Engine::new`].
    pub fn new(topo: T) -> Result<Self> {
        Ok(TopologySimulator {
            engine: Engine::new(topo)?,
        })
    }

    /// Sets the stopping condition.
    pub fn with_stopping(mut self, stopping: StoppingCondition) -> Self {
        self.engine = self.engine.with_stopping(stopping);
        self
    }

    /// Sets the worker thread count (`0` means "number of available CPUs").
    /// The result does not depend on this — only the wall clock does.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.engine = self.engine.with_threads(threads);
        self
    }

    /// Enables or disables per-round trace recording.
    pub fn with_trace(mut self, record: bool) -> Self {
        self.engine = self.engine.with_trace(record);
        self
    }

    /// The underlying topology.
    pub fn topology(&self) -> &T {
        self.engine.topology()
    }

    /// Number of worker threads in use.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// One deterministic synchronous round — see [`Engine::step_seeded_kind`].
    pub fn step(
        &self,
        kind: ProtocolKind,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        master_seed: u64,
        round: u64,
    ) {
        self.engine
            .step_seeded_kind(kind, current, next, master_seed, round);
    }

    /// Runs the synchronous dynamics from `initial` until the stopping
    /// condition fires, with all randomness derived from `master_seed` —
    /// see [`Engine::run_seeded_kind`].
    pub fn run(
        &self,
        kind: ProtocolKind,
        initial: Configuration,
        master_seed: u64,
    ) -> Result<RunResult> {
        self.engine.run_seeded_kind(kind, initial, master_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DynamicsError;
    use crate::init::InitialCondition;
    use bo3_graph::{Complete, CompleteBipartite, ImplicitGnp, ImplicitSbm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn biased_init(n: usize, delta: f64, seed: u64) -> Configuration {
        let mut rng = StdRng::seed_from_u64(seed);
        InitialCondition::BernoulliWithBias { delta }
            .sample_n(n, &mut rng)
            .unwrap()
    }

    #[test]
    fn rejects_mismatched_initial_configuration() {
        let sim = TopologySimulator::new(Complete::new(10).unwrap()).unwrap();
        assert!(matches!(
            sim.run(ProtocolKind::BestOfThree, Configuration::all_red(4), 0),
            Err(DynamicsError::OpinionLengthMismatch {
                got: 4,
                expected: 10
            })
        ));
    }

    #[test]
    fn best_of_three_reaches_red_consensus_on_implicit_complete() {
        let n = 3_000;
        let sim = TopologySimulator::new(Complete::new(n).unwrap())
            .unwrap()
            .with_trace(true);
        let res = sim
            .run(ProtocolKind::BestOfThree, biased_init(n, 0.12, 1), 7)
            .unwrap();
        assert!(res.red_won(), "stop reason {:?}", res.stop_reason);
        assert!(res.rounds <= 30, "took {} rounds", res.rounds);
        assert_eq!(res.trace.unwrap().len(), res.rounds + 1);
    }

    #[test]
    fn implicit_gnp_converges_and_is_reproducible() {
        let n = 2_000;
        let topo = ImplicitGnp::new(n, 0.3, 11).unwrap();
        let sim = TopologySimulator::new(topo).unwrap().with_trace(true);
        let init = biased_init(n, 0.12, 2);
        let a = sim.run(ProtocolKind::BestOfThree, init.clone(), 5).unwrap();
        let b = sim.run(ProtocolKind::BestOfThree, init, 5).unwrap();
        assert_eq!(a, b);
        assert!(a.red_won());
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let n = 9_000; // spans multiple 4096-vertex chunks
        let topo = ImplicitSbm::new(n, 3, 0.4, 0.2, 21).unwrap();
        let init = biased_init(n, 0.08, 3);
        let run_with = |threads: usize| {
            TopologySimulator::new(topo)
                .unwrap()
                .with_threads(threads)
                .with_trace(true)
                .run(ProtocolKind::BestOfThree, init.clone(), 99)
                .unwrap()
        };
        let one = run_with(1);
        assert_eq!(one, run_with(2));
        assert_eq!(one, run_with(8));
        assert!(one.reached_consensus());
    }

    #[test]
    fn every_builtin_kind_runs_on_an_implicit_topology() {
        use crate::protocol::TieRule;
        let n = 600;
        let topo = CompleteBipartite::new(300, 300).unwrap();
        let init = biased_init(n, 0.1, 4);
        for kind in [
            ProtocolKind::Voter,
            ProtocolKind::BestOfTwo(TieRule::KeepOwn),
            ProtocolKind::BestOfTwo(TieRule::Random),
            ProtocolKind::BestOfThree,
            ProtocolKind::BestOfK {
                k: 5,
                tie_rule: TieRule::KeepOwn,
            },
            ProtocolKind::BestOfK {
                k: 4,
                tie_rule: TieRule::Random,
            },
            ProtocolKind::LocalMajority(TieRule::KeepOwn),
        ] {
            let sim = TopologySimulator::new(topo)
                .unwrap()
                .with_stopping(StoppingCondition::fixed_rounds(3));
            let res = sim.run(kind, init.clone(), 13).unwrap();
            assert_eq!(res.rounds, 3, "{kind:?}");
        }
    }

    #[test]
    fn huge_hash_defined_local_majority_is_refused() {
        // Enumerating an ImplicitGnp row is Θ(n) per vertex, so local
        // majority at scale would be an unbounded Θ(n²)-per-round grind;
        // the engine must refuse it with a typed error (cheap topologies
        // and sampling protocols at the same size stay allowed).
        let n = bo3_graph::DENSE_ANALYSIS_VERTEX_LIMIT + 1;
        let gnp = ImplicitGnp::new(n, 0.5, 1).unwrap();
        let sim = TopologySimulator::new(gnp)
            .unwrap()
            .with_stopping(StoppingCondition::fixed_rounds(1));
        let init = Configuration::all_red(n);
        assert!(matches!(
            sim.run(
                ProtocolKind::LocalMajority(crate::protocol::TieRule::KeepOwn),
                init.clone(),
                0
            ),
            Err(DynamicsError::InvalidParameter { .. })
        ));
        // The complete topology at the same size is fine (popcount path).
        let complete_sim = TopologySimulator::new(Complete::new(n).unwrap())
            .unwrap()
            .with_stopping(StoppingCondition::fixed_rounds(1));
        assert!(complete_sim
            .run(
                ProtocolKind::LocalMajority(crate::protocol::TieRule::KeepOwn),
                init,
                0
            )
            .is_ok());
    }

    #[test]
    fn borrowed_topology_runs_too() {
        let topo = Complete::new(500).unwrap();
        let sim = TopologySimulator::new(&topo).unwrap();
        let res = sim
            .run(ProtocolKind::BestOfThree, biased_init(500, 0.15, 5), 3)
            .unwrap();
        assert!(res.reached_consensus());
        assert_eq!(sim.topology().n(), 500);
    }

    #[test]
    fn single_step_matches_configuration_size() {
        let sim = TopologySimulator::new(Complete::new(100).unwrap()).unwrap();
        let init = biased_init(100, 0.1, 6);
        let mut next = Vec::new();
        sim.step(ProtocolKind::BestOfThree, &init, &mut next, 5, 0);
        assert_eq!(next.len(), 100);
    }
}
