//! The topology-generic simulation engine.
//!
//! [`TopologySimulator`] runs the built-in protocols on anything
//! implementing [`bo3_graph::Topology`] — materialised CSR graphs through
//! the [`bo3_graph::CsrTopology`] adapter, or the *implicit* topologies
//! (`Complete`, `ImplicitGnp`, `ImplicitSbm`, …) that never allocate
//! adjacency, which is what lets a single machine run Best-of-Three to
//! consensus on `n = 10⁶` and beyond: the whole working set is the two
//! opinion buffers plus one bit-packed snapshot, all `O(n)`.
//!
//! Compared to [`crate::engine::Simulator`] this engine is narrower on
//! purpose: it takes a [`ProtocolKind`] (custom `dyn Protocol` registry
//! entries read neighbour rows through `UpdateContext`, which only a
//! materialised graph can provide) and it is always seeded and synchronous.
//! In exchange it is fully generic: the monomorphized kernels of
//! [`crate::kernel`] inline the topology's neighbour sampling into the
//! per-vertex loop, so an implicit complete graph pays two arithmetic ops
//! per sample where a CSR graph pays a DRAM gather.
//!
//! # Determinism
//!
//! Rounds derive one RNG per `(master_seed, round, chunk)` work unit via
//! [`crate::kernel::kernel_chunk_rng`] and schedule chunks with the same
//! round-robin used by [`crate::parallel::ParallelSimulator`], so a run is
//! **bit-for-bit identical at any thread count**, and a run on
//! [`bo3_graph::CsrTopology`] is bit-identical to
//! `Simulator::run_seeded` / `ParallelSimulator::run` on the underlying
//! graph (the kernel-equivalence suite pins both properties).

use bo3_graph::Topology;

use crate::engine::{drive, RunResult};
use crate::error::{DynamicsError, Result};
use crate::kernel::{self, PackedSnapshot, ProtocolKind};
use crate::opinion::{Configuration, Opinion};
use crate::stopping::StoppingCondition;

/// Seeded synchronous simulator over any [`Topology`], sequential or
/// multi-threaded.
pub struct TopologySimulator<T: Topology> {
    topo: T,
    stopping: StoppingCondition,
    threads: usize,
    record_trace: bool,
}

impl<T: Topology> TopologySimulator<T> {
    /// Creates a simulator over `topo` (owned or borrowed — `&T` is itself a
    /// topology) with the default stop-at-consensus behaviour, running
    /// single-threaded until [`TopologySimulator::with_threads`] says
    /// otherwise.
    ///
    /// Fails on the empty topology.  Topology constructors guarantee no
    /// isolated vertices for the closed-form families; hash-defined
    /// topologies (`ImplicitGnp`, `ImplicitSbm`) cannot be checked without
    /// `Θ(n²)` work and instead panic from sampling if run outside their
    /// dense regime.
    pub fn new(topo: T) -> Result<Self> {
        if topo.n() == 0 {
            return Err(DynamicsError::InvalidGraph {
                reason: "cannot run dynamics on the empty topology".into(),
            });
        }
        Ok(TopologySimulator {
            topo,
            stopping: StoppingCondition::default(),
            threads: 1,
            record_trace: false,
        })
    }

    /// Sets the stopping condition.
    pub fn with_stopping(mut self, stopping: StoppingCondition) -> Self {
        self.stopping = stopping;
        self
    }

    /// Sets the worker thread count (`0` means "number of available CPUs").
    /// The result does not depend on this — only the wall clock does.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        };
        self
    }

    /// Enables or disables per-round trace recording.
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// The underlying topology.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// Number of worker threads in use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// One deterministic synchronous round: reads `current`, writes the next
    /// opinions into `next` (cleared and refilled).  `master_seed` and
    /// `round` feed the per-chunk RNG derivation.
    pub fn step(
        &self,
        kind: ProtocolKind,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        master_seed: u64,
        round: u64,
    ) {
        let mut snap = PackedSnapshot::all_red(0);
        self.step_into(kind, current, next, master_seed, round, &mut snap);
    }

    /// [`TopologySimulator::step`] with a caller-owned snapshot buffer, so
    /// repeated rounds repack in place instead of allocating.
    fn step_into(
        &self,
        kind: ProtocolKind,
        current: &Configuration,
        next: &mut Vec<Opinion>,
        master_seed: u64,
        round: u64,
        snap: &mut PackedSnapshot,
    ) {
        let prev = current.as_slice();
        next.clear();
        next.resize(prev.len(), Opinion::Red);
        snap.repack_from(prev);
        let snap_ref = &*snap;
        let topo = &self.topo;
        crate::parallel::run_chunks(self.threads, next, &|chunk, start, out| {
            let mut rng = kernel::kernel_chunk_rng(master_seed, round, chunk);
            kernel::dispatch_chunk_topology(kind, topo, snap_ref, start, out, &mut rng);
        });
    }

    /// Runs the synchronous dynamics from `initial` until the stopping
    /// condition fires, with all randomness derived from `master_seed`.
    ///
    /// Refuses full-neighbourhood protocols on huge hash-defined topologies
    /// (no [`Topology::cheap_rows`]): enumerating their rows tests all
    /// `n − 1` candidate pairs per vertex, `Θ(n²)` per round, so — matching
    /// the `GraphError::TooLarge` policy of the graph-side diagnostics —
    /// that combination is a typed error past
    /// [`bo3_graph::DENSE_ANALYSIS_VERTEX_LIMIT`] instead of an open-ended
    /// grind.
    pub fn run(
        &self,
        kind: ProtocolKind,
        initial: Configuration,
        master_seed: u64,
    ) -> Result<RunResult> {
        if initial.len() != self.topo.n() {
            return Err(DynamicsError::OpinionLengthMismatch {
                got: initial.len(),
                expected: self.topo.n(),
            });
        }
        if matches!(kind, ProtocolKind::LocalMajority(_))
            && !self.topo.is_all_but_self()
            && !self.topo.cheap_rows()
            && self.topo.n() > bo3_graph::DENSE_ANALYSIS_VERTEX_LIMIT
        {
            return Err(DynamicsError::InvalidParameter {
                reason: format!(
                    "local majority on {} enumerates all n-1 candidate pairs per vertex \
                     (Theta(n^2) per round); refusing beyond {} vertices",
                    self.topo.label(),
                    bo3_graph::DENSE_ANALYSIS_VERTEX_LIMIT
                ),
            });
        }
        let mut scratch: Vec<Opinion> = Vec::with_capacity(initial.len());
        let mut snap = PackedSnapshot::all_red(0);
        Ok(drive(
            &self.stopping,
            self.record_trace,
            initial,
            |config, round| {
                self.step_into(
                    kind,
                    config,
                    &mut scratch,
                    master_seed,
                    round as u64,
                    &mut snap,
                );
                config.overwrite_from(&scratch);
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitialCondition;
    use bo3_graph::{Complete, CompleteBipartite, ImplicitGnp, ImplicitSbm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn biased_init(n: usize, delta: f64, seed: u64) -> Configuration {
        let mut rng = StdRng::seed_from_u64(seed);
        InitialCondition::BernoulliWithBias { delta }
            .sample_n(n, &mut rng)
            .unwrap()
    }

    #[test]
    fn rejects_mismatched_initial_configuration() {
        let sim = TopologySimulator::new(Complete::new(10).unwrap()).unwrap();
        assert!(matches!(
            sim.run(ProtocolKind::BestOfThree, Configuration::all_red(4), 0),
            Err(DynamicsError::OpinionLengthMismatch {
                got: 4,
                expected: 10
            })
        ));
    }

    #[test]
    fn best_of_three_reaches_red_consensus_on_implicit_complete() {
        let n = 3_000;
        let sim = TopologySimulator::new(Complete::new(n).unwrap())
            .unwrap()
            .with_trace(true);
        let res = sim
            .run(ProtocolKind::BestOfThree, biased_init(n, 0.12, 1), 7)
            .unwrap();
        assert!(res.red_won(), "stop reason {:?}", res.stop_reason);
        assert!(res.rounds <= 30, "took {} rounds", res.rounds);
        assert_eq!(res.trace.unwrap().len(), res.rounds + 1);
    }

    #[test]
    fn implicit_gnp_converges_and_is_reproducible() {
        let n = 2_000;
        let topo = ImplicitGnp::new(n, 0.3, 11).unwrap();
        let sim = TopologySimulator::new(topo).unwrap().with_trace(true);
        let init = biased_init(n, 0.12, 2);
        let a = sim.run(ProtocolKind::BestOfThree, init.clone(), 5).unwrap();
        let b = sim.run(ProtocolKind::BestOfThree, init, 5).unwrap();
        assert_eq!(a, b);
        assert!(a.red_won());
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let n = 9_000; // spans multiple 4096-vertex chunks
        let topo = ImplicitSbm::new(n, 3, 0.4, 0.2, 21).unwrap();
        let init = biased_init(n, 0.08, 3);
        let run_with = |threads: usize| {
            TopologySimulator::new(topo)
                .unwrap()
                .with_threads(threads)
                .with_trace(true)
                .run(ProtocolKind::BestOfThree, init.clone(), 99)
                .unwrap()
        };
        let one = run_with(1);
        assert_eq!(one, run_with(2));
        assert_eq!(one, run_with(8));
        assert!(one.reached_consensus());
    }

    #[test]
    fn every_builtin_kind_runs_on_an_implicit_topology() {
        use crate::protocol::TieRule;
        let n = 600;
        let topo = CompleteBipartite::new(300, 300).unwrap();
        let init = biased_init(n, 0.1, 4);
        for kind in [
            ProtocolKind::Voter,
            ProtocolKind::BestOfTwo(TieRule::KeepOwn),
            ProtocolKind::BestOfTwo(TieRule::Random),
            ProtocolKind::BestOfThree,
            ProtocolKind::BestOfK {
                k: 5,
                tie_rule: TieRule::KeepOwn,
            },
            ProtocolKind::BestOfK {
                k: 4,
                tie_rule: TieRule::Random,
            },
            ProtocolKind::LocalMajority(TieRule::KeepOwn),
        ] {
            let sim = TopologySimulator::new(topo)
                .unwrap()
                .with_stopping(StoppingCondition::fixed_rounds(3));
            let res = sim.run(kind, init.clone(), 13).unwrap();
            assert_eq!(res.rounds, 3, "{kind:?}");
        }
    }

    #[test]
    fn huge_hash_defined_local_majority_is_refused() {
        // Enumerating an ImplicitGnp row is Θ(n) per vertex, so local
        // majority at scale would be an unbounded Θ(n²)-per-round grind;
        // the engine must refuse it with a typed error (cheap topologies
        // and sampling protocols at the same size stay allowed).
        let n = bo3_graph::DENSE_ANALYSIS_VERTEX_LIMIT + 1;
        let gnp = ImplicitGnp::new(n, 0.5, 1).unwrap();
        let sim = TopologySimulator::new(gnp)
            .unwrap()
            .with_stopping(StoppingCondition::fixed_rounds(1));
        let init = Configuration::all_red(n);
        assert!(matches!(
            sim.run(
                ProtocolKind::LocalMajority(crate::protocol::TieRule::KeepOwn),
                init.clone(),
                0
            ),
            Err(DynamicsError::InvalidParameter { .. })
        ));
        // The complete topology at the same size is fine (popcount path).
        let complete_sim = TopologySimulator::new(Complete::new(n).unwrap())
            .unwrap()
            .with_stopping(StoppingCondition::fixed_rounds(1));
        assert!(complete_sim
            .run(
                ProtocolKind::LocalMajority(crate::protocol::TieRule::KeepOwn),
                init,
                0
            )
            .is_ok());
    }

    #[test]
    fn borrowed_topology_runs_too() {
        let topo = Complete::new(500).unwrap();
        let sim = TopologySimulator::new(&topo).unwrap();
        let res = sim
            .run(ProtocolKind::BestOfThree, biased_init(500, 0.15, 5), 3)
            .unwrap();
        assert!(res.reached_consensus());
        assert_eq!(sim.topology().n(), 500);
    }

    #[test]
    fn single_step_matches_configuration_size() {
        let sim = TopologySimulator::new(Complete::new(100).unwrap()).unwrap();
        let init = biased_init(100, 0.1, 6);
        let mut next = Vec::new();
        sim.step(ProtocolKind::BestOfThree, &init, &mut next, 5, 0);
        assert_eq!(next.len(), 100);
    }
}
