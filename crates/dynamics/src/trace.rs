//! Per-round trajectory recording.
//!
//! Experiments E6 and E11 compare the measured blue-fraction trajectory with
//! the paper's recursions, so the trace stores exactly the quantities that
//! appear there: the blue count, the blue fraction `b_t`, and the red bias
//! `δ_t = 1/2 − b_t`.

use serde::{Deserialize, Serialize};

use crate::opinion::Configuration;

/// The state summary of a single round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (`0` is the initial configuration).
    pub round: usize,
    /// Number of blue vertices.
    pub blue_count: usize,
    /// Number of red vertices.
    pub red_count: usize,
    /// Blue fraction `b_t`.
    pub blue_fraction: f64,
    /// Red bias `δ_t = 1/2 − b_t` (negative when blue is the majority).
    pub red_bias: f64,
}

impl RoundRecord {
    /// Summarises a configuration at the given round index.
    pub fn of(round: usize, config: &Configuration) -> Self {
        RoundRecord {
            round,
            blue_count: config.blue_count(),
            red_count: config.red_count(),
            blue_fraction: config.blue_fraction(),
            red_bias: config.red_bias(),
        }
    }
}

/// A full per-round trajectory.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<RoundRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace {
            records: Vec::new(),
        }
    }

    /// Rebuilds a trace from already-summarised rounds — the checkpoint
    /// deserialisation path (`bo3_core::campaign` stores traces as record
    /// arrays).
    pub fn from_records(records: Vec<RoundRecord>) -> Self {
        Trace { records }
    }

    /// Records the state of `config` as round `round`.
    pub fn record(&mut self, round: usize, config: &Configuration) {
        self.records.push(RoundRecord::of(round, config));
    }

    /// All records in round order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Number of recorded rounds (including round 0).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The blue-fraction trajectory `b_0, b_1, …`.
    pub fn blue_fractions(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.blue_fraction).collect()
    }

    /// The red-bias trajectory `δ_0, δ_1, …`.
    pub fn red_biases(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.red_bias).collect()
    }

    /// The last record, if any.
    pub fn last(&self) -> Option<&RoundRecord> {
        self.records.last()
    }

    /// The first round at which the blue fraction is ≤ `threshold`, if any.
    pub fn first_round_below(&self, threshold: f64) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.blue_fraction <= threshold)
            .map(|r| r.round)
    }

    /// Maximum absolute one-round change of the blue fraction — a cheap
    /// diagnostic for "is anything still happening".
    pub fn max_step_change(&self) -> f64 {
        self.records
            .windows(2)
            .map(|w| (w[1].blue_fraction - w[0].blue_fraction).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opinion::Opinion;

    fn config_with_blue(n: usize, blue: usize) -> Configuration {
        let mut c = Configuration::all_red(n);
        for v in 0..blue {
            c.set(v, Opinion::Blue);
        }
        c
    }

    #[test]
    fn round_record_summary() {
        let c = config_with_blue(10, 4);
        let r = RoundRecord::of(3, &c);
        assert_eq!(r.round, 3);
        assert_eq!(r.blue_count, 4);
        assert_eq!(r.red_count, 6);
        assert!((r.blue_fraction - 0.4).abs() < 1e-12);
        assert!((r.red_bias - 0.1).abs() < 1e-12);
    }

    #[test]
    fn trace_accumulates_in_order() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        for (round, blue) in [(0usize, 5usize), (1, 3), (2, 1), (3, 0)] {
            t.record(round, &config_with_blue(10, blue));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.blue_fractions(), vec![0.5, 0.3, 0.1, 0.0]);
        assert_eq!(t.last().unwrap().blue_count, 0);
        assert_eq!(t.records()[1].round, 1);
    }

    #[test]
    fn first_round_below_finds_the_threshold_crossing() {
        let mut t = Trace::new();
        for (round, blue) in [(0usize, 5usize), (1, 4), (2, 2), (3, 0)] {
            t.record(round, &config_with_blue(10, blue));
        }
        assert_eq!(t.first_round_below(0.25), Some(2));
        assert_eq!(t.first_round_below(0.0), Some(3));
        assert_eq!(t.first_round_below(-0.1), None);
    }

    #[test]
    fn red_bias_trajectory_and_step_change() {
        let mut t = Trace::new();
        t.record(0, &config_with_blue(10, 6));
        t.record(1, &config_with_blue(10, 3));
        let biases = t.red_biases();
        assert!((biases[0] + 0.1).abs() < 1e-12);
        assert!((biases[1] - 0.2).abs() < 1e-12);
        assert!((t.max_step_change() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_edge_cases() {
        let t = Trace::new();
        assert_eq!(t.last(), None);
        assert_eq!(t.first_round_below(0.5), None);
        assert_eq!(t.max_step_change(), 0.0);
        assert_eq!(t.len(), 0);
    }
}
