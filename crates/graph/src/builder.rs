//! Incremental construction of [`CsrGraph`]s from edge lists.

use crate::csr::{CsrGraph, VertexId};
use crate::error::{GraphError, Result};

/// Accumulates undirected edges and produces a validated [`CsrGraph`].
///
/// Duplicate edges are merged; self-loops are rejected at insertion time.
///
/// ```
/// use bo3_graph::builder::GraphBuilder;
///
/// let g = GraphBuilder::new(4)
///     .add_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
///     .unwrap()
///     .build()
///     .unwrap();
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.degree(0), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder and pre-allocates room for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices this builder targets.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges currently queued (before deduplication).
    pub fn queued_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a single undirected edge `{u, v}`.
    pub fn add_edge(mut self, u: VertexId, v: VertexId) -> Result<Self> {
        self.push_edge(u, v)?;
        Ok(self)
    }

    /// Adds many undirected edges at once.
    pub fn add_edges<I>(mut self, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (u, v) in edges {
            self.push_edge(u, v)?;
        }
        Ok(self)
    }

    /// In-place variant of [`GraphBuilder::add_edge`] for loop-heavy callers
    /// (generators) that do not want to thread ownership through `?`.
    pub fn push_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                n: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        Ok(())
    }

    /// Finalises the builder into a [`CsrGraph`].
    ///
    /// Runs in `O(m log m + n)` time: edges are sorted, deduplicated, and
    /// scattered into CSR rows.
    pub fn build(mut self) -> Result<CsrGraph> {
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.n;
        let mut degrees = vec![0usize; n];
        for &(u, v) in &self.edges {
            degrees[u] += 1;
            degrees[v] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in 0..n {
            offsets.push(offsets[v] + degrees[v]);
        }

        let total = *offsets.last().unwrap_or(&0);
        let mut neighbours = vec![0 as VertexId; total];
        let mut cursor = offsets[..n].to_vec();
        for &(u, v) in &self.edges {
            neighbours[cursor[u]] = v;
            cursor[u] += 1;
            neighbours[cursor[v]] = u;
            cursor[v] += 1;
        }
        // Each row must end up sorted. Rows for `u` receive the larger
        // endpoints in sorted order (edges are sorted lexicographically), but
        // smaller endpoints are interleaved, so sort each row explicitly;
        // rows are short on sparse graphs and already nearly sorted.
        for v in 0..n {
            neighbours[offsets[v]..offsets[v + 1]].sort_unstable();
        }

        Ok(CsrGraph::from_csr_unchecked(n, offsets, neighbours))
    }

    /// Builds directly from a list of edges.
    pub fn from_edge_list(n: usize, edges: &[(VertexId, VertexId)]) -> Result<CsrGraph> {
        GraphBuilder::with_capacity(n, edges.len())
            .add_edges(edges.iter().copied())?
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_path() {
        let g = GraphBuilder::new(3)
            .add_edges([(0, 1), (1, 2)])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbours(1), &[0, 2]);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn duplicate_edges_are_merged() {
        let g = GraphBuilder::new(2)
            .add_edges([(0, 1), (1, 0), (0, 1)])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn rejects_self_loop() {
        let err = GraphBuilder::new(2).add_edge(1, 1).unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { vertex: 1 }));
    }

    #[test]
    fn rejects_out_of_range_vertex() {
        let err = GraphBuilder::new(2).add_edge(0, 2).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 2, n: 2 }
        ));
    }

    #[test]
    fn neighbour_rows_are_sorted() {
        let g = GraphBuilder::new(5)
            .add_edges([(4, 2), (2, 0), (2, 3), (2, 1)])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(g.neighbours(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn from_edge_list_helper() {
        let g = GraphBuilder::from_edge_list(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbours(3), &[] as &[usize]);
    }

    #[test]
    fn zero_vertex_build() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn queued_edges_counts_before_dedup() {
        let b = GraphBuilder::new(3).add_edges([(0, 1), (0, 1)]).unwrap();
        assert_eq!(b.queued_edges(), 2);
        assert_eq!(b.num_vertices(), 3);
    }

    #[test]
    fn push_edge_in_place() {
        let mut b = GraphBuilder::with_capacity(3, 3);
        b.push_edge(0, 1).unwrap();
        b.push_edge(2, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }
}
