//! Compressed sparse row (CSR) storage for undirected simple graphs.
//!
//! The voting dynamics spend essentially all of their time doing two things:
//! reading `degree(v)` and sampling uniform random neighbours of `v`.  A CSR
//! layout keeps each adjacency list contiguous in memory, so both operations
//! are a single offset lookup plus an indexed read, with no pointer chasing
//! and no per-vertex allocation.

use serde::{Deserialize, Serialize};

use crate::error::{GraphError, Result};

/// Vertex identifier. Vertices are always `0..n`.
pub type VertexId = usize;

/// An undirected simple graph in compressed sparse row form.
///
/// Invariants maintained by every constructor in this crate:
///
/// * `offsets.len() == n + 1`, `offsets[0] == 0`, `offsets[n] == neighbours.len()`;
/// * the neighbour slice of every vertex is sorted and free of duplicates;
/// * there are no self-loops;
/// * adjacency is symmetric: `u ∈ N(v)` iff `v ∈ N(u)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    n: usize,
    offsets: Vec<usize>,
    neighbours: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays, validating every invariant.
    ///
    /// Prefer [`crate::builder::GraphBuilder`] or a generator unless the CSR
    /// arrays are already at hand (e.g. deserialised from disk).
    pub fn from_csr(n: usize, offsets: Vec<usize>, neighbours: Vec<VertexId>) -> Result<Self> {
        if offsets.len() != n + 1 {
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "offsets must have length n+1 = {}, got {}",
                    n + 1,
                    offsets.len()
                ),
            });
        }
        if offsets[0] != 0 || offsets[n] != neighbours.len() {
            return Err(GraphError::InvalidParameter {
                reason: "offsets must start at 0 and end at neighbours.len()".into(),
            });
        }
        for v in 0..n {
            if offsets[v] > offsets[v + 1] {
                return Err(GraphError::InvalidParameter {
                    reason: format!("offsets must be non-decreasing (vertex {v})"),
                });
            }
            let row = &neighbours[offsets[v]..offsets[v + 1]];
            for (i, &w) in row.iter().enumerate() {
                if w >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: w, n });
                }
                if w == v {
                    return Err(GraphError::SelfLoop { vertex: v });
                }
                if i > 0 && row[i - 1] >= w {
                    return Err(GraphError::InvalidParameter {
                        reason: format!("neighbour row of vertex {v} must be strictly increasing"),
                    });
                }
            }
        }
        let g = CsrGraph {
            n,
            offsets,
            neighbours,
        };
        // Symmetry check: every edge must appear in both directions.
        for v in 0..n {
            for &w in g.neighbours(v) {
                if !g.has_edge(w, v) {
                    return Err(GraphError::InvalidParameter {
                        reason: format!(
                            "adjacency not symmetric: {v}->{w} present but {w}->{v} missing"
                        ),
                    });
                }
            }
        }
        Ok(g)
    }

    /// Builds a graph from CSR arrays **without** validation.
    ///
    /// Used by the builder and the generators, which construct the arrays so
    /// that the invariants hold by construction.
    pub(crate) fn from_csr_unchecked(
        n: usize,
        offsets: Vec<usize>,
        neighbours: Vec<VertexId>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), n + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0), neighbours.len());
        CsrGraph {
            n,
            offsets,
            neighbours,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbours.len() / 2
    }

    /// `true` when the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `true` when this is the complete graph `K_n`, in `O(1)`.
    ///
    /// A validated CSR graph is simple (sorted rows, no duplicates, no self
    /// loops), so it holds `n(n-1)/2` edges **iff** every pair is adjacent.
    /// Hot paths use this to synthesise neighbour rows arithmetically
    /// (`neighbour_at(v, i) == i + (i >= v)`) instead of reading the
    /// `Θ(n²)`-sized adjacency — see the kernel module in `bo3-dynamics`.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.n >= 2 && self.neighbours.len() == self.n * (self.n - 1)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        debug_assert!(v < self.n);
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbours(&self, v: VertexId) -> &[VertexId] {
        debug_assert!(v < self.n);
        &self.neighbours[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The `i`-th neighbour of `v` (0-based, in sorted order).
    ///
    /// This is the hot path of neighbour sampling: drawing a uniform index in
    /// `0..degree(v)` and reading this slot samples a uniform neighbour.
    #[inline]
    pub fn neighbour_at(&self, v: VertexId, i: usize) -> VertexId {
        debug_assert!(i < self.degree(v));
        self.neighbours[self.offsets[v] + i]
    }

    /// Whether the undirected edge `{u, v}` is present. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u >= self.n || v >= self.n {
            return false;
        }
        self.neighbours(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.n
    }

    /// Iterator over every undirected edge `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.neighbours(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterator over every directed arc `(u, v)`; each undirected edge appears twice.
    pub fn arcs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n).flat_map(move |u| self.neighbours(u).iter().copied().map(move |v| (u, v)))
    }

    /// Minimum degree over all vertices; `None` on the empty graph.
    pub fn min_degree(&self) -> Option<usize> {
        (0..self.n).map(|v| self.degree(v)).min()
    }

    /// Maximum degree over all vertices; `None` on the empty graph.
    pub fn max_degree(&self) -> Option<usize> {
        (0..self.n).map(|v| self.degree(v)).max()
    }

    /// Sum of degrees (twice the number of edges).
    pub fn total_degree(&self) -> usize {
        self.neighbours.len()
    }

    /// Average degree, `0.0` on the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.total_degree() as f64 / self.n as f64
        }
    }

    /// Bytes of memory held by the CSR arrays (plus the struct header).
    ///
    /// This is the materialised-adjacency footprint the implicit topologies
    /// in [`crate::topology`] exist to avoid — `Θ(n²)` on the dense graphs
    /// the paper targets — and is what the scale experiment reports
    /// alongside each topology's own `memory_bytes`.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.offsets.len() + self.neighbours.len()) * std::mem::size_of::<usize>()
    }

    /// Returns the raw CSR arrays `(offsets, neighbours)`.
    pub fn as_csr(&self) -> (&[usize], &[VertexId]) {
        (&self.offsets, &self.neighbours)
    }

    /// Consumes the graph and returns the raw CSR arrays.
    pub fn into_csr(self) -> (usize, Vec<usize>, Vec<VertexId>) {
        (self.n, self.offsets, self.neighbours)
    }

    /// The induced subgraph on `keep` (given as a sorted, deduplicated or not,
    /// set of vertex ids). Vertices are relabelled `0..keep.len()` in the
    /// order they appear after sorting/dedup. Returns the subgraph and the
    /// mapping `new_id -> old_id`.
    pub fn induced_subgraph(&self, keep: &[VertexId]) -> Result<(CsrGraph, Vec<VertexId>)> {
        let mut ids: Vec<VertexId> = keep.to_vec();
        ids.sort_unstable();
        ids.dedup();
        for &v in &ids {
            if v >= self.n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    n: self.n,
                });
            }
        }
        let mut old_to_new = vec![usize::MAX; self.n];
        for (new, &old) in ids.iter().enumerate() {
            old_to_new[old] = new;
        }
        let mut offsets = Vec::with_capacity(ids.len() + 1);
        let mut neighbours = Vec::new();
        offsets.push(0);
        for &old in &ids {
            for &w in self.neighbours(old) {
                let mapped = old_to_new[w];
                if mapped != usize::MAX {
                    neighbours.push(mapped);
                }
            }
            // Neighbour rows stay sorted because the relabelling is monotone.
            offsets.push(neighbours.len());
        }
        Ok((
            CsrGraph::from_csr_unchecked(ids.len(), offsets, neighbours),
            ids,
        ))
    }

    /// The complement graph (on the same vertex set, no self-loops).
    ///
    /// Quadratic in `n`; intended for small graphs in tests and examples.
    pub fn complement(&self) -> CsrGraph {
        let n = self.n;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbours = Vec::new();
        offsets.push(0);
        for v in 0..n {
            let adj = self.neighbours(v);
            let mut ai = 0;
            for w in 0..n {
                while ai < adj.len() && adj[ai] < w {
                    ai += 1;
                }
                let present = ai < adj.len() && adj[ai] == w;
                if w != v && !present {
                    neighbours.push(w);
                }
            }
            offsets.push(neighbours.len());
        }
        CsrGraph::from_csr_unchecked(n, offsets, neighbours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;

    fn triangle() -> CsrGraph {
        GraphBuilder::new(3)
            .add_edges([(0, 1), (1, 2), (0, 2)])
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn triangle_basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbours(1), &[0, 2]);
        assert_eq!(g.min_degree(), Some(2));
        assert_eq!(g.max_degree(), Some(2));
        assert_eq!(g.total_degree(), 6);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn is_complete_detection_and_row_synthesis() {
        assert!(triangle().is_complete());
        for n in [2usize, 5, 17] {
            let g = generators::complete(n);
            assert!(g.is_complete(), "K_{n}");
            // The arithmetic row used by the dynamics kernels must agree
            // with the stored CSR row entry for entry.
            for v in g.vertices() {
                for i in 0..g.degree(v) {
                    assert_eq!(g.neighbour_at(v, i), i + usize::from(i >= v));
                }
            }
        }
        let mut near = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)] {
            near = near.add_edge(u, v).unwrap();
        }
        let near = near.build().unwrap();
        assert!(!near.is_complete(), "K_4 minus one edge");
        assert!(!generators::cycle(5).unwrap().is_complete());
        let single = GraphBuilder::new(1).build().unwrap();
        assert!(!single.is_complete());
    }

    #[test]
    fn has_edge_and_neighbour_at() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 5));
        assert_eq!(g.neighbour_at(2, 0), 0);
        assert_eq!(g.neighbour_at(2, 1), 1);
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.arcs().count(), 6);
    }

    #[test]
    fn from_csr_validates_offsets_length() {
        let err = CsrGraph::from_csr(2, vec![0, 1], vec![1]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameter { .. }));
    }

    #[test]
    fn from_csr_rejects_self_loop() {
        let err = CsrGraph::from_csr(2, vec![0, 1, 2], vec![0, 0]).unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { vertex: 0 }));
    }

    #[test]
    fn from_csr_rejects_asymmetric_adjacency() {
        // 0 -> 1 present but 1 -> 0 missing.
        let err = CsrGraph::from_csr(3, vec![0, 1, 1, 1], vec![1]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameter { .. }));
    }

    #[test]
    fn from_csr_rejects_out_of_range_neighbour() {
        let err = CsrGraph::from_csr(2, vec![0, 1, 2], vec![5, 0]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, n: 2 }
        ));
    }

    #[test]
    fn from_csr_accepts_valid_graph() {
        let g = CsrGraph::from_csr(3, vec![0, 2, 4, 6], vec![1, 2, 0, 2, 0, 1]).unwrap();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(g.is_empty());
        assert_eq!(g.min_degree(), None);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn induced_subgraph_of_complete_graph() {
        let g = generators::complete(6);
        let (sub, map) = g.induced_subgraph(&[1, 3, 5]).unwrap();
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3); // still complete
        assert_eq!(map, vec![1, 3, 5]);
    }

    #[test]
    fn induced_subgraph_rejects_out_of_range() {
        let g = triangle();
        assert!(g.induced_subgraph(&[0, 7]).is_err());
    }

    #[test]
    fn complement_of_triangle_is_empty() {
        let g = triangle();
        let c = g.complement();
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.num_vertices(), 3);
    }

    #[test]
    fn complement_of_path_is_correct() {
        // Path 0-1-2-3: complement has edges {0,2},{0,3},{1,3}.
        let g = GraphBuilder::new(4)
            .add_edges([(0, 1), (1, 2), (2, 3)])
            .unwrap()
            .build()
            .unwrap();
        let c = g.complement();
        let mut edges: Vec<_> = c.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 2), (0, 3), (1, 3)]);
    }

    #[test]
    fn serde_round_trip_preserves_graph() {
        let g = generators::complete(5);
        // serde round trip through the generic in-memory representation used
        // by io.rs is covered there; here check Clone/Eq semantics instead.
        let h = g.clone();
        assert_eq!(g, h);
    }

    #[test]
    fn memory_bytes_scales_with_the_adjacency() {
        let small = generators::complete(10);
        let big = generators::complete(100);
        // K_n stores n(n-1) directed arcs plus n+1 offsets, one word each.
        let arcs_and_offsets = |n: usize| (n * (n - 1) + n + 1) * std::mem::size_of::<usize>();
        assert_eq!(
            small.memory_bytes() - std::mem::size_of::<CsrGraph>(),
            arcs_and_offsets(10)
        );
        assert_eq!(
            big.memory_bytes() - std::mem::size_of::<CsrGraph>(),
            arcs_and_offsets(100)
        );
        assert!(big.memory_bytes() > 90 * small.memory_bytes());
    }

    #[test]
    fn into_csr_and_back() {
        let g = triangle();
        let (n, offs, neigh) = g.clone().into_csr();
        let h = CsrGraph::from_csr(n, offs, neigh).unwrap();
        assert_eq!(g, h);
    }
}
