//! Degree statistics and degree-sequence utilities.
//!
//! The main theorem is parameterised by the *minimum degree* written as
//! `d = n^α`; [`DegreeStats::alpha`] recovers the exponent α so experiments
//! can be expressed directly in the paper's terms.  The *effective minimum
//! degree* of Abdullah & Draief (reference \[1] of the paper) is also
//! provided, since experiment E12 compares against their Best-of-k (k ≥ 5)
//! setting.

use serde::{Deserialize, Serialize};

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Summary statistics of a graph's degree sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: f64,
    /// Population variance of the degree sequence.
    pub variance: f64,
}

impl DegreeStats {
    /// Computes degree statistics; errors on the empty graph.
    pub fn of(graph: &CsrGraph) -> Result<Self> {
        let n = graph.num_vertices();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let mut degrees: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
        degrees.sort_unstable();
        let min = degrees[0];
        let max = degrees[n - 1];
        let sum: usize = degrees.iter().sum();
        let mean = sum as f64 / n as f64;
        let median = if n % 2 == 1 {
            degrees[n / 2] as f64
        } else {
            (degrees[n / 2 - 1] + degrees[n / 2]) as f64 / 2.0
        };
        let variance = degrees
            .iter()
            .map(|&d| (d as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        Ok(DegreeStats {
            n,
            m: graph.num_edges(),
            min,
            max,
            mean,
            median,
            variance,
        })
    }

    /// The exponent `α` such that the minimum degree equals `n^α`.
    ///
    /// Theorem 1 requires `α = Ω(1/ log log n)`.  Returns `None` when the
    /// graph has a single vertex (α is undefined) or the minimum degree is 0.
    pub fn alpha(&self) -> Option<f64> {
        if self.n <= 1 || self.min == 0 {
            return None;
        }
        Some((self.min as f64).ln() / (self.n as f64).ln())
    }

    /// The paper's density condition: does the minimum degree satisfy
    /// `d ≥ n^{c / log log n}` for the supplied constant `c`?
    pub fn satisfies_density_condition(&self, c: f64) -> bool {
        match self.alpha() {
            None => false,
            Some(alpha) => {
                let loglog = (self.n as f64).ln().ln();
                if loglog <= 0.0 {
                    // Tiny graphs: treat the condition as satisfied whenever
                    // the graph is complete-ish.
                    return self.min + 1 >= self.n;
                }
                alpha >= c / loglog
            }
        }
    }

    /// `true` when every vertex has the same degree.
    pub fn is_regular(&self) -> bool {
        self.min == self.max
    }
}

/// The full degree sequence of `graph`, sorted descending.
pub fn degree_sequence(graph: &CsrGraph) -> Vec<usize> {
    let mut d: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
    d.sort_unstable_by(|a, b| b.cmp(a));
    d
}

/// Degree histogram: `hist[k]` = number of vertices of degree `k`.
pub fn degree_histogram(graph: &CsrGraph) -> Vec<usize> {
    let max = graph.max_degree().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for v in graph.vertices() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

/// Effective minimum degree in the sense of Abdullah & Draief
/// (paper reference \[1]): the smallest degree value whose multiplicity is at
/// least `threshold_fraction · n`.
///
/// Returns `None` if no degree value is that common.
pub fn effective_min_degree(graph: &CsrGraph, threshold_fraction: f64) -> Option<usize> {
    let n = graph.num_vertices();
    if n == 0 {
        return None;
    }
    let threshold = (threshold_fraction * n as f64).ceil() as usize;
    let hist = degree_histogram(graph);
    hist.iter()
        .enumerate()
        .find(|&(_, &count)| count >= threshold.max(1))
        .map(|(deg, _)| deg)
}

/// Erdős–Gallai test: can `sequence` (any order) be realised as a simple
/// undirected graph?
pub fn is_graphical(sequence: &[usize]) -> bool {
    if sequence.is_empty() {
        return true;
    }
    let n = sequence.len();
    let mut d: Vec<usize> = sequence.to_vec();
    d.sort_unstable_by(|a, b| b.cmp(a));
    if d[0] >= n {
        return false;
    }
    let total: usize = d.iter().sum();
    if !total.is_multiple_of(2) {
        return false;
    }
    // Erdős–Gallai inequalities with prefix sums.
    let prefix: Vec<usize> = d
        .iter()
        .scan(0usize, |acc, &x| {
            *acc += x;
            Some(*acc)
        })
        .collect();
    for k in 1..=n {
        let lhs = prefix[k - 1];
        let mut rhs = k * (k - 1);
        for &di in &d[k..] {
            rhs += di.min(k);
        }
        if lhs > rhs {
            return false;
        }
    }
    true
}

/// Sum of the degrees of the vertex subset `set` — the quantity `d(X)` used
/// by the expander-based analyses (\[4], \[5]) that the paper compares against.
pub fn volume(graph: &CsrGraph, set: &[usize]) -> Result<usize> {
    let mut total = 0usize;
    for &v in set {
        if v >= graph.num_vertices() {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: graph.num_vertices(),
            });
        }
        total += graph.degree(v);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;

    #[test]
    fn stats_of_complete_graph() {
        let g = generators::complete(10);
        let s = DegreeStats::of(&g).unwrap();
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 45);
        assert_eq!(s.min, 9);
        assert_eq!(s.max, 9);
        assert!(s.is_regular());
        assert!((s.mean - 9.0).abs() < 1e-12);
        assert!((s.median - 9.0).abs() < 1e-12);
        assert!(s.variance.abs() < 1e-12);
    }

    #[test]
    fn stats_of_star() {
        let g = generators::star(5).unwrap();
        let s = DegreeStats::of(&g).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!(!s.is_regular());
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn stats_error_on_empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(matches!(DegreeStats::of(&g), Err(GraphError::EmptyGraph)));
    }

    #[test]
    fn alpha_of_complete_graph_is_near_one() {
        let g = generators::complete(1000);
        let s = DegreeStats::of(&g).unwrap();
        let alpha = s.alpha().unwrap();
        assert!(alpha > 0.99 && alpha <= 1.0, "alpha = {alpha}");
    }

    #[test]
    fn alpha_undefined_for_single_vertex_or_isolated() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert_eq!(DegreeStats::of(&g).unwrap().alpha(), None);
        let g2 = GraphBuilder::new(3)
            .add_edge(0, 1)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(DegreeStats::of(&g2).unwrap().alpha(), None);
    }

    #[test]
    fn density_condition_holds_for_complete_graph() {
        let g = generators::complete(500);
        let s = DegreeStats::of(&g).unwrap();
        assert!(s.satisfies_density_condition(1.0));
    }

    #[test]
    fn density_condition_fails_for_cycle() {
        // Cycle has min degree 2, far below n^{c/log log n} for large n.
        let g = generators::cycle(10_000).unwrap();
        let s = DegreeStats::of(&g).unwrap();
        assert!(!s.satisfies_density_condition(1.0));
    }

    #[test]
    fn degree_sequence_sorted_descending() {
        let g = generators::star(4).unwrap();
        assert_eq!(degree_sequence(&g), vec![3, 1, 1, 1]);
    }

    #[test]
    fn histogram_counts_match() {
        let g = generators::star(4).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 3, 0, 1]);
    }

    #[test]
    fn effective_min_degree_of_regular_graph_is_degree() {
        let g = generators::complete(20);
        assert_eq!(effective_min_degree(&g, 0.5), Some(19));
    }

    #[test]
    fn effective_min_degree_ignores_rare_low_degrees() {
        // Star: one vertex of degree n-1, n-1 vertices of degree 1.
        let g = generators::star(10).unwrap();
        // Degree 1 occurs 9 times (common), degree 9 once (rare).
        assert_eq!(effective_min_degree(&g, 0.5), Some(1));
        // With an impossible threshold the centre degree never qualifies,
        // but leaves always do at fraction <= 0.9.
        assert_eq!(effective_min_degree(&g, 0.9), Some(1));
    }

    #[test]
    fn erdos_gallai_accepts_regular_sequences() {
        assert!(is_graphical(&[3, 3, 3, 3]));
        assert!(is_graphical(&[2, 2, 2]));
        assert!(is_graphical(&[]));
        assert!(is_graphical(&[0, 0]));
    }

    #[test]
    fn erdos_gallai_rejects_impossible_sequences() {
        assert!(!is_graphical(&[4, 1, 1, 1])); // degree exceeds n-1 after pairing
        assert!(!is_graphical(&[3, 1, 1])); // degree >= n
        assert!(!is_graphical(&[1, 1, 1])); // odd sum
    }

    #[test]
    fn volume_matches_definition() {
        let g = generators::star(5).unwrap();
        assert_eq!(volume(&g, &[0]).unwrap(), 4);
        assert_eq!(volume(&g, &[1, 2, 3, 4]).unwrap(), 4);
        assert_eq!(volume(&g, &[0, 1, 2, 3, 4]).unwrap(), 8);
        assert!(volume(&g, &[9]).is_err());
    }
}
