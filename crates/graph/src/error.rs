//! Error types for graph construction and analysis.

use std::fmt;

/// Errors produced while building, generating, or reading graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint referenced a vertex id outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied where simple graphs are required.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: usize,
    },
    /// A generator was asked for an impossible parameter combination.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A degree sequence cannot be realised as a simple graph.
    Unrealizable {
        /// Human-readable description.
        reason: String,
    },
    /// Parsing an edge-list or serialised graph failed.
    Parse {
        /// Line number (1-based) where the failure occurred, when known.
        line: usize,
        /// Description of the failure.
        reason: String,
    },
    /// An I/O error occurred while reading or writing a graph.
    Io {
        /// Stringified `std::io::Error`.
        reason: String,
    },
    /// The operation requires a non-empty graph.
    EmptyGraph,
    /// A whole-graph analysis was refused because the graph exceeds the
    /// dense-analysis size limit (see
    /// [`crate::DENSE_ANALYSIS_VERTEX_LIMIT`]); these operations cost
    /// `Θ(n²)` on dense graphs and must not be attempted at scale.
    TooLarge {
        /// Number of vertices in the offending graph.
        n: usize,
        /// The configured limit.
        limit: usize,
        /// The refused operation, for the error message.
        operation: &'static str,
    },
    /// The operation requires every vertex to have at least one neighbour.
    IsolatedVertex {
        /// The isolated vertex.
        vertex: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(
                    f,
                    "self-loop at vertex {vertex} not allowed in a simple graph"
                )
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
            GraphError::Unrealizable { reason } => {
                write!(f, "degree sequence not realisable: {reason}")
            }
            GraphError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            GraphError::Io { reason } => write!(f, "io error: {reason}"),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::TooLarge {
                n,
                limit,
                operation,
            } => write!(
                f,
                "refusing {operation} on {n} vertices (dense-analysis limit is {limit})"
            ),
            GraphError::IsolatedVertex { vertex } => {
                write!(f, "vertex {vertex} has no neighbours")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io {
            reason: e.to_string(),
        }
    }
}

/// Convenient result alias used throughout `bo3-graph`.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_vertex_out_of_range() {
        let e = GraphError::VertexOutOfRange { vertex: 7, n: 5 };
        assert_eq!(
            e.to_string(),
            "vertex 7 out of range for graph with 5 vertices"
        );
    }

    #[test]
    fn display_self_loop() {
        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains("self-loop at vertex 3"));
    }

    #[test]
    fn display_invalid_parameter() {
        let e = GraphError::InvalidParameter {
            reason: "p must lie in [0,1]".into(),
        };
        assert!(e.to_string().contains("p must lie in [0,1]"));
    }

    #[test]
    fn display_parse_error_carries_line() {
        let e = GraphError::Parse {
            line: 12,
            reason: "expected two integers".into(),
        };
        assert!(e.to_string().contains("line 12"));
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GraphError = io.into();
        match e {
            GraphError::Io { reason } => assert!(reason.contains("missing")),
            other => panic!("unexpected variant: {other:?}"),
        }
    }

    #[test]
    fn display_too_large_names_the_operation_and_limit() {
        let e = GraphError::TooLarge {
            n: 1_000_000,
            limit: 100_000,
            operation: "spectral estimation",
        };
        let msg = e.to_string();
        assert!(msg.contains("spectral estimation"));
        assert!(msg.contains("1000000"));
        assert!(msg.contains("100000"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(GraphError::EmptyGraph, GraphError::EmptyGraph);
        assert_ne!(
            GraphError::EmptyGraph,
            GraphError::IsolatedVertex { vertex: 0 }
        );
    }
}
