//! Barbell graphs: two cliques joined by a path.
//!
//! The barbell has a huge minimum degree inside the cliques but a
//! bottleneck of constant width, making it the canonical example where
//! counting-based analyses ([4], [5]) fail and where initial-opinion
//! *placement* (one clique all blue) matters; the robustness tests use it to
//! show which parts of Theorem 1's hypothesis are load-bearing.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Two cliques of `clique` vertices each, joined by a path of `bridge`
/// intermediate vertices (`bridge = 0` joins the cliques by a single edge).
///
/// Vertex numbering: `0..clique` is the left clique, `clique..2*clique` the
/// right clique, and `2*clique..2*clique+bridge` the bridge path from left to
/// right. Requires `clique ≥ 3`.
pub fn barbell(clique: usize, bridge: usize) -> Result<CsrGraph> {
    if clique < 3 {
        return Err(GraphError::InvalidParameter {
            reason: format!("barbell cliques need at least 3 vertices, got {clique}"),
        });
    }
    let n = 2 * clique + bridge;
    let mut b = GraphBuilder::with_capacity(n, clique * (clique - 1) + bridge + 1);

    for u in 0..clique {
        for v in (u + 1)..clique {
            b.push_edge(u, v)?;
            b.push_edge(clique + u, clique + v)?;
        }
    }

    // Attachment points: vertex clique-1 on the left, vertex clique on the right.
    let left_port = clique - 1;
    let right_port = clique;
    if bridge == 0 {
        b.push_edge(left_port, right_port)?;
    } else {
        let first_bridge = 2 * clique;
        b.push_edge(left_port, first_bridge)?;
        for i in 0..bridge - 1 {
            b.push_edge(first_bridge + i, first_bridge + i + 1)?;
        }
        b.push_edge(first_bridge + bridge - 1, right_port)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter_exact, is_connected};

    #[test]
    fn rejects_tiny_cliques() {
        assert!(barbell(2, 0).is_err());
    }

    #[test]
    fn zero_bridge_barbell() {
        let g = barbell(4, 0).unwrap();
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 2 * 6 + 1);
        assert!(is_connected(&g));
        assert!(g.has_edge(3, 4));
    }

    #[test]
    fn bridged_barbell_counts() {
        let g = barbell(5, 3).unwrap();
        assert_eq!(g.num_vertices(), 13);
        assert_eq!(g.num_edges(), 2 * 10 + 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn clique_vertices_have_clique_degrees() {
        let g = barbell(6, 2).unwrap();
        // Non-port clique vertices have degree clique-1; ports have +1.
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.degree(5), 6); // left port
        assert_eq!(g.degree(6), 6); // right port
        assert_eq!(g.degree(12), 2); // bridge vertex
    }

    #[test]
    fn diameter_grows_with_bridge() {
        let short = barbell(4, 0).unwrap();
        let long = barbell(4, 6).unwrap();
        assert!(diameter_exact(&long).unwrap() > diameter_exact(&short).unwrap());
        assert_eq!(diameter_exact(&short).unwrap(), 3);
        assert_eq!(diameter_exact(&long).unwrap(), 9);
    }

    #[test]
    fn cliques_are_complete_internally() {
        let g = barbell(5, 1).unwrap();
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
        for u in 5..10 {
            for v in 5..10 {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
        // No direct edges between the cliques when a bridge vertex exists.
        assert!(!g.has_edge(4, 5));
    }
}
