//! Chung–Lu random graphs with given expected degrees (power-law option).
//!
//! The paper's closest prior work [1] studies random graphs with a given
//! degree sequence; the Chung–Lu model is the standard tractable stand-in
//! and lets experiment E12 build heterogeneous-degree graphs whose effective
//! minimum degree can be controlled.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Chung–Lu graph: each pair `{u, v}` is an edge independently with
/// probability `min(1, w_u w_v / Σw)`.
///
/// Runs in `O(n² )` over pairs in the worst case but uses per-row skip
/// sampling on the upper bound `w_u w_max / Σw`, so it is fast whenever the
/// weights are not all close to `Σw / w_max`.
pub fn chung_lu<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Result<CsrGraph> {
    let n = weights.len();
    if n == 0 {
        return GraphBuilder::new(0).build();
    }
    let mut total = 0.0f64;
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w < 0.0 {
            return Err(GraphError::InvalidParameter {
                reason: format!("weight {i} is negative or non-finite: {w}"),
            });
        }
        total += w;
    }
    if total <= 0.0 {
        return GraphBuilder::new(n).build();
    }

    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        if weights[u] == 0.0 {
            continue;
        }
        // Upper-bound probability for this row (pairs u < v).
        for v in (u + 1)..n {
            let p = (weights[u] * weights[v] / total).min(1.0);
            if p > 0.0 && rng.gen::<f64>() < p {
                builder.push_edge(u, v)?;
            }
        }
    }
    builder.build()
}

/// Expected-degree weights following a bounded power law with exponent
/// `gamma`: `P(W > x) ∝ x^{1-gamma}` truncated to `[min_weight, max_weight]`,
/// discretised deterministically via inverse-CDF at evenly spaced quantiles
/// so the sequence is reproducible without an RNG.
pub fn power_law_weights(
    n: usize,
    gamma: f64,
    min_weight: f64,
    max_weight: f64,
) -> Result<Vec<f64>> {
    if gamma <= 1.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("power-law exponent must exceed 1, got {gamma}"),
        });
    }
    // NaN weights fail both comparisons and are rejected here too.
    let bounds_valid = min_weight > 0.0 && max_weight >= min_weight;
    if !bounds_valid {
        return Err(GraphError::InvalidParameter {
            reason: format!("need 0 < min_weight <= max_weight, got [{min_weight}, {max_weight}]"),
        });
    }
    let a = 1.0 - gamma; // exponent of the CDF power
    let lo = min_weight.powf(a);
    let hi = max_weight.powf(a);
    let mut weights = Vec::with_capacity(n);
    for i in 0..n {
        // Mid-point quantiles avoid hitting the extremes exactly.
        let q = (i as f64 + 0.5) / n as f64;
        let w = (lo + q * (hi - lo)).powf(1.0 / a);
        weights.push(w);
    }
    Ok(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(chung_lu(&[1.0, -1.0], &mut rng).is_err());
        assert!(chung_lu(&[f64::NAN], &mut rng).is_err());
    }

    #[test]
    fn zero_weights_give_empty_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = chung_lu(&[0.0; 10], &mut rng).unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 0);
        let empty = chung_lu(&[], &mut rng).unwrap();
        assert_eq!(empty.num_vertices(), 0);
    }

    #[test]
    fn expected_degrees_are_roughly_met() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 600;
        let weights = vec![20.0; n];
        let g = chung_lu(&weights, &mut rng).unwrap();
        let avg = g.average_degree();
        // Expected degree ≈ w (1 - w/Σw) ≈ 20.
        assert!((avg - 20.0).abs() < 3.0, "average degree {avg}");
    }

    #[test]
    fn heavier_vertices_get_more_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 500;
        let mut weights = vec![5.0; n];
        weights[0] = 120.0;
        let g = chung_lu(&weights, &mut rng).unwrap();
        let avg = g.average_degree();
        assert!(
            g.degree(0) as f64 > 4.0 * avg,
            "hub degree {} vs avg {avg}",
            g.degree(0)
        );
    }

    #[test]
    fn power_law_weights_validation() {
        assert!(power_law_weights(10, 0.9, 1.0, 5.0).is_err());
        assert!(power_law_weights(10, 2.5, 0.0, 5.0).is_err());
        assert!(power_law_weights(10, 2.5, 5.0, 1.0).is_err());
    }

    #[test]
    fn power_law_weights_respect_bounds_and_order() {
        let w = power_law_weights(1000, 2.5, 3.0, 50.0).unwrap();
        assert_eq!(w.len(), 1000);
        for &x in &w {
            assert!((3.0 - 1e-9..=50.0 + 1e-9).contains(&x));
        }
        // With gamma > 1 and increasing quantile the weights are monotone.
        assert!(
            w.windows(2).all(|p| p[0] <= p[1] + 1e-12)
                || w.windows(2).all(|p| p[0] >= p[1] - 1e-12)
        );
    }

    #[test]
    fn power_law_tail_is_heavy() {
        let w = power_law_weights(10_000, 2.2, 2.0, 500.0).unwrap();
        let max = w.iter().cloned().fold(f64::MIN, f64::max);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!(max > 10.0 * mean, "max {max}, mean {mean}");
    }

    #[test]
    fn chung_lu_with_power_law_runs() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = power_law_weights(300, 2.5, 4.0, 60.0).unwrap();
        let g = chung_lu(&w, &mut rng).unwrap();
        assert!(g.num_edges() > 0);
        assert_eq!(g.num_vertices(), 300);
    }
}
