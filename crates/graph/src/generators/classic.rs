//! Small deterministic families: cycle, path, star, wheel, complete bipartite.
//!
//! These sit far outside Theorem 1's dense regime and are used as negative
//! controls (degree sweep E4) and as easy-to-reason-about fixtures in tests.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Cycle `C_n` (requires `n ≥ 3`).
pub fn cycle(n: usize) -> Result<CsrGraph> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            reason: format!("cycle requires n >= 3, got {n}"),
        });
    }
    let mut b = GraphBuilder::with_capacity(n, n);
    for v in 0..n {
        b.push_edge(v, (v + 1) % n)?;
    }
    b.build()
}

/// Path `P_n` (requires `n ≥ 2`).
pub fn path(n: usize) -> Result<CsrGraph> {
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            reason: format!("path requires n >= 2, got {n}"),
        });
    }
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for v in 0..n - 1 {
        b.push_edge(v, v + 1)?;
    }
    b.build()
}

/// Star `K_{1,n-1}` with centre `0` (requires `n ≥ 2`).
pub fn star(n: usize) -> Result<CsrGraph> {
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            reason: format!("star requires n >= 2, got {n}"),
        });
    }
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for v in 1..n {
        b.push_edge(0, v)?;
    }
    b.build()
}

/// Wheel: a cycle on vertices `1..n` plus a hub `0` adjacent to all of them
/// (requires `n ≥ 4`).
pub fn wheel(n: usize) -> Result<CsrGraph> {
    if n < 4 {
        return Err(GraphError::InvalidParameter {
            reason: format!("wheel requires n >= 4, got {n}"),
        });
    }
    let rim = n - 1;
    let mut b = GraphBuilder::with_capacity(n, 2 * rim);
    for i in 0..rim {
        let u = 1 + i;
        let v = 1 + (i + 1) % rim;
        b.push_edge(u, v)?;
        b.push_edge(0, u)?;
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}`: sides `0..a` and `a..a+b`
/// (requires `a ≥ 1` and `b ≥ 1`).
pub fn complete_bipartite(a: usize, b: usize) -> Result<CsrGraph> {
    if a == 0 || b == 0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("complete bipartite requires both sides non-empty, got ({a},{b})"),
        });
    }
    let n = a + b;
    let mut builder = GraphBuilder::with_capacity(n, a * b);
    for u in 0..a {
        for v in a..n {
            builder.push_edge(u, v)?;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_properties() {
        let g = cycle(6).unwrap();
        assert_eq!(g.num_edges(), 6);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(0, 5));
        assert!(cycle(2).is_err());
    }

    #[test]
    fn path_properties() {
        let g = path(5).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(path(1).is_err());
    }

    #[test]
    fn star_properties() {
        let g = star(7).unwrap();
        assert_eq!(g.degree(0), 6);
        for v in 1..7 {
            assert_eq!(g.degree(v), 1);
            assert!(g.has_edge(0, v));
        }
        assert!(star(1).is_err());
    }

    #[test]
    fn wheel_properties() {
        let g = wheel(6).unwrap();
        // Hub degree n-1, rim degree 3.
        assert_eq!(g.degree(0), 5);
        for v in 1..6 {
            assert_eq!(g.degree(v), 3);
        }
        assert_eq!(g.num_edges(), 10);
        assert!(wheel(3).is_err());
    }

    #[test]
    fn complete_bipartite_properties() {
        let g = complete_bipartite(3, 4).unwrap();
        assert_eq!(g.num_edges(), 12);
        for u in 0..3 {
            assert_eq!(g.degree(u), 4);
        }
        for v in 3..7 {
            assert_eq!(g.degree(v), 3);
        }
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(3, 4));
        assert!(complete_bipartite(0, 3).is_err());
        assert!(complete_bipartite(3, 0).is_err());
    }
}
