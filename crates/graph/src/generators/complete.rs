//! The complete graph `K_n`.

use crate::csr::CsrGraph;

/// Complete graph on `n` vertices.
///
/// This is the topology studied by most of the prior Best-of-k literature
/// (\[2], \[8] in the paper); the paper's contribution is precisely to move
/// beyond it, so `K_n` serves as the reference point in every comparison.
pub fn complete(n: usize) -> CsrGraph {
    let mut offsets = Vec::with_capacity(n + 1);
    let mut neighbours = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)));
    offsets.push(0);
    for v in 0..n {
        for w in 0..n {
            if w != v {
                neighbours.push(w);
            }
        }
        offsets.push(neighbours.len());
    }
    CsrGraph::from_csr_unchecked(n, offsets, neighbours)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_counts() {
        for n in [0usize, 1, 2, 5, 20] {
            let g = complete(n);
            assert_eq!(g.num_vertices(), n);
            assert_eq!(g.num_edges(), n * n.saturating_sub(1) / 2);
            for v in g.vertices() {
                assert_eq!(g.degree(v), n - 1);
            }
        }
    }

    #[test]
    fn every_pair_is_adjacent() {
        let g = complete(7);
        for u in 0..7 {
            for v in 0..7 {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
    }

    #[test]
    fn neighbour_rows_are_sorted_and_self_free() {
        let g = complete(6);
        for v in g.vertices() {
            let row = g.neighbours(v);
            assert!(row.windows(2).all(|w| w[0] < w[1]));
            assert!(!row.contains(&v));
        }
    }
}
