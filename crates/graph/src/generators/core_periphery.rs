//! Core–periphery graphs: a dense clique core with sparsely attached satellites.
//!
//! These graphs have a *heterogeneous* degree profile whose minimum degree is
//! set by the periphery attachment count, letting experiments separate "the
//! minimum degree is large" from "the graph is dense on average".

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// A clique core of `core` vertices (`0..core`) plus `periphery` satellite
/// vertices, each attached to `attach` distinct uniformly random core
/// vertices. Requires `core ≥ 2`, `attach ≥ 1`, and `attach ≤ core`.
pub fn core_periphery<R: Rng + ?Sized>(
    core: usize,
    periphery: usize,
    attach: usize,
    rng: &mut R,
) -> Result<CsrGraph> {
    if core < 2 {
        return Err(GraphError::InvalidParameter {
            reason: format!("core must have at least 2 vertices, got {core}"),
        });
    }
    if attach == 0 || attach > core {
        return Err(GraphError::InvalidParameter {
            reason: format!("attach must satisfy 1 <= attach <= core, got {attach} (core {core})"),
        });
    }
    let n = core + periphery;
    let mut b = GraphBuilder::with_capacity(n, core * (core - 1) / 2 + periphery * attach);

    for u in 0..core {
        for v in (u + 1)..core {
            b.push_edge(u, v)?;
        }
    }

    // Partial Fisher–Yates to pick `attach` distinct core anchors per satellite.
    let mut anchors: Vec<usize> = (0..core).collect();
    for s in 0..periphery {
        let satellite = core + s;
        for i in 0..attach {
            let j = rng.gen_range(i..core);
            anchors.swap(i, j);
            b.push_edge(satellite, anchors[i])?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(core_periphery(1, 5, 1, &mut rng).is_err());
        assert!(core_periphery(5, 5, 0, &mut rng).is_err());
        assert!(core_periphery(5, 5, 6, &mut rng).is_err());
    }

    #[test]
    fn counts_are_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = core_periphery(10, 20, 3, &mut rng).unwrap();
        assert_eq!(g.num_vertices(), 30);
        assert_eq!(g.num_edges(), 45 + 60);
    }

    #[test]
    fn satellites_have_exactly_attach_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = core_periphery(12, 15, 4, &mut rng).unwrap();
        for s in 12..27 {
            assert_eq!(g.degree(s), 4);
            for &w in g.neighbours(s) {
                assert!(w < 12, "satellite {s} attached to non-core vertex {w}");
            }
        }
    }

    #[test]
    fn core_is_a_clique_and_graph_is_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = core_periphery(8, 10, 2, &mut rng).unwrap();
        for u in 0..8 {
            for v in 0..8 {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn zero_periphery_is_just_a_clique() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = core_periphery(6, 0, 2, &mut rng).unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    fn minimum_degree_is_attach_when_periphery_nonempty() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = core_periphery(20, 30, 5, &mut rng).unwrap();
        assert_eq!(g.min_degree(), Some(5));
    }
}
