//! Erdős–Rényi random graphs `G(n, p)` and `G(n, m)`.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// `G(n, p)`: every pair of vertices is an edge independently with
/// probability `p`.
///
/// Uses the skip-sampling (geometric-jump) technique so the running time is
/// `O(n + m)` rather than `O(n²)`, which matters for the `n ≈ 5·10⁵` graphs
/// of experiment E1.
pub fn erdos_renyi_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<CsrGraph> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidParameter {
            reason: format!("edge probability must lie in [0,1], got {p}"),
        });
    }
    if p == 0.0 || n < 2 {
        return GraphBuilder::new(n).build();
    }
    if p == 1.0 {
        return Ok(super::complete(n));
    }

    let expected_edges = (p * n as f64 * (n as f64 - 1.0) / 2.0).ceil() as usize;
    let mut builder = GraphBuilder::with_capacity(n, expected_edges);

    // Batagelj–Brandes skip sampling: iterate over the pairs (v, w) with
    // w < v in lexicographic order, jumping ahead by geometrically
    // distributed gaps so only realised edges cost work.
    let log_q = (1.0 - p).ln();
    let mut v: usize = 1;
    let mut w: i64 = -1;
    while v < n {
        let r: f64 = (1.0 - rng.gen::<f64>()).max(f64::MIN_POSITIVE);
        w += 1 + (r.ln() / log_q).floor() as i64;
        while v < n && w >= v as i64 {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            builder.push_edge(v, w as usize)?;
        }
    }
    builder.build()
}

/// `G(n, m)`: a graph drawn uniformly among all graphs with exactly `m` edges.
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<CsrGraph> {
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > possible {
        return Err(GraphError::InvalidParameter {
            reason: format!("requested {m} edges but only {possible} pairs exist"),
        });
    }
    // Rejection sampling into a set; fine as long as m is at most ~half of
    // the possible pairs, otherwise sample the complement.
    let sample_complement = m > possible / 2;
    let target = if sample_complement { possible - m } else { m };

    let mut chosen = std::collections::HashSet::with_capacity(target * 2);
    while chosen.len() < target {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let e = if u < v { (u, v) } else { (v, u) };
        chosen.insert(e);
    }

    let mut builder = GraphBuilder::with_capacity(n, m);
    if sample_complement {
        for u in 0..n {
            for v in (u + 1)..n {
                if !chosen.contains(&(u, v)) {
                    builder.push_edge(u, v)?;
                }
            }
        }
    } else {
        for (u, v) in chosen {
            builder.push_edge(u, v)?;
        }
    }
    builder.build()
}

/// Dense `G(n, p)` tuned to the paper's regime: `p` is chosen so the expected
/// degree is `n^alpha`, i.e. `p = n^{alpha-1}` (clamped to `[0, 1]`).
///
/// For `alpha ≥ 1/2` the degree concentration is strong enough that the
/// realised minimum degree is `n^{alpha − o(1)}` w.h.p., matching Theorem 1's
/// hypothesis.
pub fn dense_gnp_for_alpha<R: Rng + ?Sized>(n: usize, alpha: f64, rng: &mut R) -> Result<CsrGraph> {
    if !(0.0..=1.0).contains(&alpha) || alpha.is_nan() {
        return Err(GraphError::InvalidParameter {
            reason: format!("alpha must lie in [0,1], got {alpha}"),
        });
    }
    if n < 2 {
        return GraphBuilder::new(n).build();
    }
    let p = (n as f64).powf(alpha - 1.0).clamp(0.0, 1.0);
    erdos_renyi_gnp(n, p, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(erdos_renyi_gnp(10, -0.1, &mut rng).is_err());
        assert!(erdos_renyi_gnp(10, 1.5, &mut rng).is_err());
        assert!(erdos_renyi_gnp(10, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = erdos_renyi_gnp(20, 0.0, &mut rng).unwrap();
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi_gnp(20, 1.0, &mut rng).unwrap();
        assert_eq!(full.num_edges(), 190);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 400;
        let p = 0.1;
        let g = erdos_renyi_gnp(n, p, &mut rng).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "edges {got} vs expected {expected}"
        );
    }

    #[test]
    fn gnp_is_simple_and_symmetric() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi_gnp(100, 0.3, &mut rng).unwrap();
        for v in g.vertices() {
            assert!(!g.neighbours(v).contains(&v));
            for &w in g.neighbours(v) {
                assert!(g.has_edge(w, v));
            }
        }
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(4);
        for &m in &[0usize, 1, 50, 100, 190] {
            let g = erdos_renyi_gnm(20, m, &mut rng).unwrap();
            assert_eq!(g.num_edges(), m, "m = {m}");
        }
    }

    #[test]
    fn gnm_rejects_too_many_edges() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(erdos_renyi_gnm(5, 11, &mut rng).is_err());
    }

    #[test]
    fn dense_for_alpha_hits_target_degree() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 2000usize;
        let alpha = 0.8;
        let g = dense_gnp_for_alpha(n, alpha, &mut rng).unwrap();
        let target = (n as f64).powf(alpha);
        let avg = g.average_degree();
        assert!(
            (avg - target).abs() < target * 0.15,
            "avg degree {avg}, target {target}"
        );
        // The realised minimum degree should be within a constant factor.
        let min = g.min_degree().unwrap() as f64;
        assert!(min > target * 0.5, "min degree {min}, target {target}");
    }

    #[test]
    fn dense_for_alpha_rejects_bad_alpha() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(dense_gnp_for_alpha(10, -0.2, &mut rng).is_err());
        assert!(dense_gnp_for_alpha(10, 1.2, &mut rng).is_err());
    }

    #[test]
    fn alpha_one_gives_near_complete_graph() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = dense_gnp_for_alpha(50, 1.0, &mut rng).unwrap();
        assert_eq!(g.num_edges(), 50 * 49 / 2);
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(erdos_renyi_gnp(0, 0.5, &mut rng).unwrap().num_vertices(), 0);
        assert_eq!(erdos_renyi_gnp(1, 0.5, &mut rng).unwrap().num_edges(), 0);
        assert_eq!(erdos_renyi_gnm(1, 0, &mut rng).unwrap().num_edges(), 0);
    }
}
