//! 2-dimensional grids and tori.
//!
//! Constant-degree lattices sit at the opposite extreme from the paper's
//! dense regime; the degree-sweep and robustness experiments use them to
//! show where the `O(log log n)` behaviour breaks down.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

fn index(rows: usize, cols: usize, r: usize, c: usize) -> usize {
    debug_assert!(r < rows && c < cols);
    r * cols + c
}

/// `rows × cols` grid with 4-neighbour adjacency and no wrap-around.
pub fn grid_2d(rows: usize, cols: usize) -> Result<CsrGraph> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("grid dimensions must be positive, got {rows}x{cols}"),
        });
    }
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = index(rows, cols, r, c);
            if c + 1 < cols {
                b.push_edge(v, index(rows, cols, r, c + 1))?;
            }
            if r + 1 < rows {
                b.push_edge(v, index(rows, cols, r + 1, c))?;
            }
        }
    }
    b.build()
}

/// `rows × cols` torus: 4-neighbour adjacency with wrap-around. Requires both
/// dimensions to be at least 3 so the graph is simple (no parallel edges).
pub fn torus_2d(rows: usize, cols: usize) -> Result<CsrGraph> {
    if rows < 3 || cols < 3 {
        return Err(GraphError::InvalidParameter {
            reason: format!("torus dimensions must be at least 3, got {rows}x{cols}"),
        });
    }
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = index(rows, cols, r, c);
            let right = index(rows, cols, r, (c + 1) % cols);
            let down = index(rows, cols, (r + 1) % rows, c);
            b.push_edge(v, right)?;
            b.push_edge(v, down)?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter_exact, is_connected};

    #[test]
    fn rejects_degenerate_dimensions() {
        assert!(grid_2d(0, 5).is_err());
        assert!(grid_2d(5, 0).is_err());
        assert!(torus_2d(2, 5).is_err());
        assert!(torus_2d(5, 2).is_err());
    }

    #[test]
    fn grid_edge_count_and_degrees() {
        let g = grid_2d(4, 5).unwrap();
        assert_eq!(g.num_vertices(), 20);
        // Edges: rows*(cols-1) + cols*(rows-1) = 4*4 + 5*3 = 31.
        assert_eq!(g.num_edges(), 31);
        // Corner has degree 2, edge vertex 3, interior 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(6), 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn single_row_grid_is_a_path() {
        let g = grid_2d(1, 6).unwrap();
        assert_eq!(g.num_edges(), 5);
        assert_eq!(diameter_exact(&g).unwrap(), 5);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus_2d(5, 7).unwrap();
        assert_eq!(g.num_vertices(), 35);
        assert_eq!(g.num_edges(), 2 * 35);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn torus_wraps_around() {
        let g = torus_2d(4, 4).unwrap();
        // Vertex (0,0) is adjacent to (0,3) and (3,0) thanks to wrap-around.
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(0, 12));
    }

    #[test]
    fn torus_diameter() {
        let g = torus_2d(6, 6).unwrap();
        assert_eq!(diameter_exact(&g).unwrap(), 6);
    }
}
